"""Benchmarks for the §6.2 testbed results: Fig 9, Fig 10, Fig 11, Fig 12."""

from benchmarks.conftest import full_mode

from repro.experiments import fig9, fig10, fig11, fig12


def test_fig9_gain_vs_fes(run_experiment):
    if full_mode():
        fe_counts, duration = (0, 1, 2, 4, 6, 8, 12), 1.5
    else:
        fe_counts, duration = (0, 1, 2, 4, 8), 1.0
    result = run_experiment(fig9.run, fe_counts=fe_counts,
                            duration=duration, warmup=0.8)
    gains = {row["n_fes"]: row["cps_gain"] for row in result.rows}
    # Growth region then plateau around 3.3x (the paper's headline).
    assert gains[1] > 1.2
    assert gains[2] > gains[1]
    assert gains[4] > gains[2]
    assert 2.7 < gains[4] < 4.0
    assert abs(gains[8] - gains[4]) < 0.35          # plateau past 4 FEs
    # Memory-bound capabilities.
    flows = {row["n_fes"]: row["flows_gain"] for row in result.rows}
    assert 3.3 < flows[4] < 4.3                     # ~3.8x
    assert abs(flows[8] - flows[4]) < 0.01          # saturated at 4
    vnics = {row["n_fes"]: row["vnics_gain"] for row in result.rows}
    assert vnics[8] == 2 * vnics[4]                 # proportional to #FEs


def test_fig10_cps_vs_vcpus(run_experiment):
    if full_mode():
        vcpus, duration = (8, 16, 32, 48, 64), 1.5
    else:
        vcpus, duration = (16, 32, 64), 1.0
    result = run_experiment(fig10.run, vcpu_counts=vcpus, duration=duration,
                            warmup=0.8)
    rows = {row["vcpus"]: row for row in result.rows}
    smallest, largest = min(vcpus), max(vcpus)
    # Without Nezha the vSwitch caps CPS regardless of vCPUs.
    assert abs(rows[largest]["cps_without"]
               - rows[smallest]["cps_without"]) \
        < 0.2 * rows[smallest]["cps_without"]
    # With Nezha CPS grows with vCPUs...
    assert rows[largest]["cps_with"] > 1.5 * rows[smallest]["cps_with"]
    # ...but sub-linearly (kernel locks).
    assert rows[largest]["cps_with"] \
        < (largest / smallest) * rows[smallest]["cps_with"] * 0.9


def test_fig11_offload_and_scaling(run_experiment):
    result = run_experiment(fig11.run,
                            duration=14.0 if full_mode() else 10.0)
    series = [(row["time_s"], row["be_cpu"]) for row in result.rows]
    peak = max(v for _t, v in series)
    tail = [v for t, v in series if t > series[-1][0] - 2.0]
    assert peak > 0.7                       # the ramp crossed the threshold
    assert min(tail) < 0.35                 # BE collapsed after offload
    assert any("->" in note for note in result.notes)


def test_fig12_latency_vs_load(run_experiment):
    if full_mode():
        loads = (0, 8, 16, 32, 48, 64, 96)
    else:
        loads = (0, 32, 96)
    result = run_experiment(fig12.run, load_levels=loads)
    rows = {row["load_concurrency"]: row for row in result.rows}
    low, high = min(loads), max(loads)
    # At low load the extra hop is a small constant.
    assert rows[low]["extra_hop_us"] < 0.3 * rows[low]["latency_without_us"]
    # At overload the local path deteriorates far beyond Nezha's.
    assert rows[high]["latency_without_us"] \
        > 2.0 * rows[high]["latency_with_us"]
