"""Ablation benches for the design choices DESIGN.md calls out.

Each quantifies why the paper made (or rejected) a choice:

* flow-level vs packet-level FE load balancing (§3.2.3);
* notify suppression (§3.2.2);
* fixed vs variable-length states (§7.1);
* Nezha's stateless FEs vs Sirius's replicated pool (§2.3.3);
* initial #FEs = 4 (App B.2);
* state-dependent (SYN-short) aging (§7.3).
"""

import pytest

from repro.net import IPv4Address, Packet, TcpFlags
from repro.sim import Engine, MemoryBudget, SeededRng
from repro.vswitch import CostModel, SessionState, SessionTable, StatsPolicy
from repro.vswitch.session_table import EntryMode
from repro.workloads.fleet import HotspotKind

from tests.conftest import TENANT_A, TENANT_B, VNI, build_nezha_env


def drive_flows(env, handle, n_flows, packets_per_flow=4, spacing=0.001):
    env.vnic_b.attach_guest(lambda pkt: None)
    t = 0.0
    for flow in range(n_flows):
        for pkt_idx in range(packets_per_flow):
            pkt = Packet.tcp(TENANT_A, TENANT_B, 10_000 + flow, 80,
                             TcpFlags.of("syn") if pkt_idx == 0
                             else TcpFlags.of("ack"))
            env.engine.call_after(t, env.vswitch_a.send_from_vnic,
                                  env.vnic_a, pkt)
            t += spacing
    env.engine.run(until=env.engine.now + t + 0.5)


def offloaded_env(packet_level_lb=False):
    env = build_nezha_env(n_servers=6)
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=env.engine.now + 2.0)
    assert handle.completed_at is not None
    handle.backend.packet_level_lb = packet_level_lb
    return env, handle


def test_ablation_flow_vs_packet_level_lb(benchmark, capsys):
    """Packet spraying duplicates rule lookups and cached flows (§3.2.3)."""

    def measure():
        results = {}
        for mode, flag in (("flow-level", False), ("packet-level", True)):
            env, handle = offloaded_env(packet_level_lb=flag)
            # Note: packet-level LB only affects TX; drive B->A flows.
            env.vnic_a.attach_guest(lambda pkt: None)
            t = 0.0
            for flow in range(30):
                for pkt_idx in range(8):
                    pkt = Packet.tcp(TENANT_B, TENANT_A, 20_000 + flow,
                                     8080,
                                     TcpFlags.of("syn") if pkt_idx == 0
                                     else TcpFlags.of("ack"))
                    env.engine.call_after(
                        t, env.vswitch_b.send_from_vnic, env.vnic_b, pkt)
                    t += 0.001
            env.engine.run(until=env.engine.now + t + 0.5)
            lookups = sum(fe.stats.flow_cache_misses
                          for fe in handle.frontends.values())
            cached = sum(
                1 for fe in handle.frontends.values()
                for entry in fe.vswitch.session_table
                if entry.mode is EntryMode.FLOWS_ONLY)
            results[mode] = (lookups, cached)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n== ablation: FE load-balancing granularity ==")
        for mode, (lookups, cached) in results.items():
            print(f"{mode:13s} rule lookups={lookups:4d} "
                  f"cached flow copies={cached:4d}")
    flow_lookups, flow_cached = results["flow-level"]
    pkt_lookups, pkt_cached = results["packet-level"]
    assert flow_lookups == 30               # one per flow
    assert pkt_lookups >= 3 * flow_lookups  # duplicated per FE
    assert pkt_cached >= 3 * flow_cached    # wasted FE memory


def test_ablation_notify_suppression(benchmark, capsys):
    """Suppressing redundant notifies cuts notify traffic to ~zero when
    carried state already matches the lookup (§3.2.2)."""

    def measure():
        counts = {}
        for suppress in (True, False):
            env, handle = offloaded_env()
            for fe in handle.frontends.values():
                fe.suppress_redundant_notifies = suppress
            env.vnic_a.attach_guest(lambda pkt: None)
            t = 0.0
            for flow in range(40):
                pkt = Packet.tcp(TENANT_B, TENANT_A, 30_000 + flow, 8080,
                                 TcpFlags.of("syn"))
                env.engine.call_after(t, env.vswitch_b.send_from_vnic,
                                      env.vnic_b, pkt)
                t += 0.002
            env.engine.run(until=env.engine.now + t + 0.5)
            counts[suppress] = sum(fe.stats.notifies_sent
                                   for fe in handle.frontends.values())
        return counts

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n== ablation: notify suppression ==")
        print(f"suppressed:   {counts[True]} notifies")
        print(f"unsuppressed: {counts[False]} notifies")
    assert counts[True] == 0          # nothing differed -> no notifies
    assert counts[False] == 40        # one per cache miss without the check


def test_ablation_variable_state_capacity(benchmark, capsys):
    """Variable-length states raise #concurrent-flow capacity up to ~8x
    for plain flows (§7.1)."""

    def measure():
        cm = CostModel.testbed()
        capacities = {}
        for variable in (False, True):
            mem = MemoryBudget(1_000_000)
            table = SessionTable(mem, cm, variable_state=variable)
            from repro.net import FiveTuple, PROTO_TCP
            from repro.vswitch import Direction
            from repro.vswitch.tcp_fsm import TcpState
            count = 0
            while True:
                state = SessionState(first_direction=Direction.TX)
                state.tcp_state = TcpState.ESTABLISHED
                ft = FiveTuple(IPv4Address(10 + count), IPv4Address(20),
                               PROTO_TCP, count % 60000, 80)
                try:
                    table.insert(count // 60000, ft, None, state, 0.0,
                                 EntryMode.STATE_ONLY)
                except Exception:
                    break
                count += 1
            capacities[variable] = count
        return capacities

    caps = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n== ablation: fixed vs variable state ==")
        print(f"fixed 64B:  {caps[False]} states")
        print(f"variable:   {caps[True]} states "
              f"({caps[True] / caps[False]:.2f}x)")
    # 32B key + 64B -> 32B + 6B: about 2.5x for state-only entries; the
    # state *slot* itself shrinks ~8x (the paper's framing).
    assert caps[True] > 2.2 * caps[False]


def test_ablation_sirius_vs_nezha(benchmark, capsys):
    """Sirius's in-line replication halves pool CPS and its bucket moves
    transfer state; Nezha's stateless FEs do neither (§2.3.3)."""
    from repro.baselines import BucketMigration, SiriusPool
    from repro.net import FiveTuple, PROTO_TCP

    def measure():
        pool = SiriusPool(n_cards=4, card_cps_capacity=100_000)
        migration = BucketMigration(n_buckets=64, n_cards=4,
                                    rng=SeededRng(1, "ab"))
        for i in range(2000):
            migration.add_long_lived_flow(
                FiveTuple(IPv4Address(1), IPv4Address(2), PROTO_TCP,
                          i % 60000, 80))
        _moved, transferred = migration.add_card()
        return pool, transferred

    pool, transferred = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n== ablation: Sirius-style pool vs Nezha ==")
        print(f"pool CPS (Sirius, in-line replication): "
              f"{pool.cps_capacity():,.0f}")
        print(f"pool CPS (same cards as Nezha FEs):     "
              f"{pool.nezha_equivalent_cps():,.0f}")
        print(f"states transferred on Sirius scale-out: {transferred}")
        print(f"states transferred on Nezha scale-out:  0 (stateless FEs)")
    assert pool.nezha_equivalent_cps() == 2 * pool.cps_capacity()
    assert transferred > 200


def test_ablation_initial_fe_count(benchmark, capsys):
    """Initial #FEs = 4 balances scale-out frequency against waste
    (App B.2): 2 FEs scale out an order of magnitude more often; 8 FEs
    waste provisioning."""
    from repro.experiments import appb2

    def measure():
        return {k: appb2.run(n_events=2499, initial_fes=k)
                for k in (2, 4, 8)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratios, waste = {}, {}
    for k, result in results.items():
        rows = {row["quantity"]: row["measured"] for row in result.rows}
        ratios[k] = rows["scale-out ratio"]
        waste[k] = rows["FEs provisioned"] / 2499
    with capsys.disabled():
        print(f"\n== ablation: initial #FEs ==")
        for k in (2, 4, 8):
            print(f"initial {k}: scale-out ratio {ratios[k]:.3f}, "
                  f"avg FEs/pool {waste[k]:.2f}")
    assert ratios[2] > 3 * ratios[4]
    assert ratios[8] < ratios[4]
    assert waste[8] > 1.9 * waste[4]


def test_ablation_syn_aging(benchmark, capsys):
    """State-dependent aging reclaims SYN-flood residue ~8x faster than a
    uniform timeout would (§7.3)."""
    import repro.vswitch.state as state_mod

    def measure():
        outcomes = {}
        for label, embryonic in (("syn-short", 1.0), ("uniform", 8.0)):
            original = state_mod.AGING_EMBRYONIC
            state_mod.AGING_EMBRYONIC = embryonic
            try:
                from repro.host import Vm
                from repro.workloads import SynFlood
                from tests.conftest import build_cloud
                cloud = build_cloud()
                vm = Vm(cloud.engine, "attacker", vcpus=8)
                vm.attach_vnic(cloud.vnic_a)
                cloud.vnic_b.attach_guest(lambda pkt: None)
                cloud.vswitch_a.start_aging(interval=0.25)
                SynFlood(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                         rate_pps=300,
                         rng=SeededRng(2, label)).run(duration=1.0)
                cloud.engine.run(until=3.5)
                outcomes[label] = len(cloud.vswitch_a.session_table)
            finally:
                state_mod.AGING_EMBRYONIC = original
        return outcomes

    outcomes = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n== ablation: SYN-state aging ==")
        print(f"short embryonic aging: {outcomes['syn-short']} residual "
              f"states 2.5s after the flood")
        print(f"uniform 8s aging:      {outcomes['uniform']} residual")
    assert outcomes["syn-short"] < outcomes["uniform"] / 3
