"""Benchmarks for the experience/appendix artifacts: Fig 15, Table 5,
Table A1, Fig A1."""

from benchmarks.conftest import full_mode

from repro.experiments import figa1, fig15, table5, tablea1


def test_fig15_state_size(run_experiment):
    result = run_experiment(
        fig15.run,
        sessions_per_region=50_000 if full_mode() else 10_000)
    averages = [row["avg_state_bytes"] for row in result.rows]
    # Paper: regional averages between ~5 and ~8 bytes.
    assert 5.0 <= min(averages)
    assert max(averages) <= 9.0
    # Variable-length states buy ~8x headroom.
    headrooms = [row["flows_headroom_x"] for row in result.rows]
    assert min(headrooms) > 7.0


def test_table5_deployment_costs(run_experiment):
    result = run_experiment(table5.run)
    rows = {row["item"]: row for row in result.rows}
    sw = rows["software development (P-M)"]
    assert sw["nezha"] < sw["sailfish"] / 3
    scale = rows["scale-out time (days)"]
    assert scale["nezha"] <= 7
    assert scale["sailfish"] >= 30
    assert any("10%" in note for note in result.notes)


def test_tablea1_lookup_throughput(run_experiment):
    result = run_experiment(tablea1.run,
                            lookups_per_cell=500 if full_mode() else 100)
    rows = {(row["pkt_bytes"], row["acl_rules"]): row["measured_mpps"]
            for row in result.rows}
    # Corner calibration: within 5% of the paper at the anchors.
    assert abs(rows[(64, 0)] - 6.612) / 6.612 < 0.05
    assert abs(rows[(64, 1000)] - 5.422) / 5.422 < 0.05
    assert abs(rows[(512, 0)] - 5.985) / 5.985 < 0.05
    # Monotone decline with packet size and rule count.
    for rules in (0, 1000):
        assert rows[(512, rules)] < rows[(64, rules)]
    for size in (64, 512):
        assert rows[(size, 1000)] < rows[(size, 0)]
    # Interior cells within 10% of the paper.
    for row in result.rows:
        assert abs(row["measured_mpps"] - row["paper_mpps"]) \
            / row["paper_mpps"] < 0.10


def test_figa1_migration_downtime(run_experiment):
    result = run_experiment(figa1.run,
                            samples_per_point=500 if full_mode() else 100)
    by_vcpu = {row["value"]: row["avg_downtime_s"] for row in result.rows
               if row["dimension"] == "vcpus"}
    by_mem = {row["value"]: row for row in result.rows
              if row["dimension"] == "memory_gb"}
    assert by_vcpu[128] > 2 * by_vcpu[4]
    assert by_mem[1024]["avg_downtime_s"] > 5 * by_mem[16]["avg_downtime_s"]
    # 1TB migration completes in tens of minutes (vs 2s for offloading).
    assert 600 < by_mem[1024]["avg_completion_s"] < 3600
