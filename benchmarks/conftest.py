"""Benchmark harness conventions.

Each ``test_<id>`` regenerates one of the paper's tables/figures via
``repro.experiments.<id>.run`` inside a single-round pytest-benchmark
measurement and prints the paper-vs-measured table. Set
``REPRO_BENCH_FULL=1`` for the slower, higher-fidelity parameters.
"""

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment exactly once under the benchmark clock and print
    its table so the bench log doubles as the results record."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.to_text())
        return result

    return runner
