"""Benchmarks for the motivation artifacts: Fig 2, Fig 3, Fig 4, Table 1."""

from repro.experiments import fig2, fig3, fig4, table1

from benchmarks.conftest import full_mode


def test_fig2_vm_vs_vswitch_cpu(run_experiment):
    result = run_experiment(fig2.run,
                            n_vms=8 if full_mode() else 3,
                            duration=1.5 if full_mode() else 1.0)
    # Every high-CPS VM saturates its vSwitch far beyond its own CPU.
    for row in result.rows:
        assert row["vswitch_cpu"] > row["vm_cpu"] + 0.2
        assert row["vm_cpu"] < 0.6
        assert row["vswitch_cpu"] > 0.7


def test_fig3_hotspot_distribution(run_experiment):
    result = run_experiment(fig3.run,
                            n_vswitches=200_000 if full_mode() else 50_000)
    cps = result.row_where("cause", "cps")["measured_share"]
    flows = result.row_where("cause", "flows")["measured_share"]
    vnics = result.row_where("cause", "vnics")["measured_share"]
    assert abs(cps - 0.61) < 0.08
    assert abs(flows - 0.30) < 0.08
    assert abs(vnics - 0.09) < 0.05
    assert cps > flows > vnics          # the paper's ordering


def test_fig4_fleet_utilization(run_experiment):
    result = run_experiment(fig4.run,
                            n_vswitches=200_000 if full_mode() else 50_000)
    for row in result.rows:
        if row["percentile"] == "avg":
            continue  # the paper's own avg/percentile tension (see note)
        assert abs(row["cpu_measured"] - row["cpu_paper"]) \
            <= 0.15 * max(row["cpu_paper"], 0.1)
    p90 = result.row_where("percentile", "P90")
    p9999 = result.row_where("percentile", "P9999")
    # The "shortage amid waste" signature: huge P9999/P90 spread.
    assert p9999["cpu_measured"] > 4 * p90["cpu_measured"]


def test_table1_usage_distribution(run_experiment):
    result = run_experiment(table1.run,
                            n_samples=200_000 if full_mode() else 60_000)
    for row in result.rows:
        if row["percentile"] in ("P50", "P90", "P99"):
            assert abs(row["measured"] - row["paper"]) \
                <= 0.3 * row["paper"] + 0.002
        # heavy concentration: P9999 user dwarfs the median user
        if row["percentile"] == "P50":
            assert row["measured"] < 0.01
