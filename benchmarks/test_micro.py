"""Fast-path microbenchmarks under pytest-benchmark.

These measure the exact same ops as ``tools/bench.py`` (both import
:data:`repro.bench.BENCHES`), so the pytest-benchmark tables and the
tracked ``BENCH_fastpath.json`` can be compared directly. Benches with a
legacy twin also run the pre-overhaul code path, grouped together so
``--benchmark-group-by=group`` shows the before/after pair.

Run::

    PYTHONPATH=src python -m pytest benchmarks/test_micro.py
"""

import pytest

from repro.bench import BENCHES

_IDS = [b.name for b in BENCHES]


@pytest.mark.parametrize("bench", BENCHES, ids=_IDS)
def test_optimized(bench, benchmark):
    optimized, _legacy, ops = bench.setup()
    benchmark.group = bench.name
    benchmark.extra_info["ops_per_call"] = ops
    benchmark.extra_info["description"] = bench.description
    benchmark(optimized)


_TWINNED = [b for b in BENCHES if b.setup()[1] is not None]


@pytest.mark.parametrize("bench", _TWINNED, ids=[b.name for b in _TWINNED])
def test_legacy(bench, benchmark):
    _optimized, legacy, ops = bench.setup()
    benchmark.group = bench.name
    benchmark.extra_info["ops_per_call"] = ops
    benchmark.extra_info["description"] = f"{bench.description} (legacy path)"
    benchmark(legacy)
