"""Benchmarks for the production results: Table 3, Table 4, Fig 13,
Fig 14, plus App B.2."""

from benchmarks.conftest import full_mode

from repro.experiments import appb2, fig13, fig14, table3, table4
from repro.workloads.fleet import HotspotKind


def test_table3_middlebox_gains(run_experiment):
    result = run_experiment(table3.run)
    gains = {(row["middlebox"], row["metric"]): row["measured_gain"]
             for row in result.rows}
    assert 3.4 < gains[("load-balancer", "cps")] < 4.6
    assert 3.8 < gains[("nat-gateway", "cps")] < 5.0
    assert 2.5 < gains[("transit-router", "cps")] < 3.5
    # TR gains least (bypasses the ACL).
    assert gains[("transit-router", "cps")] \
        < gains[("load-balancer", "cps")]
    assert gains[("transit-router", "cps")] < gains[("nat-gateway", "cps")]
    # Flows: NAT >> TR >> LB, near the paper's factors.
    assert 40 < gains[("nat-gateway", "flows")] < 60
    assert 12 < gains[("transit-router", "flows")] < 19
    assert 4 < gains[("load-balancer", "flows")] < 6.5
    # #vNICs > 40x everywhere.
    for mb in ("load-balancer", "nat-gateway", "transit-router"):
        assert gains[(mb, "vnics")] > 40


def test_table4_activation_completion(run_experiment):
    result = run_experiment(table4.run,
                            n_offloads=800 if full_mode() else 300)
    rows = {row["percentile"]: row["measured_ms"] for row in result.rows}
    assert 800 < rows["avg"] < 1400          # paper ~1077ms
    assert 1200 < rows["P90"] < 1900         # paper ~1503ms
    assert 1700 < rows["P99"] < 2900         # paper ~2087ms
    assert rows["P999"] < 4500               # paper ~2858ms
    assert rows["avg"] < rows["P90"] < rows["P99"] < rows["P999"]


def test_fig13_overload_mitigation(run_experiment):
    result = run_experiment(fig13.run,
                            n_vswitches=20_000 if full_mode() else 10_000,
                            days=60 if full_mode() else 30)
    rows = {row["cause"]: row for row in result.rows}
    assert rows["cps"]["mitigated_fraction"] > 0.995
    assert rows["flows"]["mitigated_fraction"] > 0.995
    assert rows["vnics"]["mitigated_fraction"] == 1.0
    assert rows["cps"]["before_per_day"] > rows["vnics"]["before_per_day"]


def test_fig14_fe_crash_loss_surge(run_experiment):
    result = run_experiment(fig14.run)
    losses = [(row["time_s"], row["loss_rate"]) for row in result.rows]
    surge = [t for t, loss in losses if loss > 0.02]
    assert surge, "the crash must cause visible loss"
    # Recovery within a few seconds (paper: ~2s).
    assert max(surge) - min(surge) < 4.0
    # Loss vanishes again after failover.
    post = [loss for t, loss in losses if t > max(surge) + 1.0]
    assert post and max(post) < 0.02
    # Active-active: only ~1/4 of transactions ever affected overall
    # (per-bucket loss can spike to 1.0 when timeouts bunch up).
    total_loss = sum(loss for _t, loss in losses) / max(1, len(losses))
    assert total_loss < 0.25


def test_appb2_scale_out_ratio(run_experiment):
    result = run_experiment(appb2.run)
    rows = {row["quantity"]: row["measured"] for row in result.rows}
    assert rows["offload events"] == 2499
    assert rows["scale-out ratio"] < 0.05    # paper: 2.6%
    assert 9996 <= rows["FEs provisioned"] < 10600
