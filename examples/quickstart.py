#!/usr/bin/env python3
"""Quickstart: a five-minute tour of the Nezha reproduction.

Builds a six-server leaf-spine cloud, runs TCP transactions between two
VMs through the simulated SmartNIC vSwitches, then offloads the busy
server vNIC to four idle SmartNICs with Nezha and shows where the work
went.

Run:  python examples/quickstart.py
"""

from repro.controller.gateway import Gateway, MappingLearner
from repro.controller.latency import ControlLatencyModel
from repro.core.offload import NezhaOrchestrator, OffloadConfig
from repro.fabric import Topology
from repro.host import GuestTcp, Vm
from repro.net import IPv4Address, MacAddress
from repro.sim import Engine, SeededRng
from repro.vswitch import CostModel, Vnic, VSwitch
from repro.vswitch.rule_tables import Location
from repro.vswitch.vswitch import make_standard_chain

VNI = 100
CLIENT_IP = IPv4Address("192.168.0.1")
SERVER_IP = IPv4Address("192.168.0.2")


def main() -> None:
    # --- substrate: fabric, vSwitches, control plane ----------------------
    engine = Engine()
    rng = SeededRng(42, "quickstart")
    cost_model = CostModel.testbed()          # ~1/50 of production capacity
    topo = Topology.leaf_spine(engine, n_tors=1, servers_per_tor=6)
    vswitches = [VSwitch(engine, server, cost_model)
                 for server in topo.servers]
    gateway = Gateway(engine)

    # --- two tenant vNICs, one per server ---------------------------------
    client_vnic = Vnic(1, VNI, CLIENT_IP, MacAddress(0xA1),
                       make_standard_chain(cost_model))
    server_vnic = Vnic(2, VNI, SERVER_IP, MacAddress(0xB1),
                       make_standard_chain(cost_model))
    vswitches[0].add_vnic(client_vnic)
    vswitches[1].add_vnic(server_vnic)
    for vnic, server in ((client_vnic, topo.servers[0]),
                         (server_vnic, topo.servers[1])):
        gateway.set_locations(VNI, vnic.tenant_ip,
                              [Location(server.underlay_ip, server.mac)])
    for index, vswitch in enumerate(vswitches):
        learner = MappingLearner(engine, vswitch, gateway, interval=0.05,
                                 rng=rng.child(f"l{index}"))
        learner.refresh()
        learner.start()

    # --- guests: a TCP client and server ----------------------------------
    client_vm = Vm(engine, "client-vm", vcpus=16)
    server_vm = Vm(engine, "server-vm", vcpus=16)
    client_vm.attach_vnic(client_vnic)
    server_vm.attach_vnic(server_vnic)
    client = GuestTcp(client_vm, client_vnic)
    server = GuestTcp(server_vm, server_vnic)
    server.serve(80)

    # --- phase 1: traditional local processing ----------------------------
    for i in range(100):
        engine.call_at(i * 0.005, client.open, SERVER_IP, 80)
    engine.run(until=1.5)
    print("phase 1 — local processing")
    print(f"  transactions completed : {client.completed}")
    print(f"  server vSwitch lookups : "
          f"{vswitches[1].stats.slow_path_lookups}")
    print(f"  server vSwitch sessions: {len(vswitches[1].session_table)}")

    # --- phase 2: offload the server vNIC with Nezha -----------------------
    orchestrator = NezhaOrchestrator(
        engine, gateway, rng=rng.child("orch"),
        config=OffloadConfig(learning_interval=0.05, inflight_margin=0.01,
                             latency=ControlLatencyModel.fast()))
    handle = orchestrator.offload(server_vnic, vswitches[2:6])
    engine.run(until=engine.now + 1.0)
    print("\nphase 2 — Nezha offload")
    print(f"  state                 : {handle.state.value}")
    print(f"  activation time       : {handle.activation_time * 1000:.0f} ms")
    print(f"  frontends             : {len(handle.frontends)}")
    print(f"  BE rule-table memory  : freed "
          f"(tags: {sorted(t for t in vswitches[1].mem.by_tag)})")

    # --- phase 3: the same workload through the split pipeline -------------
    before = client.completed
    lookups_before = [fe.stats.flow_cache_misses
                      for fe in handle.frontends.values()]
    for i in range(100):
        engine.call_at(engine.now + i * 0.005, client.open, SERVER_IP, 80)
    engine.run(until=engine.now + 1.5)
    print("\nphase 3 — traffic through BE/FE split")
    print(f"  transactions completed : {client.completed - before}")
    print(f"  BE states (state-only) : "
          f"{handle.backend.stats.states_created}")
    print(f"  TX relayed via FEs     : {handle.backend.stats.tx_relayed}")
    print(f"  RX relayed by FEs      : {handle.backend.stats.rx_from_fe}")
    misses = [fe.stats.flow_cache_misses - b
              for fe, b in zip(handle.frontends.values(), lookups_before)]
    print(f"  FE rule lookups        : {misses} (spread by 5-tuple hash)")

    # --- phase 4: fall back to local ---------------------------------------
    orchestrator.fallback(handle)
    engine.run(until=engine.now + 1.0)
    print("\nphase 4 — fallback")
    print(f"  state                  : {handle.state.value}")
    print(f"  vNIC offloaded flag    : {server_vnic.offloaded}")
    print("\ndone — see examples/middlebox_offload.py and "
          "examples/failover_drill.py for more")


if __name__ == "__main__":
    main()
