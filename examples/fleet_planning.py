#!/usr/bin/env python3
"""Fleet planning: the motivation numbers, from the fleet model.

Reproduces the §2.2 analysis an operator would run before deploying
Nezha: the "shortage amid waste" utilization spread (Fig 4), the hotspot
cause breakdown (Fig 3), and the expected overload-mitigation win
(Fig 13) — all from the calibrated Monte Carlo fleet model, no packet
simulation required.

Run:  python examples/fleet_planning.py
"""

from repro.controller.latency import ControlLatencyModel
from repro.experiments.fig13 import activation_sampler
from repro.metrics.percentiles import percentile_summary
from repro.sim import SeededRng
from repro.workloads.fleet import FleetModel, HotspotKind


def main() -> None:
    model = FleetModel(n_vswitches=20_000, rng=SeededRng(1, "planning"))

    print("=== fleet utilization (Fig 4) ===")
    cpus, mems = model.sample_utilizations()
    for name, samples in (("CPU", cpus), ("memory", mems)):
        summary = percentile_summary(samples)
        row = "  ".join(f"{k}={v:6.1%}" for k, v in summary.items())
        print(f"{name:6s} {row}")
    print("-> most SmartNICs idle, a few saturated: the reuse opportunity")

    print("\n=== hotspot causes (Fig 3) ===")
    for kind, share in model.hotspot_distribution().items():
        print(f"{kind.value:6s} {share:6.1%}")

    print("\n=== expected overload mitigation (Fig 13) ===")
    sampler = activation_sampler(ControlLatencyModel())
    events = model.simulate_daily_overloads(days=30,
                                            activation_sampler=sampler,
                                            survivable_window=3.6)
    for kind, (before, residual) in \
            FleetModel.overload_summary(events).items():
        mitigation = 1 - residual / before if before else 1.0
        print(f"{kind.value:6s} {before:5d} overload-days before, "
              f"{residual:3d} after  (mitigated {mitigation:.2%})")

    print("\n=== offload vs live migration (Fig A1 / §7.2) ===")
    rng = SeededRng(2, "mig")
    for mem_gb in (64, 256, 1024):
        downtime = FleetModel.migration_downtime(32, mem_gb, rng)
        total = FleetModel.migration_completion_time(mem_gb, rng)
        print(f"{mem_gb:5d} GB VM: migration downtime ~{downtime:6.1f}s, "
              f"completion ~{total / 60:5.1f} min "
              f"(Nezha offload: ~2s, size-independent)")


if __name__ == "__main__":
    main()
