#!/usr/bin/env python3
"""Failover drill: crash an FE under live traffic and watch §4.4 work.

Sets up the full machinery — offloaded vNIC, centralized health monitor
with flow-direct probes, the controller's failover path that maintains a
minimum of 4 FEs — then kills one FE's vSwitch mid-traffic and prints the
timeline: detection, removal, replacement, and the loss-rate surge.

Run:  python examples/failover_drill.py
"""

from repro.controller import FePlacement, HealthMonitor, NezhaController
from repro.controller.controller import ControllerConfig
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.workloads import ClosedLoopCrr


def main() -> None:
    testbed = build_testbed(n_clients=4, n_idle=6, seed=11)
    engine = testbed.engine

    # Offload the server vNIC to four FEs.
    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:4])
    testbed.run(1.0)
    print(f"t={engine.now:5.2f}s  offload active on "
          f"{[fe.name for fe in handle.fe_vswitches]}")

    # Health monitor + controller failover path.
    monitor = HealthMonitor(engine, testbed.topo.servers[-1],
                            interval=0.4, miss_threshold=3)
    placement = FePlacement(testbed.topo, {})
    controller = NezhaController(engine, testbed.gateway,
                                 testbed.orchestrator, placement,
                                 config=ControllerConfig(), monitor=monitor)
    for vswitch in testbed.vswitches:
        controller.register(vswitch)
    for fe in handle.fe_vswitches:
        monitor.add_target(fe.server)
    monitor.trace.on("monitor.target_down",
                     lambda rec: print(f"t={rec.time:5.2f}s  monitor: "
                                       f"{rec.fields['target']} DOWN"))
    controller.trace.on("controller.failover",
                        lambda rec: print(f"t={rec.time:5.2f}s  controller:"
                                          f" failover for "
                                          f"{rec.fields['vswitch']}"))
    monitor.start()

    # Steady traffic.
    loops = [ClosedLoopCrr(engine, app, SERVER_IP, 80, concurrency=16)
             .start() for app in testbed.client_apps]

    victim = handle.fe_vswitches[0]
    crash_time = engine.now + 2.0
    engine.call_at(crash_time, victim.crash)
    engine.call_at(crash_time,
                   lambda: print(f"t={crash_time:5.2f}s  !! {victim.name} "
                                 f"crashed"))

    # Sample loss per half second.
    prev = {"done": 0, "fail": 0}

    def sampler():
        while True:
            yield engine.timeout(0.5)
            done = sum(loop.completed for loop in loops)
            fail = sum(loop.failed for loop in loops)
            d, f = done - prev["done"], fail - prev["fail"]
            prev["done"], prev["fail"] = done, fail
            loss = f / (d + f) if d + f else 0.0
            bar = "#" * int(loss * 40)
            print(f"t={engine.now:5.2f}s  loss {loss:6.1%} {bar}")

    engine.process(sampler(), name="sampler")
    testbed.run(8.0)

    print(f"\nfinal FE set: {[fe.name for fe in handle.fe_vswitches]} "
          f"({len(handle.frontends)} FEs — minimum of 4 restored)")
    print(f"victim still excluded from placement: "
          f"{victim.server.name in placement.excluded}")


if __name__ == "__main__":
    main()
