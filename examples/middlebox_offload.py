#!/usr/bin/env python3
"""Middlebox scenario: a load balancer with stateful decap behind Nezha.

Reproduces the paper's §5.2 / §6.3 deployment shape:

* an SLB instance terminates client transactions on a VIP and proxies
  them over persistent connections to two real servers (RS);
* the RS vNICs use *stateful decapsulation* — their vSwitches record the
  overlay source (the LB) so responses return through it;
* the LB's high-demand vNIC is then offloaded with Nezha, and the same
  traffic keeps flowing through the BE/FE split.

Run:  python examples/middlebox_offload.py
"""

from repro.controller.gateway import Gateway, MappingLearner
from repro.controller.latency import ControlLatencyModel
from repro.core.nf import enable_stateful_decap
from repro.core.offload import NezhaOrchestrator, OffloadConfig
from repro.fabric import Topology
from repro.host import GuestTcp, Vm
from repro.middlebox import SlbApp, lb_profile
from repro.net import IPv4Address, MacAddress, Packet, TcpFlags
from repro.sim import Engine, SeededRng
from repro.vswitch import CostModel, Vnic, VSwitch
from repro.vswitch.rule_tables import Location
from repro.vswitch.vswitch import make_standard_chain

VNI = 200
CLIENT_IP = IPv4Address("192.168.2.1")
VIP = IPv4Address("192.168.2.10")
RS_IPS = [IPv4Address("192.168.2.21"), IPv4Address("192.168.2.22")]


def main() -> None:
    engine = Engine()
    rng = SeededRng(7, "mb")
    cost_model = CostModel.testbed()
    topo = Topology.leaf_spine(engine, n_tors=1, servers_per_tor=8)
    vswitches = [VSwitch(engine, s, cost_model) for s in topo.servers]
    gateway = Gateway(engine)

    # vNICs: client on s0, LB VIP on s1 (the LB-profile chain), RSes on
    # s2/s3 with stateful decap enabled.
    profile = lb_profile()
    vnics = {}
    placements = [(1, CLIENT_IP, 0, make_standard_chain(cost_model)),
                  (2, VIP, 1, profile.build_chain(cost_model)),
                  (3, RS_IPS[0], 2, make_standard_chain(cost_model)),
                  (4, RS_IPS[1], 3, make_standard_chain(cost_model))]
    for vnic_id, ip, server_idx, chain in placements:
        vnic = Vnic(vnic_id, VNI, ip, MacAddress(0xD0 + vnic_id), chain)
        vswitches[server_idx].add_vnic(vnic)
        vnics[ip.value] = vnic
        gateway.set_locations(VNI, ip, [Location(
            topo.servers[server_idx].underlay_ip,
            topo.servers[server_idx].mac)])
    for rs_ip in RS_IPS:
        enable_stateful_decap(vnics[rs_ip.value])
    for index, vswitch in enumerate(vswitches):
        learner = MappingLearner(engine, vswitch, gateway, interval=0.05,
                                 rng=rng.child(f"l{index}"))
        learner.refresh()
        learner.start()

    # Guests: client, LB app, RS responders.
    client_vm = Vm(engine, "client", vcpus=16)
    client_vm.attach_vnic(vnics[CLIENT_IP.value])
    lb_vm = Vm(engine, "slb", vcpus=32)
    lb_vm.attach_vnic(vnics[VIP.value])
    lb = SlbApp(lb_vm, vnics[VIP.value], vip_port=80, real_servers=RS_IPS,
                rng=rng.child("slb"))
    for rs_ip in RS_IPS:
        rs_vm = Vm(engine, f"rs-{rs_ip}", vcpus=16)
        rs_vm.attach_vnic(vnics[rs_ip.value])
        GuestTcp(rs_vm, vnics[rs_ip.value]).serve(8080)

    responses = []
    client_vm.listen(vnics[CLIENT_IP.value], 7000,
                     lambda pkt: responses.append(pkt))

    def client_transaction(sport_offset):
        vnic = vnics[CLIENT_IP.value]
        syn = Packet.tcp(CLIENT_IP, VIP, 7000, 80, TcpFlags.of("syn"))
        client_vm.send(vnic, syn, new_connection=True)
        req = Packet.tcp(CLIENT_IP, VIP, 7000, 80,
                         TcpFlags.of("psh", "ack"), b"GET /")
        engine.call_after(0.05, client_vm.send, vnic, req)

    # --- phase 1: LB running locally ----------------------------------------
    client_transaction(0)
    engine.run(until=1.0)
    print("phase 1 — LB local")
    print(f"  client transactions : {lb.client_transactions}")
    print(f"  proxied requests    : {lb.proxied_requests}")
    print(f"  responses returned  : {lb.responses_returned}")
    print(f"  persistent backends : {lb.persistent_backends}")
    rs_vswitch = vswitches[2]
    decap_states = [e.state.decap_overlay_src for e in rs_vswitch.session_table
                    if e.state is not None
                    and e.state.decap_overlay_src is not None]
    print(f"  RS decap states     : {len(decap_states)} "
          f"(recorded overlay source = LB's server)")

    # --- phase 2: offload the LB's vNIC --------------------------------------
    orchestrator = NezhaOrchestrator(
        engine, gateway, rng=rng.child("orch"),
        config=OffloadConfig(learning_interval=0.05, inflight_margin=0.01,
                             latency=ControlLatencyModel.fast()))
    handle = orchestrator.offload(vnics[VIP.value], vswitches[4:8])
    engine.run(until=engine.now + 1.0)
    print("\nphase 2 — LB vNIC offloaded with Nezha")
    print(f"  state           : {handle.state.value}")
    print(f"  rule tables     : {profile.table_memory_bytes // 1024} KB "
          f"moved to {len(handle.frontends)} FEs (scaled from "
          f"{profile.table_memory_prod // (1024 * 1024)} MB production)")

    before = lb.responses_returned
    client_transaction(1)
    engine.run(until=engine.now + 1.0)
    print(f"  transactions after offload: "
          f"{lb.responses_returned - before} completed")
    print(f"  BE TX relayed   : {handle.backend.stats.tx_relayed}")
    print(f"  BE RX from FEs  : {handle.backend.stats.rx_from_fe}")
    print("\nThe LB keeps serving through the BE/FE split, and the RS "
          "responses still return through the recorded overlay source.")


if __name__ == "__main__":
    main()
