#!/usr/bin/env python
"""Run the tracked benchmarks: fast-path micro and experiment macro.

Micro — full run (regenerates the tracked BENCH_fastpath.json)::

    PYTHONPATH=src python tools/bench.py

Micro — CI smoke (quick pass + regression gate against the committed
JSON)::

    PYTHONPATH=src python tools/bench.py --smoke

The smoke gate is machine-robust: raw ops/sec moves with the host, so it
never compares ops/sec across runs directly. For benches with a legacy
twin it compares *speedups* (optimized vs legacy on the same machine in
the same run); for the rest it compares throughput normalized by a fixed
pure-python calibration loop. Either dropping more than ``--tolerance``
(default 30%) below the committed baseline fails the run.

Macro — per-experiment sequential-vs-parallel wall clocks (regenerates
BENCH_experiments.json)::

    PYTHONPATH=src python tools/bench.py --experiments --jobs 4

Macro numbers are raw seconds plus a same-machine speedup and are never
gated — the speedup depends on the recorded ``cpu_count`` — but each
entry also re-checks that ``jobs=1`` and ``jobs=N`` rendered identical
tables, and a mismatch *does* fail the run (determinism is a
correctness property, not a performance one).

Fleet — wall clock + tracemalloc peak per fleet scale point, with the
peak-vs-naive-sessions memory ratio (regenerates BENCH_fleet.json; with
``--smoke``: reduced scale, shard-identity + peak-memory gate)::

    PYTHONPATH=src python tools/bench.py --fleet
    PYTHONPATH=src python tools/bench.py --fleet --smoke

Fleet telemetry — fleet epoch-loop wall clock with telemetry installed
vs not (merges a ``telemetry_overhead`` block into BENCH_fleet.json;
with ``--smoke``: gate the tracing-off cost, tolerance 2%)::

    PYTHONPATH=src python tools/bench.py --fleet --telemetry
    PYTHONPATH=src python tools/bench.py --fleet --telemetry --smoke

Arena — time only the policy_arena macro (sequential vs parallel, quick
profile) and merge its entry into BENCH_experiments.json::

    PYTHONPATH=src python tools/bench.py --arena
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (run_all, run_fleet_smoke, run_fleet_suite,  # noqa: E402
                         run_fleet_telemetry_overhead, run_macro,
                         run_telemetry_overhead)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_fastpath.json"
DEFAULT_MACRO_OUTPUT = REPO_ROOT / "BENCH_experiments.json"
DEFAULT_FLEET_OUTPUT = REPO_ROOT / "BENCH_fleet.json"
SCHEMA = "bench_fastpath/v1"
MACRO_SCHEMA = "bench_experiments/v1"
FLEET_SCHEMA = "bench_fleet/v1"

# Per-bench smoke-gate overrides, recorded into the committed JSON so the
# gate travels with the baseline. The flow-record benches headline this
# PR's claims, so they get a tighter leash than the default 30%.
GATE_TOLERANCES = {
    "flow_record_hit": 0.20,
    "fluid_fastforward": 0.20,
}


def _git_commit() -> str:
    """Commit hash the numbers were generated at (None outside a work
    tree), so trajectory JSONs stay attributable."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                             capture_output=True, text=True, timeout=10)
    except OSError:
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def _fmt(value) -> str:
    return f"{value:,.0f}" if value is not None else "-"


def print_table(results: dict) -> None:
    print(f"{'bench':<24} {'ops/sec':>14} {'legacy ops/sec':>14} "
          f"{'speedup':>8} {'normalized':>10}")
    for name, entry in results.items():
        if name.startswith("_"):
            continue
        speedup = entry["speedup"]
        print(f"{name:<24} {_fmt(entry['ops_per_sec']):>14} "
              f"{_fmt(entry['baseline_ops_per_sec']):>14} "
              f"{speedup and format(speedup, '.2f') or '-':>8} "
              f"{entry['normalized']:>10.5f}")
    print(f"calibration: {_fmt(results['_calibration_ops_per_sec'])} ops/sec")


def check_regressions(current: dict, baseline_doc: dict,
                      tolerance: float) -> list:
    """Compare a fresh run against the committed baseline; returns a list
    of human-readable failures (empty = pass)."""
    failures = []
    for name, base in baseline_doc.get("benches", {}).items():
        entry = current.get(name)
        if entry is None:
            failures.append(f"{name}: bench disappeared from the suite")
            continue
        # A baseline entry may carry its own, usually tighter, gate.
        bench_tol = base.get("gate_tolerance", tolerance)
        floor = 1.0 - bench_tol
        if base.get("speedup") is not None:
            if entry["speedup"] is None:
                failures.append(f"{name}: lost its legacy twin")
            elif entry["speedup"] < base["speedup"] * floor:
                failures.append(
                    f"{name}: speedup {entry['speedup']:.2f}x fell >"
                    f"{bench_tol:.0%} below baseline {base['speedup']:.2f}x")
        else:
            if entry["normalized"] < base["normalized"] * floor:
                failures.append(
                    f"{name}: normalized throughput {entry['normalized']:.5f}"
                    f" fell >{bench_tol:.0%} below baseline "
                    f"{base['normalized']:.5f}")
    return failures


def print_macro_table(results: dict) -> None:
    print(f"{'experiment':<12} {'sequential s':>13} {'parallel s':>11} "
          f"{'speedup':>8} {'rows':>5} {'identical':>9}")
    for name, entry in results.items():
        print(f"{name:<12} {entry['sequential_s']:>13.2f} "
              f"{entry['parallel_s']:>11.2f} "
              f"{entry['speedup']:>8.2f} {entry['rows']:>5} "
              f"{str(entry['identical_output']):>9}")


def run_experiments_mode(args) -> int:
    jobs = args.jobs or (os.cpu_count() or 1)
    names = args.only.split(",") if args.only else None
    results = run_macro(jobs=jobs, profile=args.profile, names=names)
    if names and not results:
        print(f"error: --only matched no macro bench "
              f"(got {args.only!r})", file=sys.stderr)
        return 2
    print_macro_table(results)

    broken = [name for name, entry in results.items()
              if not entry["identical_output"]]
    if broken:
        print(f"\nerror: parallel output diverged from sequential for: "
              f"{', '.join(broken)}", file=sys.stderr)
        return 1

    output = args.output if args.output != DEFAULT_OUTPUT \
        else DEFAULT_MACRO_OUTPUT
    experiments = results
    if names and output.exists():
        # Partial run: refresh only the selected entries, keep the rest
        # of the committed file intact.
        previous = json.loads(output.read_text())
        experiments = previous.get("experiments", {})
        experiments.update(results)
    doc = {
        "schema": MACRO_SCHEMA,
        "config": {
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "git_commit": _git_commit(),
            "profile": args.profile,
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "experiments": experiments,
    }
    output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    return 0


def print_fleet_table(entries: dict) -> None:
    print(f"{'point':<13} {'vswitches':>9} {'wall s':>8} {'seed s':>7} "
          f"{'steady s':>8} {'peak MB':>9} {'naive MB':>9} {'ratio':>7} "
          f"{'flows':>9} {'ipc B/ep':>9}")
    for name, entry in entries.items():
        wall = entry.get("wall_s")
        seed_s = entry.get("seed_epoch_s")
        steady_s = entry.get("steady_epoch_s")
        resident = (entry.get("resident") or {}).get("jobs_2", {})
        ipc = resident.get("ipc_bytes_per_epoch")
        print(f"{name:<13} {entry['n_vswitches']:>9} "
              f"{wall if wall is not None else '-':>8} "
              f"{seed_s if seed_s is not None else '-':>7} "
              f"{steady_s if steady_s is not None else '-':>8} "
              f"{entry['peak_mb']:>9.1f} {entry['naive_mb']:>9.1f} "
              f"{entry['peak_over_naive']:>7.3f} {entry['live_flows']:>9} "
              f"{ipc if ipc is not None else '-':>9}")


def run_fleet_mode(args) -> int:
    """Fleet macro mode: wall clock + tracemalloc peak per scale point.

    Without ``--smoke``: runs every scale point (500/1K/10K/100K
    vSwitches), enforces the ISSUE 7 bar — peak memory ≤ 25% of naive
    per-object sessions at the full scales — records per-phase timings
    (seed vs steady epochs) plus each scale's resident-pool IPC
    accounting, and writes BENCH_fleet.json.
    With ``--smoke``: re-runs only the 500-vSwitch point, requires the
    shards-1-vs-2 output to be byte-identical AND the resident-pool
    output (at 400 vSwitches, pool on vs off) to be byte-identical, and
    gates its peak memory against the committed baseline (per-entry
    ``gate_tolerance``).
    """
    output = args.output if args.output != DEFAULT_OUTPUT \
        else DEFAULT_FLEET_OUTPUT

    if args.smoke:
        entry = run_fleet_smoke()
        print_fleet_table({"smoke": entry})
        if not entry["identical_across_shards"]:
            print("\nerror: fleet output diverged between shards=1 and "
                  "shards=2", file=sys.stderr)
            return 1
        if not entry["identical_with_resident_pool"]:
            print("\nerror: fleet output diverged between the resident "
                  "worker pool and the per-epoch sweep", file=sys.stderr)
            return 1
        if not output.exists():
            print(f"error: no baseline at {output}; run --fleet without "
                  f"--smoke first", file=sys.stderr)
            return 2
        baseline = json.loads(output.read_text()).get("fleet", {}) \
            .get("smoke")
        if baseline is None:
            print(f"error: {output.name} has no smoke entry; run --fleet "
                  f"without --smoke first", file=sys.stderr)
            return 2
        tolerance = baseline.get("gate_tolerance", 0.50) \
            if args.tolerance is None else args.tolerance
        ceiling = baseline["peak_mb"] * (1.0 + tolerance)
        if entry["peak_mb"] > ceiling:
            print(f"\nREGRESSION: fleet smoke peak {entry['peak_mb']:.1f} MB"
                  f" exceeds baseline {baseline['peak_mb']:.1f} MB by more "
                  f"than {tolerance:.0%}", file=sys.stderr)
            return 1
        print(f"\nfleet smoke OK: shard- and residency-identical output, "
              f"peak within {tolerance:.0%} of {output.name}")
        return 0

    entries = run_fleet_suite()
    print_fleet_table(entries)
    over = [name for name, entry in entries.items()
            if entry.get("naive_ratio_ceiling") is not None
            and entry["peak_over_naive"] > entry["naive_ratio_ceiling"]]
    if over:
        print(f"\nerror: peak memory exceeded the naive-session ratio "
              f"ceiling for: {', '.join(over)}", file=sys.stderr)
        return 1
    doc = {
        "schema": FLEET_SCHEMA,
        "config": {
            "cpu_count": os.cpu_count(),
            "git_commit": _git_commit(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "fleet": entries,
    }
    if output.exists():
        # A full fleet regen must not drop the separately-tracked
        # telemetry overhead block (regenerated via --fleet --telemetry).
        previous = json.loads(output.read_text())
        if "telemetry_overhead" in previous:
            doc["telemetry_overhead"] = previous["telemetry_overhead"]
    output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    return 0


def run_fleet_telemetry_mode(args) -> int:
    """Measure telemetry overhead on the fleet epoch loop.

    The fleet twin of ``--telemetry`` (which measures fig9): without
    ``--smoke``, merges a ``telemetry_overhead`` block into the
    committed BENCH_fleet.json; with ``--smoke``, gates against it —
    the tracing-off wall clock (calibration-normalized) may not regress
    more than the block's ``gate_tolerance`` (the ISSUE 10 2% bar), and
    the telemetry-on run must render a byte-identical fleet table.
    """
    output = args.output if args.output != DEFAULT_OUTPUT \
        else DEFAULT_FLEET_OUTPUT
    entry = run_fleet_telemetry_overhead(repeats=3)
    print(f"fleet (quick):  telemetry off {entry['off_s']:.2f}s  "
          f"on {entry['on_s']:.2f}s  "
          f"overhead {entry['overhead_ratio']:.3f}x  "
          f"identical output: {entry['identical_output']}")

    if not entry["identical_output"]:
        print("\nerror: installing telemetry changed the fleet result "
              "table", file=sys.stderr)
        return 1

    if args.smoke:
        if not output.exists():
            print(f"error: no baseline at {output}; run --fleet "
                  f"--telemetry without --smoke first", file=sys.stderr)
            return 2
        baseline = json.loads(output.read_text()).get("telemetry_overhead")
        if baseline is None:
            print(f"error: {output.name} has no telemetry_overhead block; "
                  f"run --fleet --telemetry without --smoke first",
                  file=sys.stderr)
            return 2
        tolerance = baseline.get("gate_tolerance", 0.02) \
            if args.tolerance is None else args.tolerance
        ceiling = baseline["normalized_off"] * (1.0 + tolerance)
        if entry["normalized_off"] > ceiling:
            print(f"\nREGRESSION: tracing-off fleet cost "
                  f"{entry['normalized_off']:,.0f} exceeds baseline "
                  f"{baseline['normalized_off']:,.0f} by more than "
                  f"{tolerance:.0%}", file=sys.stderr)
            return 1
        print(f"\nfleet-telemetry smoke OK: tracing-off cost within "
              f"{tolerance:.0%} of {output.name}")
        return 0

    doc = json.loads(output.read_text()) if output.exists() \
        else {"schema": FLEET_SCHEMA}
    doc["telemetry_overhead"] = entry
    output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    return 0


def run_telemetry_mode(args) -> int:
    """Measure telemetry overhead on the fig9 macro bench.

    Without ``--smoke``: merges a ``telemetry_overhead`` block into the
    committed BENCH_fastpath.json (leaving the micro benches alone).
    With ``--smoke``: gates against that block — the tracing-off wall
    clock (calibration-normalized, so it transfers across machines) may
    not regress more than ``--tolerance`` (default 10% here — single
    macro runs swing several percent on small shared boxes even with
    the warm-up and best-of-N sampling in the measurement), and the
    telemetry-on run must render a byte-identical result table.
    """
    tolerance = 0.10 if args.tolerance is None else args.tolerance
    repeats = 2 if args.smoke else 3
    entry = run_telemetry_overhead(repeats=repeats)
    print(f"fig9 (quick):  telemetry off {entry['off_s']:.2f}s  "
          f"on {entry['on_s']:.2f}s  "
          f"overhead {entry['overhead_ratio']:.3f}x  "
          f"identical output: {entry['identical_output']}")

    if not entry["identical_output"]:
        print("\nerror: installing telemetry changed the experiment's "
              "result table", file=sys.stderr)
        return 1

    if args.smoke:
        if not args.output.exists():
            print(f"error: no baseline at {args.output}; run "
                  f"--telemetry without --smoke first", file=sys.stderr)
            return 2
        baseline = json.loads(args.output.read_text()) \
            .get("telemetry_overhead")
        if baseline is None:
            print(f"error: {args.output.name} has no telemetry_overhead "
                  f"block; run --telemetry without --smoke first",
                  file=sys.stderr)
            return 2
        ceiling = baseline["normalized_off"] * (1.0 + tolerance)
        if entry["normalized_off"] > ceiling:
            print(f"\nREGRESSION: tracing-off fig9 cost "
                  f"{entry['normalized_off']:,.0f} exceeds baseline "
                  f"{baseline['normalized_off']:,.0f} by more than "
                  f"{tolerance:.0%}", file=sys.stderr)
            return 1
        print(f"\ntelemetry smoke OK: tracing-off cost within "
              f"{tolerance:.0%} of {args.output.name}")
        return 0

    doc = json.loads(args.output.read_text()) if args.output.exists() \
        else {"schema": SCHEMA}
    doc["telemetry_overhead"] = entry
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick run + regression gate against the "
                             "committed JSON; does not rewrite it")
    parser.add_argument("--experiments", action="store_true",
                        help="macro mode: per-experiment sequential vs "
                             "parallel wall clocks -> BENCH_experiments.json")
    parser.add_argument("--fleet", action="store_true",
                        help="fleet mode: wall clock + tracemalloc peak "
                             "per fleet scale point -> BENCH_fleet.json "
                             "(with --smoke: reduced scale, shard-identity "
                             "check + peak-memory gate only)")
    parser.add_argument("--arena", action="store_true",
                        help="shortcut for --experiments --only "
                             "policy_arena: time the policy arena and "
                             "merge its entry into BENCH_experiments.json")
    parser.add_argument("--telemetry", action="store_true",
                        help="telemetry mode: fig9 wall clock with the "
                             "telemetry stack installed vs not; merges a "
                             "telemetry_overhead block into "
                             "BENCH_fastpath.json (with --smoke: gate "
                             "only, default tolerance 10%%). Combined "
                             "with --fleet: same measurement on the "
                             "fleet epoch loop -> BENCH_fleet.json "
                             "(smoke tolerance 2%%)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for --experiments "
                             "(default: one per CPU core)")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="parameter scale for --experiments "
                             "(default: %(default)s)")
    parser.add_argument("--only", metavar="NAME[,NAME...]", default=None,
                        help="with --experiments: run only these macro "
                             "benches and merge them into the existing "
                             "JSON instead of rewriting it")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="baseline JSON path (default: "
                             "BENCH_fastpath.json, or "
                             "BENCH_experiments.json with --experiments)")
    parser.add_argument("--target-seconds", type=float, default=None,
                        help="min measured wall time per bench "
                             "(default: 0.25, or 0.05 with --smoke)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional regression for --smoke "
                             "(default: 0.30, or 0.10 with --telemetry)")
    args = parser.parse_args(argv)

    if args.arena:
        args.only = "policy_arena"
        return run_experiments_mode(args)
    if args.experiments:
        return run_experiments_mode(args)
    if args.fleet and args.telemetry:
        return run_fleet_telemetry_mode(args)
    if args.fleet:
        return run_fleet_mode(args)
    if args.telemetry:
        return run_telemetry_mode(args)

    target = args.target_seconds
    if target is None:
        target = 0.05 if args.smoke else 0.25

    results = run_all(target_seconds=target)
    print_table(results)

    if args.smoke:
        if not args.output.exists():
            print(f"error: no baseline at {args.output}; run without "
                  f"--smoke first", file=sys.stderr)
            return 2
        tolerance = 0.30 if args.tolerance is None else args.tolerance
        baseline_doc = json.loads(args.output.read_text())
        failures = check_regressions(results, baseline_doc, tolerance)
        if failures:
            print("\nREGRESSIONS:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"\nsmoke OK: no bench regressed >{tolerance:.0%} "
              f"vs {args.output.name}")
        return 0

    calibration = results.pop("_calibration_ops_per_sec")
    for name, tol in GATE_TOLERANCES.items():
        if name in results:
            results[name]["gate_tolerance"] = tol
    doc = {
        "schema": SCHEMA,
        "config": {
            "target_seconds": target,
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
            "git_commit": _git_commit(),
        },
        "calibration_ops_per_sec": calibration,
        "benches": results,
    }
    if args.output.exists():
        # A full micro regen must not drop the separately-tracked
        # telemetry overhead block (regenerated via --telemetry).
        previous = json.loads(args.output.read_text())
        if "telemetry_overhead" in previous:
            doc["telemetry_overhead"] = previous["telemetry_overhead"]
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
