#!/usr/bin/env python
"""Post-mortem inspector for telemetry JSONL exports.

Produce a capture with any experiment entry point::

    PYTHONPATH=src python -m repro.experiments fig12 --telemetry run.jsonl
    PYTHONPATH=src python -m repro.experiments.chaos --telemetry soak.jsonl

Then inspect it::

    python tools/telemetry.py report run.jsonl
    python tools/telemetry.py spans run.jsonl --label 'offloaded/*'
    python tools/telemetry.py timeline soak.jsonl --kind 'fault.*'
    python tools/telemetry.py fleet-report fleet.jsonl
    python tools/telemetry.py decisions arena.jsonl --policy 'pam'
    python tools/telemetry.py validate run.jsonl

``report`` is the overview: capture header, metric snapshot, the
per-label latency-span breakdown (Fig-12-style local vs offloaded
per-segment decomposition), and the engine profile. ``spans`` goes
deeper on one or more span labels. ``timeline`` prints the unified
trace — faults, controller decisions, monitor verdicts, offload
lifecycle — interleaved in time order, which is the chaos-soak
post-mortem view. ``fleet-report`` renders the folded fleet metric
snapshot (counters, demand/CPU/flow histograms) and the per-epoch
coordinator timeline from the decision journal; ``decisions`` tallies
the journal per policy and diffs outcomes across policies — the arena
post-mortem. ``validate`` is the schema gate CI runs.
"""

from __future__ import annotations

import argparse
import sys
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.percentiles import percentile_summary  # noqa: E402
from repro.telemetry.export import load, validate_report  # noqa: E402


def _by_type(records: List[Dict[str, Any]], line_type: str) -> List[Dict]:
    return [r for r in records if r.get("type") == line_type]


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:10.2f}"


# -- span aggregation (mirror of SpanRecorder.aggregate over dicts) --------


def _segments(span: Dict[str, Any]) -> List[Dict[str, float]]:
    out = []
    prev_name, prev_t = "start", span["t0"]
    for hop in span["hops"]:
        out.append({"name": f"{prev_name}->{hop['name']}",
                    "dt": hop["time"] - prev_t})
        prev_name, prev_t = hop["name"], hop["time"]
    return out


def aggregate_spans(spans: List[Dict[str, Any]],
                    pattern: str = "*") -> Dict[str, Dict[str, Any]]:
    """Per-label count / latency summary / per-segment summary."""
    labels: List[str] = []
    for span in spans:
        if span["label"] not in labels and \
                fnmatchcase(span["label"], pattern):
            labels.append(span["label"])
    out: Dict[str, Dict[str, Any]] = {}
    for label in labels:
        group = [s for s in spans if s["label"] == label]
        totals = [s["total"] for s in group]
        segment_samples: Dict[str, List[float]] = {}
        for span in group:
            for seg in _segments(span):
                segment_samples.setdefault(seg["name"], []).append(seg["dt"])
        out[label] = {
            "count": len(group),
            "latency": percentile_summary(totals),
            "segments": {name: percentile_summary(samples)
                         for name, samples in segment_samples.items()},
        }
    return out


def print_span_breakdown(spans: List[Dict[str, Any]], pattern: str = "*",
                         detailed: bool = False) -> None:
    aggregated = aggregate_spans(spans, pattern)
    if not aggregated:
        print(f"  no spans match {pattern!r}")
        return
    for label, entry in aggregated.items():
        latency = entry["latency"]
        print(f"  {label}  ({entry['count']} spans)")
        print(f"    total latency (us): p50 {latency['P50'] * 1e6:.2f}  "
              f"p90 {latency['P90'] * 1e6:.2f}  "
              f"p99 {latency['P99'] * 1e6:.2f}  "
              f"avg {latency['avg'] * 1e6:.2f}")
        if detailed:
            print(f"    {'segment':<28} {'p50 us':>10} {'p90 us':>10} "
                  f"{'p99 us':>10}")
            for name, summary in entry["segments"].items():
                print(f"    {name:<28} {_us(summary['P50'])} "
                      f"{_us(summary['P90'])} {_us(summary['P99'])}")
        else:
            parts = [f"{name} {summary['P50'] * 1e6:.2f}"
                     for name, summary in entry["segments"].items()]
            print(f"    segment p50s (us): {'  '.join(parts)}")
        print()


# -- subcommands -----------------------------------------------------------


def cmd_report(args) -> int:
    records = load(args.file)
    problems = validate_report(records)
    if problems:
        for text in problems:
            print(f"invalid capture: {text}", file=sys.stderr)
        return 1
    header = records[0]
    print(f"capture: {args.file}")
    print(f"  {header.get('metrics', 0)} metrics, "
          f"{header.get('spans', 0)} spans, "
          f"{header.get('trace_records', 0)} trace records "
          f"({header.get('trace_dropped', 0)} trace / "
          f"{header.get('span_dropped', 0)} span records dropped)")

    metrics = [m for m in _by_type(records, "metric")
               if fnmatchcase(m["name"], args.metrics)]
    if metrics:
        print("\nmetrics:")
        for metric in metrics:
            value = metric["value"]
            if metric["kind"] == "events":
                rendered = f"[{len(value)} entries]"
            elif metric["kind"] == "histogram":
                rendered = (f"count {value['count']:.0f}  "
                            f"p50 {value['P50']:.6g}  p99 {value['P99']:.6g}")
            elif metric["kind"] == "fleet_hist":
                rendered = (f"{sum(value['counts'])} samples in "
                            f"{len(value['counts'])} buckets "
                            f"(see fleet-report)")
            elif isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = str(value)
            print(f"  {metric['name']:<44} {metric['kind']:<10} {rendered}")

    spans = _by_type(records, "span")
    if spans:
        print("\nlatency spans:")
        print_span_breakdown(spans)

    profiles = _by_type(records, "profile")
    for profile in profiles:
        print("engine profile:")
        print(f"  {profile['total_events']} events in "
              f"{profile['total_wall_s']:.3f}s wall "
              f"({profile.get('events_per_sec', 0):,.0f} events/sec)")
        print(f"  {'owner':<36} {'events':>10} {'wall s':>9} {'share':>7}")
        for row in profile["top"]:
            print(f"  {row['owner']:<36} {row['events']:>10} "
                  f"{row['wall_s']:>9.3f} {row['share']:>6.1%}")
    return 0


def cmd_spans(args) -> int:
    records = load(args.file)
    spans = _by_type(records, "span")
    if not spans:
        print("no span records in capture", file=sys.stderr)
        return 1
    print_span_breakdown(spans, args.label, detailed=True)
    return 0


def cmd_timeline(args) -> int:
    records = load(args.file)
    traces = [t for t in _by_type(records, "trace")
              if fnmatchcase(t["kind"], args.kind)
              and args.since <= t["time"]
              and (args.until is None or t["time"] <= args.until)]
    traces.sort(key=lambda t: t["time"])
    if args.limit and len(traces) > args.limit:
        print(f"... {len(traces) - args.limit} earlier records "
              f"(raise --limit)")
        traces = traces[-args.limit:]
    for trace in traces:
        fields = " ".join(f"{key}={value}"
                          for key, value in trace["fields"].items())
        print(f"  {trace['time']:>12.6f}  {trace['kind']:<28} {fields}")
    if not traces:
        print(f"  no trace records match kind={args.kind!r}")
    return 0


def _bucket_labels(edges: List[float], n_buckets: int) -> List[str]:
    """Render the fleet fold's bisect_left buckets: bucket i holds
    values in (edges[i-1], edges[i]], the last bucket is overflow."""
    labels = []
    for i in range(n_buckets):
        lo = "-inf" if i == 0 else f"{edges[i - 1]:g}"
        hi = f"{edges[i]:g}" if i < len(edges) else "+inf"
        labels.append(f"({lo}, {hi}]")
    return labels


def _coordinator_epochs(decisions: List[Dict[str, Any]]
                        ) -> Dict[tuple, Dict[str, Any]]:
    """Group coordinator events by (policy, epoch) with action tallies."""
    grouped: Dict[tuple, Dict[str, Any]] = {}
    for event in decisions:
        if event.get("source") != "coordinator":
            continue
        key = (event["policy"], event.get("epoch"))
        entry = grouped.setdefault(key, {
            "grants": 0, "renewals": 0, "denials": 0, "preemptions": 0,
            "releases": 0, "mitigated": 0, "late": 0, "settle": None})
        action = event["action"]
        if action == "settle":
            entry["settle"] = event
        elif action == "grant":
            entry["grants"] += 1
        elif action == "renewal":
            entry["renewals"] += 1
        elif action == "denial":
            entry["denials"] += 1
        elif action == "preemption":
            entry["preemptions"] += 1
        elif action == "release":
            entry["releases"] += 1
        elif action == "mitigation":
            entry["mitigated" if event.get("activated") else "late"] += 1
    return grouped


def cmd_fleet_report(args) -> int:
    records = load(args.file)
    metrics = _by_type(records, "metric")
    counters = [m for m in metrics
                if m["name"].startswith("fleet.") and m["kind"] == "counter"]
    hists = [m for m in metrics if m["kind"] == "fleet_hist"]
    decisions = _by_type(records, "decision")
    if not counters and not decisions:
        print("no fleet records in capture (run the fleet experiment "
              "or the policy arena with --telemetry)", file=sys.stderr)
        return 1

    if counters:
        print("fleet counters (folded across shards and epochs):")
        for metric in counters:
            print(f"  {metric['name']:<32} {metric['value']}")

    for metric in hists:
        edges = metric["value"]["edges"]
        counts = metric["value"]["counts"]
        total = sum(counts)
        peak = max(counts) or 1
        print(f"\n{metric['name']}  ({total} samples)")
        for label, count in zip(_bucket_labels(edges, len(counts)), counts):
            if count == 0:
                continue
            bar = "#" * max(1, round(36 * count / peak))
            print(f"  {label:<20} {count:>10}  {bar}")

    grouped = _coordinator_epochs(decisions)
    if grouped:
        print("\nper-epoch coordinator timeline:")
        print(f"  {'policy':<10} {'epoch':>5} {'util':>6} {'in_use':>7} "
              f"{'grants':>7} {'renew':>6} {'deny':>5} {'preempt':>8} "
              f"{'release':>8} {'mitigated':>10}")
        for (policy, epoch), entry in sorted(grouped.items(),
                                             key=lambda kv: (kv[0][0],
                                                             kv[0][1] or 0)):
            settle = entry["settle"] or {}
            util = settle.get("utilization")
            in_use = settle.get("in_use")
            mitigated = f"{entry['mitigated']}/" \
                        f"{entry['mitigated'] + entry['late']}"
            print(f"  {policy:<10} {epoch if epoch is not None else '-':>5} "
                  f"{util if util is None else format(util, '.2f'):>6} "
                  f"{in_use if in_use is not None else '-':>7} "
                  f"{entry['grants']:>7} {entry['renewals']:>6} "
                  f"{entry['denials']:>5} {entry['preemptions']:>8} "
                  f"{entry['releases']:>8} {mitigated:>10}")
    return 0


def cmd_decisions(args) -> int:
    records = load(args.file)
    decisions = [d for d in _by_type(records, "decision")
                 if fnmatchcase(str(d.get("policy")), args.policy)
                 and fnmatchcase(str(d.get("source")), args.source)]
    if not decisions:
        print("no decision records match", file=sys.stderr)
        return 1

    policies: List[str] = []
    actions: List[str] = []
    counts: Dict[tuple, int] = {}
    for event in decisions:
        policy, action = event["policy"], event["action"]
        if policy not in policies:
            policies.append(policy)
        if action not in actions:
            actions.append(action)
        counts[(policy, action)] = counts.get((policy, action), 0) + 1

    print("decision counts by policy:")
    print(f"  {'action':<12}" + "".join(f" {p:>12}" for p in policies))
    for action in actions:
        row = "".join(f" {counts.get((p, action), 0):>12}"
                      for p in policies)
        print(f"  {action:<12}{row}")

    # Cross-policy outcome diff: the same (epoch, vswitch) request can be
    # granted under one allocation policy and denied under another —
    # exactly the arena's per-policy comparison, per decision.
    if len(policies) >= 2:
        outcomes: Dict[tuple, Dict[str, str]] = {}
        for event in decisions:
            if event.get("source") != "coordinator":
                continue
            if event["action"] not in ("grant", "denial", "renewal",
                                       "preemption"):
                continue
            key = (event.get("epoch"), event.get("index"))
            if key[1] is None:
                continue
            outcome = event["action"]
            if "granted" in event:
                outcome += f"({event['granted']})"
            outcomes.setdefault(key, {})[event["policy"]] = outcome
        diffs = {key: seen for key, seen in outcomes.items()
                 if len(set(seen.values())) > 1 and len(seen) > 1}
        print(f"\ncross-policy outcome diffs: {len(diffs)} of "
              f"{len(outcomes)} (epoch, vswitch) requests decided "
              f"differently")
        shown = 0
        for (epoch, index), seen in sorted(diffs.items(),
                                           key=lambda kv: (kv[0][0] or 0,
                                                           kv[0][1])):
            if shown >= args.limit:
                print(f"  ... {len(diffs) - shown} more (raise --limit)")
                break
            rendered = "  ".join(f"{policy}={seen[policy]}"
                                 for policy in policies if policy in seen)
            print(f"  e{epoch} vs{index}: {rendered}")
            shown += 1
    return 0


def cmd_validate(args) -> int:
    try:
        records = load(args.file)
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    problems = validate_report(records)
    if problems:
        for text in problems:
            print(f"FAIL: {text}", file=sys.stderr)
        return 1
    print(f"OK: {args.file} is a valid telemetry/v1 capture "
          f"({len(records)} lines)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/telemetry.py",
        description="Inspect a telemetry JSONL capture.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="overview: metrics, span "
                              "breakdown, engine profile")
    p_report.add_argument("file", type=Path)
    p_report.add_argument("--metrics", metavar="GLOB", default="*",
                          help="only show metrics matching this glob")
    p_report.set_defaults(fn=cmd_report)

    p_spans = sub.add_parser("spans", help="per-segment latency breakdown "
                             "per span label")
    p_spans.add_argument("file", type=Path)
    p_spans.add_argument("--label", metavar="GLOB", default="*",
                         help="only show span labels matching this glob")
    p_spans.set_defaults(fn=cmd_spans)

    p_timeline = sub.add_parser("timeline", help="unified trace in time "
                                "order (faults vs controller reactions)")
    p_timeline.add_argument("file", type=Path)
    p_timeline.add_argument("--kind", metavar="GLOB", default="*",
                            help="only show trace kinds matching this glob "
                                 "(e.g. 'fault.*', 'controller.*')")
    p_timeline.add_argument("--since", type=float, default=0.0,
                            help="drop records before this virtual time")
    p_timeline.add_argument("--until", type=float, default=None,
                            help="drop records after this virtual time")
    p_timeline.add_argument("--limit", type=int, default=200,
                            help="show at most the last N records "
                                 "(0 = unlimited; default %(default)s)")
    p_timeline.set_defaults(fn=cmd_timeline)

    p_fleet = sub.add_parser("fleet-report", help="folded fleet metrics, "
                             "histograms, and per-epoch coordinator "
                             "timeline")
    p_fleet.add_argument("file", type=Path)
    p_fleet.set_defaults(fn=cmd_fleet_report)

    p_decisions = sub.add_parser("decisions", help="policy decision "
                                 "journal: per-policy action counts and "
                                 "cross-policy outcome diffs")
    p_decisions.add_argument("file", type=Path)
    p_decisions.add_argument("--policy", metavar="GLOB", default="*",
                             help="only show decisions for policies "
                                  "matching this glob")
    p_decisions.add_argument("--source", metavar="GLOB", default="*",
                             help="only show decisions from this source "
                                  "(coordinator, controller)")
    p_decisions.add_argument("--limit", type=int, default=20,
                             help="show at most N outcome diffs "
                                  "(default %(default)s)")
    p_decisions.set_defaults(fn=cmd_decisions)

    p_validate = sub.add_parser("validate", help="schema gate: exit 1 on "
                                "a malformed capture")
    p_validate.add_argument("file", type=Path)
    p_validate.set_defaults(fn=cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        return 0  # output piped into head/less and cut short; not an error


if __name__ == "__main__":
    raise SystemExit(main())
