#!/usr/bin/env python
"""Post-mortem inspector for telemetry JSONL exports.

Produce a capture with any experiment entry point::

    PYTHONPATH=src python -m repro.experiments fig12 --telemetry run.jsonl
    PYTHONPATH=src python -m repro.experiments.chaos --telemetry soak.jsonl

Then inspect it::

    python tools/telemetry.py report run.jsonl
    python tools/telemetry.py spans run.jsonl --label 'offloaded/*'
    python tools/telemetry.py timeline soak.jsonl --kind 'fault.*'
    python tools/telemetry.py validate run.jsonl

``report`` is the overview: capture header, metric snapshot, the
per-label latency-span breakdown (Fig-12-style local vs offloaded
per-segment decomposition), and the engine profile. ``spans`` goes
deeper on one or more span labels. ``timeline`` prints the unified
trace — faults, controller decisions, monitor verdicts, offload
lifecycle — interleaved in time order, which is the chaos-soak
post-mortem view. ``validate`` is the schema gate CI runs.
"""

from __future__ import annotations

import argparse
import sys
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.percentiles import percentile_summary  # noqa: E402
from repro.telemetry.export import load, validate_report  # noqa: E402


def _by_type(records: List[Dict[str, Any]], line_type: str) -> List[Dict]:
    return [r for r in records if r.get("type") == line_type]


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:10.2f}"


# -- span aggregation (mirror of SpanRecorder.aggregate over dicts) --------


def _segments(span: Dict[str, Any]) -> List[Dict[str, float]]:
    out = []
    prev_name, prev_t = "start", span["t0"]
    for hop in span["hops"]:
        out.append({"name": f"{prev_name}->{hop['name']}",
                    "dt": hop["time"] - prev_t})
        prev_name, prev_t = hop["name"], hop["time"]
    return out


def aggregate_spans(spans: List[Dict[str, Any]],
                    pattern: str = "*") -> Dict[str, Dict[str, Any]]:
    """Per-label count / latency summary / per-segment summary."""
    labels: List[str] = []
    for span in spans:
        if span["label"] not in labels and \
                fnmatchcase(span["label"], pattern):
            labels.append(span["label"])
    out: Dict[str, Dict[str, Any]] = {}
    for label in labels:
        group = [s for s in spans if s["label"] == label]
        totals = [s["total"] for s in group]
        segment_samples: Dict[str, List[float]] = {}
        for span in group:
            for seg in _segments(span):
                segment_samples.setdefault(seg["name"], []).append(seg["dt"])
        out[label] = {
            "count": len(group),
            "latency": percentile_summary(totals),
            "segments": {name: percentile_summary(samples)
                         for name, samples in segment_samples.items()},
        }
    return out


def print_span_breakdown(spans: List[Dict[str, Any]], pattern: str = "*",
                         detailed: bool = False) -> None:
    aggregated = aggregate_spans(spans, pattern)
    if not aggregated:
        print(f"  no spans match {pattern!r}")
        return
    for label, entry in aggregated.items():
        latency = entry["latency"]
        print(f"  {label}  ({entry['count']} spans)")
        print(f"    total latency (us): p50 {latency['P50'] * 1e6:.2f}  "
              f"p90 {latency['P90'] * 1e6:.2f}  "
              f"p99 {latency['P99'] * 1e6:.2f}  "
              f"avg {latency['avg'] * 1e6:.2f}")
        if detailed:
            print(f"    {'segment':<28} {'p50 us':>10} {'p90 us':>10} "
                  f"{'p99 us':>10}")
            for name, summary in entry["segments"].items():
                print(f"    {name:<28} {_us(summary['P50'])} "
                      f"{_us(summary['P90'])} {_us(summary['P99'])}")
        else:
            parts = [f"{name} {summary['P50'] * 1e6:.2f}"
                     for name, summary in entry["segments"].items()]
            print(f"    segment p50s (us): {'  '.join(parts)}")
        print()


# -- subcommands -----------------------------------------------------------


def cmd_report(args) -> int:
    records = load(args.file)
    problems = validate_report(records)
    if problems:
        for text in problems:
            print(f"invalid capture: {text}", file=sys.stderr)
        return 1
    header = records[0]
    print(f"capture: {args.file}")
    print(f"  {header.get('metrics', 0)} metrics, "
          f"{header.get('spans', 0)} spans, "
          f"{header.get('trace_records', 0)} trace records "
          f"({header.get('trace_dropped', 0)} trace / "
          f"{header.get('span_dropped', 0)} span records dropped)")

    metrics = [m for m in _by_type(records, "metric")
               if fnmatchcase(m["name"], args.metrics)]
    if metrics:
        print("\nmetrics:")
        for metric in metrics:
            value = metric["value"]
            if metric["kind"] == "events":
                rendered = f"[{len(value)} entries]"
            elif metric["kind"] == "histogram":
                rendered = (f"count {value['count']:.0f}  "
                            f"p50 {value['P50']:.6g}  p99 {value['P99']:.6g}")
            elif isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = str(value)
            print(f"  {metric['name']:<44} {metric['kind']:<10} {rendered}")

    spans = _by_type(records, "span")
    if spans:
        print("\nlatency spans:")
        print_span_breakdown(spans)

    profiles = _by_type(records, "profile")
    for profile in profiles:
        print("engine profile:")
        print(f"  {profile['total_events']} events in "
              f"{profile['total_wall_s']:.3f}s wall "
              f"({profile.get('events_per_sec', 0):,.0f} events/sec)")
        print(f"  {'owner':<36} {'events':>10} {'wall s':>9} {'share':>7}")
        for row in profile["top"]:
            print(f"  {row['owner']:<36} {row['events']:>10} "
                  f"{row['wall_s']:>9.3f} {row['share']:>6.1%}")
    return 0


def cmd_spans(args) -> int:
    records = load(args.file)
    spans = _by_type(records, "span")
    if not spans:
        print("no span records in capture", file=sys.stderr)
        return 1
    print_span_breakdown(spans, args.label, detailed=True)
    return 0


def cmd_timeline(args) -> int:
    records = load(args.file)
    traces = [t for t in _by_type(records, "trace")
              if fnmatchcase(t["kind"], args.kind)
              and args.since <= t["time"]
              and (args.until is None or t["time"] <= args.until)]
    traces.sort(key=lambda t: t["time"])
    if args.limit and len(traces) > args.limit:
        print(f"... {len(traces) - args.limit} earlier records "
              f"(raise --limit)")
        traces = traces[-args.limit:]
    for trace in traces:
        fields = " ".join(f"{key}={value}"
                          for key, value in trace["fields"].items())
        print(f"  {trace['time']:>12.6f}  {trace['kind']:<28} {fields}")
    if not traces:
        print(f"  no trace records match kind={args.kind!r}")
    return 0


def cmd_validate(args) -> int:
    try:
        records = load(args.file)
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    problems = validate_report(records)
    if problems:
        for text in problems:
            print(f"FAIL: {text}", file=sys.stderr)
        return 1
    print(f"OK: {args.file} is a valid telemetry/v1 capture "
          f"({len(records)} lines)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/telemetry.py",
        description="Inspect a telemetry JSONL capture.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="overview: metrics, span "
                              "breakdown, engine profile")
    p_report.add_argument("file", type=Path)
    p_report.add_argument("--metrics", metavar="GLOB", default="*",
                          help="only show metrics matching this glob")
    p_report.set_defaults(fn=cmd_report)

    p_spans = sub.add_parser("spans", help="per-segment latency breakdown "
                             "per span label")
    p_spans.add_argument("file", type=Path)
    p_spans.add_argument("--label", metavar="GLOB", default="*",
                         help="only show span labels matching this glob")
    p_spans.set_defaults(fn=cmd_spans)

    p_timeline = sub.add_parser("timeline", help="unified trace in time "
                                "order (faults vs controller reactions)")
    p_timeline.add_argument("file", type=Path)
    p_timeline.add_argument("--kind", metavar="GLOB", default="*",
                            help="only show trace kinds matching this glob "
                                 "(e.g. 'fault.*', 'controller.*')")
    p_timeline.add_argument("--since", type=float, default=0.0,
                            help="drop records before this virtual time")
    p_timeline.add_argument("--until", type=float, default=None,
                            help="drop records after this virtual time")
    p_timeline.add_argument("--limit", type=int, default=200,
                            help="show at most the last N records "
                                 "(0 = unlimited; default %(default)s)")
    p_timeline.set_defaults(fn=cmd_timeline)

    p_validate = sub.add_parser("validate", help="schema gate: exit 1 on "
                                "a malformed capture")
    p_validate.add_argument("file", type=Path)
    p_validate.set_defaults(fn=cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        return 0  # output piped into head/less and cut short; not an error


if __name__ == "__main__":
    raise SystemExit(main())
