"""Tests for §7.5 load-imbalance handling: hash reseed and elephant-flow
FE dedication."""

import pytest

from repro.net import FiveTuple, IPv4Address, Packet, PROTO_TCP, TcpFlags
from repro.core.offload import OffloadState

from tests.conftest import TENANT_A, TENANT_B, VNI, build_nezha_env


def active_env(n_fes=4, n_servers=8):
    env = build_nezha_env(n_servers=n_servers)
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:n_fes])
    env.engine.run(until=env.engine.now + 2.0)
    assert handle.state is OffloadState.ACTIVE
    return env, handle


def tx_flow_packets(env, sport, count, flags_first="syn"):
    env.vnic_a.attach_guest(lambda pkt: None)
    t = 0.0
    for i in range(count):
        pkt = Packet.tcp(TENANT_B, TENANT_A, sport, 9999,
                         TcpFlags.of(flags_first) if i == 0
                         else TcpFlags.of("ack"))
        env.engine.call_after(t, env.vswitch_b.send_from_vnic,
                              env.vnic_b, pkt)
        t += 0.001
    env.engine.run(until=env.engine.now + t + 0.3)


def test_reseed_moves_flows_between_fes():
    env, handle = active_env()
    ft = FiveTuple(TENANT_B, TENANT_A, PROTO_TCP, 5000, 9999)
    before = handle.selector.pick(ft)
    # Find a seed that moves this flow.
    for seed in range(1, 50):
        handle.selector.reseed(seed)
        if handle.selector.pick(ft) != before:
            break
    else:
        pytest.fail("no seed moved the flow (improbable)")
    moved_to = handle.selector.pick(ft)
    assert moved_to != before
    # The orchestrator-level reseed also updates sender-side tables.
    env.orchestrator.reseed_load_balancing(handle, seed)
    table = env.vnic_a.slow_path.table("vnic_server_mapping")
    assert table.hash_seed == seed


def test_reseed_costs_only_cache_misses():
    env, handle = active_env()
    tx_flow_packets(env, sport=6000, count=5)
    misses_before = sum(fe.stats.flow_cache_misses
                        for fe in handle.frontends.values())
    assert misses_before == 1
    # Reseed mid-flow; the flow may land on a new FE -> one more lookup.
    env.orchestrator.reseed_load_balancing(handle, seed=7)
    tx_flow_packets(env, sport=6000, count=5, flags_first="ack")
    misses_after = sum(fe.stats.flow_cache_misses
                       for fe in handle.frontends.values())
    assert misses_after <= misses_before + 1


def test_dedicate_fe_pins_elephant_to_new_fe():
    env, handle = active_env(n_fes=2, n_servers=8)
    elephant = FiveTuple(TENANT_B, TENANT_A, PROTO_TCP, 7000, 9999)
    dedicated = env.idle_vswitches[2]  # not yet an FE
    done = env.orchestrator.dedicate_fe(handle, elephant, dedicated)
    env.engine.run(until=env.engine.now + 1.0)
    assert done.fired
    assert len(handle.frontends) == 3
    # Every packet of the elephant now goes to the dedicated FE.
    tx_flow_packets(env, sport=7000, count=20)
    dedicated_fe = [fe for fe in handle.frontends.values()
                    if fe.vswitch is dedicated][0]
    assert dedicated_fe.stats.tx_processed == 20
    others = [fe.stats.tx_processed for fe in handle.frontends.values()
              if fe.vswitch is not dedicated]
    assert all(count == 0 for count in others)


def test_dedicate_fe_reuses_existing_fe():
    env, handle = active_env(n_fes=4)
    elephant = FiveTuple(TENANT_B, TENANT_A, PROTO_TCP, 7100, 9999)
    target = handle.fe_vswitches[1]
    done = env.orchestrator.dedicate_fe(handle, elephant, target)
    env.engine.run(until=env.engine.now + 0.5)
    assert done.fired
    assert len(handle.frontends) == 4      # no scale-out needed
    location = [loc for loc, fe in handle.frontends.items()
                if fe.vswitch is target][0]
    assert handle.selector.pick(elephant) == location


def test_other_flows_unaffected_by_pin():
    env, handle = active_env(n_fes=2, n_servers=8)
    elephant = FiveTuple(TENANT_B, TENANT_A, PROTO_TCP, 7200, 9999)
    env.orchestrator.dedicate_fe(handle, elephant, env.idle_vswitches[2])
    env.engine.run(until=env.engine.now + 1.0)
    mouse = FiveTuple(TENANT_B, TENANT_A, PROTO_TCP, 7201, 9999)
    # The mouse still follows the hash over all three FEs.
    assert handle.selector.pick(mouse) in handle.selector.locations
