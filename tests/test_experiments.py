"""Tests for the experiments layer: result tables, the capacity model,
and the fast (model-based) experiment modules.

The DES-heavy experiments (fig9..fig12, fig14) are exercised end to end
by the benchmark suite; here we keep unit-level checks fast.
"""

import pytest

from repro.experiments import ExperimentResult
from repro.experiments.capacity import CapacityModel
from repro.experiments.common import relative_error
from repro.experiments import (appb2, fig3, fig13, fig15, figa1, table1,
                               table3, table5, tablea1)


# -- ExperimentResult ------------------------------------------------------------

def test_result_rows_and_lookup():
    result = ExperimentResult("x", "demo", ["a", "b"])
    result.add_row(a=1, b=2.5)
    result.add_row(a=2, b=1e6)
    assert result.column("a") == [1, 2]
    assert result.row_where("a", 2)["b"] == 1e6
    with pytest.raises(KeyError):
        result.row_where("a", 99)


def test_result_renders_text():
    result = ExperimentResult("x", "demo", ["name", "value"])
    result.add_row(name="alpha", value=0.123456)
    result.note("a note")
    text = result.to_text()
    assert "alpha" in text and "0.123" in text and "note: a note" in text


def test_relative_error():
    assert relative_error(1.1, 1.0) == pytest.approx(0.1)
    assert relative_error(5.0, 0.0) == 5.0


def test_fmt_negative_floats_mirror_positive():
    fmt = ExperimentResult._fmt
    # A negative float must render as "-" plus its positive twin — same
    # threshold bucket, same precision — in every magnitude regime.
    for value in (1e-6, 5e-05, 0.123456, 9.9999, 12.34, 999.94,
                  1234.5, 1e6):
        assert fmt(-value) == "-" + fmt(value)
    assert fmt(-12.34) == "-12.3"
    assert fmt(-0.123456) == "-0.123"
    assert fmt(-1e6) == "-1,000,000"
    assert fmt(-0.0) == "0"            # no stray sign on negative zero
    assert fmt(-5) == "-5"             # ints untouched


def test_to_text_aligns_negative_cells():
    result = ExperimentResult("x", "demo", ["delta"])
    result.add_row(delta=-3.21)
    result.add_row(delta=3.21)
    lines = result.to_text().splitlines()
    assert lines[3].startswith("-3.21")
    assert lines[4].startswith("3.21")
    assert len(lines[3].rstrip()) >= len(lines[4].rstrip())


# -- CapacityModel -----------------------------------------------------------------

def test_capacity_baseline_cps_is_paper_scale():
    cap = CapacityModel()
    assert 9e4 < cap.baseline_cps() < 1.6e5      # O(100K) CPS (§2.2.2)


def test_capacity_cps_gain_saturates_at_vm_limit():
    cap = CapacityModel()
    gains = [cap.cps_gain(k) for k in (1, 2, 4, 8)]
    assert gains[0] < gains[1] < gains[2]
    assert gains[3] == pytest.approx(gains[2])    # plateau
    assert 2.2 < gains[2] < 3.2                   # ~3x at saturation


def test_capacity_be_never_bottleneck():
    cap = CapacityModel()
    assert cap.cost_model.total_hz / cap.be_conn_cycles() \
        > cap.vm_cps_limit()


def test_capacity_flows_gain_shape():
    cap = CapacityModel()
    assert cap.flows_gain(4) == pytest.approx(3.8, abs=0.3)
    assert cap.flows_gain(8) == cap.flows_gain(4)     # saturated
    assert cap.flows_gain(2) < cap.flows_gain(4)


def test_capacity_vnics_proportional_and_capped():
    cap = CapacityModel()
    assert cap.vnics_gain(8) == pytest.approx(2 * cap.vnics_gain(4))
    assert cap.vnics_theoretical_max_gain() == pytest.approx(1000.0, rel=0.05)


# -- fast experiment modules ------------------------------------------------------------

def test_fig3_experiment_shape():
    result = fig3.run(n_vswitches=20_000)
    shares = {row["cause"]: row["measured_share"] for row in result.rows}
    assert shares["cps"] > shares["flows"] > shares["vnics"]
    assert sum(shares.values()) == pytest.approx(1.0)


def test_table1_normalized_to_p9999():
    result = table1.run(n_samples=20_000)
    for row in result.rows:
        if row["percentile"] == "P9999":
            assert row["measured"] == pytest.approx(1.0)


def test_fig13_vnic_overloads_always_mitigated():
    result = fig13.run(n_vswitches=3000, days=10)
    assert result.row_where("cause", "vnics")["mitigated_fraction"] == 1.0


def test_fig15_regions_in_paper_band():
    result = fig15.run(sessions_per_region=3000)
    for row in result.rows:
        assert 4.5 < row["avg_state_bytes"] < 9.5


def test_table3_ordering():
    result = table3.run()
    cps = {row["middlebox"]: row["measured_gain"] for row in result.rows
           if row["metric"] == "cps"}
    assert cps["transit-router"] < cps["load-balancer"]
    assert cps["transit-router"] < cps["nat-gateway"]
    flows = {row["middlebox"]: row["measured_gain"] for row in result.rows
             if row["metric"] == "flows"}
    assert flows["nat-gateway"] > flows["transit-router"] > \
        flows["load-balancer"]


def test_table5_scale_out_windows():
    result = table5.run()
    row = result.row_where("item", "scale-out time (days)")
    assert 1 <= row["nezha"] <= 7
    assert row["sailfish"] >= 30


def test_tablea1_monotonicity():
    result = tablea1.run(lookups_per_cell=50)
    rows = {(r["pkt_bytes"], r["acl_rules"]): r["measured_mpps"]
            for r in result.rows}
    assert rows[(64, 0)] > rows[(64, 1000)]
    assert rows[(64, 0)] > rows[(512, 0)]


def test_figa1_growth():
    result = figa1.run(samples_per_point=50)
    vcpu_rows = {r["value"]: r["avg_downtime_s"] for r in result.rows
                 if r["dimension"] == "vcpus"}
    assert vcpu_rows[128] > vcpu_rows[4]


def test_appb2_counts_consistent():
    result = appb2.run(n_events=500)
    rows = {row["quantity"]: row["measured"] for row in result.rows}
    assert rows["FEs provisioned"] >= 4 * rows["offload events"]
    assert 0 <= rows["scale-out ratio"] < 0.2


# -- CLI runner --------------------------------------------------------------------

def test_runner_list_and_unknown(capsys):
    from repro.experiments.runner import main
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "table4" in out
    assert main(["nope"]) == 2


def test_runner_runs_fast_experiment(capsys):
    from repro.experiments.runner import main
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "deployment costs" in out
