"""Tests for the session table and TCP FSM."""

import pytest

from repro.errors import TableFull
from repro.net import FiveTuple, IPv4Address, PROTO_TCP, TcpFlags
from repro.sim import MemoryBudget
from repro.vswitch import (
    CostModel, Direction, PreActions, SessionState, SessionTable, TcpState,
    tcp_transition,
)
from repro.vswitch.session_table import (
    EntryMode, FLOWS_KEY_BYTES, STATE_KEY_BYTES,
)

FT = FiveTuple(IPv4Address("192.168.0.1"), IPv4Address("192.168.0.2"),
               PROTO_TCP, 1234, 80)


def make_table(capacity=100_000, variable_state=False):
    cm = CostModel.testbed()
    mem = MemoryBudget(capacity)
    return SessionTable(mem, cm, variable_state=variable_state), mem, cm


# -- TCP FSM ----------------------------------------------------------------------

def test_fsm_full_handshake():
    state = TcpState.NONE
    state = tcp_transition(state, True, TcpFlags.of("syn"))
    assert state is TcpState.SYN_SENT
    state = tcp_transition(state, False, TcpFlags.of("syn", "ack"))
    assert state is TcpState.SYN_RECEIVED
    state = tcp_transition(state, True, TcpFlags.of("ack"))
    assert state is TcpState.ESTABLISHED


def test_fsm_teardown():
    state = TcpState.ESTABLISHED
    state = tcp_transition(state, True, TcpFlags.of("fin", "ack"))
    assert state is TcpState.FIN_WAIT
    state = tcp_transition(state, False, TcpFlags.of("fin", "ack"))
    assert state is TcpState.CLOSED


def test_fsm_rst_closes_from_anywhere():
    for start in TcpState:
        assert tcp_transition(start, True, TcpFlags.of("rst")) is TcpState.CLOSED


def test_fsm_ignores_stray_packets():
    assert tcp_transition(TcpState.NONE, True, TcpFlags.of("ack")) is TcpState.NONE
    assert tcp_transition(TcpState.SYN_SENT, True, TcpFlags.of("syn")) \
        is TcpState.SYN_SENT
    # SYN/ACK from the initiator's own direction does not establish.
    assert tcp_transition(TcpState.SYN_SENT, True, TcpFlags.of("syn", "ack")) \
        is TcpState.SYN_SENT


def test_fsm_established_is_stable_under_data():
    assert tcp_transition(TcpState.ESTABLISHED, True,
                          TcpFlags.of("psh", "ack")) is TcpState.ESTABLISHED


# -- SessionTable basics ---------------------------------------------------------------

def test_insert_and_lookup_bidirectional():
    table, _mem, _cm = make_table()
    entry = table.insert(100, FT, PreActions(), SessionState(), now=1.0)
    assert table.lookup(100, FT) is entry
    assert table.lookup(100, FT.reversed()) is entry  # same session
    assert table.lookup(999, FT) is None              # VNI-scoped
    assert len(table) == 1


def test_insert_same_session_returns_existing():
    table, _mem, _cm = make_table()
    first = table.insert(100, FT, PreActions(), SessionState(), now=1.0)
    second = table.insert(100, FT.reversed(), PreActions(), SessionState(),
                          now=2.0)
    assert second is first
    assert table.inserts == 1


def test_insert_sets_state_timestamps():
    table, _mem, _cm = make_table()
    state = SessionState()
    table.insert(100, FT, PreActions(), state, now=5.0)
    assert state.created_at == 5.0 and state.last_seen == 5.0


def test_remove_frees_memory():
    table, mem, _cm = make_table()
    table.insert(100, FT, PreActions(), SessionState(), now=0.0)
    used = mem.used
    assert used > 0
    assert table.remove(100, FT.reversed())  # reverse key also removes
    assert mem.used == 0
    assert not table.remove(100, FT)


def test_contains_protocol():
    table, _mem, _cm = make_table()
    table.insert(100, FT, PreActions(), SessionState(), now=0.0)
    assert (100, FT) in table
    assert (100, FT.reversed()) in table
    assert (101, FT) not in table


# -- memory accounting per mode ----------------------------------------------------------

def test_entry_bytes_by_mode():
    table, mem, cm = make_table()
    table.insert(1, FT, PreActions(), SessionState(), 0.0, EntryMode.FULL)
    full_bytes = mem.used
    assert full_bytes == FLOWS_KEY_BYTES + cm.state_bytes_fixed

    table2, mem2, _ = make_table()
    table2.insert(1, FT, PreActions(), None, 0.0, EntryMode.FLOWS_ONLY)
    assert mem2.used == FLOWS_KEY_BYTES

    table3, mem3, _ = make_table()
    table3.insert(1, FT, None, SessionState(), 0.0, EntryMode.STATE_ONLY)
    assert mem3.used == STATE_KEY_BYTES + cm.state_bytes_fixed


def test_variable_state_uses_less_memory():
    """§7.1: variable-length states lift #concurrent-flow capacity."""
    fixed, mem_fixed, _ = make_table(variable_state=False)
    variable, mem_var, _ = make_table(variable_state=True)
    state1 = SessionState(first_direction=Direction.TX)
    state2 = SessionState(first_direction=Direction.TX)
    fixed.insert(1, FT, None, state1, 0.0, EntryMode.STATE_ONLY)
    variable.insert(1, FT, None, state2, 0.0, EntryMode.STATE_ONLY)
    assert mem_var.used < mem_fixed.used


def test_table_full_raises_and_counts():
    entry_bytes = 96 + CostModel.testbed().state_bytes_fixed
    table, _mem, _cm = make_table(capacity=3 * entry_bytes)
    inserted = 0
    with pytest.raises(TableFull):
        for port in range(10):
            ft = FiveTuple(FT.src_ip, FT.dst_ip, PROTO_TCP, port + 1, 80)
            table.insert(1, ft, PreActions(), SessionState(), 0.0)
            inserted += 1
    assert inserted == 3
    assert table.insert_failures == 1


def test_capacity_estimate():
    entry_bytes = 96 + CostModel.testbed().state_bytes_fixed
    table, _mem, _cm = make_table(capacity=10 * entry_bytes)
    assert table.capacity_estimate() == 10
    table.insert(1, FT, PreActions(), SessionState(), 0.0)
    assert table.capacity_estimate() == 9


# -- clearing / vni removal ------------------------------------------------------------------

def test_clear_returns_count_and_frees_all():
    table, mem, _cm = make_table()
    for port in range(5):
        ft = FiveTuple(FT.src_ip, FT.dst_ip, PROTO_TCP, port + 1, 80)
        table.insert(1, ft, PreActions(), SessionState(), 0.0)
    assert table.clear() == 5
    assert len(table) == 0 and mem.used == 0


def test_remove_vni_is_selective():
    table, _mem, _cm = make_table()
    table.insert(1, FT, PreActions(), SessionState(), 0.0)
    ft2 = FiveTuple(FT.src_ip, FT.dst_ip, PROTO_TCP, 99, 80)
    table.insert(2, ft2, PreActions(), SessionState(), 0.0)
    assert table.remove_vni(1) == 1
    assert table.lookup(2, ft2) is not None


# -- aging ---------------------------------------------------------------------------------------

def test_sweep_removes_expired_embryonic_quickly():
    """§7.3: SYN-state sessions age fast to blunt SYN floods."""
    table, mem, _cm = make_table()
    state = SessionState()
    state.tcp_state = TcpState.SYN_SENT
    table.insert(1, FT, PreActions(), state, now=0.0)
    assert table.sweep(now=0.5) == 0          # not yet
    assert table.sweep(now=1.5) == 1          # embryonic timeout (1s)
    assert mem.used == 0
    assert table.aged_out == 1


def test_established_sessions_age_slower():
    table, _mem, _cm = make_table()
    state = SessionState()
    state.tcp_state = TcpState.ESTABLISHED
    table.insert(1, FT, PreActions(), state, now=0.0)
    assert table.sweep(now=2.0) == 0           # would have killed embryonic
    assert table.sweep(now=9.0) == 1           # > 8s established timeout


def test_touch_defers_aging():
    table, _mem, _cm = make_table()
    state = SessionState()
    state.tcp_state = TcpState.ESTABLISHED
    table.insert(1, FT, PreActions(), state, now=0.0)
    state.touch(5.0)
    assert table.sweep(now=9.0) == 0
    assert table.sweep(now=14.0) == 1


def test_flows_only_entries_never_age():
    """FE cached flows have no state; aging is a BE concern."""
    table, _mem, _cm = make_table()
    table.insert(1, FT, PreActions(), None, 0.0, EntryMode.FLOWS_ONLY)
    assert table.sweep(now=1e9) == 0
