"""Integration tests: the full Nezha BE/FE split over the simulated fabric.

These drive real packets through offload, dual-running, the final stage,
notify generation, stateful ACL/decap on the split pipeline, fallback,
scaling, and FE failure.
"""

import pytest

from repro.net import IPv4Address, Packet, TcpFlags
from repro.vswitch import (
    AclRule, AclTable, Direction, StatsPolicy, Verdict,
)
from repro.vswitch.session_table import EntryMode
from repro.vswitch.state import SessionState
from repro.core.offload import OffloadState

from tests.conftest import TENANT_A, TENANT_B, VNI, build_nezha_env


def offload_b(env, n_fes=4):
    """Offload vNIC B onto the idle vSwitches; run until active."""
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:n_fes])
    env.engine.run(until=env.engine.now + 2.0)
    assert handle.state is OffloadState.ACTIVE, handle.state
    return handle


def send_tx(env, vswitch, vnic, src, dst, sport, dport, flags="syn",
            payload=b""):
    pkt = Packet.tcp(src, dst, sport, dport, TcpFlags.of(*flags.split("|")),
                     payload)
    vswitch.send_from_vnic(vnic, pkt)
    return pkt


def send_many(env, vswitch, vnic, src, dst, base_sport, count, dport=80,
              spacing=0.002):
    """Pace new-flow sends so the scaled-down CPUs absorb them all."""
    for i in range(count):
        pkt = Packet.tcp(src, dst, base_sport + i, dport,
                         TcpFlags.of("syn"))
        env.engine.call_after(i * spacing, vswitch.send_from_vnic, vnic, pkt)


# -- offload lifecycle ------------------------------------------------------------

def test_offload_reaches_final_stage(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    assert handle.activation_time is not None
    assert 0 < handle.activation_time < 2.0
    assert len(handle.frontends) == 4
    assert env.vnic_b.offloaded
    # BE memory: rule tables replaced by 2KB BE metadata.
    assert f"be_meta:{env.vnic_b.vnic_id}" in env.vswitch_b.mem.by_tag
    assert f"rules:{env.vnic_b.vnic_id}" not in env.vswitch_b.mem.by_tag


def test_offload_rejects_bad_requests(nezha_env):
    env = nezha_env
    from repro.errors import OffloadError
    with pytest.raises(OffloadError):
        env.orchestrator.offload(env.vnic_b, [])
    with pytest.raises(OffloadError):
        env.orchestrator.offload(env.vnic_b, [env.vswitch_b])
    offload_b(env)
    with pytest.raises(OffloadError):
        env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:1])


def test_traffic_flows_end_to_end_after_offload(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    got_b, got_a = [], []
    env.vnic_b.attach_guest(got_b.append)
    env.vnic_a.attach_guest(got_a.append)

    # A -> B: sender vswitch_a has learned the FE locations, so the packet
    # goes to an FE, then (NSH) to the BE, then to the guest.
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80)
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got_b) == 1
    assert handle.backend.stats.rx_from_fe == 1
    fe_rx = sum(fe.stats.rx_relayed for fe in handle.frontends.values())
    assert fe_rx == 1

    # B -> A: the BE relays TX through an FE which forwards to A.
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 80, 1000,
            flags="syn|ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got_a) == 1
    assert handle.backend.stats.tx_relayed == 1
    fe_tx = sum(fe.stats.tx_processed for fe in handle.frontends.values())
    assert fe_tx == 1


def test_slow_path_moved_to_fe(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    env.vnic_b.attach_guest(lambda pkt: None)
    before_be = env.vswitch_b.stats.slow_path_lookups
    send_many(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 2000, 20)
    env.engine.run(until=env.engine.now + 0.3)
    # All 20 rule lookups happened on FEs, none on the BE.
    assert env.vswitch_b.stats.slow_path_lookups == before_be
    fe_lookups = sum(fe.stats.flow_cache_misses
                     for fe in handle.frontends.values())
    assert fe_lookups == 20


def test_flows_balanced_across_fes(nezha_env):
    env = nezha_env
    handle = offload_b(env, n_fes=4)
    env.vnic_b.attach_guest(lambda pkt: None)
    send_many(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 3000, 200)
    env.engine.run(until=env.engine.now + 1.0)
    shares = [fe.stats.rx_relayed for fe in handle.frontends.values()]
    assert sum(shares) == 200
    assert all(share > 20 for share in shares)


def test_fe_caches_flows_statelessly(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    env.vnic_b.attach_guest(lambda pkt: None)
    for _ in range(5):
        send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80,
                flags="ack")
        env.engine.run(until=env.engine.now + 0.05)
    misses = sum(fe.stats.flow_cache_misses for fe in handle.frontends.values())
    hits = sum(fe.stats.flow_cache_hits for fe in handle.frontends.values())
    assert misses == 1
    assert hits == 4
    # The FE entry holds no state; the BE entry holds no pre-actions.
    ft = Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                    TcpFlags.of("ack")).five_tuple()
    be_entry = env.vswitch_b.session_table.lookup(VNI, ft)
    assert be_entry.mode is EntryMode.STATE_ONLY
    assert be_entry.state is not None and be_entry.pre_actions is None
    fe_entries = [fe.vswitch.session_table.lookup(VNI, ft)
                  for fe in handle.frontends.values()]
    cached = [e for e in fe_entries if e is not None]
    assert len(cached) == 1
    assert cached[0].mode is EntryMode.FLOWS_ONLY
    assert cached[0].state is None


# -- dual-running stage -----------------------------------------------------------------

def test_dual_running_processes_direct_rx(nezha_env):
    """Senders that have not learned yet still reach the BE directly and
    are served from the retained rule tables (§4.2.1)."""
    env = build_nezha_env(start_learners=False)
    # Prime only the BE/sender once; no periodic learning -> the sender
    # never learns the FE locations.
    got = []
    env.vnic_b.attach_guest(got.append)
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=env.engine.now + 0.05)  # dual-running, not final
    assert handle.state is OffloadState.DUAL_RUNNING
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80)
    env.engine.run(until=env.engine.now + 0.05)
    assert len(got) == 1
    assert handle.backend.stats.rx_direct_dual_running == 1


def test_final_stage_drops_direct_rx(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    got = []
    env.vnic_b.attach_guest(got.append)
    # Force a stale mapping at the sender: point it back at the BE.
    from repro.vswitch.rule_tables import Location, MappingEntry
    stale = MappingEntry(vni=VNI, locations=[Location(
        env.vswitch_b.server.underlay_ip, env.vswitch_b.server.mac)])
    env.vnic_a.slow_path.table("vnic_server_mapping").set_entry(
        VNI, TENANT_B, stale)
    env.vswitch_a.session_table.clear()  # drop A's cached flow
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 5000, 80)
    env.engine.run(until=env.engine.now + 0.02)
    assert got == []
    assert handle.backend.stats.rx_direct_dropped == 1


# -- stateful ACL on the split pipeline (§5.1) ----------------------------------------------

def test_stateful_acl_across_split():
    acl_b = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                              direction=Direction.RX)])
    env = build_nezha_env(acl_b=acl_b)
    handle = offload_b(env)
    got_b, got_a = [], []
    env.vnic_b.attach_guest(got_b.append)
    env.vnic_a.attach_guest(got_a.append)

    # Unsolicited A->B: FE stamps the drop pre-action; the BE sees state
    # RX-first and enforces the drop.
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80)
    env.engine.run(until=env.engine.now + 0.1)
    assert got_b == []
    assert handle.backend.stats.acl_drops == 1

    # B-initiated conversation: B's SYN goes out via an FE; A's reply is an
    # RX of a TX-first session at the BE -> accepted despite the rule.
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 2000, 8080)
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got_a) == 1
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 8080, 2000,
            flags="syn|ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got_b) == 1


def test_fe_tx_drop_leaves_be_state_for_aging(nezha_env):
    """§5.1: if the FE drops a TX packet the BE keeps its state; the short
    embryonic aging reclaims it."""
    acl_b = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                              direction=Direction.TX)])
    env = build_nezha_env(acl_b=acl_b)
    handle = offload_b(env)
    env.vswitch_b.start_aging(interval=0.2)
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 2000, 8080)
    env.engine.run(until=env.engine.now + 0.1)
    fe_drops = sum(fe.stats.acl_drops for fe in handle.frontends.values())
    assert fe_drops == 1
    assert len(env.vswitch_b.session_table) == 1  # orphaned state
    env.engine.run(until=env.engine.now + 2.0)
    assert len(env.vswitch_b.session_table) == 0  # aged out


# -- notify packets (§3.2.2) ---------------------------------------------------------------------

def test_notify_updates_rule_involved_state():
    env = build_nezha_env()
    # Flow-log policy table: TX lookups discover a stats policy the BE's
    # carried state lacks -> notify.
    from repro.vswitch.rule_tables import FlowLogTable
    flow_log = FlowLogTable()
    flow_log.add_policy(IPv4Address("192.168.0.0"), 24, StatsPolicy.FULL)
    env.vnic_b.slow_path.tables.append(flow_log)
    handle = offload_b(env)
    env.vnic_a.attach_guest(lambda pkt: None)
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 2000, 8080)
    env.engine.run(until=env.engine.now + 0.2)
    notifies = sum(fe.stats.notifies_sent for fe in handle.frontends.values())
    assert notifies == 1
    assert handle.backend.stats.notifies_applied == 1
    ft = Packet.tcp(TENANT_B, TENANT_A, 2000, 8080,
                    TcpFlags.of("syn")).five_tuple()
    entry = env.vswitch_b.session_table.lookup(VNI, ft)
    assert entry.state.stats_policy is StatsPolicy.FULL


def test_notify_suppressed_when_state_matches(nezha_env):
    """No flow-log policy: lookup state equals carried state -> no notify."""
    env = nezha_env
    handle = offload_b(env)
    env.vnic_a.attach_guest(lambda pkt: None)
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 2000, 8080)
    env.engine.run(until=env.engine.now + 0.2)
    assert sum(fe.stats.notifies_sent for fe in handle.frontends.values()) == 0


# -- fallback (§4.2.2) ------------------------------------------------------------------------------

def test_fallback_restores_local_processing(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    got = []
    env.vnic_b.attach_guest(got.append)
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80)
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got) == 1

    done = env.orchestrator.fallback(handle)
    env.engine.run(until=env.engine.now + 2.0)
    assert done.fired
    assert handle.state is OffloadState.INACTIVE
    assert not env.vnic_b.offloaded
    assert env.vnic_b.vnic_id not in env.orchestrator.handles
    # FE-side residues cleaned up.
    for vswitch in env.idle_vswitches[:4]:
        assert not any(tag.startswith("fe_rules:")
                       for tag in vswitch.mem.by_tag)

    # Traffic flows again, now processed locally (session state survived:
    # the same session's next packet is RX of an existing entry).
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80,
            flags="ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got) == 2
    assert env.vswitch_b.stats.delivered >= 1


def test_fallback_preserves_session_state(nezha_env):
    env = nezha_env
    handle = offload_b(env)
    env.vnic_b.attach_guest(lambda pkt: None)
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80)
    env.engine.run(until=env.engine.now + 0.1)
    ft = Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                    TcpFlags.of("syn")).five_tuple()
    state_before = env.vswitch_b.session_table.lookup(VNI, ft).state
    env.orchestrator.fallback(handle)
    env.engine.run(until=env.engine.now + 2.0)
    entry = env.vswitch_b.session_table.lookup(VNI, ft)
    assert entry is not None
    assert entry.state is state_before
    # Next packet promotes the entry to FULL via a local lookup.
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80,
            flags="ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert entry.mode is EntryMode.FULL


# -- scaling (§4.3) -----------------------------------------------------------------------------------

def test_scale_out_adds_fes_and_spreads_flows(nezha_env):
    env = nezha_env
    handle = offload_b(env, n_fes=2)
    env.vnic_b.attach_guest(lambda pkt: None)
    done = env.orchestrator.scale_out(handle, env.idle_vswitches[2:4])
    env.engine.run(until=env.engine.now + 1.0)
    assert done.fired
    assert len(handle.frontends) == 4
    send_many(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 4000, 100)
    env.engine.run(until=env.engine.now + 1.0)
    shares = [fe.stats.rx_relayed for fe in handle.frontends.values()]
    assert all(share > 0 for share in shares)


def test_scale_in_vswitch_removes_its_fes(nezha_env):
    env = nezha_env
    handle = offload_b(env, n_fes=4)
    victim = env.idle_vswitches[0]
    removed = env.orchestrator.scale_in_vswitch(victim)
    assert removed == 1
    assert len(handle.frontends) == 3
    # Grace period: the instance lingers, then tears down.
    env.engine.run(until=env.engine.now + 1.0)
    assert not any(tag.startswith("fe_rules:") for tag in victim.mem.by_tag)


# -- failover (§4.4) -----------------------------------------------------------------------------------

def test_fe_crash_failover_keeps_service(nezha_env):
    env = nezha_env
    handle = offload_b(env, n_fes=4)
    got = []
    env.vnic_b.attach_guest(got.append)
    victim = env.idle_vswitches[0]
    victim.crash()
    env.orchestrator.fail_fe(victim)
    assert len(handle.frontends) == 3
    # Wait for the gateway update to propagate to the sender.
    env.engine.run(until=env.engine.now + 0.2)
    send_many(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 6000, 50)
    env.engine.run(until=env.engine.now + 1.0)
    assert len(got) == 50


def test_fe_failover_requests_replacement(nezha_env):
    env = nezha_env
    handle = offload_b(env, n_fes=4)
    requests = []
    env.orchestrator.need_fe_callback = lambda h, n: requests.append((h, n))
    victim = env.idle_vswitches[1]
    victim.crash()
    env.orchestrator.fail_fe(victim)
    assert requests == [(handle, 1)]


# -- stateful decapsulation (§5.2) ---------------------------------------------------

def test_stateful_decap_across_split():
    """An RS vNIC behind an LB: the FE records the overlay source on RX,
    the BE stores it, and the TX response is steered back to the LB."""
    env = build_nezha_env()
    from repro.core.nf import enable_stateful_decap
    enable_stateful_decap(env.vnic_b)
    handle = offload_b(env)
    got = []
    env.vnic_b.attach_guest(got.append)

    # A plays the LB: its vSwitch encapsulates toward B's FEs with outer
    # source = A's server underlay IP.
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 7000, 80)
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got) == 1
    ft = got[0].five_tuple()
    entry = env.vswitch_b.session_table.lookup(VNI, ft)
    lb_underlay = env.vswitch_a.server.underlay_ip
    assert entry.state.decap_overlay_src == lb_underlay

    # The RS responds; the FE must steer the response to the LB's underlay
    # address, not to the mapping-table location of TENANT_A.
    arrived_at_a = []
    env.vswitch_a.server.attach_sink(lambda pkt: arrived_at_a.append(pkt))
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 80, 7000,
            flags="syn|ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert len(arrived_at_a) >= 1


def test_stateful_decap_local_baseline(cloud):
    """The same NF on the traditional local pipeline."""
    from repro.core.nf import enable_stateful_decap
    from repro.net.ipv4 import IPv4Header
    enable_stateful_decap(cloud.vnic_b)
    got = []
    cloud.vnic_b.attach_guest(got.append)
    cloud.vswitch_a.send_from_vnic(
        cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 7000, 80,
                                 TcpFlags.of("syn")))
    cloud.engine.run(until=cloud.engine.now + 0.1)
    assert len(got) == 1
    entry = cloud.vswitch_b.session_table.lookup(VNI, got[0].five_tuple())
    assert entry.state.decap_overlay_src == \
        cloud.vswitch_a.server.underlay_ip


# -- BE migration (§7.2: efficient VM live migration) --------------------------------

def test_be_migration_redirects_traffic_via_fe_config():
    """Moving the VM needs only a BE-location update on the FEs — no
    gateway change, and session state travels along."""
    env = build_nezha_env(n_servers=8)
    handle = offload_b(env)
    got = []
    env.vnic_b.attach_guest(got.append)

    # Establish a session before migration.
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80)
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got) == 1
    ft = got[0].five_tuple()
    state_before = env.vswitch_b.session_table.lookup(VNI, ft).state

    new_host = env.vswitches[6]  # not an FE, not the old BE
    gw_version = env.gateway.version
    env.orchestrator.migrate_be(handle, new_host)
    assert env.gateway.version == gw_version      # no global routing change
    assert handle.be_vswitch is new_host
    assert env.vnic_b.host is new_host
    # Session state moved with the VM.
    entry = new_host.session_table.lookup(VNI, ft)
    assert entry is not None and entry.state is state_before
    assert env.vswitch_b.session_table.lookup(VNI, ft) is None

    # Traffic flows immediately through the same FEs to the new BE.
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, TENANT_B, 1000, 80,
            flags="ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got) == 2
    assert handle.backend.vswitch is new_host
    assert handle.backend.stats.rx_from_fe == 1

    # TX from the migrated VM also works.
    env.vnic_a.attach_guest(lambda pkt: None)
    send_tx(env, new_host, env.vnic_b, TENANT_B, TENANT_A, 80, 1000,
            flags="syn|ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert handle.backend.stats.tx_relayed == 1


def test_be_migration_rejects_bad_targets():
    from repro.errors import OffloadError
    env = build_nezha_env(n_servers=8)
    handle = offload_b(env)
    with pytest.raises(OffloadError):
        env.orchestrator.migrate_be(handle, env.vswitch_b)
    with pytest.raises(OffloadError):
        env.orchestrator.migrate_be(handle, handle.fe_vswitches[0])


# -- VM-level rate limiting at the BE (§2.3.3 contrast with Sirius) --------------------

def test_vm_level_rate_limit_enforced_at_be_single_point():
    """All of the vNIC's TX converges at the BE, so one token bucket
    enforces the VM-level limit — no cross-FE coordination, unlike a
    Sirius-style pool where each card sees only a fraction."""
    from repro.vswitch.qos import QosEnforcer
    env = build_nezha_env()
    env.vnic_b.rate_limit_bps = 8_000
    handle = offload_b(env)
    env.vswitch_b.qos = QosEnforcer(burst_bytes=100)
    env.vnic_a.attach_guest(lambda pkt: None)
    # Many flows -> spread over all 4 FEs, but the BE polices the total.
    t = 0.0
    for flow in range(10):
        for i in range(10):
            pkt = Packet.tcp(TENANT_B, TENANT_A, 40_000 + flow, 9999,
                             TcpFlags.of("syn" if i == 0 else "ack"))
            env.engine.call_after(t, env.vswitch_b.send_from_vnic,
                                  env.vnic_b, pkt)
            t += 0.01
    env.engine.run(until=env.engine.now + t + 0.5)
    assert env.vswitch_b.stats.qos_drops > 40
    assert handle.backend.stats.tx_relayed < 60


# -- NAT44 on the split pipeline ----------------------------------------------------

def test_nat44_works_offloaded():
    """A source-NATed vNIC keeps translating after Nezha offloads it: the
    FE applies the egress rewrite and accepts ingress on the external
    alias."""
    from repro.vswitch import Nat44Table
    env = build_nezha_env()
    external = IPv4Address("203.0.113.9")
    nat = Nat44Table()
    nat.add_mapping(TENANT_B, external)
    env.vnic_b.slow_path.tables.insert(1, nat)
    env.vswitch_b.add_vnic_alias(VNI, external, env.vnic_b)
    # Remote senders reach the external address via the gateway entry.
    from repro.vswitch.rule_tables import Location
    server_b = env.topo.servers[1]
    env.gateway.set_locations(VNI, external,
                              [Location(server_b.underlay_ip, server_b.mac)])
    env.learners[0].refresh()
    handle = offload_b(env)
    # Gateway entry for the external alias must follow the FEs too.
    env.gateway.set_locations(VNI, external, handle.fe_locations)
    env.engine.run(until=env.engine.now + 0.2)

    # TX: B -> A leaves with the external source (rewritten at the FE).
    got_a = []
    env.vnic_a.attach_guest(got_a.append)
    send_tx(env, env.vswitch_b, env.vnic_b, TENANT_B, TENANT_A, 2000, 8080)
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got_a) == 1
    assert got_a[0].inner_ipv4().src == external

    # RX: A answers the external address; the FE translates back and the
    # BE delivers to the tenant address.
    got_b = []
    env.vnic_b.attach_guest(got_b.append)
    send_tx(env, env.vswitch_a, env.vnic_a, TENANT_A, external, 8080, 2000,
            flags="syn|ack")
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got_b) == 1
    assert got_b[0].inner_ipv4().dst == TENANT_B
    assert got_b[0].meta["nat_original_dst"] == external
