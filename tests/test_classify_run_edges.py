"""Edge cases of burst run classification against per-packet replay.

Each scenario drives the same burst through (a) the array-backed
flow-record datapath and (b) the legacy per-packet path with every
switch of this PR (and batching itself) off, then requires identical
vSwitch counters on both ends *and* identical flow statistics after the
records are materialized back into the boxed SessionState.
"""

from dataclasses import asdict

import pytest

from repro.net import IPv4Address, Packet, TcpFlags
from repro.sim.resources import CpuResource
from repro.vswitch import TcpState
from repro.vswitch.flow_records import FlowRecordStore, FluidMode
from repro.vswitch.session_table import EntryMode
from repro.vswitch.state import StatsPolicy
from repro.vswitch.vswitch import Datapath

from tests.conftest import TENANT_A, TENANT_B, VNI, build_cloud

_SWITCHES = (
    (Datapath, "batching"),
    (FlowRecordStore, "enabled"),
    (CpuResource, "direct_dispatch"),
)


@pytest.fixture
def run_mode():
    """Callable selecting the datapath configuration: ``records`` (this
    PR's switches on), ``burst`` (batching on, this PR's switches off) or
    ``per_packet`` (everything off, queued CPU jobs)."""
    saved = [(cls, name, getattr(cls, name)) for cls, name in _SWITCHES]
    saved.append((FluidMode, "enabled", FluidMode.enabled))

    def enable(mode: str) -> None:
        on = mode == "records"
        for cls, name in _SWITCHES:
            setattr(cls, name, on)
        Datapath.batching = mode != "per_packet"
        FluidMode.enabled = False

    yield enable
    for cls, name, value in saved:
        setattr(cls, name, value)


def ack(flags=("ack",), payload=b"d" * 100):
    return Packet.tcp(TENANT_A, TENANT_B, 1000, 80, TcpFlags.of(*flags),
                      payload)


def udp(sport=4242):
    return Packet.udp(TENANT_A, TENANT_B, sport, 5353, payload=b"x" * 64)


def _flow_counters(vswitch, ft, timestamps=True):
    """Flow statistics with any slot residue materialized first.

    ``last_seen`` is only comparable between configurations that share
    the CPU charging shape: a batched run completes as one serialized
    transaction while per-packet jobs spread across cores, so against
    the fully per-packet replay the timestamp is excluded (counters and
    FSM must still match exactly)."""
    entry = vswitch.session_table.lookup(VNI, ft)
    if entry is None:
        return None
    state = entry.state
    if entry.slot >= 0:
        vswitch.session_table.records.flush(entry.slot, state)
    stats = (state.packets_tx, state.packets_rx, state.bytes_tx,
             state.bytes_rx, state.tcp_state)
    return stats + (state.last_seen,) if timestamps else stats


def _established_cloud():
    """A cloud with flow A's TCP session established end to end and a
    FULL stats policy installed on the initiator side."""
    cloud = build_cloud()
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vnic_a.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic(
        cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                                 TcpFlags.of("syn")))
    cloud.engine.run(until=cloud.engine.now + 0.1)
    cloud.vswitch_b.send_from_vnic(
        cloud.vnic_b, Packet.tcp(TENANT_B, TENANT_A, 80, 1000,
                                 TcpFlags.of("syn", "ack")))
    cloud.engine.run(until=cloud.engine.now + 0.1)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, ack(payload=b""))
    cloud.engine.run(until=cloud.engine.now + 0.1)
    entry = cloud.vswitch_a.session_table.lookup(VNI, ack().five_tuple())
    assert entry.state.tcp_state is TcpState.ESTABLISHED
    entry.state.stats_policy = StatsPolicy.FULL
    return cloud


def _scenario_fsm_split(timestamps):
    """A run split exactly at an FSM-advancing packet: the FIN must leave
    the batch, advance the FSM once, in order, and the trailing ACKs must
    be classified against the post-FIN state."""
    cloud = _established_cloud()
    burst = [ack(), ack(), ack(flags=("fin", "ack")), ack(), ack()]
    cloud.vswitch_a.send_from_vnic_burst(cloud.vnic_a, burst)
    cloud.engine.run(until=cloud.engine.now + 0.2)
    return (asdict(cloud.vswitch_a.stats), asdict(cloud.vswitch_b.stats),
            _flow_counters(cloud.vswitch_a, ack().five_tuple(), timestamps),
            _flow_counters(cloud.vswitch_b, ack().five_tuple(), timestamps))


def _scenario_state_only_mid_run(timestamps):
    """A STATE_ONLY residue hit in the middle of a burst: the packet must
    take the per-packet promote path while the runs around it stay
    aggregated."""
    cloud = _established_cloud()
    # Prime the UDP flow, then demote the tenant: every FULL entry (the
    # TCP flow included) becomes a STATE_ONLY residue with its record
    # slot flushed.
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, udp())
    cloud.engine.run(until=cloud.engine.now + 0.1)
    cloud.vswitch_a.session_table.demote_vni(VNI)
    udp_entry = cloud.vswitch_a.session_table.lookup(VNI, udp().five_tuple())
    assert udp_entry.mode is EntryMode.STATE_ONLY
    burst = [ack(), ack(), udp(), ack(), ack()]
    cloud.vswitch_a.send_from_vnic_burst(cloud.vnic_a, burst)
    cloud.engine.run(until=cloud.engine.now + 0.2)
    return (asdict(cloud.vswitch_a.stats), asdict(cloud.vswitch_b.stats),
            _flow_counters(cloud.vswitch_a, ack().five_tuple(), timestamps),
            _flow_counters(cloud.vswitch_a, udp().five_tuple(), timestamps))


def _scenario_demotion_between_runs(timestamps):
    """Demotion landing between two runs of one burst: the first run
    forwards, the second was charged against the old entry and must be
    dropped at completion — the same fate its packets meet per-packet."""
    cloud = _established_cloud()
    vs = cloud.vswitch_a
    orig_burst = vs.server.send_to_fabric_burst
    orig_single = vs.server.send_to_fabric
    progress = {"fwd": 0, "tripped": False}

    def trip():
        if not progress["tripped"] and progress["fwd"] >= 2:
            progress["tripped"] = True
            vs.session_table.demote_vni(VNI)

    def burst_hook(packets):
        out = orig_burst(packets)
        progress["fwd"] += len(packets)
        trip()
        return out

    def single_hook(packet):
        out = orig_single(packet)
        progress["fwd"] += 1
        trip()
        return out

    vs.server.send_to_fabric_burst = burst_hook
    vs.server.send_to_fabric = single_hook
    burst = [ack(), ack(), udp(sport=7), ack(), ack()]
    vs.send_from_vnic_burst(cloud.vnic_a, burst)
    cloud.engine.run(until=cloud.engine.now + 0.2)
    assert progress["tripped"]
    return (asdict(vs.stats), asdict(cloud.vswitch_b.stats),
            _flow_counters(vs, ack().five_tuple(), timestamps))


_SCENARIOS = [
    _scenario_fsm_split,
    _scenario_state_only_mid_run,
    _scenario_demotion_between_runs,
]
_IDS = ["fsm_split", "state_only_mid_run", "demotion_between_runs"]


@pytest.mark.parametrize("scenario", _SCENARIOS, ids=_IDS)
def test_edge_case_identical_to_burst_replay(run_mode, scenario):
    """Same burst machinery, flow records on vs off: everything matches,
    completion timestamps included."""
    run_mode("records")
    records = scenario(timestamps=True)
    run_mode("burst")
    replay = scenario(timestamps=True)
    assert records == replay


@pytest.mark.parametrize("scenario", _SCENARIOS, ids=_IDS)
def test_edge_case_identical_to_per_packet_replay(run_mode, scenario):
    """Against the fully per-packet path: counters, drops and FSM match
    exactly; completion timestamps follow the CPU charging shape (one
    serialized transaction per run vs per-packet jobs across cores) and
    are excluded — that difference predates the flow records."""
    run_mode("records")
    records = scenario(timestamps=False)
    run_mode("per_packet")
    replay = scenario(timestamps=False)
    assert records == replay
