"""Tests for the control plane: gateway learning, health monitor,
placement, and the reconciliation controller."""

import pytest

from repro.controller import (ControllerConfig, FePlacement, Gateway,
                              HealthMonitor, NezhaController)
from repro.controller.controller import bootstrap_learners
from repro.controller.monitor import MutualPing
from repro.core.offload import OffloadState
from repro.fabric import Topology
from repro.net import IPv4Address, MacAddress, Packet, TcpFlags
from repro.sim import Engine, SeededRng
from repro.vswitch import CostModel, VSwitch
from repro.vswitch.rule_tables import Location

from tests.conftest import TENANT_A, TENANT_B, VNI, build_nezha_env


# -- Gateway + learning ----------------------------------------------------------

def test_gateway_versioning_and_lookup():
    gw = Gateway(Engine())
    loc = Location(IPv4Address("10.0.0.1"), MacAddress(1))
    v1 = gw.set_locations(7, IPv4Address("192.168.1.1"), [loc])
    v2 = gw.set_locations(7, IPv4Address("192.168.1.2"), [loc])
    assert v2 == v1 + 1
    entry = gw.lookup(7, IPv4Address("192.168.1.1"))
    assert entry.version == v1
    assert len(gw.snapshot(7)) == 2
    gw.remove(7, IPv4Address("192.168.1.1"))
    assert gw.lookup(7, IPv4Address("192.168.1.1")) is None


def test_learner_pulls_entries_on_interval():
    env = build_nezha_env(start_learners=False)
    # Mutate the gateway; only a refresh propagates it.
    new_loc = Location(IPv4Address("10.0.0.9"), MacAddress(9))
    version = env.gateway.set_locations(VNI, TENANT_B, [new_loc])
    learner = env.learners[0]
    assert learner.synced_version(VNI) < version
    learner.start()
    env.engine.run(until=0.2)
    assert learner.synced_version(VNI) >= version
    table = env.vnic_a.slow_path.table("vnic_server_mapping")
    assert table.lookup(VNI, TENANT_B).locations == [new_loc]


def test_learner_skips_crashed_vswitch():
    env = build_nezha_env(start_learners=False)
    env.vswitch_a.crash()
    env.gateway.set_locations(VNI, TENANT_B,
                              [Location(IPv4Address("10.0.0.9"),
                                        MacAddress(9))])
    env.learners[0].refresh()
    assert env.learners[0].synced_version(VNI) < env.gateway.version


def test_all_learners_synced_ignores_uninterested():
    env = build_nezha_env(start_learners=False)
    version = env.gateway.set_locations(VNI, TENANT_B, [Location(
        IPv4Address("10.0.0.9"), MacAddress(9))])
    env.learners[0].refresh()
    env.learners[1].refresh()
    # Learners 2..5 host no vNICs in this VNI: they do not gate sync.
    assert env.gateway.all_learners_synced(VNI, version)


def test_bootstrap_learners_helper():
    env = build_nezha_env(start_learners=False)
    extra = bootstrap_learners(env.engine, env.gateway,
                               [env.vswitch_a], interval=0.1,
                               rng=SeededRng(1), start=False)
    assert len(extra) == 1
    assert extra[0] in env.gateway.learners


# -- HealthMonitor ---------------------------------------------------------------------

def monitor_setup(n_targets=4):
    engine = Engine()
    topo = Topology.leaf_spine(engine, 1, n_targets + 1)
    cm = CostModel.testbed()
    vswitches = [VSwitch(engine, s, cm) for s in topo.servers[:-1]]
    monitor = HealthMonitor(engine, topo.servers[-1], interval=0.1,
                            miss_threshold=3)
    for vs in vswitches:
        monitor.add_target(vs.server)
    return engine, vswitches, monitor


def test_monitor_healthy_targets_never_reported():
    engine, _vswitches, monitor = monitor_setup()
    down = []
    monitor.on_down = down.append
    monitor.start()
    engine.run(until=2.0)
    assert down == []
    for state in monitor.targets.values():
        assert state.replies_seen > 10
        assert state.consecutive_misses == 0


def test_monitor_detects_single_crash_within_threshold():
    engine, vswitches, monitor = monitor_setup()
    down = []
    monitor.on_down = down.append
    monitor.start()
    engine.call_at(0.5, vswitches[0].crash)
    engine.run(until=2.0)
    assert [server.name for server in down] == [vswitches[0].server.name]
    # Detection needs miss_threshold sweeps: ~0.3-0.4s after the crash.


def test_monitor_detection_latency_about_threshold():
    engine, vswitches, monitor = monitor_setup()
    detected = []
    monitor.on_down = lambda s: detected.append(engine.now)
    monitor.start()
    engine.call_at(1.0, vswitches[0].crash)
    engine.run(until=3.0)
    assert detected
    # 3 misses at 0.1s interval: detected within ~0.5s of the crash —
    # production Nezha completes failover within 2s (§6.3.4).
    assert detected[0] - 1.0 < 0.6


def test_monitor_recovery_clears_down_state():
    engine, vswitches, monitor = monitor_setup()
    monitor.on_down = lambda s: None
    monitor.start()
    engine.call_at(0.5, vswitches[0].crash)
    engine.call_at(1.5, vswitches[0].recover)
    engine.run(until=3.0)
    state = monitor.targets[vswitches[0].server.name]
    assert not state.down_reported
    assert state.consecutive_misses == 0


def test_monitor_mass_failure_suspends_removal():
    """Appendix C.2: most targets 'down' at once looks like a monitoring
    bug — suspend automatic removal."""
    engine, vswitches, monitor = monitor_setup(n_targets=6)
    down = []
    monitor.on_down = down.append
    monitor.start()
    for vs in vswitches[:5]:
        engine.call_at(0.5, vs.crash)
    engine.run(until=3.0)
    assert monitor.suspended
    assert down == []  # nothing auto-removed
    monitor.reset_suspension()
    assert not monitor.suspended


def test_monitor_validation():
    engine, _v, _m = monitor_setup()
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        HealthMonitor(engine, _v[0].server, miss_threshold=0)


# -- MutualPing (Appendix C.1) -------------------------------------------------------------

def test_mutual_ping_silent_when_link_up():
    engine, vswitches, _monitor = monitor_setup()
    ping = MutualPing(engine, vswitches[0], vswitches[1], interval=0.2)
    unreachable = []
    ping.on_unreachable = lambda: unreachable.append(engine.now)
    ping.start()
    engine.run(until=2.0)
    assert unreachable == []
    assert ping.misses == 0


def test_mutual_ping_detects_dark_link():
    engine = Engine()
    topo = Topology.leaf_spine(engine, 1, 3)
    cm = CostModel.testbed()
    vswitches = [VSwitch(engine, s, cm) for s in topo.servers]
    ping = MutualPing(engine, vswitches[0], vswitches[1], interval=0.2,
                      miss_threshold=2)
    unreachable = []
    ping.on_unreachable = lambda: unreachable.append(engine.now)
    ping.start()
    engine.call_at(0.5, lambda: topo.fail_server_links(topo.servers[1]))
    engine.run(until=3.0)
    assert unreachable
    ping.stop()


# -- FePlacement ------------------------------------------------------------------------------

def placement_setup():
    env = build_nezha_env(n_servers=6)
    placement = FePlacement(env.topo,
                            {vs.server.name: vs for vs in env.vswitches})
    return env, placement


def test_placement_prefers_same_tor_and_excludes_be():
    env, placement = placement_setup()
    chosen = placement.select(env.vswitch_b, count=4)
    assert len(chosen) == 4
    assert env.vswitch_b not in chosen


def test_placement_skips_crashed_and_excluded():
    env, placement = placement_setup()
    env.vswitches[2].crash()
    placement.exclude(env.vswitches[3])
    chosen = placement.select(env.vswitch_b, count=10)
    assert env.vswitches[2] not in chosen
    assert env.vswitches[3] not in chosen
    placement.readmit(env.vswitches[3])
    chosen2 = placement.select(env.vswitch_b, count=10)
    assert env.vswitches[3] in chosen2


def test_placement_cross_tor_when_local_insufficient():
    from repro.fabric import Topology as T
    engine = Engine()
    topo = T.leaf_spine(engine, n_tors=2, servers_per_tor=3)
    cm = CostModel.testbed()
    vswitches = {s.name: VSwitch(engine, s, cm) for s in topo.servers}
    placement = FePlacement(topo, vswitches)
    be = vswitches[topo.servers[0].name]
    chosen = placement.select(be, count=4)
    assert len(chosen) == 4
    same_tor = [vs for vs in chosen
                if topo.same_tor(vs.server, be.server)]
    # The two same-ToR candidates come first; the rest cross-ToR.
    assert len(same_tor) == 2


# -- NezhaController end to end ------------------------------------------------------------------

def controller_env():
    from repro.core.offload import NezhaOrchestrator, OffloadConfig
    from repro.controller.latency import ControlLatencyModel
    env = build_nezha_env(n_servers=8)
    placement = FePlacement(env.topo, {})
    config = ControllerConfig(poll_interval=0.05, initial_fes=4)
    controller = NezhaController(env.engine, env.gateway, env.orchestrator,
                                 placement, config=config)
    for vs in env.vswitches:
        controller.register(vs)
    return env, controller


def test_controller_offloads_hot_vswitch():
    env, controller = controller_env()
    env.vnic_b.attach_guest(lambda pkt: None)
    controller.start()
    # Saturate vswitch_b's CPU with local vNIC traffic (TX new flows).
    from repro.net import Packet, TcpFlags

    def blast():
        sport = 1024
        while True:
            pkt = Packet.tcp(TENANT_B, TENANT_A, sport, 80,
                             TcpFlags.of("syn"))
            sport += 1
            env.vswitch_b.send_from_vnic(env.vnic_b, pkt)
            yield env.engine.timeout(0.00022)

    env.vnic_a.attach_guest(lambda pkt: None)
    env.engine.process(blast(), name="blast")
    env.engine.run(until=6.0)
    assert controller.offloads_triggered >= 1
    handle = env.orchestrator.handles.get(env.vnic_b.vnic_id)
    assert handle is not None
    assert handle.state in (OffloadState.ACTIVE, OffloadState.DUAL_RUNNING)


def test_controller_failover_path():
    env, controller = controller_env()
    monitor = HealthMonitor(env.engine, env.topo.servers[-1], interval=0.1)
    controller.monitor = monitor
    monitor.on_down = controller._on_target_down
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    for fe_vs in handle.fe_vswitches:
        monitor.add_target(fe_vs.server)
    monitor.start()
    victim = handle.fe_vswitches[0]
    env.engine.call_at(env.engine.now + 0.5, victim.crash)
    env.engine.run(until=env.engine.now + 3.0)
    assert controller.failovers == 1
    # min_fes=4: a replacement was scaled out.
    assert len(handle.frontends) == 4
    assert victim not in handle.fe_vswitches


# -- BE-FE link watching (Appendix C.1) ----------------------------------------------

def test_watch_links_removes_unreachable_fe():
    """A dark BE->FE link (not a crash: the FE still answers the central
    monitor) is caught by mutual pinging and the FE is failed over."""
    env, controller = controller_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=env.engine.now + 2.0)
    pingers = controller.watch_links(handle, interval=0.3)
    assert len(pingers) == 4
    victim = handle.fe_vswitches[0]
    env.engine.call_at(env.engine.now + 0.5,
                       lambda: env.topo.fail_server_links(victim.server))
    env.engine.run(until=env.engine.now + 3.0)
    assert victim not in handle.fe_vswitches
    assert victim.server.name in controller.placement.excluded
    # The controller scaled a replacement back to the 4-FE minimum.
    assert len(handle.frontends) == 4
    for ping in pingers:
        ping.stop()


# -- regression: failover-path bugfix sweep ---------------------------------------


def test_monitor_remove_target_purges_outstanding_seq():
    """An in-flight probe's seq mapping must die with its target: before
    the fix ``remove_target`` left the entry in ``_seq_to_target``, where
    it leaked forever if the reply never came (crashed target — the
    common removal reason)."""
    engine, vswitches, monitor = monitor_setup()
    monitor._sweep()  # probes sent, seqs outstanding; replies not yet run
    state = monitor.targets[vswitches[0].server.name]
    seq = state.outstanding_seq
    assert seq is not None and seq in monitor._seq_to_target
    monitor.remove_target(vswitches[0].server)
    assert seq not in monitor._seq_to_target
    assert vswitches[0].server.name not in monitor.targets


def test_reset_suspension_reports_targets_that_died_meanwhile():
    """Targets that genuinely died while removal was suspended must be
    reported when the operator resets the suspension — before the fix
    they were never reported: each later sweep re-entered the
    mass-failure branch and re-suspended first."""
    engine, vswitches, monitor = monitor_setup(n_targets=6)
    down = []
    monitor.on_down = down.append
    monitor.start()
    for vs in vswitches[:5]:
        engine.call_at(0.5, vs.crash)
    engine.run(until=3.0)
    assert monitor.suspended and down == []
    monitor.reset_suspension()
    assert (sorted(server.name for server in down)
            == sorted(vs.server.name for vs in vswitches[:5]))


def test_gateway_remove_propagates_deletion_to_learners():
    """A removed gateway entry must leave learner tables on the next
    refresh — before the fix ``refresh`` only copied live entries, so
    vSwitches forwarded to the deleted location forever."""
    env = build_nezha_env(start_learners=False)
    table = env.vnic_a.slow_path.table("vnic_server_mapping")
    assert table.lookup(VNI, TENANT_B) is not None  # primed at build time
    env.gateway.remove(VNI, TENANT_B)
    env.learners[0].refresh()
    assert table.lookup(VNI, TENANT_B) is None


def test_fallback_streak_pruned_when_handle_leaves_active():
    """An idle-poll streak must die with its handle: before the fix the
    entry survived fallback/abort/failover, so a re-offloaded vNIC (same
    id, fresh handle) inherited the stale streak and fell back almost
    immediately after activating."""
    env, controller = controller_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    assert handle.state is OffloadState.ACTIVE
    vnic_id = env.vnic_b.vnic_id
    controller._fallback_idle_polls[vnic_id] = 15  # idle for 15 polls
    env.orchestrator.fallback(handle)
    env.engine.run(until=env.engine.now + 2.0)
    assert vnic_id not in env.orchestrator.handles
    # Re-offload: the fresh handle is DUAL_RUNNING during the same tick
    # the prune runs, so "not in handles" alone would not catch this.
    handle2 = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    assert handle2.state is not OffloadState.ACTIVE
    controller._consider_fallbacks()
    assert vnic_id not in controller._fallback_idle_polls
    env.engine.run(until=env.engine.now + 2.0)
    assert handle2.state is OffloadState.ACTIVE
    controller._consider_fallbacks()
    # The new incarnation starts its streak from scratch, not from 15.
    assert controller._fallback_idle_polls.get(vnic_id, 0) <= 1
    assert controller.fallbacks == 0


def test_fallback_skips_vnic_with_inflight_scale_out():
    """A fallback must not race an in-flight scale-out for the same
    vNIC: before the fix the fallback tore the handle down while the
    flow was still adding an FE, orphaning the new instance."""
    env, controller = controller_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    assert handle.state is OffloadState.ACTIVE
    vnic_id = env.vnic_b.vnic_id
    controller._on_need_fes(handle, 1)  # scale-out flow now in flight
    assert vnic_id in controller._inflight_vnics
    # Idle streak already over the threshold: without the in-flight
    # check the very next pass triggers the fallback.
    controller._fallback_idle_polls[vnic_id] = \
        controller.config.fallback_polls
    controller._consider_fallbacks()
    assert controller.fallbacks == 0
    assert handle.state is OffloadState.ACTIVE
    env.engine.run(until=env.engine.now + 2.0)
    # The in-flight FE landed on the still-live handle, not an orphan.
    assert len(handle.frontends) == 5


def test_link_pingers_stopped_on_fallback():
    """Fallback must stop the vNIC's BE-FE pingers: a leaked pinger
    keeps probing and, after the FE host stops answering for unrelated
    reasons, excludes and fails over a vSwitch that no longer hosts
    this FE."""
    env, controller = controller_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    pingers = controller.watch_links(handle, interval=0.3)
    vnic_id = env.vnic_b.vnic_id
    assert controller._link_pingers[vnic_id] == pingers
    controller._fallback_idle_polls[vnic_id] = \
        controller.config.fallback_polls
    controller._consider_fallbacks()
    assert controller.fallbacks == 1
    assert all(ping._stopped for ping in pingers)
    assert vnic_id not in controller._link_pingers
    env.engine.run(until=env.engine.now + 2.0)
    # A dark link on the former FE host must go unnoticed now.
    former = pingers[0].fe_vswitch
    env.topo.fail_server_links(former.server)
    env.engine.run(until=env.engine.now + 3.0)
    assert former.server.name not in controller.placement.excluded
    assert controller.failovers == 0


def test_link_pingers_pruned_after_fe_failover():
    """When an FE is removed underneath its pinger (failover here;
    scale-in and preemption take the same path) the reconcile tail must
    stop that pinger while leaving the surviving FEs watched."""
    env, controller = controller_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    pingers = controller.watch_links(handle, interval=0.3)
    victim = handle.fe_vswitches[0]
    env.orchestrator.fail_fe(victim)
    controller._prune_link_pingers()
    victim_pings = [p for p in pingers if p.fe_vswitch is victim]
    live_pings = [p for p in pingers if p.fe_vswitch is not victim]
    assert victim_pings and all(p._stopped for p in victim_pings)
    assert live_pings and not any(p._stopped for p in live_pings)
    assert [p for p in controller._link_pingers[env.vnic_b.vnic_id]] \
        == live_pings


def test_placement_tie_break_independent_of_registration_order():
    """Equal-utilization candidates must sort by server name, not by
    dict insertion order — otherwise two controllers registering the
    same fleet in different orders place FEs differently and policy
    comparisons diverge on identical clusters."""
    env = build_nezha_env(n_servers=6)
    by_name = {vs.server.name: vs for vs in env.vswitches}
    forward = FePlacement(env.topo, by_name)
    backward = FePlacement(env.topo, dict(reversed(list(by_name.items()))))
    expect = [vs.server.name for vs in forward.select(env.vswitch_b, 4)]
    got = [vs.server.name for vs in backward.select(env.vswitch_b, 4)]
    assert expect == got
    # All candidates idle (utilization 0.0): the pick is pure name order.
    assert expect == sorted(expect)


def test_controller_does_not_double_scale_inflight_vnic():
    """Two shortfall signals for the same vNIC in one tick must trigger
    one scale-out flow: before the per-vNIC in-flight tracking the
    second signal started a second flow for the same handle while the
    first's FEs were not yet visible, serially over-scaling the vNIC."""
    env, controller = controller_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    assert handle.state is OffloadState.ACTIVE
    calls = []
    orig = env.orchestrator.scale_out

    def spy(h, fes):
        calls.append([vs.name for vs in fes])
        return orig(h, fes)

    env.orchestrator.scale_out = spy
    controller._on_need_fes(handle, 1)
    controller._on_need_fes(handle, 1)  # same tick: flow still in flight
    assert len(calls) == 1
    env.engine.run(until=env.engine.now + 2.0)
    assert len(handle.frontends) == 5
