"""Shared test fixtures: a minimal two-server overlay cloud."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest

from repro.fabric import Topology
from repro.net import IPv4Address, MacAddress
from repro.sim import Engine
from repro.vswitch import CostModel, MappingTable, Vnic, VSwitch
from repro.vswitch.rule_tables import MappingEntry
from repro.vswitch.vswitch import make_standard_chain

VNI = 100
TENANT_A = IPv4Address("192.168.0.1")
TENANT_B = IPv4Address("192.168.0.2")


@dataclass
class Cloud:
    """Two servers under one ToR, one vNIC each, mappings prewired."""

    engine: Engine
    topo: Topology
    vswitch_a: VSwitch
    vswitch_b: VSwitch
    vnic_a: Vnic
    vnic_b: Vnic
    cost_model: CostModel


def wire_mapping(mapping: MappingTable, vni: int, tenant_ip, server) -> None:
    mapping.set_entry(vni, tenant_ip, MappingEntry(
        underlay_ip=server.underlay_ip, underlay_mac=server.mac, vni=vni))


def build_cloud(engine=None, cost_model=None, n_tors=1, servers_per_tor=2,
                acl_a=None, acl_b=None) -> Cloud:
    engine = engine or Engine()
    cost_model = cost_model or CostModel.testbed()
    topo = Topology.leaf_spine(engine, n_tors=n_tors,
                               servers_per_tor=servers_per_tor)
    server_a, server_b = topo.servers[0], topo.servers[1]
    vswitch_a = VSwitch(engine, server_a, cost_model)
    vswitch_b = VSwitch(engine, server_b, cost_model)

    chain_a = make_standard_chain(cost_model, acl=acl_a)
    chain_b = make_standard_chain(cost_model, acl=acl_b)
    # Each side's mapping table knows where the peer lives (wired before
    # hosting so the memory charge reflects the populated tables).
    wire_mapping(chain_a.table("vnic_server_mapping"), VNI, TENANT_B, server_b)
    wire_mapping(chain_a.table("vnic_server_mapping"), VNI, TENANT_A, server_a)
    wire_mapping(chain_b.table("vnic_server_mapping"), VNI, TENANT_A, server_a)
    wire_mapping(chain_b.table("vnic_server_mapping"), VNI, TENANT_B, server_b)

    vnic_a = Vnic(1, VNI, TENANT_A, MacAddress(0xA1), chain_a)
    vnic_b = Vnic(2, VNI, TENANT_B, MacAddress(0xB1), chain_b)
    vswitch_a.add_vnic(vnic_a)
    vswitch_b.add_vnic(vnic_b)
    return Cloud(engine, topo, vswitch_a, vswitch_b, vnic_a, vnic_b, cost_model)


@pytest.fixture
def cloud() -> Cloud:
    return build_cloud()


@dataclass
class NezhaEnv:
    """A cloud with a gateway, learners, and a Nezha orchestrator."""

    engine: Engine
    topo: Topology
    vswitches: List[VSwitch]
    vnic_a: Vnic
    vnic_b: Vnic
    gateway: "object"
    learners: List["object"]
    orchestrator: "object"
    cost_model: CostModel

    @property
    def vswitch_a(self) -> VSwitch:
        return self.vswitches[0]

    @property
    def vswitch_b(self) -> VSwitch:
        return self.vswitches[1]

    @property
    def idle_vswitches(self) -> List[VSwitch]:
        return self.vswitches[2:]


def build_nezha_env(n_servers=6, acl_a=None, acl_b=None,
                    learner_interval=0.05, cost_model=None,
                    start_learners=True) -> NezhaEnv:
    from repro.controller.gateway import Gateway, MappingLearner
    from repro.controller.latency import ControlLatencyModel
    from repro.core.offload import NezhaOrchestrator, OffloadConfig
    from repro.sim import SeededRng
    from repro.vswitch.rule_tables import Location

    engine = Engine()
    cost_model = cost_model or CostModel.testbed()
    topo = Topology.leaf_spine(engine, n_tors=1, servers_per_tor=n_servers)
    vswitches = [VSwitch(engine, server, cost_model)
                 for server in topo.servers]
    gateway = Gateway(engine)

    chain_a = make_standard_chain(cost_model, acl=acl_a)
    chain_b = make_standard_chain(cost_model, acl=acl_b)
    vnic_a = Vnic(1, VNI, TENANT_A, MacAddress(0xA1), chain_a)
    vnic_b = Vnic(2, VNI, TENANT_B, MacAddress(0xB1), chain_b)
    vswitches[0].add_vnic(vnic_a)
    vswitches[1].add_vnic(vnic_b)

    server_a, server_b = topo.servers[0], topo.servers[1]
    gateway.set_locations(VNI, TENANT_A,
                          [Location(server_a.underlay_ip, server_a.mac)])
    gateway.set_locations(VNI, TENANT_B,
                          [Location(server_b.underlay_ip, server_b.mac)])

    rng = SeededRng(7, "nezha-env")
    learners = []
    for index, vswitch in enumerate(vswitches):
        learner = MappingLearner(engine, vswitch, gateway,
                                 interval=learner_interval,
                                 rng=rng.child(f"learner{index}"))
        learners.append(learner)
        if start_learners:
            learner.start()
    # Prime the two tenant-hosting vSwitches so traffic flows at t=0.
    learners[0].refresh()
    learners[1].refresh()

    config = OffloadConfig(learning_interval=learner_interval,
                           inflight_margin=0.01, sync_poll=0.005,
                           sync_timeout=2.0,
                           latency=ControlLatencyModel.fast())
    orchestrator = NezhaOrchestrator(engine, gateway,
                                     rng=rng.child("orch"), config=config)
    return NezhaEnv(engine, topo, vswitches, vnic_a, vnic_b, gateway,
                    learners, orchestrator, cost_model)


@pytest.fixture
def nezha_env() -> NezhaEnv:
    return build_nezha_env()
