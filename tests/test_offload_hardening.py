"""Control-plane hardening: RPC retry/backoff/abort behaviour and the
failover-vs-fallback races in the orchestrator."""

from repro.core.offload import OffloadState
from repro.vswitch.rule_tables import Location

from tests.conftest import VNI, build_nezha_env


def _be_location(handle):
    return Location(handle.be_vswitch.server.underlay_ip,
                    handle.be_vswitch.server.mac)


# -- RPC retry / backoff / abort ---------------------------------------------

def test_rpc_drop_retries_and_recovers():
    env = build_nezha_env()
    dropped = []

    def hook(stage, attempt):
        if stage == "offload.configure_fes" and attempt < 2:
            dropped.append(attempt)
            return "drop"
        return None

    env.orchestrator.rpc_fault_hook = hook
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=5.0)
    assert dropped == [0, 1]
    assert handle.state is OffloadState.ACTIVE
    assert not handle.failed
    assert env.orchestrator.rpc_drops == 2
    assert env.orchestrator.rpc_retries_recovered >= 1
    assert env.orchestrator.rpc_giveups == 0


def test_rpc_giveup_aborts_offload_cleanly():
    env = build_nezha_env()
    env.orchestrator.rpc_fault_hook = (
        lambda stage, attempt:
        "drop" if stage == "offload.install_be" else None)
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=10.0)
    # All 4 attempts of stage 2 dropped: the flow rolls back instead of
    # wedging with FEs configured but no BE datapath.
    assert handle.failed
    assert handle.state is OffloadState.INACTIVE
    assert handle.frontends == {}
    assert env.orchestrator.handles == {}
    assert env.orchestrator.aborted_offloads == 1
    assert env.orchestrator.rpc_giveups == 1
    assert not env.vnic_b.offloaded
    # Waiters were released, not crashed.
    assert handle.completion.fired
    # No FE agent still holds an instance for the vNIC.
    for agent in env.orchestrator.agents.values():
        assert env.vnic_b.vnic_id not in agent.frontends


def test_rpc_duplicate_delivery_is_idempotent():
    env = build_nezha_env()
    env.orchestrator.rpc_fault_hook = lambda stage, attempt: "dup"
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=5.0)
    # Every stage delivered twice: each mutation must apply once.
    assert handle.state is OffloadState.ACTIVE
    assert len(handle.frontends) == 2
    be_agent = env.orchestrator.agents[env.vswitch_b.name]
    assert be_agent.backends[env.vnic_b.vnic_id] is handle.backend
    entry = env.gateway.lookup(VNI, env.vnic_b.tenant_ip)
    assert set(entry.locations) == set(handle.fe_locations)


# -- failover racing fallback ------------------------------------------------

def _active_handle(env, n_fes=4):
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:n_fes])
    env.engine.run(until=5.0)
    assert handle.state is OffloadState.ACTIVE
    return handle


def test_fail_fe_during_fallback_requests_no_replacements():
    """An FE crash while the handle is FALLING_BACK must not request
    replacement FEs — they would outlive the fallback as orphans."""
    env = build_nezha_env(n_servers=8)
    handle = _active_handle(env)
    requests = []
    env.orchestrator.need_fe_callback = (
        lambda h, shortfall: requests.append(shortfall))
    done = env.orchestrator.fallback(handle)
    # Same tick, fallback still in flight: one FE host dies.
    env.orchestrator.fail_fe(handle.fe_vswitches[0])
    assert requests == []
    env.engine.run(until=env.engine.now + 5.0)
    assert done.fired
    assert handle.state is OffloadState.INACTIVE
    assert env.orchestrator.handles == {}
    assert not env.vnic_b.offloaded
    for agent in env.orchestrator.agents.values():
        assert env.vnic_b.vnic_id not in agent.frontends
    entry = env.gateway.lookup(VNI, env.vnic_b.tenant_ip)
    assert entry.locations == [_be_location(handle)]


def test_scale_in_during_fallback_requests_no_replacements():
    """Graceful scale-in racing a fallback: same rule — no replacement
    requests for a handle on its way out."""
    env = build_nezha_env(n_servers=8)
    handle = _active_handle(env)
    requests = []
    env.orchestrator.need_fe_callback = (
        lambda h, shortfall: requests.append(shortfall))
    env.orchestrator.fallback(handle)
    removed = env.orchestrator.scale_in_vswitch(handle.fe_vswitches[0])
    assert removed == 1
    assert requests == []
    env.engine.run(until=env.engine.now + 5.0)
    assert handle.state is OffloadState.INACTIVE
    assert env.orchestrator.handles == {}


def test_scale_out_completing_after_fallback_is_noop():
    """A scale-out flow that lands after its handle fell back must not
    resurrect FEs for the retired handle."""
    env = build_nezha_env(n_servers=8)
    handle = _active_handle(env, n_fes=2)
    new_fe = env.idle_vswitches[2]
    env.orchestrator.scale_out(handle, [new_fe])
    env.orchestrator.fallback(handle)
    env.engine.run(until=env.engine.now + 5.0)
    assert handle.state is OffloadState.INACTIVE
    assert env.orchestrator.handles == {}
    agent = env.orchestrator.agents.get(new_fe.name)
    assert agent is None or env.vnic_b.vnic_id not in agent.frontends
    for agent in env.orchestrator.agents.values():
        assert env.vnic_b.vnic_id not in agent.frontends
