"""Regression tests for the fast-path caches added by the performance
overhaul: chain-level cost/memory caches, the ACL match buckets, the
packet flow-key memo, and the engine micro-queue's FIFO tie-break.

Every cache must be invisible: mutating the underlying data must be
reflected by the very next read.
"""

import random

import pytest

from repro.net.addr import IPv4Address, MacAddress
from repro.net.ethernet import EthernetHeader
from repro.net.five_tuple import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.ipv4 import IPv4Header
from repro.net.packet import Packet, make_underlay_transport
from repro.sim import Engine
from repro.vswitch.actions import Direction, Verdict
from repro.vswitch.costs import CostModel
from repro.vswitch.rule_tables import (AclRule, AclTable, MappingEntry,
                                       Nat44Table, QosRule)
from repro.vswitch.vswitch import make_standard_chain

A = IPv4Address("10.0.0.1")
B = IPv4Address("10.0.0.2")


def make_chain():
    cost_model = CostModel()
    acl = AclTable()
    chain = make_standard_chain(cost_model, acl=acl)
    return chain, acl, cost_model


# -- chain-level caches ------------------------------------------------------


def test_lookup_cost_reflects_acl_mutation():
    chain, acl, cm = make_chain()
    cost_before = chain.lookup_cost(64)
    assert cost_before == cm.lookup_cycles(len(chain.tables), 0, 64)
    acl.add_rule(AclRule(priority=5, verdict=Verdict.DROP, proto=PROTO_TCP))
    acl.add_rule(AclRule(priority=4, verdict=Verdict.DROP, proto=PROTO_UDP))
    cost_after = chain.lookup_cost(64)
    assert cost_after == cm.lookup_cycles(len(chain.tables), 2, 64)
    assert cost_after > cost_before
    assert chain.acl_rule_count() == 2


def test_lookup_cost_matches_uncached_path_exactly():
    chain, acl, _cm = make_chain()
    acl.add_rule(AclRule(priority=1, verdict=Verdict.DROP, proto=PROTO_TCP))
    for nbytes in (64, 512, 1500):
        cached = chain.lookup_cost(nbytes)
        try:
            type(chain).caching = False
            uncached = chain.lookup_cost(nbytes)
        finally:
            type(chain).caching = True
        assert cached == uncached


def test_memory_bytes_reflects_table_mutation():
    chain, acl, _cm = make_chain()
    base = chain.memory_bytes()
    acl.add_rule(AclRule(priority=1, verdict=Verdict.ACCEPT))
    assert chain.memory_bytes() == base + acl.rule_bytes
    route = chain.table("route")
    route.add_route(IPv4Address("10.1.0.0"), 16)
    assert chain.memory_bytes() == base + acl.rule_bytes + route.route_bytes
    mapping = chain.table("vnic_server_mapping")
    mapping.set_entry(7, B, MappingEntry(B, MacAddress(1), vni=7))
    assert chain.memory_bytes() == (base + acl.rule_bytes + route.route_bytes
                                    + mapping.entry_bytes)


def test_qos_add_rule_invalidates_chain():
    chain, _acl, _cm = make_chain()
    base = chain.memory_bytes()
    qos = chain.table("qos")
    qos.add_rule(QosRule(priority=3, qos_class=1))
    assert chain.memory_bytes() == base + qos.rule_bytes


def test_name_index_tracks_direct_chain_mutation():
    chain, _acl, _cm = make_chain()
    assert chain.table("nat44") is None
    nat = Nat44Table()
    chain.tables.insert(1, nat)          # direct list surgery, as tests do
    assert chain.table("nat44") is nat
    base = chain.memory_bytes()
    nat.add_mapping(A, IPv4Address("203.0.113.1"))
    assert chain.memory_bytes() == base + nat.entry_bytes
    chain.tables.remove(nat)
    assert chain.table("nat44") is None


def test_name_index_first_occurrence_wins():
    cost_model = CostModel()
    chain = make_standard_chain(cost_model, advanced=True)
    names = [t.name for t in chain.tables]
    for name in set(names):
        assert chain.table(name) is chain.tables[names.index(name)]


# -- ACL buckets -------------------------------------------------------------


def _random_rule(rng):
    return AclRule(
        priority=rng.randrange(0, 50),
        verdict=rng.choice([Verdict.ACCEPT, Verdict.DROP]),
        direction=rng.choice([None, Direction.TX, Direction.RX]),
        src_prefix=rng.choice([None, IPv4Address(rng.getrandbits(32))]),
        src_prefix_len=rng.randrange(0, 33),
        dst_prefix=rng.choice([None, IPv4Address(rng.getrandbits(32))]),
        dst_prefix_len=rng.randrange(0, 33),
        proto=rng.choice([None, PROTO_TCP, PROTO_UDP, PROTO_ICMP]),
        src_port_range=rng.choice([None, (0, 1024), (80, 80)]),
        dst_port_range=rng.choice([None, (0, 65535), (443, 8443)]),
    )


def _random_tuple(rng):
    return FiveTuple(IPv4Address(rng.getrandbits(32)),
                     IPv4Address(rng.getrandbits(32)),
                     rng.choice([PROTO_TCP, PROTO_UDP, PROTO_ICMP, 89]),
                     rng.randrange(0, 65536), rng.randrange(0, 65536))


def test_bucketed_verdicts_match_full_scan():
    rng = random.Random(1234)
    acl = AclTable([_random_rule(rng) for _ in range(80)])
    probes = [_random_tuple(rng) for _ in range(300)]
    for ft in probes:
        for direction in (Direction.TX, Direction.RX):
            assert (acl._verdict(ft, direction)
                    == acl._verdict_scan(ft, direction))
    # Buckets must also stay correct across incremental mutation.
    for _ in range(20):
        acl.add_rule(_random_rule(rng))
        ft = _random_tuple(rng)
        for direction in (Direction.TX, Direction.RX):
            assert (acl._verdict(ft, direction)
                    == acl._verdict_scan(ft, direction))


def test_add_rule_keeps_stable_priority_order():
    acl = AclTable()
    first = AclRule(priority=10, verdict=Verdict.DROP)
    second = AclRule(priority=10, verdict=Verdict.ACCEPT)
    high = AclRule(priority=20, verdict=Verdict.DROP)
    low = AclRule(priority=1, verdict=Verdict.ACCEPT)
    for rule in (first, second, high, low):
        acl.add_rule(rule)
    assert acl.rules[0] is high
    assert acl.rules[1] is first       # equal priorities keep insert order
    assert acl.rules[2] is second
    assert acl.rules[3] is low
    # First match wins among equal priorities, so the tie-break is visible:
    assert acl._verdict(FiveTuple(A, B, PROTO_TCP, 1, 2),
                        Direction.TX) == Verdict.DROP


def test_prefix_mask_matches_in_prefix():
    rng = random.Random(99)
    for _ in range(200):
        prefix = IPv4Address(rng.getrandbits(32))
        length = rng.randrange(0, 33)
        rule = AclRule(priority=1, verdict=Verdict.DROP,
                       src_prefix=prefix, src_prefix_len=length)
        addr = IPv4Address(rng.getrandbits(32))
        ft = FiveTuple(addr, B, PROTO_TCP, 1, 2)
        assert rule.matches(ft) == addr.in_prefix(prefix, length)


# -- packet memoization ------------------------------------------------------


def test_five_tuple_memo_hit_and_explicit_invalidation():
    pkt = Packet.tcp(A, B, 1000, 80)
    ft = pkt.five_tuple()
    assert pkt.five_tuple() is ft              # memo hit: same object
    pkt.inner_ipv4().src = IPv4Address("9.9.9.9")
    pkt.invalidate_flow_cache()
    assert pkt.five_tuple().src_ip == IPv4Address("9.9.9.9")


def test_decap_invalidates_five_tuple_memo():
    inner = Packet.tcp(A, B, 1000, 80)
    wrapped = make_underlay_transport(
        MacAddress(1), MacAddress(2), IPv4Address("172.16.0.1"),
        IPv4Address("172.16.0.2"), inner, vni=7)
    assert wrapped.five_tuple() == inner.five_tuple()
    wrapped.decap(5)                           # Eth/IPv4/UDP/VXLAN/Eth
    # The memo must have been dropped: a header edit with no explicit
    # invalidation is now visible because decap cleared the cache.
    wrapped.expect(IPv4Header).src = IPv4Address("8.8.8.8")
    assert wrapped.five_tuple().src_ip == IPv4Address("8.8.8.8")


def test_encap_invalidates_wire_length():
    pkt = Packet.tcp(A, B, 1000, 80, payload=b"x" * 10)
    length = pkt.wire_length
    pkt.encap(EthernetHeader(MacAddress(1), MacAddress(2)))
    assert pkt.wire_length == length + EthernetHeader.wire_length
    pkt.decap(1)
    assert pkt.wire_length == length


def test_copy_does_not_share_memo():
    pkt = Packet.tcp(A, B, 1000, 80)
    pkt.five_tuple()
    clone = pkt.copy()
    clone.inner_ipv4().src = IPv4Address("7.7.7.7")
    clone.invalidate_flow_cache()
    assert clone.five_tuple().src_ip == IPv4Address("7.7.7.7")
    assert pkt.five_tuple().src_ip == A


# -- engine micro-queue tie-break --------------------------------------------


def test_micro_queue_fifo_tie_break_documented_order():
    engine = Engine()
    order = []
    # Two heap entries at t=1.0; the first schedules a same-time callback.
    engine.call_at(1.0, lambda: (order.append("h1"),
                                 engine.call_soon(order.append, "soon")))
    engine.call_at(1.0, order.append, "h2")
    engine.run()
    # Heap entries at the current instant predate the micro-queue entry,
    # so the documented (time, scheduling-order) FIFO gives h1, h2, soon.
    assert order == ["h1", "h2", "soon"]


def test_call_after_zero_and_call_soon_interleave_fifo():
    engine = Engine()
    order = []

    def kick():
        engine.call_after(0.0, order.append, "a")
        engine.call_soon(order.append, "b")
        engine.call_after(0.0, order.append, "c")

    engine.call_at(2.0, kick)
    engine.run()
    assert order == ["a", "b", "c"]


def _run_scrambled_schedule(micro_queue):
    previous = Engine.micro_queue
    Engine.micro_queue = micro_queue
    try:
        engine = Engine()
        trace = []
        rng = random.Random(4242)

        def worker(tag, depth):
            if depth > 3:
                return
            trace.append((tag, engine.now))
            choice = rng.random()
            if choice < 0.35:
                engine.call_soon(worker, f"{tag}.s", depth + 1)
            elif choice < 0.6:
                engine.call_after(0.0, worker, f"{tag}.z", depth + 1)
            elif choice < 0.85:
                engine.call_after(0.25, worker, f"{tag}.d", depth + 1)

        def proc(tag):
            trace.append((f"{tag}:start", engine.now))
            yield None                        # cooperative yield
            trace.append((f"{tag}:mid", engine.now))
            yield engine.timeout(0.5)
            trace.append((f"{tag}:end", engine.now))

        for i in range(6):
            engine.call_at(float(i % 3) * 0.5, worker, f"w{i}", 0)
        for i in range(4):
            engine.process(proc(f"p{i}"))
        event = engine.event("tie")

        def waiter(idx):
            yield event
            trace.append((f"waiter{idx}", engine.now))

        for i in range(3):
            engine.process(waiter(i))
        engine.call_at(0.5, event.succeed, None)
        engine.run(until=10.0)
        return trace
    finally:
        Engine.micro_queue = previous


def test_micro_queue_trace_identical_to_pure_heap():
    assert _run_scrambled_schedule(True) == _run_scrambled_schedule(False)


def test_pending_counts_micro_queue():
    engine = Engine()
    engine.call_soon(lambda: None)
    engine.call_at(1.0, lambda: None)
    assert engine.pending == 2
    assert engine.step()
    assert engine.pending == 1


def test_step_drains_in_order():
    engine = Engine()
    order = []
    engine.call_soon(order.append, "a")
    engine.call_at(0.0, order.append, "b")     # same instant -> micro-queue
    engine.call_at(1.0, order.append, "c")
    while engine.step():
        pass
    assert order == ["a", "b", "c"]
    assert engine.now == 1.0


def test_past_schedule_still_rejected():
    from repro.errors import SimulationError
    engine = Engine()
    engine.call_at(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.call_at(1.0, lambda: None)
