"""ResidentPool: the persistent actor-style worker pool (ISSUE 8).

Covers the contract pieces the fleet experiment's byte-identity matrix
exercises only indirectly: reply ordering, the degenerate in-process
pool, worker-death surfacing (a clear error, not a hang), error
tracebacks, and the IPC accounting that proves state actually stays
resident in the workers.
"""

import pickle

import pytest

from repro.experiments.parallel import ResidentPool, ResidentWorkerError


# Worker functions must be top-level so they pickle into the children.

def _accumulate(state, payload):
    """(state, payload) -> (state, report): running sum per slot."""
    state = dict(state)
    state["total"] += payload
    state["steps"] += 1
    return state, (state["slot"], state["total"])


def _touch_blob(state, payload):
    """Big resident state, tiny report: the residency-proof shape."""
    state["count"] += payload
    return state, state["count"]


def _explode(state, payload):
    if payload == "boom":
        raise ValueError("injected failure in worker")
    return state, payload


def _slot_states(n):
    return [{"slot": i, "total": 0, "steps": 0} for i in range(n)]


# -- ordering and equivalence to the sequential loop ------------------------

def test_step_and_collect_preserve_slot_order():
    states = _slot_states(5)
    expected_states = []
    expected_reports = []
    for state in states:
        advanced, report = _accumulate(state, 10)
        advanced, report = _accumulate(advanced, 3)
        expected_states.append(advanced)
        expected_reports.append(report)

    with ResidentPool(_accumulate, states, jobs=2) as pool:
        assert pool.jobs == 2
        pool.step(10)
        reports = pool.step(3)
        collected = pool.collect()
    assert reports == expected_reports
    assert collected == expected_states
    assert [s["slot"] for s in collected] == [0, 1, 2, 3, 4]


def test_degenerate_pool_runs_in_process_with_zero_ipc():
    states = _slot_states(3)
    pool = ResidentPool(_accumulate, states, jobs=1)
    try:
        assert pool.jobs == 1
        assert pool._workers == []              # no processes spawned
        pool.step(5)
        collected = pool.collect()
    finally:
        pool.close()
    assert [s["total"] for s in collected] == [5, 5, 5]
    assert pool.init_ipc_bytes == 0
    assert pool.ipc_bytes_per_step() == 0.0
    assert pool.collect_ipc_bytes == 0


def test_single_slot_degenerates_even_with_many_jobs():
    pool = ResidentPool(_accumulate, _slot_states(1), jobs=8)
    try:
        assert pool.jobs == 1                   # clamped to the slot count
        assert pool._workers == []
    finally:
        pool.close()


def test_empty_states_rejected():
    with pytest.raises(ValueError):
        ResidentPool(_accumulate, [], jobs=2)


# -- failure surfacing ------------------------------------------------------

def test_worker_exception_raises_with_traceback():
    with ResidentPool(_explode, _slot_states(4), jobs=2) as pool:
        assert pool.step("fine") == ["fine"] * 4
        with pytest.raises(ResidentWorkerError) as excinfo:
            pool.step("boom")
    message = str(excinfo.value)
    assert "injected failure in worker" in message     # the traceback
    assert "resident-worker-" in message               # which worker
    assert "slots" in message                          # which slice


def test_worker_death_raises_instead_of_hanging():
    with ResidentPool(_accumulate, _slot_states(4), jobs=2) as pool:
        pool.step(1)
        victim = pool._workers[0]["process"]
        victim.kill()
        victim.join(timeout=5.0)
        with pytest.raises(ResidentWorkerError, match="died"):
            pool.step(2)


def test_step_after_close_raises():
    pool = ResidentPool(_accumulate, _slot_states(2), jobs=2)
    pool.close()
    pool.close()                                # idempotent
    with pytest.raises(ResidentWorkerError):
        pool.step(1)
    with pytest.raises(ResidentWorkerError):
        pool.collect()


# -- state residency, proven by the IPC byte counters -----------------------

def test_state_stays_resident_between_steps():
    """Steps must not round-trip the resident state: per-step IPC stays
    orders of magnitude below the state size, which crosses the
    boundary exactly twice (init and collect)."""
    blob = bytes(200_000)
    states = [{"blob": blob, "count": 0} for _ in range(4)]
    state_bytes = len(pickle.dumps(states))
    with ResidentPool(_touch_blob, states, jobs=2) as pool:
        assert pool._states is None            # coordinator copies dropped
        for _ in range(5):
            pool.step(1)
        collected = pool.collect()
    assert [s["count"] for s in collected] == [5] * 4
    assert all(s["blob"] == blob for s in collected)
    # The blobs crossed on init and collect...
    assert pool.init_ipc_bytes > state_bytes * 0.9
    assert pool.collect_ipc_bytes > state_bytes * 0.9
    # ...but never during the epoch loop.
    assert len(pool.step_ipc_bytes) == 5
    assert max(pool.step_ipc_bytes) < 1000
    assert pool.ipc_bytes_per_step() < 1000


def test_step_ipc_flat_as_resident_state_grows():
    """The flatness property the fleet bench records: growing the
    resident state must not move per-step traffic."""

    def per_step_ipc(blob_size):
        states = [{"blob": bytes(blob_size), "count": 0} for _ in range(2)]
        with ResidentPool(_touch_blob, states, jobs=2) as pool:
            pool.step(1)
            pool.step(1)
            pool.collect()
        return pool.ipc_bytes_per_step()

    small = per_step_ipc(1_000)
    large = per_step_ipc(500_000)
    assert large == small
