"""Unit tests for the telemetry layer: registry, spans, profiler, export.

Integration coverage (component wiring, fig12 reconciliation, trace
emission kinds) lives in test_telemetry_integration.py and
test_trace_emissions.py.
"""

import json

import pytest

from repro import telemetry
from repro.sim import Engine
from repro.telemetry import spans
from repro.telemetry.export import (SCHEMA, load, validate_report,
                                    write_jsonl)
from repro.telemetry.profiler import EngineProfiler
from repro.telemetry.registry import (Counter, EventLog, Gauge, Histogram,
                                      MetricRegistry)
from repro.telemetry.spans import Span, SpanRecorder


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Never leak an installed telemetry between tests."""
    yield
    telemetry.uninstall()


# -- MetricRegistry ----------------------------------------------------------


def test_counter_and_gauge_basics():
    reg = MetricRegistry()
    counter = reg.counter("pkt.drops")
    counter.inc()
    counter.inc(2)
    assert counter.value() == 3
    gauge = reg.gauge("cpu.util")
    gauge.set(0.75)
    assert gauge.value() == 0.75


def test_gauge_probe_wins_over_pushed_value():
    reg = MetricRegistry()
    gauge = reg.gauge("depth", probe=lambda: 42)
    gauge.set(1.0)
    assert gauge.value() == 42.0


def test_gauge_probe_failure_is_nan_not_crash():
    reg = MetricRegistry()
    reg.gauge("dead", probe=lambda: 1 / 0)
    snap = reg.snapshot()
    assert snap["dead"] != snap["dead"]  # NaN


def test_histogram_summary():
    reg = MetricRegistry()
    hist = reg.histogram("latency")
    for value in range(1, 101):
        hist.observe(float(value))
    summary = hist.value()
    assert summary["count"] == 100
    assert summary["P50"] == pytest.approx(50.5)


def test_event_log_ring_buffer():
    reg = MetricRegistry()
    log = reg.events("decisions", capacity=2)
    for i in range(4):
        log.record(float(i), action=f"a{i}")
    entries = log.value()
    assert [e["action"] for e in entries] == ["a2", "a3"]
    assert log.dropped == 2


def test_registration_is_idempotent_and_rebinds_probes():
    reg = MetricRegistry()
    first = reg.counter("c")
    assert reg.counter("c") is first
    reg.gauge("g", probe=lambda: 1)
    reg.gauge("g", probe=lambda: 2)  # sweep rebuild re-binds to live component
    assert reg.snapshot()["g"] == 2.0
    assert len(reg) == 2


def test_kind_conflict_raises():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_glob_enable_disable_and_snapshot():
    reg = MetricRegistry()
    reg.counter("vswitch.be0.cpu.drops").inc()
    reg.counter("vswitch.fe1.cpu.drops").inc()
    reg.counter("gateway.version").inc()
    assert reg.names("vswitch.*") == ["vswitch.be0.cpu.drops",
                                      "vswitch.fe1.cpu.drops"]
    assert reg.disable("vswitch.*") == 2
    snap = reg.snapshot()
    assert "gateway.version" in snap
    assert "vswitch.be0.cpu.drops" not in snap
    assert reg.enable("vswitch.be0.*") == 1


def test_disabled_counter_is_one_attribute_check():
    reg = MetricRegistry()
    counter = reg.counter("hot")
    reg.disable("hot")
    counter.inc()
    assert counter.count == 0


def test_describe_lists_kind_and_enabled():
    reg = MetricRegistry()
    reg.histogram("h")
    reg.disable("h")
    assert reg.describe() == [{"name": "h", "kind": "histogram",
                               "enabled": False}]


# -- spans -------------------------------------------------------------------


def test_span_segments_and_total():
    span = Span("probe", t0=1.0)
    span.hops = [("a", 1.5), ("b", 1.7)]
    assert span.total() == pytest.approx(0.7)
    assert span.segments() == [("start->a", pytest.approx(0.5)),
                               ("a->b", pytest.approx(0.2))]


def test_span_lifecycle_through_module_hooks():
    class Pkt:
        meta = {}

    recorder = SpanRecorder()
    recorder.install()
    try:
        pkt = Pkt()
        pkt.meta = {}
        spans.begin(pkt, "probe", 0.0)
        spans.hop(pkt, "vswitch_in", 0.1)
        spans.finish(pkt, "vm_rx", 0.3)
        # Finishing twice must not double-record.
        spans.finish(pkt, "vm_rx", 0.4)
        assert len(recorder.spans) == 1
        assert recorder.spans[0].total() == pytest.approx(0.3)
    finally:
        recorder.uninstall()
    assert spans.ACTIVE is False


def test_hop_without_span_is_noop():
    class Pkt:
        meta = {}

    pkt = Pkt()
    pkt.meta = {}
    spans.hop(pkt, "anywhere", 1.0)  # background traffic, no span attached
    assert pkt.meta == {}


def test_recorder_capacity_and_clear_label():
    recorder = SpanRecorder(capacity=2)
    for i, label in enumerate(["a", "b", "a"]):
        span = Span(label, float(i))
        span.hops = [("end", float(i) + 0.1)]
        recorder.add(span)
    assert recorder.dropped == 1
    assert recorder.labels() == ["b", "a"]
    recorder.clear("a")
    assert recorder.labels() == ["b"]


def test_aggregate_keeps_labels_separate():
    recorder = SpanRecorder()
    for label, dt in (("local", 0.1), ("local", 0.3), ("offloaded", 0.5)):
        span = Span(label, 0.0)
        span.hops = [("mid", dt / 2), ("end", dt)]
        recorder.add(span)
    agg = recorder.aggregate()
    assert agg["local"]["count"] == 2
    assert agg["offloaded"]["latency"]["P50"] == pytest.approx(0.5)
    assert set(agg["local"]["segments"]) == {"start->mid", "mid->end"}


# -- profiler ----------------------------------------------------------------


def test_profiler_attributes_events_to_owners():
    engine = Engine()
    engine.profiler = EngineProfiler()
    hits = []
    engine.call_at(0.1, hits.append, 1)
    engine.call_at(0.2, hits.append, 2)

    def proc():
        yield engine.timeout(0.05)

    engine.process(proc(), name="worker")
    engine.run()
    assert hits == [1, 2]
    profiler = engine.profiler
    assert profiler.total_events >= 3
    owners = set(profiler.buckets)
    assert any("append" in key for key in owners)  # list.append bucket
    assert any("worker" in key for key in owners)
    top = profiler.top(2)
    assert len(top) == 2
    assert top[0]["wall_s"] >= top[1]["wall_s"]
    doc = profiler.to_dict()
    assert doc["total_events"] == profiler.total_events
    assert doc["events_per_sec"] > 0


def test_profiler_none_is_default_and_run_matches():
    """Profiling must not change what executes or when."""
    def drive(profiled):
        engine = Engine()
        if profiled:
            engine.profiler = EngineProfiler()
        seen = []
        engine.call_at(0.1, lambda: seen.append(engine.now))

        def proc():
            yield engine.timeout(0.25)
            seen.append(engine.now)

        engine.process(proc())
        engine.run()
        return seen

    assert Engine().profiler is None
    assert drive(False) == drive(True)


def test_profiler_survives_crashing_callback():
    engine = Engine()
    engine.profiler = EngineProfiler()

    def boom():
        raise RuntimeError("crash")

    engine.call_at(0.1, boom)
    with pytest.raises(RuntimeError):
        engine.run()
    assert engine.profiler.total_events == 1  # still counted via finally


# -- install / uninstall -----------------------------------------------------


def test_install_activates_spans_and_uninstall_detaches():
    assert telemetry.current() is None
    tel = telemetry.install()
    assert telemetry.current() is tel
    assert spans.ACTIVE is True
    engine = Engine()
    assert telemetry.active_trace(engine) is tel.trace
    telemetry.uninstall()
    assert telemetry.current() is None
    assert spans.ACTIVE is False
    assert telemetry.active_trace(engine) is None


def test_install_with_profile_attaches_engine_profiler():
    tel = telemetry.install(profile=True)
    engine = Engine()
    tel.bind_engine(engine)
    assert engine.profiler is tel.profiler
    telemetry.uninstall()
    assert engine.profiler is None


def test_reinstall_replaces_previous():
    first = telemetry.install()
    second = telemetry.install()
    assert first is not second
    assert telemetry.current() is second


# -- export ------------------------------------------------------------------


def test_export_roundtrip_and_validation(tmp_path):
    tel = telemetry.install(profile=True)
    engine = Engine()
    tel.bind_engine(engine)
    tel.registry.counter("demo.count").inc(5)
    tel.trace.emit("demo.event", detail="x")
    engine.call_at(0.1, lambda: None)
    engine.run()
    path = tmp_path / "run.jsonl"
    lines = tel.export(path)
    assert lines >= 4  # header + metric + trace + profile

    records = load(path)
    assert validate_report(records) == []
    assert records[0]["schema"] == SCHEMA
    metric = next(r for r in records if r["type"] == "metric")
    assert metric == {"type": "metric", "name": "demo.count",
                      "kind": "counter", "value": 5}
    trace_line = next(r for r in records if r["type"] == "trace")
    assert trace_line["fields"] == {"detail": "x"}


def test_export_skips_disabled_metrics(tmp_path):
    tel = telemetry.install()
    tel.registry.counter("kept").inc()
    tel.registry.counter("hidden").inc()
    tel.registry.disable("hidden")
    tel.export(tmp_path / "run.jsonl")
    names = [r["name"] for r in load(tmp_path / "run.jsonl")
             if r["type"] == "metric"]
    assert names == ["kept"]


def test_export_coerces_unjsonable_fields(tmp_path):
    tel = telemetry.install()
    tel.trace.emit("weird", obj=object())
    path = tmp_path / "run.jsonl"
    tel.export(path)
    records = load(path)  # must parse — repr() fallback kept it JSON
    trace_line = next(r for r in records if r["type"] == "trace")
    assert "object" in trace_line["fields"]["obj"]


def test_validate_rejects_garbage(tmp_path):
    assert validate_report([]) == ["file is empty"]
    assert any("header" in p for p in
               validate_report([{"type": "metric", "name": "x",
                                 "kind": "counter", "value": 1}]))
    assert any("unknown schema" in p for p in
               validate_report([{"type": "header", "schema": "nope/v9"}]))
    assert any("missing" in p for p in
               validate_report([{"type": "header", "schema": SCHEMA},
                                {"type": "span", "label": "x"}]))
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "header"\n')
    with pytest.raises(ValueError):
        load(bad)


def test_write_jsonl_counts_lines(tmp_path):
    path = tmp_path / "x.jsonl"
    assert write_jsonl(path, [{"a": 1}, {"b": (1, 2)}]) == 2
    assert json.loads(path.read_text().splitlines()[1]) == {"b": [1, 2]}
