"""Seeded end-to-end determinism for the burst datapath.

The burst pipeline ships with its own legacy switches (per-packet link
transmits, per-packet datapath dispatch, unmemoized session keys). With
the switches on, even single-packet sends route through the full burst
machinery — classify-run, batched CPU charge, coalesced heap entry — so
these tests exercise every burst layer, not just the size-1 fallback.
They run scaled-down fig9/fig12 experiments with bursting on and off and
require *identical* result tables, and compose the check with the
process-pool sweep (``--jobs 2``).
"""

import pytest

from repro.fabric.link import Link
from repro.net.five_tuple import FiveTuple
from repro.vswitch.vswitch import Datapath

_SWITCHES = (
    (Link, "burst"),
    (Datapath, "batching"),
    (FiveTuple, "memoize_key"),
)


@pytest.fixture
def burst_mode():
    """Callable flipping the burst datapath between on and legacy."""
    saved = [(cls, name, getattr(cls, name)) for cls, name in _SWITCHES]

    def enable(batched: bool) -> None:
        for cls, name in _SWITCHES:
            setattr(cls, name, batched)

    yield enable
    for cls, name, value in saved:
        setattr(cls, name, value)


FIG9_KWARGS = dict(fe_counts=(0, 2), duration=0.4, warmup=0.2,
                   concurrency_per_client=8, seed=3)
FIG12_KWARGS = dict(load_levels=(8,), seed=2)


def test_fig9_table_identical_with_and_without_bursting(burst_mode):
    from repro.experiments import fig9
    burst_mode(True)
    batched = fig9.run(**FIG9_KWARGS)
    burst_mode(False)
    legacy = fig9.run(**FIG9_KWARGS)
    assert batched.rows == legacy.rows


def test_fig12_table_identical_with_and_without_bursting(burst_mode):
    from repro.experiments import fig12
    burst_mode(True)
    batched = fig12.run(**FIG12_KWARGS)
    burst_mode(False)
    legacy = fig12.run(**FIG12_KWARGS)
    assert batched.rows == legacy.rows


def test_fig9_bursting_composes_with_parallel_sweep(burst_mode):
    """Burst determinism composed with the process-pool fan-out: workers
    re-import the modules and so run with the default (batched) switches;
    their rows must match both an in-process batched run and an
    in-process legacy run."""
    from repro.experiments import fig9
    burst_mode(True)
    fanned_out = fig9.run(jobs=2, **FIG9_KWARGS)
    in_process = fig9.run(jobs=1, **FIG9_KWARGS)
    assert fanned_out.rows == in_process.rows
    burst_mode(False)
    legacy = fig9.run(jobs=1, **FIG9_KWARGS)
    assert fanned_out.rows == legacy.rows


def test_burst_run_to_run_deterministic(burst_mode):
    from repro.experiments import fig12
    burst_mode(True)
    first = fig12.run(**FIG12_KWARGS)
    second = fig12.run(**FIG12_KWARGS)
    assert first.rows == second.rows
