"""Tests for packet-level workload generators."""

import pytest

from repro.host import GuestTcp, Vm
from repro.sim import SeededRng
from repro.workloads import (ConcurrentFlowHolder, CrrLoadGenerator,
                             ElephantFlow, SynFlood)

from tests.conftest import TENANT_A, TENANT_B, build_cloud


def crr_setup(rate_cps=50, client_vcpus=8):
    cloud = build_cloud()
    client_vm = Vm(cloud.engine, "client", vcpus=client_vcpus)
    server_vm = Vm(cloud.engine, "server", vcpus=8)
    client_vm.attach_vnic(cloud.vnic_a)
    server_vm.attach_vnic(cloud.vnic_b)
    client = GuestTcp(client_vm, cloud.vnic_a)
    server = GuestTcp(server_vm, cloud.vnic_b)
    server.serve(80)
    gen = CrrLoadGenerator(cloud.engine, client, TENANT_B, 80,
                           rate_cps=rate_cps, rng=SeededRng(1, "gen"))
    return cloud, gen


# -- CRR generator -------------------------------------------------------------

def test_crr_achieves_offered_rate_under_capacity():
    cloud, gen = crr_setup(rate_cps=50)
    gen.run(duration=2.0)
    cloud.engine.run(until=4.0)
    result = gen.result
    assert result.offered == pytest.approx(100, rel=0.4)
    assert result.completed == result.offered  # no drops at light load
    assert result.failure_fraction == 0.0
    assert 0 < result.achieved_cps <= result.offered_cps * 1.01


def test_crr_saturates_at_vswitch_capacity():
    cloud, gen = crr_setup(rate_cps=20000)
    gen.run(duration=1.0)
    cloud.engine.run(until=3.0)
    result = gen.result
    # Offered far above the scaled vSwitch's CPS capability: completions
    # saturate well below offered, with failures.
    assert result.completed < result.offered * 0.7
    assert result.failed > 0


def test_crr_latency_summary():
    cloud, gen = crr_setup(rate_cps=30)
    gen.run(duration=1.0)
    cloud.engine.run(until=3.0)
    summary = gen.result.latency_summary()
    assert 0 < summary["avg"] < 0.1
    assert summary["P99"] >= summary["P50"]


# -- concurrent flow holder ------------------------------------------------------------

def test_flow_holder_establishes_target_flows():
    cloud = build_cloud()
    vm = Vm(cloud.engine, "holder", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    cloud.vnic_b.attach_guest(lambda pkt: None)
    holder = ConcurrentFlowHolder(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                                  target=100, ramp_rate=500.0).start()
    cloud.engine.run(until=1.0)
    holder.stop()
    assert holder.opened == 100
    assert holder.established() == 100


def test_flow_holder_keepalive_prevents_aging():
    cloud = build_cloud()
    vm = Vm(cloud.engine, "holder", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.start_aging(interval=0.25)
    holder = ConcurrentFlowHolder(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                                  target=20, keepalive=0.4).start()
    cloud.engine.run(until=4.0)
    assert holder.established() == 20  # kept alive past SYN aging
    holder.stop()


# -- SYN flood ----------------------------------------------------------------------------

def test_syn_flood_creates_embryonic_state_reclaimed_by_aging():
    cloud = build_cloud()
    vm = Vm(cloud.engine, "attacker", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.start_aging(interval=0.25)
    flood = SynFlood(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                     rate_pps=200, rng=SeededRng(2, "f")).run(duration=1.0)
    cloud.engine.run(until=1.0)
    assert flood.sent > 100
    during = len(cloud.vswitch_a.session_table)
    assert during > 50
    # After the flood stops, the short embryonic aging reclaims the states.
    cloud.engine.run(until=4.0)
    assert len(cloud.vswitch_a.session_table) < during / 5


# -- elephant flow -----------------------------------------------------------------------------

def test_elephant_is_one_flow_many_packets():
    cloud = build_cloud()
    vm = Vm(cloud.engine, "pump", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    got = []
    cloud.vnic_b.attach_guest(got.append)
    elephant = ElephantFlow(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                            rate_pps=500).run(duration=0.5)
    cloud.engine.run(until=1.0)
    assert elephant.sent > 200
    assert len(got) > 200
    # One session despite hundreds of packets.
    assert cloud.vswitch_a.stats.slow_path_lookups == 1
    assert all(pkt.five_tuple() == elephant.five_tuple for pkt in got)


# -- burst emission ----------------------------------------------------------------------

def test_elephant_burst_is_still_one_flow():
    cloud = build_cloud()
    vm = Vm(cloud.engine, "pump", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    got = []
    cloud.vnic_b.attach_guest(got.append)
    elephant = ElephantFlow(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                            rate_pps=500, burst=8).run(duration=0.5)
    cloud.engine.run(until=1.0)
    assert elephant.sent > 200
    assert len(got) > 200
    # Bursting changes the emission pattern, not the flow structure.
    assert cloud.vswitch_a.stats.slow_path_lookups == 1
    assert all(pkt.five_tuple() == elephant.five_tuple for pkt in got)


def test_syn_flood_burst_creates_same_sessions():
    def flood_sessions(burst):
        cloud = build_cloud()
        vm = Vm(cloud.engine, "attacker", vcpus=8)
        vm.attach_vnic(cloud.vnic_a)
        cloud.vnic_b.attach_guest(lambda pkt: None)
        SynFlood(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                 rate_pps=200, rng=SeededRng(2, "f"),
                 burst=burst).run(duration=1.0)
        cloud.engine.run(until=1.0)
        return sorted((e.five_tuple.src_port, e.five_tuple.dst_port)
                      for e in cloud.vswitch_a.session_table)

    per_packet = flood_sessions(burst=1)
    bursty = flood_sessions(burst=8)
    assert len(per_packet) > 100
    # Same sport rotation, so the same session population (modulo the
    # tail truncated at the duration boundary).
    shorter = min(len(per_packet), len(bursty))
    assert shorter > 100
    assert set(bursty[:shorter]) <= set(per_packet) or \
        set(per_packet[:shorter]) <= set(bursty)


def test_flow_holder_burst_keepalive_prevents_aging():
    cloud = build_cloud()
    vm = Vm(cloud.engine, "holder", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.start_aging(interval=0.25)
    holder = ConcurrentFlowHolder(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                                  target=20, keepalive=0.4,
                                  burst=8).start()
    cloud.engine.run(until=4.0)
    assert holder.established() == 20  # burst keepalives still refresh all
    holder.stop()
