"""Tests for the fault-injection subsystem: events, plans, the fuzzer,
the injector, the invariant checkers, and the chaos soak itself."""

import pytest

from repro.controller import FePlacement, NezhaController
from repro.core.offload import OffloadState
from repro.errors import ConfigError
from repro.faults import (FaultEvent, FaultFuzzer, FaultInjector, FaultKind,
                          FaultPlan, FuzzRates, check_handles,
                          check_packet_conservation, check_runtime)
from repro.sim import SeededRng

from tests.conftest import build_nezha_env


# -- events / plans ----------------------------------------------------------

def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, FaultKind.CRASH_VSWITCH, target="x")
    with pytest.raises(ValueError):
        FaultEvent(1.0, FaultKind.LINK_FLAP, target="x", duration=-0.1)
    with pytest.raises(ValueError):
        FaultEvent(1.0, FaultKind.RPC_STORM)  # storms need a mode
    event = FaultEvent(1.0, FaultKind.RPC_STORM, mode="dup", duration=0.5)
    assert "dup" in event.describe()


def test_fault_plan_orders_counts_and_horizon():
    plan = FaultPlan()
    plan.add(FaultEvent(2.0, FaultKind.LINK_FLAP, target="s1", duration=1.0))
    plan.add(FaultEvent(0.5, FaultKind.CRASH_VSWITCH, target="v1",
                        duration=0.2))
    assert [e.at for e in plan] == [0.5, 2.0]
    assert plan.horizon == 3.0
    assert plan.count(FaultKind.LINK_FLAP) == 1
    assert FaultKind.CRASH_VSWITCH in plan.kinds()


def test_fault_plan_schedule_is_one_shot():
    env = build_nezha_env(start_learners=False)
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo)
    plan = FaultPlan([FaultEvent(0.1, FaultKind.CRASH_VSWITCH,
                                 target=env.vswitches[2].name,
                                 duration=0.1)])
    plan.schedule(injector)
    with pytest.raises(ConfigError):
        plan.schedule(injector)


# -- fuzzer ------------------------------------------------------------------

def _fuzzer(seed, **kwargs):
    return FaultFuzzer(SeededRng(seed, "fuzz-test"),
                       ["vs-a", "vs-b", "vs-c"], ["srv-0", "srv-1"],
                       **kwargs)


def test_fuzzer_is_deterministic_per_seed():
    plan_a = _fuzzer(11).generate(5.0)
    plan_b = _fuzzer(11).generate(5.0)
    assert [e.describe() for e in plan_a] == [e.describe() for e in plan_b]
    plan_c = _fuzzer(12).generate(5.0)
    assert ([e.describe() for e in plan_a]
            != [e.describe() for e in plan_c])


def test_fuzzer_guarantees_min_per_kind():
    # Rates low enough that Poisson arrivals alone would frequently miss
    # a kind inside the horizon.
    rates = FuzzRates(crash=0.01, link_flap=0.01, partition=0.01,
                      rpc_storm=0.01, learner_drop=0.01,
                      kill_controller=0.01)
    plan = _fuzzer(3, rates=rates).generate(2.0, min_per_kind=1)
    assert set(plan.kinds()) == set(FaultKind)


def test_fuzzer_rejects_bad_input():
    with pytest.raises(ConfigError):
        FaultFuzzer(SeededRng(0), [], [])
    with pytest.raises(ConfigError):
        _fuzzer(0).generate(0.0)


# -- injector ----------------------------------------------------------------

def test_injector_crash_heals_and_overlap_extends():
    env = build_nezha_env(start_learners=False)
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo)
    victim = env.vswitches[2]
    injector.apply(FaultEvent(0.0, FaultKind.CRASH_VSWITCH,
                              target=victim.name, duration=0.5))
    # A second crash at t=0.3 extends the outage to t=0.8: the first
    # heal (t=0.5) must not resurrect the vSwitch early.
    env.engine.call_at(0.3, injector.apply,
                       FaultEvent(0.3, FaultKind.CRASH_VSWITCH,
                                  target=victim.name, duration=0.5))
    env.engine.run(until=0.6)
    assert victim.crashed
    env.engine.run(until=1.0)
    assert not victim.crashed
    assert injector.injected["crash_vswitch"] == 2


def test_injector_link_flap_drops_then_restores():
    env = build_nezha_env(start_learners=False)
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo)
    server = env.topo.servers[2]
    injector.apply(FaultEvent(0.0, FaultKind.LINK_FLAP,
                              target=server.name, duration=0.4))
    down = [l for l in env.topo.links
            if server in (l.a.device, l.b.device)]
    assert down and all(not l.up for l in down)
    env.engine.run(until=1.0)
    assert all(l.up for l in env.topo.links)


def test_injector_rpc_storm_sabotages_offload():
    env = build_nezha_env()
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo, orchestrator=env.orchestrator,
                             rpc_drop_prob=1.0)
    injector.apply(FaultEvent(0.0, FaultKind.RPC_STORM, mode="drop",
                              duration=30.0))
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=5.0)
    # Every attempt dropped: the first stage gives up and the offload
    # aborts cleanly instead of wedging.
    assert env.orchestrator.rpc_giveups >= 1
    assert env.orchestrator.aborted_offloads == 1
    assert handle.failed
    assert env.orchestrator.handles == {}
    assert injector.injected["rpc_drop"] >= 4


def test_injector_learner_window_drops_pulls():
    env = build_nezha_env(start_learners=False)
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo, learners=env.learners,
                             learner_drop_prob=1.0)
    injector.apply(FaultEvent(0.0, FaultKind.LEARNER_DROP, duration=0.5))
    env.learners[0].refresh()
    assert env.learners[0].pulls_dropped == 1
    assert injector.injected["learner_pull_drop"] == 1
    env.engine.run(until=1.0)  # window over
    env.learners[0].refresh()
    assert env.learners[0].pulls_dropped == 1


def test_injector_kills_and_restarts_controller():
    env = build_nezha_env()
    controller = NezhaController(env.engine, env.gateway, env.orchestrator,
                                 FePlacement(env.topo, {}))
    controller.start()
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo, controller=controller)
    injector.apply(FaultEvent(0.0, FaultKind.KILL_CONTROLLER, duration=0.3))
    assert not controller._started
    env.engine.run(until=1.0)
    assert controller._started


def test_injector_heal_all_recovers_everything():
    env = build_nezha_env()
    controller = NezhaController(env.engine, env.gateway, env.orchestrator,
                                 FePlacement(env.topo, {}))
    controller.start()
    injector = FaultInjector(env.engine, vswitches=env.vswitches,
                             topo=env.topo, controller=controller)
    injector.apply(FaultEvent(0.0, FaultKind.CRASH_VSWITCH,
                              target=env.vswitches[3].name, duration=60.0))
    injector.apply(FaultEvent(0.0, FaultKind.LINK_FLAP,
                              target=env.topo.servers[2].name,
                              duration=60.0))
    injector.apply(FaultEvent(0.0, FaultKind.KILL_CONTROLLER,
                              duration=60.0))
    injector.heal_all()
    assert not env.vswitches[3].crashed
    assert all(l.up for l in env.topo.links)
    assert controller._started


# -- invariant checkers ------------------------------------------------------

def test_check_handles_flags_orphan_fes():
    env = build_nezha_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=2.0)
    assert handle.state is OffloadState.ACTIVE
    assert check_handles(env.orchestrator) == []
    # Simulate a lost handle: FEs still registered on their agents but no
    # handle tracks them.
    env.orchestrator.handles.pop(env.vnic_b.vnic_id)
    violations = check_handles(env.orchestrator)
    assert violations and all("orphan FE" in v for v in violations)


def test_check_handles_flags_inactive_registered():
    env = build_nezha_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=2.0)
    handle.state = OffloadState.INACTIVE
    assert any("INACTIVE" in v for v in check_handles(env.orchestrator))


def test_packet_conservation_detects_phantom_receives():
    env = build_nezha_env(start_learners=False)
    assert check_packet_conservation(env.topo, quiesced=True) == []
    env.topo.servers[0].rx_packets += 1  # received more than was sent
    assert check_packet_conservation(env.topo, quiesced=False)
    assert check_packet_conservation(env.topo, quiesced=True)


def test_check_runtime_clean_on_healthy_env():
    env = build_nezha_env()
    env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    env.engine.run(until=2.0)
    assert check_runtime(env.orchestrator, env.vswitches, env.topo) == []


# -- the soak itself ---------------------------------------------------------

def test_chaos_soak_fixed_seed_is_clean():
    """The PR's acceptance gate: a fixed-seed soak injects >= 200 fault
    actions covering every fault kind and ends with zero invariant
    violations, runtime and quiesced."""
    from repro.experiments.chaos import run_soak
    out = run_soak()
    assert out["total_injected"] >= 200
    assert set(out["kinds"]) == {kind.value for kind in FaultKind}
    assert out["runtime_violations"] == []
    assert out["quiesced_violations"] == []
    # The soak actually exercised the machinery under test.
    assert out["failovers"] >= 1
    assert out["completed"] > 0
