"""Seeded end-to-end determinism for the flow-record datapath.

This PR's switches — array-backed flow records, direct CPU dispatch and
the fluid fast-forward — must be invisible to every observable result:
scaled-down fig9/fig12 runs with the switches on and off must produce
*identical* tables, composed with the process-pool sweep (``--jobs 2``)
and with the full telemetry stack installed. The fluid mode additionally
must preserve every traffic aggregate of an elephant-burst pipeline even
though it collapses per-packet events into run descriptors.
"""

from dataclasses import asdict

import pytest

from repro import telemetry
from repro.host.vm import Vm
from repro.sim.resources import CpuResource
from repro.vswitch.flow_records import FlowRecordStore, FluidMode
from repro.workloads.elephant import ElephantFlow

from tests.conftest import TENANT_B, build_cloud

_SWITCHES = (
    (FlowRecordStore, "enabled"),
    (CpuResource, "direct_dispatch"),
)


@pytest.fixture
def record_mode():
    """Callable flipping the flow-record datapath between on and legacy;
    ``fluid=True`` additionally enables analytic fast-forward."""
    saved = [(cls, name, getattr(cls, name)) for cls, name in _SWITCHES]
    saved.append((FluidMode, "enabled", FluidMode.enabled))

    def enable(records: bool, fluid: bool = False) -> None:
        for cls, name in _SWITCHES:
            setattr(cls, name, records)
        FluidMode.enabled = fluid

    yield enable
    for cls, name, value in saved:
        setattr(cls, name, value)


FIG9_KWARGS = dict(fe_counts=(0, 2), duration=0.4, warmup=0.2,
                   concurrency_per_client=8, seed=3)
FIG12_KWARGS = dict(load_levels=(8,), seed=2)


def test_fig9_table_identical_with_and_without_flow_records(record_mode):
    from repro.experiments import fig9
    record_mode(True)
    records = fig9.run(**FIG9_KWARGS)
    record_mode(False)
    legacy = fig9.run(**FIG9_KWARGS)
    assert records.rows == legacy.rows


def test_fig12_table_identical_with_and_without_flow_records(record_mode):
    from repro.experiments import fig12
    record_mode(True)
    records = fig12.run(**FIG12_KWARGS)
    record_mode(False)
    legacy = fig12.run(**FIG12_KWARGS)
    assert records.rows == legacy.rows


def test_fig9_table_identical_with_fluid_mode(record_mode):
    """CRR traffic never forms runs, so fluid mode must be a no-op on
    fig9 — byte-identical rows, not merely statistically close."""
    from repro.experiments import fig9
    record_mode(True, fluid=True)
    fluid = fig9.run(**FIG9_KWARGS)
    record_mode(True, fluid=False)
    plain = fig9.run(**FIG9_KWARGS)
    record_mode(False)
    legacy = fig9.run(**FIG9_KWARGS)
    assert fluid.rows == plain.rows == legacy.rows


def test_fig9_flow_records_compose_with_parallel_sweep(record_mode):
    """Workers re-import the modules and run with the default (records
    on) switches; their rows must match both an in-process records run
    and an in-process legacy run."""
    from repro.experiments import fig9
    record_mode(True)
    fanned_out = fig9.run(jobs=2, **FIG9_KWARGS)
    in_process = fig9.run(jobs=1, **FIG9_KWARGS)
    assert fanned_out.rows == in_process.rows
    record_mode(False)
    legacy = fig9.run(jobs=1, **FIG9_KWARGS)
    assert fanned_out.rows == legacy.rows


def test_fig12_identical_with_telemetry_installed(record_mode):
    """Observation purity composed with the new datapath: the telemetry
    stack forces span materialization boundaries, which must change
    nothing measurable."""
    from repro.experiments import fig12
    record_mode(True)
    bare = fig12.run(**FIG12_KWARGS)
    telemetry.install(profile=True)
    try:
        observed = fig12.run(**FIG12_KWARGS)
    finally:
        telemetry.uninstall()
    record_mode(False)
    legacy = fig12.run(**FIG12_KWARGS)
    assert observed.rows == bare.rows == legacy.rows


def test_flow_records_run_to_run_deterministic(record_mode):
    from repro.experiments import fig12
    record_mode(True)
    first = fig12.run(**FIG12_KWARGS)
    second = fig12.run(**FIG12_KWARGS)
    assert first.rows == second.rows


def _elephant_totals(fluid: bool):
    """Pump an elephant burst pipeline end to end; return every traffic
    aggregate (packet/byte/drop counters on both vSwitches, delivery
    counts, fabric byte totals). Timestamps are deliberately absent:
    fluid mode collapses mid-run event times by design."""
    cloud = build_cloud()
    vm = Vm(cloud.engine, "pump", vcpus=8)
    vm.attach_vnic(cloud.vnic_a)
    delivered = []
    cloud.vnic_b.attach_guest(delivered.append)
    elephant = ElephantFlow(cloud.engine, vm, cloud.vnic_a, TENANT_B,
                            rate_pps=2000, burst=16).run(duration=0.5)
    cloud.engine.run(until=1.0)
    # Materialize any slot residue so session counters are comparable.
    for table in (cloud.vswitch_a.session_table,
                  cloud.vswitch_b.session_table):
        for entry in table:
            if entry.slot >= 0 and entry.state is not None:
                table.records.flush(entry.slot, entry.state)
    entry = cloud.vswitch_a.session_table.lookup(
        cloud.vnic_a.vni, elephant.five_tuple)
    return {
        "sent": elephant.sent,
        "stats_a": asdict(cloud.vswitch_a.stats),
        "stats_b": asdict(cloud.vswitch_b.stats),
        "rx_delivered": cloud.vnic_b.rx_delivered,
        "delivered_packets": len(delivered),
        "kernel_drops": vm.kernel_drops,
        "flow_counters": (entry.state.packets_tx, entry.state.bytes_tx,
                          entry.state.packets_rx, entry.state.bytes_rx),
    }


def test_elephant_fluid_totals_identical(record_mode):
    record_mode(True, fluid=True)
    fluid = _elephant_totals(fluid=True)
    record_mode(True, fluid=False)
    burst = _elephant_totals(fluid=False)
    assert fluid == burst
    assert fluid["sent"] > 200  # the pipeline actually pumped
