"""Tests for the Sirius-style baseline model."""

import pytest

from repro.errors import ConfigError
from repro.net import FiveTuple, IPv4Address
from repro.baselines import BucketMigration, SiriusPool


def ft(i):
    return FiveTuple(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"),
                     6, 1000 + i, 80)


# -- SiriusPool -----------------------------------------------------------------

def test_sirius_cps_halved_by_inline_replication():
    pool = SiriusPool(n_cards=4, card_cps_capacity=100_000)
    assert pool.cps_capacity() == pytest.approx(200_000)
    assert pool.nezha_equivalent_cps() == pytest.approx(400_000)
    assert pool.nezha_equivalent_cps() == 2 * pool.cps_capacity()


def test_sirius_flow_capacity_halved():
    pool = SiriusPool(n_cards=4, card_flow_capacity=1_000_000)
    assert pool.flow_capacity() == 2_000_000


def test_sirius_validation():
    with pytest.raises(ConfigError):
        SiriusPool(n_cards=1)
    with pytest.raises(ConfigError):
        SiriusPool(n_cards=3)


# -- BucketMigration ------------------------------------------------------------------

def test_buckets_assign_round_robin_initially():
    mig = BucketMigration(n_buckets=8, n_cards=4)
    assert sorted(mig.load_per_card().values()) == [0, 0, 0, 0]
    cards = {mig.card_of(ft(i)) for i in range(100)}
    assert cards == {0, 1, 2, 3}


def test_bucket_validation():
    with pytest.raises(ConfigError):
        BucketMigration(n_buckets=2, n_cards=4)


def test_rebalance_transfers_state_for_long_lived_flows():
    mig = BucketMigration(n_buckets=16, n_cards=2)
    # Pile long-lived flows onto card 0's buckets.
    for i in range(400):
        mig.add_long_lived_flow(ft(i))
    loads = mig.load_per_card()
    # Skew it: move everything currently on card 1 conceptually by adding
    # imbalance through extra flows in card-0 buckets.
    for bucket, card in mig.assignment.items():
        if card == 0:
            mig.long_lived[bucket] += 100
    moved, transferred = mig.rebalance()
    assert moved > 0
    assert transferred > 0                  # Sirius pays state transfer
    after = mig.load_per_card()
    assert max(after.values()) - min(after.values()) < \
        max(loads.values()) + 800           # imbalance reduced


def test_add_card_moves_buckets_with_their_state():
    mig = BucketMigration(n_buckets=12, n_cards=3)
    for i in range(300):
        mig.add_long_lived_flow(ft(i))
    moved, transferred = mig.add_card()
    assert mig.n_cards == 4
    assert moved == 3          # 12 buckets / 4 cards
    assert transferred > 0
    assert 3 in mig.load_per_card()


def test_nezha_contrast_no_state_transfer():
    """The number Nezha avoids: its FEs are stateless, so scale-out
    transfers exactly zero states — compare BucketMigration.add_card."""
    mig = BucketMigration(n_buckets=64, n_cards=4)
    for i in range(1000):
        mig.add_long_lived_flow(ft(i))
    _moved, transferred = mig.add_card()
    assert transferred > 100   # Sirius: significant transfer
    # Nezha equivalent: cache misses only, no state movement (by design —
    # FEs store no state at all; asserted structurally elsewhere).
