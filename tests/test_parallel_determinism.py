"""Parallel execution must be semantically invisible: for every
refactored experiment, ``jobs=2`` renders a table byte-identical to the
``jobs=1`` legacy in-process path.

Each sweep point builds its own engine and derives randomness from plain
integer seeds carried in the point, so running it in a pool worker (a
fresh process) and running it Nth-in-sequence in this process must agree
exactly — these tests also catch any process-global state leaking into
results. Parameters are scaled far below paper fidelity: identity, not
shape, is the property under test.
"""

import pytest

from repro.experiments import (fig2, fig9, fig10, fig11, fig12, fig14,
                               tablea1)
from repro.experiments.capacity import CapacityModel, sweep_gains

CASES = [
    (fig2, dict(n_vms=2, duration=0.3, concurrency_per_client=8, seed=1)),
    (fig9, dict(fe_counts=(0, 2), duration=0.3, warmup=0.1,
                concurrency_per_client=8, seed=3)),
    (fig10, dict(vcpu_counts=(16,), duration=0.3, warmup=0.1,
                 concurrency_per_client=8, seed=1)),
    (fig11, dict(duration=3.0, seed=0)),
    (fig12, dict(load_levels=(8,), duration=0.5, seed=2)),
    (fig14, dict(kill_at=1.0, duration=2.5, seed=0)),
    (tablea1, dict(lookups_per_cell=10)),
]


@pytest.mark.parametrize("module,kwargs", CASES,
                         ids=[module.__name__.rsplit(".", 1)[-1]
                              for module, _ in CASES])
def test_jobs_2_table_identical_to_jobs_1(module, kwargs):
    sequential = module.run(jobs=1, **kwargs)
    parallel = module.run(jobs=2, **kwargs)
    assert parallel.to_text() == sequential.to_text()
    assert parallel.rows  # the pool actually produced data


def test_capacity_sweep_gains_identical_across_jobs():
    model = CapacityModel()
    fe_counts = (0, 1, 2, 4, 8)
    assert sweep_gains(fe_counts, model=model, jobs=2) == \
        sweep_gains(fe_counts, model=model, jobs=1)


def test_capacity_sweep_gains_matches_model():
    model = CapacityModel()
    rows = sweep_gains((0, 4), model=model)
    assert [row["n_fes"] for row in rows] == [0, 4]
    assert rows[0] == {"n_fes": 0, "cps_gain": 1.0, "flows_gain": 1.0,
                       "vnics_gain": 1.0}
    assert rows[1]["flows_gain"] == pytest.approx(model.flows_gain(4))
    assert rows[1]["cps_gain"] == pytest.approx(model.cps_gain(4))
