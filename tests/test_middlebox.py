"""Tests for middlebox profiles and applications."""

import pytest

from repro.fabric import Topology
from repro.host import Vm
from repro.middlebox import (NatGatewayApp, SlbApp, TransitRouterApp,
                             lb_profile, nat_profile, tr_profile)
from repro.net import IPv4Address, MacAddress, Packet, TcpFlags
from repro.sim import Engine
from repro.vswitch import CostModel, Vnic, VSwitch
from repro.vswitch.rule_tables import MappingEntry
from repro.vswitch.vswitch import make_standard_chain

from tests.conftest import wire_mapping


# -- profiles ---------------------------------------------------------------------

def test_profile_chain_compositions():
    cm = CostModel.testbed()
    lb_chain = lb_profile().build_chain(cm)
    nat_chain = nat_profile().build_chain(cm)
    tr_chain = tr_profile().build_chain(cm)
    assert lb_chain.table("acl") is not None
    assert nat_chain.table("acl") is not None
    assert tr_chain.table("acl") is None          # TR bypasses the ACL
    assert len(tr_chain.tables) < len(nat_chain.tables)


def test_tr_lookup_cheapest_lb_nat_pricier():
    """§6.3.1: the more complex the rule lookup, the bigger the Nezha gain;
    TR's lookup is the cheapest of the three."""
    cm = CostModel.testbed()
    costs = {p.name: p.build_chain(cm).lookup_cost(64)
             for p in (lb_profile(), nat_profile(), tr_profile())}
    assert costs["transit-router"] < costs["nat-gateway"]
    assert costs["transit-router"] < costs["load-balancer"]


def test_profiles_scale_table_memory():
    assert lb_profile(scale=1.0).table_memory_bytes == pytest.approx(
        50 * lb_profile(scale=50.0).table_memory_bytes, rel=1e-5)


# -- a little 4-party cloud for apps -------------------------------------------------

VNI = 100


def build_app_cloud(n=4):
    """n servers, one vNIC each at 192.168.0.(i+1), fully meshed mapping."""
    engine = Engine()
    cm = CostModel.testbed()
    topo = Topology.leaf_spine(engine, 1, n)
    vswitches = [VSwitch(engine, s, cm) for s in topo.servers]
    chains = [make_standard_chain(cm) for _ in range(n)]
    vnics = []
    for i, chain in enumerate(chains):
        ip = IPv4Address(f"192.168.0.{i + 1}")
        for j in range(n):
            wire_mapping(chain.table("vnic_server_mapping"), VNI,
                         IPv4Address(f"192.168.0.{j + 1}"), topo.servers[j])
        vnic = Vnic(i + 1, VNI, ip, MacAddress(0xC0 + i), chain)
        vswitches[i].add_vnic(vnic)
        vnics.append(vnic)
    return engine, vswitches, vnics


# -- Transit router ------------------------------------------------------------------

def test_transit_router_forwards_between_attachments():
    engine, vswitches, vnics = build_app_cloud()
    # TR owns vnics[1] and vnics[2]; hosts route 192.168.0.4 via vnics[2].
    tr_vm = Vm(engine, "tr", vcpus=8)
    tr_vm.attach_vnic(vnics[1])
    tr_vm.attach_vnic(vnics[2])
    tr = TransitRouterApp(tr_vm)
    tr.attach(vnics[1])
    tr.attach(vnics[2])
    tr.add_route(IPv4Address("192.168.0.4"), 32, vnics[2])
    got = []
    vnics[3].attach_guest(got.append)
    # Client on server 0 sends toward .4 via the TR's attachment .2.
    pkt = Packet.tcp(vnics[0].tenant_ip, vnics[1].tenant_ip, 999, 179,
                     TcpFlags.of("syn"))
    pkt.inner_ipv4().dst = IPv4Address("192.168.0.4")
    # Overwrite dst: mapping on server0's chain must route the *TR's* IP,
    # so send to the TR explicitly and let the app re-route by inner dst.
    pkt2 = Packet.tcp(vnics[0].tenant_ip, vnics[1].tenant_ip, 999, 179,
                      TcpFlags.of("syn"))
    vswitches[0].send_from_vnic(vnics[0], pkt2)
    engine.run(until=0.5)
    assert tr.forwarded == 0 or got  # packet addressed to TR itself routes
    # Direct check of app routing: feed the TR a packet for .4.
    inbound = Packet.tcp(vnics[0].tenant_ip, IPv4Address("192.168.0.4"),
                         999, 179, TcpFlags.of("syn"))
    tr._on_packet(vnics[1], inbound)
    engine.run(until=1.0)
    assert tr.forwarded == 1
    assert len(got) == 1


def test_transit_router_drops_unrouted():
    engine, _vswitches, vnics = build_app_cloud()
    tr_vm = Vm(engine, "tr", vcpus=8)
    tr_vm.attach_vnic(vnics[1])
    tr = TransitRouterApp(tr_vm)
    tr.attach(vnics[1])
    pkt = Packet.tcp(vnics[0].tenant_ip, IPv4Address("10.9.9.9"), 1, 2,
                     TcpFlags.of("syn"))
    tr._on_packet(vnics[1], pkt)
    assert tr.no_route_drops == 1


# -- NAT gateway -----------------------------------------------------------------------

def test_nat_translates_and_reverses():
    engine, vswitches, vnics = build_app_cloud()
    nat_vm = Vm(engine, "nat", vcpus=8)
    nat_vm.attach_vnic(vnics[1])   # internal side
    nat_vm.attach_vnic(vnics[2])   # external side
    nat = NatGatewayApp(nat_vm, vnics[1], vnics[2])
    server_got = []
    vnics[3].attach_guest(server_got.append)

    # Client (server0) sends to the external server .4 via the NAT's
    # internal vNIC .2.
    client_pkt = Packet.tcp(vnics[0].tenant_ip, IPv4Address("192.168.0.4"),
                            5555, 80, TcpFlags.of("syn"))
    nat._on_internal(client_pkt)
    engine.run(until=0.5)
    assert nat.translations == 1
    assert len(server_got) == 1
    out = server_got[0]
    assert out.inner_ipv4().src == vnics[2].tenant_ip   # rewritten source
    ext_port = out.inner_l4().src_port

    # Return traffic hits the external vNIC and is reversed to the client.
    client_got = []
    vnics[0].attach_guest(client_got.append)
    back = Packet.tcp(IPv4Address("192.168.0.4"), vnics[2].tenant_ip,
                      80, ext_port, TcpFlags.of("syn", "ack"))
    nat._on_external(back)
    engine.run(until=1.0)
    assert nat.forwarded_in == 1
    assert len(client_got) == 1
    assert client_got[0].inner_l4().dst_port == 5555


def test_nat_reuses_mapping_per_flow():
    engine, _vs, vnics = build_app_cloud()
    nat_vm = Vm(engine, "nat", vcpus=8)
    nat_vm.attach_vnic(vnics[1])
    nat_vm.attach_vnic(vnics[2])
    nat = NatGatewayApp(nat_vm, vnics[1], vnics[2])
    for _ in range(3):
        pkt = Packet.tcp(vnics[0].tenant_ip, IPv4Address("192.168.0.4"),
                         5555, 80, TcpFlags.of("ack"))
        nat._on_internal(pkt)
    assert nat.translations == 1
    assert nat.active_translations() == 1
    assert nat.forwarded_out == 3


def test_nat_port_exhaustion():
    engine, _vs, vnics = build_app_cloud()
    nat_vm = Vm(engine, "nat", vcpus=8)
    nat_vm.attach_vnic(vnics[1])
    nat_vm.attach_vnic(vnics[2])
    nat = NatGatewayApp(nat_vm, vnics[1], vnics[2],
                        port_range=(10000, 10002))
    for sport in range(3):
        pkt = Packet.tcp(vnics[0].tenant_ip, IPv4Address("192.168.0.4"),
                         6000 + sport, 80, TcpFlags.of("syn"))
        nat._on_internal(pkt)
    assert nat.translations == 2
    assert nat.port_exhaustion_drops == 1


# -- SLB ------------------------------------------------------------------------------------

def test_slb_proxies_request_to_rs_and_back():
    engine, vswitches, vnics = build_app_cloud()
    lb_vm = Vm(engine, "lb", vcpus=8)
    lb_vm.attach_vnic(vnics[1])
    # RS is a simple responder VM on vnics[3].
    rs_vm = Vm(engine, "rs", vcpus=8)
    rs_vm.attach_vnic(vnics[3])
    from repro.host import GuestTcp
    rs = GuestTcp(rs_vm, vnics[3])
    rs.serve(8080)
    lb = SlbApp(lb_vm, vnics[1], vip_port=80,
                real_servers=[vnics[3].tenant_ip])

    client_got = []
    vnics[0].attach_guest(client_got.append)
    # Client SYN to the VIP.
    vswitches[0].send_from_vnic(vnics[0], Packet.tcp(
        vnics[0].tenant_ip, vnics[1].tenant_ip, 7777, 80,
        TcpFlags.of("syn")))
    engine.run(until=0.5)
    assert lb.client_transactions == 1
    assert any(p.find(TcpFlags.__mro__[0]) or True for p in client_got)
    # Client request.
    vswitches[0].send_from_vnic(vnics[0], Packet.tcp(
        vnics[0].tenant_ip, vnics[1].tenant_ip, 7777, 80,
        TcpFlags.of("psh", "ack"), b"GET /"))
    engine.run(until=2.0)
    assert lb.proxied_requests == 1
    assert lb.responses_returned == 1
    assert lb.persistent_backends == 1
    # The client saw: SYN/ACK + proxied response.
    payloads = [p.payload for p in client_got if p.payload]
    assert any(b"r" in pl for pl in payloads)
