"""Guarantee the operational trace kinds actually fire.

Dashboards and the post-mortem CLI key off these kind strings; a silent
rename or a dropped emit would only surface as an empty timeline. Each
test drives the real component to the condition and asserts the record
appears in the unified telemetry trace (components pick it up via
``active_trace`` because telemetry is installed around construction).
"""

import pytest

from repro import telemetry
from repro.faults.events import FaultEvent, FaultKind
from repro.faults.injector import FaultInjector
from repro.net import IPv4Address, Packet, TcpFlags

from tests.conftest import TENANT_A, TENANT_B, build_cloud


@pytest.fixture
def traced_cloud():
    """A two-server cloud whose components share the telemetry trace."""
    tel = telemetry.install()
    cloud = build_cloud()
    yield cloud, tel.trace
    telemetry.uninstall()


def syn(sport=1000, dst=TENANT_B):
    return Packet.tcp(TENANT_A, dst, sport, 80, TcpFlags.of("syn"))


def test_pkt_cpu_drop_fires(traced_cloud):
    cloud, trace = traced_cloud
    cloud.vnic_b.attach_guest(lambda pkt: None)
    for sport in range(3000):
        cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn(sport=1024 + sport))
    cloud.engine.run(until=2.0)
    assert cloud.vswitch_a.stats.cpu_drops > 0
    assert trace.count("pkt.cpu_drop") == cloud.vswitch_a.stats.cpu_drops
    assert trace.records("pkt.cpu_drop")[0].vswitch == cloud.vswitch_a.name


def test_pkt_no_route_fires(traced_cloud):
    cloud, trace = traced_cloud
    from repro.vswitch.actions import ActionKind, FinalAction
    action = FinalAction(kind=ActionKind.FORWARD)  # resolved, but no next hop
    cloud.vswitch_a.forward_overlay(syn(), action)
    assert cloud.vswitch_a.stats.no_route_drops == 1
    assert trace.count("pkt.no_route") == 1


def test_pkt_unknown_vnic_fires(traced_cloud):
    cloud, trace = traced_cloud
    cloud.vswitch_b.remove_vnic(cloud.vnic_b.vnic_id)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    cloud.engine.run(until=0.1)
    assert cloud.vswitch_b.stats.unknown_vnic_drops == 1
    records = trace.records("pkt.unknown_vnic")
    assert len(records) == 1
    assert records[0].vswitch == cloud.vswitch_b.name


def test_fault_injected_and_healed_fire(traced_cloud):
    cloud, trace = traced_cloud
    injector = FaultInjector(cloud.engine,
                             vswitches=[cloud.vswitch_a, cloud.vswitch_b],
                             topo=cloud.topo)
    event = FaultEvent(at=0.0, kind=FaultKind.CRASH_VSWITCH,
                       target=cloud.vswitch_a.name, duration=0.2)
    injector.apply(event)
    assert cloud.vswitch_a.crashed
    injected = trace.records("fault.injected")
    assert len(injected) == 1
    assert injected[0].fault == "crash_vswitch"
    assert injected[0].target == cloud.vswitch_a.name

    cloud.engine.run(until=0.5)
    assert not cloud.vswitch_a.crashed
    healed = trace.records("fault.healed")
    assert len(healed) == 1
    assert healed[0].target == cloud.vswitch_a.name


def test_monitor_target_down_fires(traced_cloud):
    cloud, trace = traced_cloud
    from repro.controller.monitor import HealthMonitor
    monitor = HealthMonitor(cloud.engine, cloud.topo.servers[0],
                            interval=0.1, miss_threshold=3)
    monitor.add_target(cloud.topo.servers[1])
    cloud.vswitch_b.crash()  # probes to B's vSwitch go unanswered
    monitor.start()
    cloud.engine.run(until=1.0)
    downs = trace.records("monitor.target_down")
    assert len(downs) == 1
    assert downs[0].target == cloud.topo.servers[1].name


def test_unrelated_tenant_traffic_emits_nothing_spurious(traced_cloud):
    """A clean delivery should add no drop/fault records to the stream."""
    cloud, trace = traced_cloud
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    cloud.engine.run(until=0.1)
    for kind in ("pkt.cpu_drop", "pkt.no_route", "pkt.unknown_vnic",
                 "fault.injected", "monitor.target_down"):
        assert trace.count(kind) == 0
