"""Tests for the hash-based FE selector (repro.core.load_balancer)."""

import pytest

from repro.errors import ConfigError
from repro.net import FiveTuple, IPv4Address, MacAddress
from repro.vswitch.rule_tables import Location
from repro.core import FeSelector


def loc(i):
    return Location(IPv4Address(f"10.0.0.{i}"), MacAddress(i))


def flows(n, dst_port=80):
    return [FiveTuple(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"),
                      6, 1024 + i, dst_port) for i in range(n)]


def test_pick_requires_fes():
    with pytest.raises(ConfigError):
        FeSelector().pick(flows(1)[0])


def test_pick_is_deterministic_per_flow():
    selector = FeSelector([loc(1), loc(2), loc(3)])
    ft = flows(1)[0]
    assert selector.pick(ft) == selector.pick(ft)


def test_flows_spread_across_fes():
    selector = FeSelector([loc(i) for i in range(1, 5)])
    shares = selector.share_of(flows(400))
    assert sum(shares.values()) == 400
    assert all(count > 50 for count in shares.values())


def test_add_duplicate_rejected():
    selector = FeSelector([loc(1)])
    with pytest.raises(ConfigError):
        selector.add(loc(1))


def test_remove_shifts_only_affected_flows():
    selector = FeSelector([loc(1), loc(2), loc(3), loc(4)])
    fts = flows(200)
    before = {ft: selector.pick(ft) for ft in fts}
    selector.remove(loc(4))
    after = {ft: selector.pick(ft) for ft in fts}
    # Every flow previously on loc(4) moved; others may move too (modulo
    # hashing, no consistent hashing by design) but most importantly no
    # flow still maps to the removed FE.
    assert all(location != loc(4) for location in after.values())
    moved_from_dead = [ft for ft in fts if before[ft] == loc(4)]
    assert moved_from_dead  # some flows were on the removed FE


def test_reseed_redistributes():
    selector = FeSelector([loc(1), loc(2), loc(3), loc(4)])
    fts = flows(200)
    before = {ft: selector.pick(ft) for ft in fts}
    selector.reseed(99)
    after = {ft: selector.pick(ft) for ft in fts}
    assert any(before[ft] != after[ft] for ft in fts)


def test_pin_elephant_flow():
    selector = FeSelector([loc(1), loc(2)])
    elephant = flows(1)[0]
    target = loc(2)
    selector.pin(elephant, target)
    assert selector.pick(elephant) == target
    selector.unpin(elephant)
    # Back to hash-based decision (may or may not equal target).
    assert selector.pick(elephant) in (loc(1), loc(2))


def test_pin_requires_active_fe():
    selector = FeSelector([loc(1)])
    with pytest.raises(ConfigError):
        selector.pin(flows(1)[0], loc(9))


def test_removing_fe_clears_its_pins():
    selector = FeSelector([loc(1), loc(2)])
    elephant = flows(1)[0]
    selector.pin(elephant, loc(2))
    selector.remove(loc(2))
    assert selector.pick(elephant) == loc(1)
