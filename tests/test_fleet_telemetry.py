"""Fleet-scale observability (ISSUE 10): shard metric snapshots and the
deterministic fold, the coordinator/controller decision journal, the
resident-pool runtime instrumentation, and the profiler's direct-dispatch
owner attribution.

The load-bearing properties:

* the fold is associative, commutative, and has :func:`empty_snapshot`
  as identity — which is what makes the slot-order merge byte-identical
  across every ``shards x jobs x resident`` split (the matrix test in
  ``test_fleet_sim.py`` checks the composed experiment);
* journal writes are pure observation — producing them cannot perturb
  the run — and every journaled event validates against the
  ``telemetry/v1`` decision schema;
* pool instrumentation lives in reply *meta*, never in reply values.
"""

import functools

import pytest

from repro import telemetry
from repro.fleet import (FleetCoordinator, FleetParams, make_shards,
                         run_shard_epoch)
from repro.telemetry import spans as _spans
from repro.telemetry.export import load, validate_report
from repro.telemetry.fleet import (FLEET_METRICS_SCHEMA, DecisionJournal,
                                   empty_snapshot, fold, fold_snapshots)
from repro.telemetry.profiler import EngineProfiler


# -- snapshots and the fold --------------------------------------------------

def _shard_snapshots(n_vswitches=80, shards=4, seed=0):
    params = FleetParams(seed=seed, n_vswitches=n_vswitches,
                         collect_metrics=True)
    return [run_shard_epoch((state, 0, {}, params))[1]["metrics"]
            for state in make_shards(params, shards)]


def test_shard_epoch_attaches_snapshot_only_when_collecting():
    params_off = FleetParams(seed=0, n_vswitches=50)
    _state, report = run_shard_epoch(
        (make_shards(params_off, 1)[0], 0, {}, params_off))
    assert "metrics" not in report

    params_on = FleetParams(seed=0, n_vswitches=50, collect_metrics=True)
    _state2, report_on = run_shard_epoch(
        (make_shards(params_on, 1)[0], 0, {}, params_on))
    snap = report_on["metrics"]
    assert snap["schema"] == FLEET_METRICS_SCHEMA
    assert snap["counters"]["vswitches"] == 50
    # Collecting changes nothing besides attaching the snapshot.
    stripped = {key: value for key, value in report_on.items()
                if key != "metrics"}
    assert stripped == report


def test_snapshot_values_are_integers():
    """Counters and bucket counts must be ints: float addition is not
    associative, which would break the fold contract."""
    for snap in _shard_snapshots():
        for key, value in snap["counters"].items():
            assert isinstance(value, int), key
        for name, hist in snap["hist"].items():
            assert all(isinstance(c, int) for c in hist["counts"]), name


def test_fold_of_shard_snapshots_matches_unsharded():
    params = FleetParams(seed=0, n_vswitches=80, collect_metrics=True)
    whole = run_shard_epoch(
        (make_shards(params, 1)[0], 0, {}, params))[1]["metrics"]
    parts = _shard_snapshots(n_vswitches=80, shards=4)
    assert fold_snapshots(parts) == whole


def test_fold_is_associative_and_commutative():
    parts = _shard_snapshots()
    left = functools.reduce(fold, parts)
    right = fold(parts[0], fold(parts[1], fold(parts[2], parts[3])))
    assert left == right
    assert fold(parts[1], parts[0]) == fold(parts[0], parts[1])


def test_fold_identity_and_empty_input():
    parts = _shard_snapshots(shards=2)
    whole = fold_snapshots(parts)
    assert fold(empty_snapshot(), whole) == whole
    assert fold(whole, empty_snapshot()) == whole
    assert fold_snapshots([]) == empty_snapshot()


def test_fold_rejects_mismatched_edges_and_foreign_dicts():
    good, bad = empty_snapshot(), empty_snapshot()
    bad["hist"]["hot_cpu"]["edges"][0] = 0.05
    with pytest.raises(ValueError):
        fold(good, bad)
    with pytest.raises(ValueError):
        fold({"schema": "nope"}, empty_snapshot())


# -- decision journal --------------------------------------------------------

def _hot(index, units, kinds=("cps",)):
    return {"index": index, "units": units, "kinds": list(kinds)}


def test_coordinator_journals_grants_denials_releases():
    journal = DecisionJournal()
    coordinator = FleetCoordinator(seed=0, pool_units=2, journal=journal)
    coordinator.settle(0, [{"hot": [_hot(5, 1), _hot(9, 5, ("flows",))]}])
    actions = [event["action"] for event in journal.to_dicts()]
    assert actions.count("grant") == 1
    assert actions.count("denial") == 1
    assert actions.count("mitigation") == 1
    assert actions[-1] == "settle"

    grant = next(e for e in journal.to_dicts() if e["action"] == "grant")
    assert grant["epoch"] == 0 and grant["index"] == 5
    assert grant["tenant"] == 5 % coordinator.n_tenants
    assert grant["requested"] == 1 and grant["granted"] == 1
    denial = next(e for e in journal.to_dicts() if e["action"] == "denial")
    assert denial["reason"] == "pool_exhausted" and denial["granted"] == 0
    settle = journal.to_dicts()[-1]
    assert settle["requests"] == 2 and settle["granted_new"] == 1
    assert "index" not in settle  # None fields are dropped

    # The quiet holder's grant is released on the next settle.
    coordinator.settle(1, [{"hot": []}])
    assert [e["action"] for e in journal.to_dicts()[-2:]] == \
        ["release", "settle"]


def test_coordinator_renewal_and_preemption_events():
    journal = DecisionJournal()
    coordinator = FleetCoordinator(seed=0, pool_units=4, n_tenants=2,
                                   policy="supernic", journal=journal)
    coordinator.settle(0, [{"hot": [_hot(1, 2)]}])  # tenant 1 at quota
    coordinator.pool_units = 2  # pool shrank under the holding
    coordinator.settle(1, [{"hot": [_hot(1, 2), _hot(0, 1)]}])
    actions = [event["action"] for event in journal.to_dicts()]
    assert "renewal" in actions
    assert "preemption" in actions
    preemption = next(e for e in journal.to_dicts()
                      if e["action"] == "preemption")
    assert preemption["reason"] == "over_quota"
    assert coordinator.preemptions == 1


def test_journal_on_off_does_not_change_settle_outcome():
    hot = [[_hot(3, 1), _hot(7, 2)], [_hot(3, 1)], []]
    outcomes = []
    for journal in (None, DecisionJournal()):
        coordinator = FleetCoordinator(seed=0, pool_units=3,
                                       journal=journal)
        grants = [coordinator.settle(epoch, [{"hot": entries}])
                  for epoch, entries in enumerate(hot)]
        outcomes.append((grants, coordinator.utilization,
                         coordinator.denied_requests,
                         dict(coordinator.overloads)))
    assert outcomes[0] == outcomes[1]


def test_coordinator_journal_wiring_defaults():
    assert FleetCoordinator(seed=0, pool_units=2).journal is None
    tel = telemetry.install()
    try:
        assert FleetCoordinator(seed=0, pool_units=2).journal \
            is tel.decisions
    finally:
        telemetry.uninstall()


def test_journal_overflow_keeps_earliest_and_drops_none_fields():
    journal = DecisionJournal(capacity=2)
    for index in range(4):
        journal.record("coordinator", "nezha", f"a{index}", reason=None)
    assert len(journal) == 2 and journal.dropped == 2
    assert [e["action"] for e in journal.to_dicts()] == ["a0", "a1"]
    assert all("reason" not in e for e in journal.to_dicts())
    assert set(journal.by_policy()) == {"nezha"}


def test_controller_seam_journals_through_policy_decide():
    from repro.controller import (ControllerConfig, FePlacement,
                                  NezhaController)
    from tests.conftest import build_nezha_env

    tel = telemetry.install()
    try:
        env = build_nezha_env(n_servers=4)
        controller = NezhaController(env.engine, env.gateway,
                                     env.orchestrator,
                                     FePlacement(env.topo, {}),
                                     config=ControllerConfig())
        controller._decide("no_fes", vnic=7)
        controller.policy.decide("scale_out", vnic=7, added=1)
        events = tel.decisions.to_dicts()
    finally:
        telemetry.uninstall()
    assert [e["action"] for e in events] == ["no_fes", "scale_out"]
    for event in events:
        assert event["source"] == "controller"
        assert event["policy"] == controller.policy.name
        assert "time" in event


def test_fleet_capture_exports_valid_schema(tmp_path):
    from repro.experiments import fleet
    tel = telemetry.install()
    try:
        fleet.run(n_vswitches=200, epochs=2, seed=0, jobs=1)
        path = tmp_path / "capture.jsonl"
        tel.export(path)
    finally:
        telemetry.uninstall()
    records = load(path)
    assert validate_report(records) == []
    decisions = [r for r in records if r["type"] == "decision"]
    assert decisions, "fleet run journaled nothing"
    assert all({"source", "policy", "action"} <= set(d) for d in decisions)
    header = records[0]
    assert header["decisions"] == len(decisions)
    names = {r["name"] for r in records if r["type"] == "metric"}
    assert "fleet.vswitches" in names
    assert "fleet.hist.demand_ratio" in names


def test_hotsim_counters_are_observation_only():
    from repro.fleet.hotsim import simulate_hot_epoch
    off = simulate_hot_epoch(seed=7, demand_ratio=2.0, granted=False)
    tel = telemetry.install()
    try:
        on = simulate_hot_epoch(seed=7, demand_ratio=2.0, granted=False)
        runs = tel.registry.get("fleet.hotsim.runs").value()
        granted = tel.registry.get("fleet.hotsim.granted").value()
        pkts = tel.registry.get("fleet.hotsim.pkts").value()
    finally:
        telemetry.uninstall()
    assert on == off  # counting must not perturb the micro-sim
    assert runs == 1 and granted == 0
    assert pkts == on["sim_sent"]


# -- resident-pool runtime instrumentation -----------------------------------

def _advance(state, payload):
    return state + payload, state * 2


def test_resident_pool_runtime_stats_and_liveness():
    from repro.experiments.parallel import ResidentPool
    pool = ResidentPool(_advance, [1, 2, 3, 4], jobs=2)
    try:
        assert pool.alive() == [True, True]
        pool.step(10)
        pool.step(10)
        pool.collect()
        stats = pool.runtime_stats()
    finally:
        pool.close()
    assert stats["jobs"] == 2
    assert stats["phase_wall_s"]["init"] > 0.0
    assert len(stats["phase_wall_s"]["step"]) == 2
    assert len(stats["workers"]) == 2
    for worker in stats["workers"]:
        assert worker["steps"] == 2
        assert worker["alive"] is True
        assert worker["init_wall_s"] >= 0.0
        assert worker["step_wall_s"] >= 0.0
        assert worker["collect_wall_s"] >= 0.0
        assert worker["recv_wait_s"] > 0.0
    assert stats["ipc"]["init_bytes"] > 0
    assert len(stats["ipc"]["step_bytes"]) == 2
    assert stats["ipc"]["collect_bytes"] > 0
    assert pool.alive() == [False, False]


def test_resident_pool_runtime_stats_in_process():
    from repro.experiments.parallel import ResidentPool
    pool = ResidentPool(_advance, [1, 2], jobs=1)
    pool.step(1)
    pool.collect()
    stats = pool.runtime_stats()
    assert stats["jobs"] == 1
    assert stats["workers"][0]["steps"] == 1
    assert stats["ipc"]["step_bytes"] == [0]  # residency: zero step IPC
    assert pool.alive() == [True]
    pool.close()
    assert pool.alive() == [False]


def test_resident_pool_registers_probe_gauges():
    from repro.experiments.parallel import ResidentPool
    tel = telemetry.install()
    try:
        pool = ResidentPool(_advance, [1, 2], jobs=1)
        pool.step(0)
        pool.close()
        names = list(tel.registry.names())
        assert "fleet.pool.jobs" in names
        assert "fleet.pool.worker0.steps" in names
        assert tel.registry.get("fleet.pool.worker0.steps").value() == 1
        assert tel.registry.get("fleet.pool.workers_alive").value() == 0.0
    finally:
        telemetry.uninstall()


# -- span sessions -----------------------------------------------------------

def test_span_session_reuses_installed_recorder():
    tel = telemetry.install()
    try:
        with telemetry.span_session() as recorder:
            assert recorder is tel.spans
        assert _spans.ACTIVE  # leaving the session must not uninstall
    finally:
        telemetry.uninstall()


def test_span_session_standalone_installs_temporarily():
    assert not _spans.ACTIVE
    with telemetry.span_session() as recorder:
        assert _spans.ACTIVE
        assert recorder is not None
    assert not _spans.ACTIVE


# -- profiler owner attribution ----------------------------------------------

class _Sink:
    def __init__(self):
        self.hits = 0

    def on_done(self, amount):
        self.hits += amount


def test_profiler_attributes_direct_dispatch_to_owner():
    """Regression: ``CpuResource.try_submit_call`` schedules its
    completion as ``engine.call_at(end, engine.call_soon, fn, *args)``;
    the relay dispatch must bucket under the callback's owner, not
    ``Engine.call_soon``."""
    from repro.sim import Engine
    from repro.sim.resources import CpuResource

    engine = Engine()
    profiler = EngineProfiler()
    engine.profiler = profiler
    cpu = CpuResource(engine, cores=1, hz=1000.0)
    sink = _Sink()
    assert cpu.try_submit_call(10.0, 1.0, sink.on_done, 2)
    engine.run()
    assert sink.hits == 2
    owners = set(profiler.buckets)
    assert "Engine.call_soon" not in owners
    assert "_Sink.on_done" in owners
    # Both the relay pop and the real invocation land on the owner.
    assert profiler.buckets["_Sink.on_done"].events == 2
