"""Tests for Nezha hop metadata encoding (repro.core.header)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.net import FiveTuple, IPv4Address, MacAddress, Packet, TcpFlags
from repro.vswitch import Direction, PreActions, SessionState, StatsPolicy, Verdict
from repro.vswitch.rule_tables import Location
from repro.core.header import (
    KIND_NOTIFY, KIND_RX, KIND_TX, NezhaMeta, build_nezha_hop,
    decode_five_tuple, decode_pre_actions, encode_five_tuple,
    encode_pre_actions, unwrap_nezha_hop,
)

A = IPv4Address("10.0.0.1")
B = IPv4Address("10.0.0.2")
LOC = Location(IPv4Address("10.1.0.1"), MacAddress(0x42))


# -- pre-action blob ------------------------------------------------------------

def test_pre_actions_roundtrip():
    pre = PreActions()
    pre.tx.verdict = Verdict.DROP
    pre.rx.stats_policy = StatsPolicy.FULL
    pre.rx.qos_class = 7
    pre.rx.stateful_acl = False
    back = decode_pre_actions(encode_pre_actions(pre))
    assert back.tx.verdict is Verdict.DROP
    assert back.rx.verdict is Verdict.ACCEPT
    assert back.rx.stats_policy is StatsPolicy.FULL
    assert back.rx.qos_class == 7
    assert back.rx.stateful_acl is False
    assert back.tx.stateful_acl is True


def test_pre_actions_short_blob_rejected():
    with pytest.raises(DecodeError):
        decode_pre_actions(b"\x00")


@given(st.sampled_from(list(Verdict)), st.sampled_from(list(Verdict)),
       st.sampled_from(list(StatsPolicy)), st.integers(0, 255),
       st.booleans(), st.booleans())
def test_pre_actions_roundtrip_property(txv, rxv, policy, qos, sa_tx, sa_rx):
    pre = PreActions()
    pre.tx.verdict, pre.rx.verdict = txv, rxv
    pre.rx.stats_policy = policy
    pre.rx.qos_class = qos
    pre.tx.stateful_acl, pre.rx.stateful_acl = sa_tx, sa_rx
    back = decode_pre_actions(encode_pre_actions(pre))
    assert back.tx.verdict is txv and back.rx.verdict is rxv
    assert back.rx.stats_policy is policy
    assert back.rx.qos_class == qos


# -- five-tuple blob ---------------------------------------------------------------

@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
       st.sampled_from([1, 6, 17]), st.integers(0, 65535),
       st.integers(0, 65535))
def test_five_tuple_roundtrip_property(src, dst, proto, sport, dport):
    ft = FiveTuple(IPv4Address(src), IPv4Address(dst), proto, sport, dport)
    assert decode_five_tuple(encode_five_tuple(ft)) == ft


def test_five_tuple_short_blob_rejected():
    with pytest.raises(DecodeError):
        decode_five_tuple(b"\x00" * 12)


# -- NezhaMeta <-> NSH context ----------------------------------------------------------

def test_tx_meta_roundtrip():
    state = SessionState(first_direction=Direction.TX,
                         stats_policy=StatsPolicy.BYTES)
    meta = NezhaMeta(kind=KIND_TX, vnic_id=77, state=state)
    back = NezhaMeta.from_context(meta.to_context())
    assert back.kind == KIND_TX
    assert back.vnic_id == 77
    assert back.state.first_direction is Direction.TX
    assert back.state.stats_policy is StatsPolicy.BYTES
    assert back.pre_actions is None


def test_rx_meta_roundtrip_with_overlay_src():
    pre = PreActions()
    pre.rx.verdict = Verdict.DROP
    meta = NezhaMeta(kind=KIND_RX, vnic_id=5, pre_actions=pre,
                     overlay_src=IPv4Address("172.16.0.9"))
    back = NezhaMeta.from_context(meta.to_context())
    assert back.kind == KIND_RX
    assert back.pre_actions.rx.verdict is Verdict.DROP
    assert back.overlay_src == IPv4Address("172.16.0.9")


def test_notify_meta_roundtrip():
    ft = FiveTuple(A, B, 6, 1000, 80)
    meta = NezhaMeta(kind=KIND_NOTIFY, vnic_id=3, notify_five_tuple=ft,
                     notify_policy=StatsPolicy.PACKETS)
    back = NezhaMeta.from_context(meta.to_context())
    assert back.kind == KIND_NOTIFY
    assert back.notify_five_tuple == ft
    assert back.notify_policy is StatsPolicy.PACKETS


# -- hop build / unwrap ----------------------------------------------------------------------

def test_hop_wraps_inner_packet_and_unwraps():
    inner = Packet.tcp(A, B, 1000, 80, TcpFlags.of("syn"), b"data")
    state = SessionState(first_direction=Direction.TX)
    meta = NezhaMeta(kind=KIND_TX, vnic_id=9, state=state)
    hop = build_nezha_hop(IPv4Address("10.2.0.1"), MacAddress(1), LOC, meta,
                          inner=inner, entropy=1234)
    # The hop is routed by its outer IP toward the FE.
    from repro.net.ipv4 import IPv4Header
    assert hop.expect(IPv4Header).dst == LOC.underlay_ip
    back_meta = unwrap_nezha_hop(hop)
    assert back_meta.vnic_id == 9
    assert hop.five_tuple() == inner.five_tuple()
    assert hop.payload == b"data"


def test_hop_wire_roundtrip():
    """The whole BE→FE hop survives byte serialization."""
    inner = Packet.tcp(A, B, 1000, 80, TcpFlags.of("psh", "ack"), b"xyz")
    meta = NezhaMeta(kind=KIND_TX, vnic_id=2,
                     state=SessionState(first_direction=Direction.TX))
    hop = build_nezha_hop(IPv4Address("10.2.0.1"), MacAddress(1), LOC, meta,
                          inner=inner)
    decoded = Packet.decode(hop.encode(), first_layer="ethernet")
    assert decoded == hop
    assert unwrap_nezha_hop(decoded).vnic_id == 2


def test_notify_hop_has_no_inner():
    meta = NezhaMeta(kind=KIND_NOTIFY, vnic_id=4,
                     notify_five_tuple=FiveTuple(A, B, 6, 1, 2),
                     notify_policy=StatsPolicy.NONE)
    hop = build_nezha_hop(IPv4Address("10.2.0.1"), MacAddress(1), LOC, meta)
    back = unwrap_nezha_hop(hop)
    assert back.notify_five_tuple == FiveTuple(A, B, 6, 1, 2)


def test_unwrap_requires_nsh():
    pkt = Packet.tcp(A, B, 1, 2, TcpFlags.of("syn"))
    with pytest.raises(DecodeError):
        unwrap_nezha_hop(pkt)
