"""Tests for the host package: VM kernel model and guest TCP endpoints."""

import pytest

from repro.errors import ConfigError
from repro.host import GuestTcp, SmartNic, Vm, VmCostModel
from repro.net import Packet, TcpFlags
from repro.sim import Engine

from tests.conftest import TENANT_A, TENANT_B, build_cloud


# -- VmCostModel ---------------------------------------------------------------

def test_vm_cost_model_caps():
    cm = VmCostModel()
    assert cm.serial_cap() == pytest.approx(2.5e9 / 8300)
    # Parallel cap scales linearly with vCPUs.
    assert cm.parallel_cap(8) == pytest.approx(2 * cm.parallel_cap(4))


def test_vm_cost_model_testbed_scaling():
    assert VmCostModel.testbed(50).hz == pytest.approx(2.5e9 / 50)


def test_amdahl_plateau_shape():
    """Capacity grows with vCPUs then hits the serial (lock) ceiling —
    the Fig 10 plateau."""
    cm = VmCostModel()
    caps = [min(cm.serial_cap(), cm.parallel_cap(n)) for n in (8, 16, 32, 64, 128)]
    assert caps[0] < caps[1] < caps[2]             # growth region
    assert caps[-1] == caps[-2] == cm.serial_cap()  # plateau


# -- Vm ----------------------------------------------------------------------------

def test_vm_requires_vcpu():
    with pytest.raises(ConfigError):
        Vm(Engine(), "bad", vcpus=0)


def test_vm_send_requires_hosted_vnic(cloud):
    vm = Vm(cloud.engine, "vm", vcpus=2)
    cloud.vswitch_a.remove_vnic(cloud.vnic_a.vnic_id)
    with pytest.raises(ConfigError):
        vm.send(cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1, 2,
                                         TcpFlags.of("syn")))


def test_vm_send_charges_cpu_and_transmits(cloud):
    vm = Vm(cloud.engine, "vm", vcpus=2)
    vm.attach_vnic(cloud.vnic_a)
    got = []
    cloud.vnic_b.attach_guest(got.append)
    vm.send(cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                                     TcpFlags.of("syn")), new_connection=True)
    cloud.engine.run(until=0.5)
    assert len(got) == 1
    assert vm.conns_opened == 1
    assert vm.cpu.jobs_done >= 1
    assert vm.kernel_lock.jobs_done == 1


def test_vm_listener_demux(cloud):
    vm = Vm(cloud.engine, "vm", vcpus=2)
    vm.attach_vnic(cloud.vnic_b)
    hits = {"p80": 0, "p81": 0}
    vm.listen(cloud.vnic_b, 80, lambda pkt: hits.__setitem__("p80", hits["p80"] + 1))
    vm.listen(cloud.vnic_b, 81, lambda pkt: hits.__setitem__("p81", hits["p81"] + 1))
    cloud.vswitch_a.send_from_vnic(
        cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80, TcpFlags.of("syn")))
    cloud.engine.run(until=0.5)
    assert hits == {"p80": 1, "p81": 0}


def test_vm_kernel_overload_drops():
    engine = Engine()
    cloud = build_cloud(engine)
    vm = Vm(engine, "vm", vcpus=1)
    vm.attach_vnic(cloud.vnic_a)
    for sport in range(2000):
        vm.send(cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, sport + 1, 80,
                                         TcpFlags.of("syn")),
                new_connection=True)
    engine.run(until=1.0)
    assert vm.kernel_drops > 0


# -- SmartNic -----------------------------------------------------------------------

def test_smartnic_composition():
    engine = Engine()
    from repro.fabric import Topology
    topo = Topology.leaf_spine(engine, 1, 1)
    nic = SmartNic(engine, topo.servers[0])
    assert nic.cpu_utilization() == 0.0
    # Packet buffers are pre-reserved, so memory is already partly used.
    assert 0.0 < nic.memory_utilization() < 1.0
    assert nic.name == topo.servers[0].name


# -- GuestTcp end-to-end ----------------------------------------------------------------

def build_crr_pair(cloud, client_vcpus=8, server_vcpus=8):
    client_vm = Vm(cloud.engine, "client", vcpus=client_vcpus)
    server_vm = Vm(cloud.engine, "server", vcpus=server_vcpus)
    client_vm.attach_vnic(cloud.vnic_a)
    server_vm.attach_vnic(cloud.vnic_b)
    client = GuestTcp(client_vm, cloud.vnic_a)
    server = GuestTcp(server_vm, cloud.vnic_b)
    server.serve(80)
    return client, server


def test_single_crr_transaction_completes(cloud):
    client, server = build_crr_pair(cloud)
    done = []
    client.open(TENANT_B, 80, on_done=done.append)
    cloud.engine.run(until=1.0)
    assert len(done) == 1
    assert client.completed == 1 and client.failed == 0
    assert server.server_accepts == 1
    assert done[0].latency > 0
    assert client.in_flight == 0


def test_crr_transaction_latency_reasonable(cloud):
    client, _server = build_crr_pair(cloud)
    done = []
    client.open(TENANT_B, 80, on_done=done.append)
    cloud.engine.run(until=1.0)
    # 6 packets, each with sub-millisecond processing: well under 100 ms.
    assert done[0].latency < 0.1


def test_many_transactions_all_complete(cloud):
    client, server = build_crr_pair(cloud)
    # Pace the opens: 50 transactions at 2 ms spacing stays well inside the
    # scaled-down VM's connection capacity.
    for i in range(50):
        cloud.engine.call_at(i * 0.002, client.open, TENANT_B, 80)
    cloud.engine.run(until=2.0)
    assert client.completed == 50
    assert client.failed == 0


def test_crr_times_out_when_peer_dark(cloud):
    client, _server = build_crr_pair(cloud)
    cloud.vswitch_b.crash()
    failures = []
    client.open(TENANT_B, 80, on_fail=failures.append)
    cloud.engine.run(until=2.0)
    assert len(failures) == 1
    assert client.failed == 1


def test_fast_path_used_after_first_packets(cloud):
    client, _server = build_crr_pair(cloud)
    client.open(TENANT_B, 80)
    cloud.engine.run(until=1.0)
    # Each side does exactly one slow-path lookup per direction-first packet.
    assert cloud.vswitch_a.stats.slow_path_lookups == 1
    assert cloud.vswitch_b.stats.slow_path_lookups == 1
    assert cloud.vswitch_a.stats.fast_path_hits >= 2


# -- child vNICs and BDF limits (§7.4) ----------------------------------------------

def _mini_cloud():
    from repro.fabric import Topology
    from repro.vswitch import CostModel, Vnic, VSwitch
    from repro.vswitch.vswitch import make_standard_chain
    from repro.net import IPv4Address, MacAddress
    engine = Engine()
    topo = Topology.leaf_spine(engine, 1, 1)
    cm = CostModel.testbed()
    vswitch = VSwitch(engine, topo.servers[0], cm)
    def mk(vnic_id, ip, parent=None):
        return Vnic(vnic_id, 100, IPv4Address(ip), MacAddress(vnic_id),
                    make_standard_chain(cm), parent=parent)
    return engine, vswitch, mk


def test_bdf_budget_limits_parent_vnics():
    from repro.host.vm import BDF_FOR_VNICS_DEFAULT
    engine, vswitch, mk = _mini_cloud()
    vm = Vm(engine, "dense", vcpus=4)
    for i in range(BDF_FOR_VNICS_DEFAULT):
        vm.attach_vnic(mk(i + 1, f"10.20.{i // 250}.{i % 250 + 1}"))
    with pytest.raises(ConfigError, match="BDF"):
        vm.attach_vnic(mk(999, "10.21.0.1"))


def test_sriov_extends_bdf_budget():
    from repro.host.vm import BDF_FOR_VNICS_DEFAULT
    engine, _vswitch, mk = _mini_cloud()
    vm = Vm(engine, "sriov", vcpus=4, sriov=True)
    for i in range(BDF_FOR_VNICS_DEFAULT + 10):
        vm.attach_vnic(mk(i + 1, f"10.22.{i // 250}.{i % 250 + 1}"))
    assert vm.bdf_used() == BDF_FOR_VNICS_DEFAULT + 10


def test_child_vnics_share_parent_bdf():
    engine, _vswitch, mk = _mini_cloud()
    vm = Vm(engine, "child-user", vcpus=4)
    parent = mk(1, "10.23.0.1")
    vm.attach_vnic(parent)
    children = [mk(100 + i, f"10.23.1.{i + 1}", parent=parent)
                for i in range(100)]
    # Children never consume BDF numbers regardless of count.
    assert vm.bdf_used() == 1
    assert len(parent.children) == 100


def test_child_vnic_delivers_through_parent_with_tag():
    engine, _vswitch, mk = _mini_cloud()
    parent = mk(1, "10.24.0.1")
    child = mk(2, "10.24.0.2", parent=parent)
    got = []
    parent.attach_guest(got.append)
    pkt = Packet.tcp(TENANT_A, TENANT_B, 1, 2, TcpFlags.of("syn"))
    child.deliver(pkt)
    assert len(got) == 1
    assert got[0].meta["child_vnic"] == 2
    assert child.rx_delivered == 1 and parent.rx_delivered == 1
