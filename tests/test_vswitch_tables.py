"""Tests for rule tables and the slow-path chain."""

import pytest

from repro.net import FiveTuple, IPv4Address, MacAddress, PROTO_TCP, PROTO_UDP
from repro.vswitch import (
    AclRule, AclTable, CostModel, Direction, FlowLogTable, MappingEntry,
    MappingTable, MirrorTable, PolicyRouteTable, PreActions, QosTable,
    RouteTable, SlowPath, StatsPolicy, Verdict,
)
from repro.vswitch.rule_tables import LookupContext, QosRule
from repro.vswitch.vswitch import make_standard_chain

FT = FiveTuple(IPv4Address("192.168.0.1"), IPv4Address("192.168.0.2"),
               PROTO_TCP, 1234, 80)


def ctx(ft=FT, vni=100, nbytes=64):
    return LookupContext(ft, vni, nbytes)


# -- ACL -----------------------------------------------------------------------

def test_acl_default_accept():
    pre = PreActions()
    AclTable().apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.ACCEPT
    assert pre.rx.verdict is Verdict.ACCEPT


def test_acl_deny_all_rx():
    acl = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                            direction=Direction.RX)])
    pre = PreActions()
    acl.apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.ACCEPT
    assert pre.rx.verdict is Verdict.DROP


def test_acl_priority_order():
    rules = [
        AclRule(priority=1, verdict=Verdict.DROP),
        AclRule(priority=100, verdict=Verdict.ACCEPT,
                dst_prefix=IPv4Address("192.168.0.0"), dst_prefix_len=16),
    ]
    pre = PreActions()
    AclTable(rules).apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.ACCEPT  # high-priority accept wins


def test_acl_prefix_mismatch_falls_through():
    acl = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                            src_prefix=IPv4Address("172.16.0.0"),
                            src_prefix_len=12)],
                   default_verdict=Verdict.ACCEPT)
    pre = PreActions()
    acl.apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.ACCEPT


def test_acl_port_range_matching():
    acl = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                            dst_port_range=(1, 1023))])
    pre = PreActions()
    acl.apply(ctx(), pre)  # dst port 80 in range
    assert pre.tx.verdict is Verdict.DROP
    high = FiveTuple(FT.src_ip, FT.dst_ip, PROTO_TCP, 1234, 8080)
    pre2 = PreActions()
    acl.apply(ctx(high), pre2)
    assert pre2.tx.verdict is Verdict.ACCEPT


def test_acl_proto_matching():
    acl = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                            proto=PROTO_UDP)])
    pre = PreActions()
    acl.apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.ACCEPT


def test_acl_rx_matches_reversed_tuple():
    # Deny traffic *from* the peer: must set the RX verdict via reversal.
    acl = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                            src_prefix=IPv4Address("192.168.0.2"),
                            src_prefix_len=32)])
    pre = PreActions()
    acl.apply(ctx(), pre)
    assert pre.rx.verdict is Verdict.DROP
    assert pre.tx.verdict is Verdict.ACCEPT


def test_acl_memory_and_rule_count():
    acl = AclTable([AclRule(priority=i, verdict=Verdict.ACCEPT)
                    for i in range(10)], rule_bytes=64)
    assert acl.rule_count() == 10
    assert acl.memory_bytes() == 640


def test_acl_add_rule_keeps_priority_order():
    acl = AclTable([AclRule(priority=1, verdict=Verdict.DROP)])
    acl.add_rule(AclRule(priority=50, verdict=Verdict.ACCEPT))
    assert acl.rules[0].priority == 50


# -- RouteTable ------------------------------------------------------------------

def test_route_lpm_prefers_longest():
    route = RouteTable()
    route.add_route(IPv4Address("192.168.0.0"), 16, blackhole=False)
    route.add_route(IPv4Address("192.168.0.2"), 32, blackhole=True)
    assert route.lookup(IPv4Address("192.168.0.2")) is True     # /32 wins
    assert route.lookup(IPv4Address("192.168.0.3")) is False    # /16
    assert route.lookup(IPv4Address("10.0.0.1")) is None


def test_route_unrouted_dst_drops_tx_unoverridably():
    route = RouteTable()
    route.add_route(IPv4Address("192.168.0.0"), 24)  # covers both ends
    pre = PreActions()
    route.apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.ACCEPT
    far = FiveTuple(FT.src_ip, IPv4Address("8.8.8.8"), PROTO_TCP, 1, 2)
    pre2 = PreActions()
    route.apply(ctx(far), pre2)
    assert pre2.tx.verdict is Verdict.DROP
    assert pre2.tx.stateful_acl is False


def test_route_validation():
    from repro.errors import TableError
    with pytest.raises(TableError):
        RouteTable().add_route(IPv4Address("0.0.0.0"), 40)


def test_route_memory_counts_unique_routes():
    route = RouteTable(route_bytes=32)
    route.add_route(IPv4Address("10.0.0.0"), 8)
    route.add_route(IPv4Address("10.0.0.0"), 8)  # duplicate
    route.add_route(IPv4Address("10.1.0.0"), 16)
    assert route.rule_count() == 2
    assert route.memory_bytes() == 64


# -- QosTable ---------------------------------------------------------------------

def test_qos_classifies_and_rate_limits():
    qos = QosTable([QosRule(priority=10, qos_class=3, rate_limit_bps=1e9,
                            dst_port_range=(80, 80))])
    pre = PreActions()
    qos.apply(ctx(), pre)
    assert pre.tx.qos_class == 3
    assert pre.rx.rate_limit_bps == 1e9


def test_qos_no_match_leaves_default():
    qos = QosTable([QosRule(priority=10, qos_class=3, proto=PROTO_UDP)])
    pre = PreActions()
    qos.apply(ctx(), pre)
    assert pre.tx.qos_class == 0


# -- MappingTable ------------------------------------------------------------------

def test_mapping_sets_next_hop():
    mapping = MappingTable()
    mapping.set_entry(100, FT.dst_ip, MappingEntry(
        IPv4Address("10.0.0.5"), MacAddress(5), vni=100))
    pre = PreActions()
    mapping.apply(ctx(), pre)
    assert pre.tx.next_hop_ip == IPv4Address("10.0.0.5")
    assert pre.tx.vni == 100


def test_mapping_miss_drops_tx():
    pre = PreActions()
    MappingTable().apply(ctx(), pre)
    assert pre.tx.verdict is Verdict.DROP


def test_mapping_is_vni_scoped():
    mapping = MappingTable()
    mapping.set_entry(999, FT.dst_ip, MappingEntry(
        IPv4Address("10.0.0.5"), MacAddress(5), vni=999))
    assert mapping.lookup(100, FT.dst_ip) is None


def test_mapping_remove_and_memory():
    mapping = MappingTable(entry_bytes=2048)
    mapping.set_entry(1, IPv4Address("1.1.1.1"),
                      MappingEntry(IPv4Address("10.0.0.1"), MacAddress(1), 1))
    assert mapping.memory_bytes() == 2048
    mapping.remove_entry(1, IPv4Address("1.1.1.1"))
    assert mapping.memory_bytes() == 0


# -- advanced tables ------------------------------------------------------------------

def test_policy_route_override():
    policy = PolicyRouteTable()
    policy.add_override(IPv4Address("192.168.0.0"), 24,
                        IPv4Address("10.9.9.9"), MacAddress(9))
    pre = PreActions()
    policy.apply(ctx(), pre)
    assert pre.tx.next_hop_ip == IPv4Address("10.9.9.9")


def test_mirror_table_sets_target_both_ways():
    mirror = MirrorTable()
    mirror.add_mirror(IPv4Address("192.168.0.0"), 24, IPv4Address("10.7.7.7"))
    pre = PreActions()
    mirror.apply(ctx(), pre)
    assert pre.tx.mirror_to == IPv4Address("10.7.7.7")
    assert pre.rx.mirror_to == IPv4Address("10.7.7.7")


def test_flow_log_sets_stats_policy():
    flow_log = FlowLogTable()
    flow_log.add_policy(IPv4Address("192.168.0.0"), 24, StatsPolicy.FULL)
    pre = PreActions()
    flow_log.apply(ctx(), pre)
    assert pre.tx.stats_policy is StatsPolicy.FULL


# -- SlowPath ------------------------------------------------------------------------------

def test_standard_chain_has_five_tables():
    chain = make_standard_chain(CostModel.testbed())
    assert len(chain.tables) == 5


def test_advanced_chain_has_twelve_tables():
    chain = make_standard_chain(CostModel.testbed(), advanced=True)
    assert len(chain.tables) == 12


def test_slow_path_cost_grows_with_tables_rules_and_bytes():
    cm = CostModel.testbed()
    basic = make_standard_chain(cm)
    advanced = make_standard_chain(cm, advanced=True)
    assert advanced.lookup_cost(64) > basic.lookup_cost(64)
    assert basic.lookup_cost(512) > basic.lookup_cost(64)
    acl = AclTable([AclRule(priority=i, verdict=Verdict.ACCEPT)
                    for i in range(1000)])
    with_rules = make_standard_chain(cm, acl=acl)
    assert with_rules.lookup_cost(64) > basic.lookup_cost(64)


def test_slow_path_lookup_returns_pre_and_cost():
    cm = CostModel.testbed()
    chain = make_standard_chain(cm)
    chain.table("vnic_server_mapping").set_entry(
        100, FT.dst_ip,
        MappingEntry(IPv4Address("10.0.0.2"), MacAddress(2), 100))
    pre, cycles = chain.lookup(ctx())
    assert pre.tx.next_hop_ip == IPv4Address("10.0.0.2")
    assert cycles == pytest.approx(chain.lookup_cost(64))
    assert chain.lookups == 1


def test_slow_path_memory_sums_tables():
    cm = CostModel.testbed()
    acl = AclTable([AclRule(priority=1, verdict=Verdict.ACCEPT)],
                   rule_bytes=64)
    chain = make_standard_chain(cm, acl=acl)
    assert chain.memory_bytes() >= 64


def test_slow_path_table_by_name():
    chain = make_standard_chain(CostModel.testbed())
    assert chain.table("acl") is chain.tables[0]
    assert chain.table("nope") is None
