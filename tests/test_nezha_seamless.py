"""Seamlessness and multi-tenant scenarios.

The paper's §4.2 claim: offload activation completes "with no service
interruptions" — the dual-running stage absorbs in-flight and
stale-mapping traffic. These tests run live workloads *through* the
transitions and assert zero transaction loss.
"""

import pytest

from repro.controller.latency import ControlLatencyModel
from repro.core.offload import OffloadState
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.net import IPv4Address, MacAddress, Packet, TcpFlags
from repro.vswitch import Vnic
from repro.vswitch.rule_tables import Location
from repro.vswitch.vswitch import make_standard_chain
from repro.workloads import ClosedLoopCrr

from tests.conftest import TENANT_A, TENANT_B, VNI, build_nezha_env


def test_no_transaction_loss_during_offload_activation():
    """Steady CRR traffic across the entire offload window: every
    transaction completes (dual-running catches direct arrivals)."""
    testbed = build_testbed(n_clients=2, n_idle=4, seed=3)
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=8).start()
             for app in testbed.client_apps]
    testbed.run(0.5)
    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:4])
    testbed.run(2.0)
    assert handle.state is OffloadState.ACTIVE
    testbed.run(0.5)
    for loop in loops:
        loop.stop()
    testbed.run(1.5)
    completed = sum(loop.completed for loop in loops)
    failed = sum(loop.failed for loop in loops)
    assert completed > 100
    # The mapping switch invalidates sender-side cached flows, causing a
    # brief burst of slow-path lookups; the handful of packets dropped in
    # that burst would be retransmitted by real TCP (our CRR does not
    # retransmit, so they surface as failures). Bound: <1%.
    assert failed <= max(3, 0.01 * completed), \
        f"{failed}/{completed} transactions lost during activation"


def test_no_transaction_loss_during_fallback():
    testbed = build_testbed(n_clients=2, n_idle=4, seed=4)
    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:4])
    testbed.run(1.0)
    assert handle.state is OffloadState.ACTIVE
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=8).start()
             for app in testbed.client_apps]
    testbed.run(0.5)
    done = testbed.orchestrator.fallback(handle)
    testbed.run(2.0)
    assert done.fired and handle.state is OffloadState.INACTIVE
    testbed.run(0.5)
    for loop in loops:
        loop.stop()
    testbed.run(1.5)
    failed = sum(loop.failed for loop in loops)
    completed = sum(loop.completed for loop in loops)
    assert completed > 100
    assert failed <= max(3, 0.01 * completed), \
        f"{failed}/{completed} transactions lost during fallback"


def test_no_loss_during_scale_out():
    testbed = build_testbed(n_clients=2, n_idle=8, seed=5)
    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:4])
    testbed.run(1.0)
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=8).start()
             for app in testbed.client_apps]
    testbed.run(0.5)
    testbed.orchestrator.scale_out(handle, testbed.idle_vswitches[4:8])
    testbed.run(1.5)
    assert len(handle.frontends) == 8
    for loop in loops:
        loop.stop()
    testbed.run(1.5)
    completed = sum(loop.completed for loop in loops)
    assert sum(loop.failed for loop in loops) <= max(3, 0.01 * completed)


def test_no_loss_during_graceful_scale_in():
    """§4.3: configs are retained for learning-interval + RTT after a
    scale-in, so in-flight and stale-mapped packets still process."""
    testbed = build_testbed(n_clients=2, n_idle=6, seed=6)
    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:6])
    testbed.run(1.0)
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=8).start()
             for app in testbed.client_apps]
    testbed.run(0.5)
    victim = handle.fe_vswitches[0]
    testbed.orchestrator.scale_in_vswitch(victim)
    testbed.run(1.5)
    assert len(handle.frontends) == 5
    for loop in loops:
        loop.stop()
    testbed.run(1.5)
    completed = sum(loop.completed for loop in loops)
    assert sum(loop.failed for loop in loops) <= max(3, 0.01 * completed)


# -- multiple offloaded vNICs sharing the infrastructure ------------------------------

def test_two_hot_vnics_one_be_vswitch():
    """Two high-demand vNICs on the same SmartNIC offload independently,
    sharing no FE state."""
    env = build_nezha_env(n_servers=8)
    cost_model = env.cost_model
    # A second hot vNIC on vswitch_b, different VPC.
    vni2 = 300
    ip2 = IPv4Address("192.168.9.9")
    chain2 = make_standard_chain(cost_model)
    vnic2 = Vnic(77, vni2, ip2, MacAddress(0x77), chain2)
    env.vswitch_b.add_vnic(vnic2)
    server_b = env.topo.servers[1]
    env.gateway.set_locations(vni2, ip2, [Location(server_b.underlay_ip,
                                                   server_b.mac)])
    # A peer for vni2 on vswitch_a so return routing exists.
    ip2_peer = IPv4Address("192.168.9.1")
    chain_peer = make_standard_chain(cost_model)
    vnic_peer = Vnic(78, vni2, ip2_peer, MacAddress(0x78), chain_peer)
    env.vswitch_a.add_vnic(vnic_peer)
    server_a = env.topo.servers[0]
    env.gateway.set_locations(vni2, ip2_peer,
                              [Location(server_a.underlay_ip, server_a.mac)])
    for learner in env.learners[:2]:
        learner.refresh()

    h1 = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:2])
    h2 = env.orchestrator.offload(vnic2, env.idle_vswitches[2:4])
    env.engine.run(until=env.engine.now + 2.0)
    assert h1.state is OffloadState.ACTIVE
    assert h2.state is OffloadState.ACTIVE

    got1, got2 = [], []
    env.vnic_b.attach_guest(got1.append)
    vnic2.attach_guest(got2.append)
    env.vswitch_a.send_from_vnic(
        env.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                               TcpFlags.of("syn")))
    env.vswitch_a.send_from_vnic(
        vnic_peer, Packet.tcp(ip2_peer, ip2, 2000, 80, TcpFlags.of("syn")))
    env.engine.run(until=env.engine.now + 0.2)
    assert len(got1) == 1 and len(got2) == 1
    # Each vNIC's traffic went through its own FE set.
    assert h1.backend.stats.rx_from_fe == 1
    assert h2.backend.stats.rx_from_fe == 1
    assert not set(h1.fe_vswitches) & set(h2.fe_vswitches)


def test_one_vswitch_backs_and_fronts_simultaneously():
    """A vSwitch can be a BE for its own hot vNIC while fronting another
    server's vNIC — the whole point of reuse (Fig 6)."""
    env = build_nezha_env(n_servers=6)
    # Offload B's vNIC onto vswitch_a (among others): vswitch_a now fronts
    # B's vNIC while still locally serving its own vnic_a.
    handle = env.orchestrator.offload(env.vnic_b,
                                      [env.vswitches[0]]
                                      + env.idle_vswitches[:1])
    env.engine.run(until=env.engine.now + 2.0)
    assert handle.state is OffloadState.ACTIVE
    agent = env.orchestrator.agents[env.vswitch_a.name]
    assert env.vnic_b.vnic_id in agent.frontends
    got = []
    env.vnic_b.attach_guest(got.append)
    env.vswitch_a.send_from_vnic(
        env.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                               TcpFlags.of("syn")))
    env.engine.run(until=env.engine.now + 0.2)
    assert len(got) == 1
    # vnic_a still processes locally on the same vSwitch.
    assert env.vswitch_a.datapath_for(env.vnic_a) \
        is env.vswitch_a._local_datapath


def test_cross_tor_fes_work():
    """FEs under a different ToR than the BE (App B.1's fallback tier)."""
    from repro.controller.gateway import Gateway, MappingLearner
    from repro.core.offload import NezhaOrchestrator, OffloadConfig
    from repro.fabric import Topology
    from repro.sim import Engine, SeededRng
    from repro.vswitch import CostModel, VSwitch

    engine = Engine()
    rng = SeededRng(9, "xtor")
    cost_model = CostModel.testbed()
    topo = Topology.leaf_spine(engine, n_tors=2, servers_per_tor=3)
    vswitches = [VSwitch(engine, s, cost_model) for s in topo.servers]
    gateway = Gateway(engine)
    chain_a = make_standard_chain(cost_model)
    chain_b = make_standard_chain(cost_model)
    vnic_a = Vnic(1, VNI, TENANT_A, MacAddress(0xA1), chain_a)
    vnic_b = Vnic(2, VNI, TENANT_B, MacAddress(0xB1), chain_b)
    vswitches[0].add_vnic(vnic_a)
    vswitches[1].add_vnic(vnic_b)
    for vnic, server in ((vnic_a, topo.servers[0]),
                         (vnic_b, topo.servers[1])):
        gateway.set_locations(VNI, vnic.tenant_ip,
                              [Location(server.underlay_ip, server.mac)])
    for i, vs in enumerate(vswitches):
        learner = MappingLearner(engine, vs, gateway, interval=0.05,
                                 rng=rng.child(f"l{i}"))
        learner.refresh()
        learner.start()
    orch = NezhaOrchestrator(
        engine, gateway, rng=rng.child("o"),
        config=OffloadConfig(learning_interval=0.05, inflight_margin=0.01,
                             latency=ControlLatencyModel.fast()))
    # FEs entirely on the *other* ToR (servers 3..5).
    handle = orch.offload(vnic_b, vswitches[3:5])
    engine.run(until=engine.now + 2.0)
    assert handle.state is OffloadState.ACTIVE
    got = []
    vnic_b.attach_guest(got.append)
    vswitches[0].send_from_vnic(
        vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                           TcpFlags.of("syn")))
    engine.run(until=engine.now + 0.2)
    assert len(got) == 1
