"""Unit tests for MAC/IPv4 address types and the internet checksum."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PacketError
from repro.net import IPv4Address, MacAddress, internet_checksum
from repro.net.checksum import verify_checksum


# -- MacAddress ---------------------------------------------------------------

def test_mac_from_string_and_back():
    mac = MacAddress("02:1a:2b:3c:4d:5e")
    assert str(mac) == "02:1a:2b:3c:4d:5e"
    assert mac.value == 0x021A2B3C4D5E


def test_mac_from_int():
    assert str(MacAddress(1)) == "00:00:00:00:00:01"


def test_mac_copy_constructor():
    a = MacAddress(42)
    assert MacAddress(a) == a


def test_mac_broadcast():
    assert str(MacAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"


def test_mac_bytes_roundtrip():
    mac = MacAddress("de:ad:be:ef:00:01")
    assert MacAddress.from_bytes(mac.to_bytes()) == mac


@pytest.mark.parametrize("bad", ["xx:yy", "01:02:03:04:05", "0102030405aa", ""])
def test_mac_bad_strings(bad):
    with pytest.raises(PacketError):
        MacAddress(bad)


def test_mac_out_of_range():
    with pytest.raises(PacketError):
        MacAddress(1 << 48)
    with pytest.raises(PacketError):
        MacAddress(-1)


def test_mac_hashable_and_distinct():
    assert len({MacAddress(1), MacAddress(1), MacAddress(2)}) == 2


# -- IPv4Address -----------------------------------------------------------------

def test_ipv4_from_string_and_back():
    ip = IPv4Address("10.1.2.3")
    assert str(ip) == "10.1.2.3"
    assert ip.value == (10 << 24) | (1 << 16) | (2 << 8) | 3


def test_ipv4_copy_constructor():
    a = IPv4Address("1.2.3.4")
    assert IPv4Address(a) == a


@pytest.mark.parametrize("bad", ["1.2.3", "256.1.1.1", "a.b.c.d", "1.2.3.4.5"])
def test_ipv4_bad_strings(bad):
    with pytest.raises(PacketError):
        IPv4Address(bad)


def test_ipv4_out_of_range():
    with pytest.raises(PacketError):
        IPv4Address(1 << 32)


def test_ipv4_bytes_roundtrip():
    ip = IPv4Address("192.168.1.254")
    assert IPv4Address.from_bytes(ip.to_bytes()) == ip


def test_ipv4_prefix_membership():
    ip = IPv4Address("10.1.2.3")
    assert ip.in_prefix(IPv4Address("10.1.0.0"), 16)
    assert not ip.in_prefix(IPv4Address("10.2.0.0"), 16)
    assert ip.in_prefix(IPv4Address("0.0.0.0"), 0)
    assert ip.in_prefix(ip, 32)


def test_ipv4_prefix_bad_length():
    with pytest.raises(PacketError):
        IPv4Address("1.1.1.1").in_prefix(IPv4Address("1.1.1.1"), 33)


def test_ipv4_ordering():
    assert IPv4Address("1.0.0.1") < IPv4Address("1.0.0.2")


@given(st.integers(0, (1 << 32) - 1))
def test_ipv4_string_roundtrip_property(value):
    ip = IPv4Address(value)
    assert IPv4Address(str(ip)) == ip


@given(st.integers(0, (1 << 48) - 1))
def test_mac_string_roundtrip_property(value):
    mac = MacAddress(value)
    assert MacAddress(str(mac)) == mac


# -- checksum ----------------------------------------------------------------------

def test_checksum_known_vector():
    # Classic RFC 1071 example data.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_checksum_odd_length_padded():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


@given(st.binary(min_size=0, max_size=64))
def test_checksum_verifies_itself(data):
    cksum = internet_checksum(data)
    # Embed the checksum at the end (even-aligned) and verify.
    padded = data + b"\x00" if len(data) % 2 else data
    assert verify_checksum(padded + cksum.to_bytes(2, "big"))
