"""Tests for the load-sharing policy seam (repro.controller.policy),
the fleet coordinator's pluggable allocation, and the policy_arena
experiment plumbing."""

import pytest

from repro.controller import ControllerConfig, FePlacement, NezhaController
from repro.controller.controller import _NodeBook
from repro.controller.policy import (POLICY_NAMES, NezhaPolicy, make_policy)
from repro.core.offload import OffloadState
from repro.fleet import FleetCoordinator
from repro.net import IPv4Address, MacAddress
from repro.vswitch import Vnic
from repro.vswitch.vswitch import make_standard_chain
from repro.workloads.fleet import HotspotKind

from tests.conftest import VNI, build_nezha_env


def policy_env(policy_name):
    env = build_nezha_env(n_servers=8)
    placement = FePlacement(env.topo, {})
    config = ControllerConfig(poll_interval=0.05, initial_fes=4)
    controller = NezhaController(env.engine, env.gateway, env.orchestrator,
                                 placement, config=config,
                                 policy=make_policy(policy_name))
    for vs in env.vswitches:
        controller.register(vs)
    return env, controller


# -- registry ---------------------------------------------------------------------


def test_policy_registry():
    assert POLICY_NAMES == ("nezha", "pam", "supernic", "sirius")
    for name in POLICY_NAMES:
        assert make_policy(name).name == name
    with pytest.raises(ValueError):
        make_policy("bogus")
    with pytest.raises(ValueError):
        FleetCoordinator(seed=0, pool_units=4, policy="bogus")


def test_controller_default_policy_is_nezha():
    env = build_nezha_env()
    controller = NezhaController(env.engine, env.gateway, env.orchestrator,
                                 FePlacement(env.topo, {}))
    assert isinstance(controller.policy, NezhaPolicy)
    assert controller.policy.controller is controller


# -- NezhaPolicy: projection by the triggering resource (bugfix) ------------------


def test_nezha_projection_matches_triggering_resource():
    """The memory-triggered offload path must project by rule-table
    share, not packet-rate share: a hot-rate/low-memory vNIC used to
    look like it freed memory it never held, stopping memory-triggered
    offloading after one vNIC."""
    env = build_nezha_env()
    chain = make_standard_chain(env.cost_model)
    vnic_c = Vnic(3, VNI, IPv4Address("10.1.0.77"), MacAddress(0xC1), chain)
    env.vswitch_a.add_vnic(vnic_c)
    # vnic_a: 10% of the packet rate but the bulk of the rule memory.
    book = _NodeBook(env.vswitch_a)
    book.vnic_rates = {env.vnic_a.vnic_id: 100.0, vnic_c.vnic_id: 900.0}
    env.vnic_a.table_memory_extra = 10 * vnic_c.table_memory_bytes()
    mem_a = env.vnic_a.table_memory_bytes()
    mem_total = mem_a + vnic_c.table_memory_bytes()
    policy = NezhaPolicy()

    projected_mem = policy.project(0.8, env.vnic_a, book, by_memory=True)
    assert projected_mem == pytest.approx(0.8 * (1.0 - mem_a / mem_total))
    projected_cpu = policy.project(0.8, env.vnic_a, book, by_memory=False)
    assert projected_cpu == pytest.approx(0.8 * (1.0 - 100.0 / 1000.0))
    # The shares genuinely differ, so the two paths cannot be conflated.
    assert projected_mem < 0.2 < 0.7 < projected_cpu

    # Ranking follows the same per-resource shares.
    assert policy.offload_order(book, [env.vnic_a, vnic_c],
                                by_memory=True)[0] is env.vnic_a
    assert policy.offload_order(book, [env.vnic_a, vnic_c],
                                by_memory=False)[0] is vnic_c


# -- SiriusPolicy: the do-nothing baseline ----------------------------------------


def test_sirius_policy_never_offloads():
    env, controller = policy_env("sirius")
    env.vnic_a.attach_guest(lambda pkt: None)
    env.vnic_b.attach_guest(lambda pkt: None)
    controller.start()
    from repro.net import Packet, TcpFlags
    from tests.conftest import TENANT_A, TENANT_B

    def blast():
        sport = 1024
        while True:
            pkt = Packet.tcp(TENANT_B, TENANT_A, sport, 80,
                             TcpFlags.of("syn"))
            sport += 1
            env.vswitch_b.send_from_vnic(env.vnic_b, pkt)
            yield env.engine.timeout(0.00022)

    env.engine.process(blast(), name="blast")
    env.engine.run(until=4.0)
    # Same load as test_controller_offloads_hot_vswitch, which asserts
    # the Nezha policy *does* offload under it.
    assert controller.offloads_triggered == 0
    assert not env.orchestrator.handles


# -- PamPolicy: push-neighbor-aside migration -------------------------------------


def test_pam_scale_migrates_fe_sideways():
    env, controller = policy_env("pam")
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    assert handle.state is OffloadState.ACTIVE
    src = handle.fe_vswitches[0]
    before = {vs.server.name for vs in handle.fe_vswitches}
    controller.policy.scale(controller.nodes[src.name], cpu=0.5)
    env.engine.run(until=env.engine.now + 3.0)
    assert controller.policy.migrations == 1
    # The FE moved sideways: same count, src replaced by a neighbor.
    assert src not in handle.fe_vswitches
    assert len(handle.frontends) == 4
    assert {vs.server.name for vs in handle.fe_vswitches} != before
    # Unlike Nezha's scale-in, PAM withdraws no capacity from the pool.
    assert src.server.name not in controller.placement.excluded
    assert controller.scale_ins == 0


# -- SuperNicPolicy: tenant quotas and preemption ---------------------------------


def test_supernic_select_fes_caps_at_quota():
    env, controller = policy_env("supernic")
    policy = controller.policy
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    assert len(handle.frontends) == 4
    # Budget 4, one tenant: quota 4, fully used -> grant denied.
    policy.fe_budget = 4
    assert policy.select_fes(env.vswitch_b, 2, vnic=env.vnic_b) == []
    # Budget 8: headroom 4, the request fits.
    policy.fe_budget = 8
    assert len(policy.select_fes(env.vswitch_b, 2, vnic=env.vnic_b)) == 2
    # Without a vNIC (no tenant to key on) the cap does not apply.
    policy.fe_budget = 4
    assert policy.select_fes(env.vswitch_b, 2) != []


def test_supernic_reconcile_tail_preempts_over_quota():
    env, controller = policy_env("supernic")
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:4])
    env.engine.run(until=2.0)
    assert handle.state is OffloadState.ACTIVE
    controller.policy.fe_budget = 2  # budget shrank under the holding
    controller.policy.reconcile_tail()
    assert controller.policy.preemptions == 2
    assert len(handle.frontends) == 2
    env.engine.run(until=env.engine.now + 2.0)
    # Preemption is graceful and never below one FE: still offloaded.
    assert handle.state is OffloadState.ACTIVE
    assert len(handle.frontends) == 2


# -- FleetCoordinator allocation policies -----------------------------------------


def test_coordinator_nezha_policy_matches_default():
    reports = [{"hot": [
        {"index": 5, "units": 2, "kinds": ["cps"]},
        {"index": 9, "units": 3, "kinds": ["flows"]},
        {"index": 11, "units": 4, "kinds": ["cps"]},
    ]}]
    default = FleetCoordinator(seed=3, pool_units=6)
    explicit = FleetCoordinator(seed=3, pool_units=6, policy="nezha")
    for epoch in range(2):
        assert (default.settle(epoch, reports)
                == explicit.settle(epoch, reports))
    assert default.denied_requests == explicit.denied_requests
    assert default.overloads == explicit.overloads
    assert default.utilization == explicit.utilization


def test_coordinator_pam_grants_single_units():
    coordinator = FleetCoordinator(seed=0, pool_units=4, policy="pam")
    reports = [{"hot": [{"index": 0, "units": 3, "kinds": ["cps"]}]}]
    grants = coordinator.settle(0, reports)
    assert grants == {0: 1}  # one neighbor's worth, not all-or-nothing
    # The partial grant leaves the capacity overload residual.
    assert coordinator.overloads[HotspotKind.CPS] == [1, 1]
    # A renewal still holding less than it needs stays residual too.
    assert coordinator.settle(1, reports) == {0: 1}
    assert coordinator.overloads[HotspotKind.CPS] == [2, 2]


def test_coordinator_supernic_enforces_tenant_quota():
    coordinator = FleetCoordinator(seed=0, pool_units=4, policy="supernic",
                                   n_tenants=2)
    # tenant = index % 2; quota = 2 units per tenant.
    reports = [{"hot": [
        {"index": 0, "units": 2, "kinds": ["cps"]},
        {"index": 2, "units": 2, "kinds": ["cps"]},  # tenant 0 over quota
        {"index": 1, "units": 2, "kinds": ["cps"]},  # tenant 1: fits
    ]}]
    grants = coordinator.settle(0, reports)
    assert grants == {0: 2, 1: 2}
    assert coordinator.denied_requests == 1


def test_coordinator_sirius_denies_everything():
    coordinator = FleetCoordinator(seed=0, pool_units=4, policy="sirius")
    reports = [{"hot": [{"index": 0, "units": 1,
                         "kinds": ["cps", "vnics"]}]}]
    assert coordinator.settle(0, reports) == {}
    assert coordinator.denied_requests == 1
    assert coordinator.overloads[HotspotKind.CPS] == [1, 1]
    assert coordinator.overloads[HotspotKind.VNICS] == [1, 1]
    assert coordinator.utilization == [0.0]


# -- experiment plumbing ----------------------------------------------------------


def test_fleet_run_policy_nezha_is_byte_identical():
    """policy="nezha" must be inert: same allocation loop, same
    activation RNG draws, no extra table rows."""
    from repro.experiments import fleet
    kwargs = dict(n_vswitches=120, epochs=2, seed=0)
    assert (fleet.run(**kwargs).to_text()
            == fleet.run(policy="nezha", **kwargs).to_text())


def test_runner_forwards_policy_only_where_accepted():
    from repro.experiments import fig9, fleet, policy_arena
    from repro.experiments.runner import _run_kwargs
    assert _run_kwargs(fleet.run, 0, 1, policy="pam")["policy"] == "pam"
    assert (_run_kwargs(policy_arena.run, 0, 1, policy="supernic")["policy"]
            == "supernic")
    assert "policy" not in _run_kwargs(fig9.run, 0, 1, policy="pam")
    assert "policy" not in _run_kwargs(fleet.run, 0, 1)


def test_policy_arena_single_policy_smoke():
    from repro.experiments import policy_arena
    result = policy_arena.run(policy="sirius", duration=0.3, warmup=0.15,
                              concurrency_per_client=8,
                              fleet_vswitches=300, fleet_epochs=2)
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row["policy"] == "sirius"
    assert row["cps"] > 0
    assert row["fe_units"] == 0  # sirius never deploys an FE
    assert row["denials"] >= 1
    assert row["mitigated_pct"] == 0.0
