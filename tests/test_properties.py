"""Hypothesis property tests on cross-cutting invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FiveTuple, IPv4Address, MacAddress, PROTO_TCP
from repro.sim import Engine, MemoryBudget, SeededRng
from repro.vswitch import CostModel, PreActions, SessionState, SessionTable
from repro.vswitch.session_table import EntryMode
from repro.vswitch.rule_tables import Location
from repro.core import FeSelector
from repro.workloads.fleet import QuantileDistribution

ports = st.integers(1, 65535)


def ft_from(sport: int, dport: int) -> FiveTuple:
    return FiveTuple(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                     PROTO_TCP, sport, dport)


# -- engine ordering -------------------------------------------------------------

@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_engine_executes_in_time_order(times):
    engine = Engine()
    seen = []
    for t in times:
        engine.call_at(t, lambda t=t: seen.append(t))
    engine.run()
    assert seen == sorted(times)
    assert engine.now == max(times)


# -- session table memory invariant ------------------------------------------------

op = st.sampled_from(["insert", "remove", "demote", "promote", "sweep",
                      "invalidate"])


@given(st.lists(st.tuples(op, ports, st.integers(1, 3)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_session_table_memory_never_leaks(ops):
    """mem.used always equals the sum of charged entry bytes."""
    cm = CostModel.testbed()
    mem = MemoryBudget(10_000_000)
    table = SessionTable(mem, cm)
    now = 0.0
    for action, sport, vni in ops:
        now += 1.0
        ft = ft_from(sport, 80)
        if action == "insert":
            try:
                table.insert(vni, ft, PreActions(), SessionState(),
                             now, EntryMode.FULL)
            except Exception:
                pass
        elif action == "remove":
            table.remove(vni, ft)
        elif action == "demote":
            table.demote_vni(vni)
        elif action == "promote":
            entry = table.lookup(vni, ft)
            if entry is not None:
                table.promote(entry, PreActions())
        elif action == "sweep":
            table.sweep(now)
        elif action == "invalidate":
            table.invalidate_peer_flows(vni, ft.dst_ip.value)
        charged = sum(entry.charged_bytes for entry in table)
        assert mem.used == charged, (action, mem.used, charged)
    table.clear()
    assert mem.used == 0


# -- selector invariants ----------------------------------------------------------------

@given(st.integers(1, 12), st.lists(ports, min_size=1, max_size=50,
                                    unique=True),
       st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_selector_pick_always_valid_and_stable(n_fes, sports, seed):
    locations = [Location(IPv4Address(f"10.9.0.{i + 1}"), MacAddress(i + 1))
                 for i in range(n_fes)]
    selector = FeSelector(locations, seed=seed)
    for sport in sports:
        ft = ft_from(sport, 443)
        first = selector.pick(ft)
        assert first in locations
        assert selector.pick(ft) == first      # deterministic per flow
    shares = selector.share_of([ft_from(s, 443) for s in sports])
    assert sum(shares.values()) == len(sports)


@given(st.integers(2, 8), st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_selector_remove_never_returns_removed(n_fes, seed):
    locations = [Location(IPv4Address(f"10.8.0.{i + 1}"), MacAddress(i + 1))
                 for i in range(n_fes)]
    selector = FeSelector(locations, seed=seed)
    removed = locations[0]
    selector.remove(removed)
    for sport in range(1, 50):
        assert selector.pick(ft_from(sport, 80)) != removed


# -- quantile distribution --------------------------------------------------------------------

anchor_values = st.lists(st.floats(0.001, 1000.0), min_size=2, max_size=6)


@given(anchor_values, st.lists(st.floats(0.0, 1.0), min_size=2, max_size=10))
@settings(max_examples=50, deadline=None)
def test_quantile_distribution_monotone(values, qs):
    values = sorted(values)
    n = len(values)
    anchors = [(i / (n - 1), v) for i, v in enumerate(values)]
    dist = QuantileDistribution(anchors)
    qs = sorted(qs)
    outs = [dist.quantile(q) for q in qs]
    assert all(b >= a - 1e-12 for a, b in zip(outs, outs[1:]))
    assert values[0] - 1e-9 <= outs[0]
    assert outs[-1] <= values[-1] + max(1e-9, values[-1] * 1e-9)


# -- RNG reproducibility across component trees --------------------------------------------------

@given(st.integers(0, 2**31), st.text(min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_rng_tree_reproducible(seed, label):
    a = SeededRng(seed).child(label).child("x")
    b = SeededRng(seed).child(label).child("x")
    assert [a.randint(0, 10**9) for _ in range(5)] == \
        [b.randint(0, 10**9) for _ in range(5)]


# -- five-tuple hash uniformity (sanity, not strict) -----------------------------------------------

def test_five_tuple_hash_spreads_over_buckets():
    counts = [0] * 8
    for sport in range(2000):
        counts[ft_from(sport + 1, 80).hash() % 8] += 1
    assert min(counts) > 150    # no bucket starved
    assert max(counts) < 350    # no bucket hogged


# -- decoder robustness: garbage never crashes, it raises DecodeError ---------------

@given(st.binary(min_size=0, max_size=200))
@settings(max_examples=200, deadline=None)
def test_packet_decode_rejects_garbage_cleanly(data):
    from repro.errors import DecodeError, PacketError
    from repro.net import Packet
    for first_layer in ("ethernet", "ipv4"):
        try:
            Packet.decode(data, first_layer=first_layer)
        except (DecodeError, PacketError):
            pass  # rejection is the contract; crashes are not


@given(st.binary(min_size=8, max_size=64))
@settings(max_examples=100, deadline=None)
def test_nsh_decode_rejects_garbage_cleanly(data):
    from repro.errors import DecodeError
    from repro.net import NshHeader
    try:
        NshHeader.decode(data)
    except DecodeError:
        pass


# -- token bucket conservation ------------------------------------------------------

@given(st.floats(1e3, 1e9), st.integers(100, 100_000),
       st.lists(st.tuples(st.floats(0.0, 0.1), st.integers(40, 1500)),
                min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_token_bucket_never_exceeds_rate_plus_burst(rate_bps, burst, arrivals):
    from repro.vswitch.qos import TokenBucket
    bucket = TokenBucket(rate_bps, burst)
    now = 0.0
    admitted_bytes = 0
    for gap, nbytes in arrivals:
        now += gap
        if bucket.allow(nbytes, now):
            admitted_bytes += nbytes
    # Conservation: admitted bytes <= burst + rate * elapsed.
    ceiling = burst + (rate_bps / 8.0) * now + 1e-6
    assert admitted_bytes <= ceiling


def test_token_bucket_validation():
    from repro.errors import ConfigError
    from repro.vswitch.qos import TokenBucket
    with pytest.raises(ConfigError):
        TokenBucket(0)
    with pytest.raises(ConfigError):
        TokenBucket(100, 0)


def test_token_bucket_refills_over_time():
    from repro.vswitch.qos import TokenBucket
    bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)  # 1000 B/s
    assert bucket.allow(1000, now=0.0)          # burst drained
    assert not bucket.allow(500, now=0.1)       # only 100B refilled
    assert bucket.allow(500, now=0.6)           # 600B refilled by now
