"""Tests for pre-actions, verdict resolution, process_pkt (paper §5.1)."""

import pytest

from repro.vswitch import (
    Direction, PreAction, PreActions, SessionState, StatsPolicy, Verdict,
    process_pkt,
)
from repro.vswitch.actions import ActionKind, resolve_verdict
from repro.net import IPv4Address


def state_first(direction):
    return SessionState(first_direction=direction)


# -- wire encodings ----------------------------------------------------------

def test_direction_wire_roundtrip():
    assert Direction.from_wire(Direction.TX.to_wire()) is Direction.TX
    assert Direction.from_wire(Direction.RX.to_wire()) is Direction.RX


def test_direction_opposite():
    assert Direction.TX.opposite is Direction.RX
    assert Direction.RX.opposite is Direction.TX


def test_verdict_wire_roundtrip():
    assert Verdict.from_wire(Verdict.ACCEPT.to_wire()) is Verdict.ACCEPT
    assert Verdict.from_wire(Verdict.DROP.to_wire()) is Verdict.DROP


# -- resolve_verdict: the stateful-ACL truth table (§5.1) ----------------------

def test_accept_preaction_always_accepts():
    pre = PreAction(verdict=Verdict.ACCEPT)
    assert resolve_verdict(Direction.RX, pre, state_first(Direction.RX)) \
        is Verdict.ACCEPT


def test_rx_drop_overridden_for_locally_initiated_session():
    """RX pre-action 'drop' + state TX => accept (solicited response)."""
    pre = PreAction(verdict=Verdict.DROP)
    assert resolve_verdict(Direction.RX, pre, state_first(Direction.TX)) \
        is Verdict.ACCEPT


def test_rx_drop_enforced_for_unsolicited_flow():
    """RX pre-action 'drop' + state RX => drop (unsolicited)."""
    pre = PreAction(verdict=Verdict.DROP)
    assert resolve_verdict(Direction.RX, pre, state_first(Direction.RX)) \
        is Verdict.DROP


def test_tx_drop_overridden_for_remotely_initiated_session():
    pre = PreAction(verdict=Verdict.DROP)
    assert resolve_verdict(Direction.TX, pre, state_first(Direction.RX)) \
        is Verdict.ACCEPT


def test_non_stateful_drop_never_overridden():
    pre = PreAction(verdict=Verdict.DROP, stateful_acl=False)
    assert resolve_verdict(Direction.RX, pre, state_first(Direction.TX)) \
        is Verdict.DROP


def test_drop_with_no_first_direction_drops():
    pre = PreAction(verdict=Verdict.DROP)
    assert resolve_verdict(Direction.RX, pre, SessionState()) is Verdict.DROP


# -- process_pkt ------------------------------------------------------------------

def test_process_pkt_tx_forward_carries_next_hop():
    pre_actions = PreActions()
    pre_actions.tx.next_hop_ip = IPv4Address("10.0.0.9")
    pre_actions.tx.vni = 55
    action = process_pkt(Direction.TX, pre_actions,
                         state_first(Direction.TX), 100)
    assert action.kind is ActionKind.FORWARD
    assert action.next_hop_ip == IPv4Address("10.0.0.9")
    assert action.vni == 55


def test_process_pkt_rx_delivers():
    action = process_pkt(Direction.RX, PreActions(),
                         state_first(Direction.RX), 100)
    assert action.kind is ActionKind.DELIVER


def test_process_pkt_drop_reason():
    pre_actions = PreActions()
    pre_actions.rx.verdict = Verdict.DROP
    action = process_pkt(Direction.RX, pre_actions,
                         state_first(Direction.RX), 100)
    assert action.is_drop
    assert action.reason == "acl"


def test_process_pkt_updates_stats_per_policy():
    state = state_first(Direction.TX)
    state.stats_policy = StatsPolicy.FULL
    pre_actions = PreActions()
    process_pkt(Direction.TX, pre_actions, state, 150)
    process_pkt(Direction.RX, pre_actions, state, 50)
    assert state.bytes_tx == 150 and state.packets_tx == 1
    assert state.bytes_rx == 50 and state.packets_rx == 1


def test_process_pkt_no_stats_without_policy():
    state = state_first(Direction.TX)
    process_pkt(Direction.TX, PreActions(), state, 150)
    assert state.bytes_tx == 0 and state.packets_tx == 0


def test_dropped_packet_not_counted_in_stats():
    state = state_first(Direction.RX)
    state.stats_policy = StatsPolicy.FULL
    pre_actions = PreActions()
    pre_actions.rx.verdict = Verdict.DROP
    process_pkt(Direction.RX, pre_actions, state, 99)
    assert state.bytes_rx == 0


def test_preactions_for_direction():
    pre_actions = PreActions()
    assert pre_actions.for_direction(Direction.TX) is pre_actions.tx
    assert pre_actions.for_direction(Direction.RX) is pre_actions.rx


def test_preactions_copy_is_deep_enough():
    pre_actions = PreActions()
    dup = pre_actions.copy()
    dup.tx.verdict = Verdict.DROP
    assert pre_actions.tx.verdict is Verdict.ACCEPT


# -- SessionState wire + sizing ------------------------------------------------------

def test_state_wire_roundtrip_full():
    from repro.vswitch.tcp_fsm import TcpState
    state = SessionState(first_direction=Direction.TX,
                         tcp_state=TcpState.ESTABLISHED,
                         stats_policy=StatsPolicy.BYTES,
                         decap_overlay_src=IPv4Address("1.2.3.4"))
    back = SessionState.from_wire(state.to_wire())
    assert back.first_direction is Direction.TX
    assert back.tcp_state is TcpState.ESTABLISHED
    assert back.stats_policy is StatsPolicy.BYTES
    assert back.decap_overlay_src == IPv4Address("1.2.3.4")


def test_state_wire_roundtrip_empty():
    back = SessionState.from_wire(SessionState().to_wire())
    assert back.first_direction is None
    assert back.decap_overlay_src is None


def test_state_wire_rejects_short_blob():
    with pytest.raises(ValueError):
        SessionState.from_wire(b"\x00")


def test_variable_size_small_for_plain_flow():
    """§7.1: most states are 5-8B, far below the fixed 64B slot."""
    state = SessionState(first_direction=Direction.TX)
    from repro.vswitch.tcp_fsm import TcpState
    state.tcp_state = TcpState.ESTABLISHED
    assert 5 <= state.variable_size() <= 8


def test_variable_size_grows_with_features():
    state = SessionState(first_direction=Direction.TX,
                         stats_policy=StatsPolicy.FULL,
                         decap_overlay_src=IPv4Address("1.1.1.1"))
    assert state.variable_size() > 20


def test_aging_time_depends_on_tcp_state():
    from repro.vswitch.tcp_fsm import TcpState
    state = SessionState()
    embryonic = state.aging_time()
    state.tcp_state = TcpState.ESTABLISHED
    established = state.aging_time()
    state.tcp_state = TcpState.CLOSED
    closed = state.aging_time()
    assert embryonic < established
    assert closed < embryonic


def test_expired_uses_last_seen():
    state = SessionState()
    state.touch(10.0)
    assert not state.expired(10.5)
    assert state.expired(10.0 + state.aging_time() + 0.01)
