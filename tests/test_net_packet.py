"""Tests for the Packet model: stacking, encap/decap, wire round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PacketError
from repro.net import (
    EthernetHeader, FiveTuple, IPv4Address, IPv4Header, MacAddress,
    NshContext, NshHeader, Packet, TcpFlags, TcpHeader, UdpHeader,
    VxlanHeader, PROTO_TCP,
)
from repro.net.packet import NSH_PORT, make_underlay_transport

A = IPv4Address("10.0.0.1")
B = IPv4Address("10.0.0.2")


def tcp_pkt(payload=b"hello"):
    return Packet.tcp(A, B, 1000, 80, TcpFlags.of("syn"), payload)


# -- five tuple -----------------------------------------------------------------

def test_five_tuple_extraction():
    ft = tcp_pkt().five_tuple()
    assert ft == FiveTuple(A, B, PROTO_TCP, 1000, 80)


def test_five_tuple_reverse_and_session_key():
    ft = FiveTuple(A, B, PROTO_TCP, 1000, 80)
    rev = ft.reversed()
    assert rev.src_ip == B and rev.dst_port == 1000
    assert ft.session_key() == rev.session_key()
    assert ft != rev


def test_five_tuple_hash_deterministic_and_seeded():
    ft = FiveTuple(A, B, PROTO_TCP, 1000, 80)
    assert ft.hash() == ft.hash()
    assert ft.hash(seed=1) != ft.hash(seed=2)


def test_five_tuple_hash_not_symmetric():
    # Nezha explicitly does NOT need symmetric hashing (§3.2.3); the state
    # is on the BE which both directions traverse.
    ft = FiveTuple(A, B, PROTO_TCP, 1000, 80)
    assert ft.hash() != ft.reversed().hash()


def test_five_tuple_usable_as_dict_key():
    ft = FiveTuple(A, B, PROTO_TCP, 1, 2)
    same = FiveTuple(A, B, PROTO_TCP, 1, 2)
    assert {ft: "x"}[same] == "x"


# -- constructors / accessors ------------------------------------------------------

def test_tcp_packet_lengths():
    pkt = tcp_pkt(b"12345")
    assert pkt.wire_length == 20 + 20 + 5
    assert pkt.expect(IPv4Header).total_length == 45


def test_udp_packet_lengths():
    pkt = Packet.udp(A, B, 53, 53, b"q" * 10)
    assert pkt.expect(UdpHeader).length == 18
    assert pkt.wire_length == 20 + 8 + 10


def test_icmp_echo_constructor():
    pkt = Packet.icmp_echo(A, B, identifier=3, sequence=9)
    ft = pkt.five_tuple()
    assert ft.proto == 1


def test_find_and_expect():
    pkt = tcp_pkt()
    assert pkt.find(TcpHeader) is pkt.layers[1]
    assert pkt.find(VxlanHeader) is None
    with pytest.raises(PacketError):
        pkt.expect(VxlanHeader)


def test_empty_packet_rejected():
    with pytest.raises(PacketError):
        Packet([])


# -- encap / decap ---------------------------------------------------------------------

def test_underlay_transport_wraps_and_unwraps():
    inner = tcp_pkt()
    wrapped = make_underlay_transport(
        MacAddress(1), MacAddress(2), IPv4Address("192.168.0.1"),
        IPv4Address("192.168.0.2"), inner, vni=77)
    assert wrapped.vni() == 77
    # Inner five-tuple is still the tenant's.
    assert wrapped.five_tuple() == inner.five_tuple()
    # Unwrap: drop Eth/IPv4/UDP/VXLAN/innerEth.
    wrapped.decap(5)
    assert wrapped.layers == inner.layers


def test_encap_returns_self_for_chaining():
    pkt = tcp_pkt()
    assert pkt.encap(VxlanHeader(1)) is pkt
    assert isinstance(pkt.outer, VxlanHeader)


def test_decap_cannot_empty_packet():
    pkt = tcp_pkt()
    with pytest.raises(PacketError):
        pkt.decap(2)


def test_decap_until():
    pkt = tcp_pkt()
    pkt.encap(VxlanHeader(1))
    removed = pkt.decap_until(IPv4Header)
    assert len(removed) == 1
    assert isinstance(pkt.outer, IPv4Header)


def test_decap_until_missing_layer_raises():
    pkt = Packet([IPv4Header(A, B, 6, total_length=40), TcpHeader(1, 2)])
    with pytest.raises(PacketError):
        pkt.decap_until(VxlanHeader)


def test_copy_is_independent():
    pkt = tcp_pkt()
    dup = pkt.copy()
    dup.meta["x"] = 1
    dup.expect(IPv4Header).ttl = 1
    assert "x" not in pkt.meta
    assert pkt.expect(IPv4Header).ttl == 64
    assert dup == pkt or dup.expect(IPv4Header).ttl != pkt.expect(IPv4Header).ttl


# -- wire round-trips -----------------------------------------------------------------------

def test_plain_tcp_wire_roundtrip():
    pkt = tcp_pkt(b"payload!")
    decoded = Packet.decode(pkt.encode(), first_layer="ipv4")
    assert decoded == pkt


def test_vxlan_overlay_wire_roundtrip():
    inner = tcp_pkt(b"x" * 30)
    wrapped = make_underlay_transport(
        MacAddress(0xA), MacAddress(0xB), IPv4Address("1.1.1.1"),
        IPv4Address("2.2.2.2"), inner, vni=4242)
    decoded = Packet.decode(wrapped.encode(), first_layer="ethernet")
    assert decoded == wrapped
    assert decoded.vni() == 4242


def test_nezha_nsh_hop_wire_roundtrip():
    """The BE→FE wire format: Eth/IPv4/UDP(4790)/NSH(state)/IPv4/TCP."""
    inner = tcp_pkt(b"data")
    ctx = NshContext({NshContext.STATE: b"\x01", NshContext.DIRECTION: b"T"})
    nsh = NshHeader(spi=9, si=255, context=ctx)
    udp_len = UdpHeader.wire_length + nsh.wire_length + inner.wire_length
    outer_ip_len = IPv4Header.wire_length + udp_len
    pkt = Packet(
        [EthernetHeader(MacAddress(1), MacAddress(2)),
         IPv4Header(IPv4Address("172.16.0.1"), IPv4Address("172.16.0.2"),
                    17, total_length=outer_ip_len),
         UdpHeader(50000, NSH_PORT, udp_len),
         nsh] + inner.layers,
        inner.payload)
    decoded = Packet.decode(pkt.encode(), first_layer="ethernet")
    assert decoded == pkt
    assert decoded.nsh().context.get(NshContext.STATE) == b"\x01"
    assert decoded.five_tuple() == inner.five_tuple()


@given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1),
       st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
       st.binary(min_size=0, max_size=100))
def test_tcp_packet_wire_roundtrip_property(src, dst, sport, dport, payload):
    pkt = Packet.tcp(IPv4Address(src), IPv4Address(dst), sport, dport,
                     TcpFlags.of("ack"), payload)
    assert Packet.decode(pkt.encode(), first_layer="ipv4") == pkt
