"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Interrupt, Timeout


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_call_at_runs_in_time_order():
    engine = Engine()
    order = []
    engine.call_at(2.0, order.append, "b")
    engine.call_at(1.0, order.append, "a")
    engine.call_at(3.0, order.append, "c")
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 3.0


def test_simultaneous_callbacks_fifo():
    engine = Engine()
    order = []
    for tag in "abc":
        engine.call_at(1.0, order.append, tag)
    engine.run()
    assert order == ["a", "b", "c"]


def test_call_in_past_rejected():
    engine = Engine()
    engine.call_at(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.call_at(1.0, lambda: None)


def test_run_until_stops_clock():
    engine = Engine()
    fired = []
    engine.call_at(10.0, fired.append, True)
    assert engine.run(until=5.0) == 5.0
    assert not fired
    assert engine.pending == 1
    engine.run()
    assert fired == [True]


def test_run_until_advances_clock_past_empty_heap():
    engine = Engine()
    assert engine.run(until=7.0) == 7.0
    assert engine.now == 7.0


def test_process_timeout_sleeps():
    engine = Engine()
    wakeups = []

    def proc():
        yield Timeout(1.5)
        wakeups.append(engine.now)
        yield Timeout(0.5)
        wakeups.append(engine.now)

    engine.process(proc())
    engine.run()
    assert wakeups == [1.5, 2.0]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_process_return_value():
    engine = Engine()

    def proc():
        yield Timeout(1.0)
        return 42

    p = engine.process(proc())
    engine.run()
    assert p.done
    assert p.value == 42


def test_value_before_done_raises():
    engine = Engine()

    def proc():
        yield Timeout(1.0)

    p = engine.process(proc())
    with pytest.raises(SimulationError):
        _ = p.value


def test_process_waits_on_event_value():
    engine = Engine()
    evt = engine.event("e")
    seen = []

    def waiter():
        value = yield evt
        seen.append((engine.now, value))

    engine.process(waiter())
    engine.call_at(3.0, evt.succeed, "hello")
    engine.run()
    assert seen == [(3.0, "hello")]


def test_waiting_on_fired_event_resumes_immediately():
    engine = Engine()
    evt = engine.event()
    evt.succeed("x")
    got = []

    def waiter():
        got.append((yield evt))

    engine.process(waiter())
    engine.run()
    assert got == ["x"]


def test_event_fires_once_only():
    engine = Engine()
    evt = engine.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_raises_in_waiter():
    engine = Engine()
    evt = engine.event()
    caught = []

    def waiter():
        try:
            yield evt
        except ValueError as err:
            caught.append(str(err))

    engine.process(waiter())
    engine.call_at(1.0, evt.fail, ValueError("boom"))
    engine.run()
    assert caught == ["boom"]


def test_process_waits_on_process():
    engine = Engine()
    log = []

    def child():
        yield Timeout(2.0)
        return "child-result"

    def parent():
        result = yield engine.process(child())
        log.append((engine.now, result))

    engine.process(parent())
    engine.run()
    assert log == [(2.0, "child-result")]


def test_interrupt_raises_in_process():
    engine = Engine()
    log = []

    def sleeper():
        try:
            yield Timeout(100.0)
        except Interrupt as intr:
            log.append((engine.now, intr.cause))

    p = engine.process(sleeper())
    engine.call_at(1.0, p.interrupt, "wake-up")
    engine.run()
    assert log == [(1.0, "wake-up")]


def test_interrupt_after_done_is_noop():
    engine = Engine()

    def quick():
        yield Timeout(0.1)

    p = engine.process(quick())
    engine.run()
    p.interrupt("late")  # should not raise
    assert p.done


def test_unwaited_crash_surfaces_at_run_end():
    engine = Engine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("oops")

    engine.process(bad())
    with pytest.raises(SimulationError, match="oops"):
        engine.run()


def test_crash_seen_by_waiter_does_not_raise_globally():
    engine = Engine()
    caught = []

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("oops")

    def parent():
        try:
            yield engine.process(bad())
        except RuntimeError as err:
            caught.append(str(err))

    engine.process(parent())
    engine.run()
    assert caught == ["oops"]


def test_yield_none_cooperative_tick():
    engine = Engine()
    steps = []

    def proc():
        steps.append("a")
        yield None
        steps.append("b")

    engine.process(proc())
    engine.run()
    assert steps == ["a", "b"]
    assert engine.now == 0.0


def test_yield_garbage_crashes_process():
    engine = Engine()

    def proc():
        yield object()

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_all_of_collects_results():
    engine = Engine()
    results = []

    def worker(delay, value):
        yield Timeout(delay)
        return value

    def parent():
        procs = [engine.process(worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield engine.all_of(procs)
        results.append((engine.now, values))

    engine.process(parent())
    engine.run()
    assert results == [(3.0, [30.0, 10.0, 20.0])]


def test_all_of_empty_fires_immediately():
    engine = Engine()
    evt = engine.all_of([])
    assert evt.fired
    assert evt.value == []


def test_step_executes_single_callback():
    engine = Engine()
    order = []
    engine.call_at(1.0, order.append, "a")
    engine.call_at(2.0, order.append, "b")
    assert engine.step()
    assert order == ["a"]
    assert engine.step()
    assert order == ["a", "b"]
    assert not engine.step()


# -- call_at_batch ---------------------------------------------------------------

def test_batch_runs_in_time_order():
    engine = Engine()
    order = []
    engine.call_at_batch([(t, order.append, (t,)) for t in (1.0, 2.0, 3.0)])
    engine.run()
    assert order == [1.0, 2.0, 3.0]
    assert engine.now == 3.0


def test_batch_interleaves_exactly_like_per_item_calls():
    """A batch must be indistinguishable from N call_at pushes against
    every competitor class: earlier-pushed same-time entries win, later-
    pushed same-time entries lose, strictly-earlier entries preempt."""
    def trace(batched):
        engine = Engine()
        order = []
        engine.call_at(1.0, order.append, "before@1")  # pushed first: wins ties
        items = [(t, order.append, (f"batch@{t}",)) for t in (1.0, 1.5, 2.0)]
        if batched:
            engine.call_at_batch(items)
        else:
            for when, fn, args in items:
                engine.call_at(when, fn, *args)
        engine.call_at(1.5, order.append, "after@1.5")  # pushed last: loses tie
        engine.call_at(1.2, order.append, "mid@1.2")    # strictly earlier: preempts
        engine.run()
        return order

    assert trace(batched=True) == trace(batched=False) == [
        "before@1", "batch@1.0", "mid@1.2", "batch@1.5", "after@1.5",
        "batch@2.0"]


def test_batch_callback_scheduling_during_batch_matches_per_item():
    """Callbacks scheduled *by* a batch item at the same instant go to
    the micro-queue and must still run after the remaining same-instant
    batch items — just as they would with per-item pushes."""
    def trace(batched):
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.call_at(1.0, order.append, "spawned@1")

        items = [(1.0, first, ()), (1.0, order.append, ("second",))]
        if batched:
            engine.call_at_batch(items)
        else:
            for when, fn, args in items:
                engine.call_at(when, fn, *args)
        engine.run()
        return order

    assert trace(batched=True) == trace(batched=False) == [
        "first", "second", "spawned@1"]


def test_batch_items_due_now_drain_through_micro_queue():
    engine = Engine()
    order = []
    engine.call_at_batch([(0.0, order.append, ("a",)),
                          (0.0, order.append, ("b",)),
                          (1.0, order.append, ("c",))])
    assert engine.pending == 3  # two ready + one heap entry for the rest
    engine.run()
    assert order == ["a", "b", "c"]


def test_batch_respects_run_until_bound():
    engine = Engine()
    order = []
    engine.call_at_batch([(t, order.append, (t,)) for t in (1.0, 2.0, 3.0)])
    engine.run(until=2.0)
    assert order == [1.0, 2.0]
    assert engine.now == 2.0
    engine.run()  # re-pushed remainder resumes where it stopped
    assert order == [1.0, 2.0, 3.0]


def test_batch_rejects_unsorted_and_past_times():
    engine = Engine()
    engine.call_at(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.call_at_batch([(2.0, print, ()), (1.5, print, ())])
    with pytest.raises(SimulationError):
        engine.call_at_batch([(0.5, print, ())])  # now is 1.0


def test_batch_empty_is_noop():
    engine = Engine()
    engine.call_at_batch([])
    assert engine.pending == 0


def test_batch_with_micro_queue_off_falls_back_to_per_item():
    saved = Engine.micro_queue
    Engine.micro_queue = False
    try:
        engine = Engine()
        order = []
        engine.call_at_batch([(t, order.append, (t,)) for t in (1.0, 2.0)])
        engine.run()
        assert order == [1.0, 2.0]
    finally:
        Engine.micro_queue = saved
