"""Unit tests for simulated resources (repro.sim.resources)."""

import pytest

from repro.errors import ResourceExhausted, SimulationError
from repro.sim import CpuResource, Engine, FifoQueue, MemoryBudget, Timeout


# -- CpuResource --------------------------------------------------------------

def test_cpu_service_time():
    cpu = CpuResource(Engine(), cores=1, hz=1_000_000)
    assert cpu.service_time(1_000_000) == pytest.approx(1.0)
    assert cpu.service_time(500) == pytest.approx(0.0005)


def test_cpu_single_core_serializes_jobs():
    engine = Engine()
    cpu = CpuResource(engine, cores=1, hz=100.0)
    completions = []

    def submit_two():
        first = cpu.submit(100)   # 1s of work
        second = cpu.submit(100)  # queued behind the first
        yield first
        completions.append(engine.now)
        yield second
        completions.append(engine.now)

    engine.process(submit_two())
    engine.run()
    assert completions == [pytest.approx(1.0), pytest.approx(2.0)]


def test_cpu_multi_core_parallelism():
    engine = Engine()
    cpu = CpuResource(engine, cores=2, hz=100.0)
    completions = []

    def submit_two():
        a = cpu.submit(100)
        b = cpu.submit(100)
        yield a
        completions.append(engine.now)
        yield b
        completions.append(engine.now)

    engine.process(submit_two())
    engine.run()
    # Two cores: both jobs finish at t=1.0.
    assert completions == [pytest.approx(1.0), pytest.approx(1.0)]


def test_cpu_utilization_tracks_busy_fraction():
    engine = Engine()
    cpu = CpuResource(engine, cores=1, hz=100.0, util_window=1.0)

    def load():
        yield cpu.submit(50)  # 0.5s of work on a 1s window
        yield Timeout(0.5)

    engine.process(load())
    engine.run()
    assert engine.now == pytest.approx(1.0)
    assert cpu.utilization() == pytest.approx(0.5, abs=0.01)


def test_cpu_utilization_idle_is_zero():
    engine = Engine()
    cpu = CpuResource(engine, cores=4, hz=100.0)
    engine.call_at(10.0, lambda: None)
    engine.run()
    assert cpu.utilization() == 0.0


def test_cpu_try_submit_rejects_over_backlog():
    engine = Engine()
    cpu = CpuResource(engine, cores=1, hz=100.0)
    cpu.submit(1000)  # 10s backlog
    assert cpu.try_submit(10, max_backlog=1.0) is None
    assert cpu.jobs_rejected == 1
    # With generous limit it is accepted.
    assert cpu.try_submit(10, max_backlog=100.0) is not None


def test_cpu_backlog_reports_queued_seconds():
    engine = Engine()
    cpu = CpuResource(engine, cores=1, hz=100.0)
    cpu.submit(200)  # 2s
    assert cpu.backlog() == pytest.approx(2.0)


def test_cpu_validates_configuration():
    with pytest.raises(SimulationError):
        CpuResource(Engine(), cores=0, hz=100.0)
    with pytest.raises(SimulationError):
        CpuResource(Engine(), cores=1, hz=0.0)


# -- MemoryBudget --------------------------------------------------------------

def test_memory_alloc_free_roundtrip():
    mem = MemoryBudget(1000)
    mem.alloc("sessions", 300)
    mem.alloc("rules", 200)
    assert mem.used == 500
    assert mem.by_tag == {"sessions": 300, "rules": 200}
    mem.free("sessions", 300)
    assert mem.used == 200
    assert "sessions" not in mem.by_tag


def test_memory_exhaustion_raises_and_counts():
    mem = MemoryBudget(100)
    mem.alloc("a", 90)
    with pytest.raises(ResourceExhausted):
        mem.alloc("b", 20)
    assert mem.failed_allocs == 1
    assert mem.used == 90  # failed alloc did not leak


def test_memory_try_alloc():
    mem = MemoryBudget(100)
    assert mem.try_alloc("a", 60)
    assert not mem.try_alloc("b", 60)
    assert mem.used == 60


def test_memory_over_free_rejected():
    mem = MemoryBudget(100)
    mem.alloc("a", 10)
    with pytest.raises(SimulationError):
        mem.free("a", 20)


def test_memory_free_all_returns_bytes():
    mem = MemoryBudget(100)
    mem.alloc("a", 30)
    mem.alloc("a", 20)
    assert mem.free_all("a") == 50
    assert mem.used == 0
    assert mem.free_all("missing") == 0


def test_memory_peak_and_utilization():
    mem = MemoryBudget(100)
    mem.alloc("a", 80)
    mem.free("a", 50)
    assert mem.peak == 80
    assert mem.utilization() == pytest.approx(0.3)
    assert mem.available() == 70


# -- FifoQueue ------------------------------------------------------------------

def test_queue_put_get_order():
    engine = Engine()
    q = FifoQueue(engine)
    got = []

    def consumer():
        for _ in range(3):
            item = yield q.get()
            got.append(item)

    engine.process(consumer())
    for i in range(3):
        q.put(i)
    engine.run()
    assert got == [0, 1, 2]


def test_queue_blocks_until_item():
    engine = Engine()
    q = FifoQueue(engine)
    got = []

    def consumer():
        item = yield q.get()
        got.append((engine.now, item))

    engine.process(consumer())
    engine.call_at(5.0, q.put, "late")
    engine.run()
    assert got == [(5.0, "late")]


def test_queue_drop_tail_when_full():
    engine = Engine()
    q = FifoQueue(engine, capacity=2)
    assert q.put(1)
    assert q.put(2)
    assert not q.put(3)
    assert q.drops == 1
    assert len(q) == 2
