"""Unit + property tests for individual header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.net import (
    EthernetHeader, IcmpHeader, IPv4Address, IPv4Header, MacAddress,
    NshContext, NshHeader, TcpFlags, TcpHeader, UdpHeader, VxlanHeader,
)
from repro.net.checksum import verify_checksum
from repro.net.icmp import ECHO_REPLY, ECHO_REQUEST

ips = st.integers(0, (1 << 32) - 1).map(IPv4Address)
macs = st.integers(0, (1 << 48) - 1).map(MacAddress)
ports = st.integers(0, 0xFFFF)


# -- Ethernet ------------------------------------------------------------------

def test_ethernet_roundtrip():
    eth = EthernetHeader(MacAddress(1), MacAddress(2), 0x0800)
    decoded, rest = EthernetHeader.decode(eth.encode() + b"tail")
    assert decoded == eth
    assert rest == b"tail"


def test_ethernet_too_short():
    with pytest.raises(DecodeError):
        EthernetHeader.decode(b"\x00" * 13)


@given(macs, macs, st.integers(0, 0xFFFF))
def test_ethernet_roundtrip_property(dst, src, ethertype):
    eth = EthernetHeader(dst, src, ethertype)
    decoded, rest = EthernetHeader.decode(eth.encode())
    assert decoded == eth and rest == b""


# -- IPv4 -------------------------------------------------------------------------

def test_ipv4_roundtrip():
    ip = IPv4Header(IPv4Address("1.2.3.4"), IPv4Address("5.6.7.8"), 6,
                    total_length=60, ttl=17, identification=99, dscp=10)
    decoded, rest = IPv4Header.decode(ip.encode() + b"x")
    assert decoded == ip
    assert rest == b"x"


def test_ipv4_checksum_valid_on_wire():
    ip = IPv4Header(IPv4Address("9.9.9.9"), IPv4Address("8.8.8.8"), 17)
    assert verify_checksum(ip.encode())


def test_ipv4_rejects_bad_fields():
    a, b = IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")
    with pytest.raises(DecodeError):
        IPv4Header(a, b, 300)
    with pytest.raises(DecodeError):
        IPv4Header(a, b, 6, total_length=10)
    with pytest.raises(DecodeError):
        IPv4Header(a, b, 6, ttl=-1)


def test_ipv4_rejects_wrong_version():
    ip = IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 6)
    data = bytearray(ip.encode())
    data[0] = (6 << 4) | 5
    with pytest.raises(DecodeError):
        IPv4Header.decode(bytes(data))


def test_ipv4_ttl_decrement():
    ip = IPv4Header(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 6, ttl=2)
    assert ip.decrement_ttl()
    assert ip.ttl == 1
    assert not ip.decrement_ttl()


@given(ips, ips, st.sampled_from([1, 6, 17]), st.integers(20, 1500),
       st.integers(1, 255))
def test_ipv4_roundtrip_property(src, dst, proto, total_length, ttl):
    ip = IPv4Header(src, dst, proto, total_length=total_length, ttl=ttl)
    decoded, rest = IPv4Header.decode(ip.encode())
    assert decoded == ip and rest == b""


# -- TCP -----------------------------------------------------------------------------

def test_tcp_flags_of_and_predicates():
    flags = TcpFlags.of("syn", "ack")
    assert flags.syn and flags.ack and not flags.fin


def test_tcp_roundtrip():
    tcp = TcpHeader(1234, 80, seq=7, ack_num=9, flags=TcpFlags.of("psh", "ack"),
                    window=1024)
    decoded, rest = TcpHeader.decode(tcp.encode() + b"d")
    assert decoded == tcp
    assert rest == b"d"


def test_tcp_rejects_bad_port():
    with pytest.raises(DecodeError):
        TcpHeader(70000, 80)


def test_tcp_rejects_options():
    tcp = TcpHeader(1, 2)
    data = bytearray(tcp.encode())
    data[12] = 6 << 4  # data offset 6 words
    with pytest.raises(DecodeError):
        TcpHeader.decode(bytes(data))


@given(ports, ports, st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
       st.integers(0, 0x3F), st.integers(0, 0xFFFF))
def test_tcp_roundtrip_property(sp, dp, seq, ack, flagbits, window):
    tcp = TcpHeader(sp, dp, seq, ack, TcpFlags(flagbits), window)
    decoded, rest = TcpHeader.decode(tcp.encode())
    assert decoded == tcp and rest == b""


# -- UDP --------------------------------------------------------------------------------

def test_udp_roundtrip_and_payload_length():
    udp = UdpHeader(53, 5353, length=20)
    assert udp.payload_length == 12
    decoded, rest = UdpHeader.decode(udp.encode())
    assert decoded == udp and rest == b""


def test_udp_rejects_short_length():
    with pytest.raises(DecodeError):
        UdpHeader(1, 2, length=4)


# -- ICMP -------------------------------------------------------------------------------

def test_icmp_echo_roundtrip():
    icmp = IcmpHeader(ECHO_REQUEST, 0, identifier=7, sequence=3)
    decoded, rest = IcmpHeader.decode(icmp.encode())
    assert decoded == icmp and rest == b""
    assert decoded.is_echo_request


def test_icmp_reply_matches_request():
    req = IcmpHeader(ECHO_REQUEST, 0, identifier=7, sequence=3)
    rep = req.reply()
    assert rep.icmp_type == ECHO_REPLY
    assert (rep.identifier, rep.sequence) == (7, 3)
    assert rep.is_echo_reply


def test_icmp_reply_requires_request():
    with pytest.raises(DecodeError):
        IcmpHeader(ECHO_REPLY).reply()


# -- VXLAN ---------------------------------------------------------------------------------

def test_vxlan_roundtrip():
    vx = VxlanHeader(0xABCDEF)
    decoded, rest = VxlanHeader.decode(vx.encode())
    assert decoded == vx and rest == b""


def test_vxlan_rejects_oversized_vni():
    with pytest.raises(DecodeError):
        VxlanHeader(1 << 24)


def test_vxlan_requires_i_flag():
    data = bytearray(VxlanHeader(5).encode())
    data[0] = 0
    with pytest.raises(DecodeError):
        VxlanHeader.decode(bytes(data))


@given(st.integers(0, (1 << 24) - 1))
def test_vxlan_roundtrip_property(vni):
    vx = VxlanHeader(vni)
    decoded, _ = VxlanHeader.decode(vx.encode())
    assert decoded.vni == vni


# -- NSH ------------------------------------------------------------------------------------

def test_nsh_empty_context_roundtrip():
    nsh = NshHeader(spi=10, si=5)
    decoded, rest = NshHeader.decode(nsh.encode() + b"pp")
    assert decoded == nsh
    assert rest == b"pp"


def test_nsh_context_tlv_roundtrip():
    ctx = NshContext({NshContext.STATE: b"\x01\x02\x03",
                      NshContext.VNIC: b"\x00\x00\x00\x07"})
    nsh = NshHeader(spi=1, si=254, context=ctx)
    decoded, rest = NshHeader.decode(nsh.encode())
    assert decoded.context.get(NshContext.STATE) == b"\x01\x02\x03"
    assert decoded.context.get(NshContext.VNIC) == b"\x00\x00\x00\x07"
    assert rest == b""


def test_nsh_context_get_missing_raises():
    with pytest.raises(DecodeError):
        NshContext().get(NshContext.STATE)
    assert NshContext().get_or(NshContext.STATE, b"?") == b"?"


def test_nsh_context_put_chainable():
    ctx = NshContext().put(1, b"a").put(2, b"bb")
    assert len(ctx) == 2
    assert 1 in ctx and 3 not in ctx


def test_nsh_rejects_giant_tlv():
    with pytest.raises(DecodeError):
        NshContext({1: b"x" * 256})


def test_nsh_rejects_bad_spi_si():
    with pytest.raises(DecodeError):
        NshHeader(spi=1 << 24)
    with pytest.raises(DecodeError):
        NshHeader(si=256)


@given(st.dictionaries(st.integers(0, 255), st.binary(min_size=0, max_size=40),
                       max_size=4),
       st.integers(0, (1 << 24) - 1), st.integers(0, 255))
def test_nsh_roundtrip_property(entries, spi, si):
    nsh = NshHeader(spi=spi, si=si, context=NshContext(entries))
    decoded, rest = NshHeader.decode(nsh.encode())
    assert decoded == nsh and rest == b""
