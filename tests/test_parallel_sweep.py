"""Unit tests for the process-pool sweep layer and per-point seeds."""

import pytest

from repro.experiments.parallel import (default_jobs, point_seeds,
                                        resolve_jobs, sweep)
from repro.sim.rng import SeededRng, derive_seed


def _square(point):  # top-level: picklable for pool workers
    return point * point


def _boom(point):
    raise ValueError(f"bad point {point}")


# -- sweep -------------------------------------------------------------------------


def test_sweep_preserves_submission_order_sequential():
    assert sweep([3, 1, 2], _square, jobs=1) == [9, 1, 4]


def test_sweep_preserves_submission_order_parallel():
    points = list(range(10))
    assert sweep(points, _square, jobs=3) == [p * p for p in points]


def test_sweep_parallel_equals_sequential():
    points = [7, 0, 5, 5, 2]
    assert sweep(points, _square, jobs=4) == sweep(points, _square, jobs=1)


def test_sweep_jobs_one_runs_in_process():
    seen = []

    def worker(point):  # a closure: unpicklable, so only in-process works
        seen.append(point)
        return point

    assert sweep([1, 2, 3], worker, jobs=1) == [1, 2, 3]
    assert seen == [1, 2, 3]


def test_sweep_empty_points():
    assert sweep([], _square, jobs=1) == []
    assert sweep([], _square, jobs=4) == []


def test_sweep_propagates_worker_errors():
    with pytest.raises(ValueError, match="bad point 1"):
        sweep([1], _boom, jobs=1)
    with pytest.raises(ValueError, match="bad point"):
        sweep([1, 2], _boom, jobs=2)


def test_resolve_jobs():
    assert resolve_jobs(None, 100) == min(default_jobs(), 100)
    assert resolve_jobs(8, 3) == 3          # trimmed to the point count
    assert resolve_jobs(2, 100) == 2
    assert resolve_jobs(4, 0) == 1          # empty sweep: no pool
    with pytest.raises(ValueError):
        resolve_jobs(0, 5)


def test_default_jobs_positive():
    assert default_jobs() >= 1


# -- seed derivation ----------------------------------------------------------------


def test_derive_seed_is_stable():
    assert derive_seed(3, "fig2/vm/0") == derive_seed(3, "fig2/vm/0")


def test_derive_seed_separates_labels_and_seeds():
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_derive_seed_does_not_alias_like_seed_plus_index():
    # The scheme it replaces: seed 0 / point 1 == seed 1 / point 0.
    assert derive_seed(0, "sweep/1") != derive_seed(1, "sweep/0")


def test_derive_seed_rebuilds_identical_streams():
    seed = derive_seed(42, "worker/5")
    a = SeededRng(seed, "point")
    b = SeededRng(seed, "point")
    assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]


def test_point_seeds_positional_and_distinct():
    seeds = point_seeds(7, "fig2/vm", range(6))
    assert len(seeds) == 6
    assert len(set(seeds)) == 6
    assert seeds == point_seeds(7, "fig2/vm", ["any", "other", "values",
                                               "same", "length", "!"])
