"""Runner CLI coverage: list/unknown exits, --seed and --jobs plumbing,
and the signature-based seed detection that replaced the fragile
``co_varnames`` check."""

import pytest

from repro.experiments.runner import (ALL_EXPERIMENTS, FAST_EXPERIMENTS,
                                      SLOW_EXPERIMENTS, _run_kwargs, main,
                                      run_all, run_experiment)


def _tables(output: str):
    """Rendered experiment tables, with the wall-clock lines stripped."""
    return [line for line in output.splitlines()
            if not line.startswith("[") or "finished in" not in line]


# -- argument plumbing -------------------------------------------------------------


def test_run_kwargs_matches_parameters_not_locals():
    def seedless_run():
        seed = 123  # a *local* named seed; co_varnames would match it
        return seed

    assert _run_kwargs(seedless_run, 7, 2) == {}

    def seeded_run(seed=0):
        return seed

    assert _run_kwargs(seeded_run, 7, 2) == {"seed": 7}

    def parallel_run(seed=0, jobs=1):
        return seed, jobs

    assert _run_kwargs(parallel_run, 7, 2) == {"seed": 7, "jobs": 2}


def test_run_experiment_passes_seed_and_jobs(monkeypatch):
    import sys
    import types

    captured = {}
    fake = types.ModuleType("repro.experiments.fake_exp")

    def run(seed=0, jobs=1):
        captured.update(seed=seed, jobs=jobs)

        class R:
            rows = [{"x": 1}]

            def to_text(self):
                return "fake"

        return R()

    fake.run = run
    monkeypatch.setitem(sys.modules, "repro.experiments.fake_exp", fake)
    result, elapsed = run_experiment("fake_exp", seed=9, jobs=3)
    assert captured == {"seed": 9, "jobs": 3}
    assert result.to_text() == "fake" and elapsed >= 0


# -- CLI surface -------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_EXPERIMENTS:
        assert name in out


def test_cli_unknown_experiment_exits_2(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["table5", "--jobs", "0"])


def test_cli_seed_changes_seeded_experiment(capsys):
    assert main(["figa1", "--seed", "0", "--jobs", "1"]) == 0
    first = _tables(capsys.readouterr().out)
    assert main(["figa1", "--seed", "5", "--jobs", "1"]) == 0
    second = _tables(capsys.readouterr().out)
    assert first != second


def test_experiment_lists_are_consistent():
    assert set(ALL_EXPERIMENTS) == set(FAST_EXPERIMENTS) | \
        set(SLOW_EXPERIMENTS)
    assert len(ALL_EXPERIMENTS) == len(set(ALL_EXPERIMENTS))


# -- --jobs determinism through the CLI --------------------------------------------


def test_cli_jobs_identical_output_fast_experiment(capsys):
    """tablea1 (the fast grid sweep): --jobs 2 output == --jobs 1."""
    assert main(["tablea1", "--jobs", "1"]) == 0
    sequential = _tables(capsys.readouterr().out)
    assert main(["tablea1", "--jobs", "2"]) == 0
    parallel = _tables(capsys.readouterr().out)
    assert sequential == parallel
    assert any("tablea1" in line for line in sequential)


def test_run_all_pool_identical_output(capsys):
    """The runner-level fan-out prints the same tables in the same order."""
    names = ["table5", "tablea1"]
    run_all(names, seed=0, jobs=1)
    sequential = _tables(capsys.readouterr().out)
    run_all(names, seed=0, jobs=2)
    parallel = _tables(capsys.readouterr().out)
    assert sequential == parallel
