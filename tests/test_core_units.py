"""Unit tests for Nezha core internals: agent demux, orchestrator edge
paths, frontend memory pressure, backend guards."""

import pytest

from repro.errors import ConfigError, OffloadError
from repro.net import IPv4Address, MacAddress, Packet, TcpFlags
from repro.vswitch.rule_tables import Location
from repro.vswitch.session_table import EntryMode
from repro.core import FeSelector, NezhaAgent
from repro.core.header import (KIND_NOTIFY, KIND_RX, KIND_TX, NezhaMeta,
                               build_nezha_hop)
from repro.core.offload import OffloadState
from repro.vswitch.state import SessionState, StatsPolicy

from tests.conftest import TENANT_A, TENANT_B, VNI, build_nezha_env


def active_env(n_fes=2):
    env = build_nezha_env()
    handle = env.orchestrator.offload(env.vnic_b, env.idle_vswitches[:n_fes])
    env.engine.run(until=env.engine.now + 2.0)
    assert handle.state is OffloadState.ACTIVE
    return env, handle


# -- NezhaAgent demux -------------------------------------------------------------

def test_agent_rejects_duplicate_registrations():
    env, handle = active_env()
    agent = env.orchestrator.agents[env.vswitch_b.name]
    with pytest.raises(ConfigError):
        agent.register_backend(handle.backend)
    fe_agent = env.orchestrator.agents[env.idle_vswitches[0].name]
    frontend = next(iter(handle.frontends.values()))
    with pytest.raises(ConfigError):
        fe_agent.register_frontend(frontend)


def test_agent_counts_unknown_nsh():
    env, handle = active_env()
    agent = env.orchestrator.agents[env.vswitch_b.name]
    # An RX hop for a vNIC this agent does not back.
    from repro.vswitch.actions import PreActions
    meta = NezhaMeta(kind=KIND_RX, vnic_id=999, pre_actions=PreActions())
    inner = Packet.tcp(TENANT_A, TENANT_B, 1, 2, TcpFlags.of("syn"))
    hop = build_nezha_hop(IPv4Address("10.0.0.9"), MacAddress(9),
                          Location(env.vswitch_b.server.underlay_ip,
                                   env.vswitch_b.server.mac),
                          meta, inner=inner)
    agent._on_nsh(hop)
    assert agent.unknown_nsh_drops == 1
    # A TX hop for an unknown frontend.
    meta2 = NezhaMeta(kind=KIND_TX, vnic_id=999, state=SessionState())
    hop2 = build_nezha_hop(IPv4Address("10.0.0.9"), MacAddress(9),
                           Location(env.vswitch_b.server.underlay_ip,
                                    env.vswitch_b.server.mac),
                           meta2, inner=inner.copy())
    agent._on_nsh(hop2)
    assert agent.unknown_nsh_drops == 2
    # An unknown notify.
    from repro.net.five_tuple import FiveTuple, PROTO_TCP
    meta3 = NezhaMeta(kind=KIND_NOTIFY, vnic_id=999,
                      notify_five_tuple=FiveTuple(TENANT_A, TENANT_B,
                                                  PROTO_TCP, 1, 2),
                      notify_policy=StatsPolicy.NONE)
    hop3 = build_nezha_hop(IPv4Address("10.0.0.9"), MacAddress(9),
                           Location(env.vswitch_b.server.underlay_ip,
                                    env.vswitch_b.server.mac), meta3)
    agent._on_nsh(hop3)
    assert agent.unknown_nsh_drops == 3


def test_agent_fe_load_heuristic():
    env, handle = active_env()
    fe_vswitch = handle.fe_vswitches[0]
    agent = env.orchestrator.agents[fe_vswitch.name]
    # No sessions yet but FEs hosted: remote share is 1.0.
    assert agent.fe_load() == 1.0
    env.vnic_b.attach_guest(lambda pkt: None)
    env.vswitch_a.send_from_vnic(
        env.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                               TcpFlags.of("syn")))
    env.engine.run(until=env.engine.now + 0.1)
    loads = [env.orchestrator.agents[fe.name].fe_load()
             for fe in handle.fe_vswitches]
    assert any(load == 1.0 for load in loads)
    # A vSwitch with no Nezha involvement reports zero.
    plain_agent = NezhaAgent(env.vswitches[-1])
    assert plain_agent.fe_load() == 0.0


# -- orchestrator edge paths ----------------------------------------------------------

def test_fallback_requires_active_state():
    env, handle = active_env()
    done = env.orchestrator.fallback(handle)
    with pytest.raises(OffloadError):
        env.orchestrator.fallback(handle)  # already falling back
    env.engine.run(until=env.engine.now + 2.0)
    assert done.fired


def test_fallback_aborts_without_be_memory():
    env, handle = active_env()
    # Exhaust the BE's memory so the tables cannot be restored.
    free = env.vswitch_b.mem.available()
    env.vswitch_b.mem.alloc("hog", free - 100)
    done = env.orchestrator.fallback(handle)
    env.engine.run(until=env.engine.now + 2.0)
    assert done.fired
    with pytest.raises(OffloadError):
        _ = done.value
    assert handle.state is OffloadState.ACTIVE  # still offloaded, intact


def test_scale_in_unknown_vswitch_is_noop():
    env, handle = active_env()
    untouched = env.vswitches[-1]
    assert env.orchestrator.scale_in_vswitch(untouched) == 0
    assert len(handle.frontends) == 2


def test_fail_fe_without_fes_is_noop():
    env, _handle = active_env()
    assert env.orchestrator.fail_fe(env.vswitches[-1]) == 0


def test_selector_share_diagnostics():
    env, handle = active_env(n_fes=2)
    from repro.net.five_tuple import FiveTuple, PROTO_TCP
    flows = [FiveTuple(TENANT_A, TENANT_B, PROTO_TCP, 1000 + i, 80)
             for i in range(100)]
    shares = handle.selector.share_of(flows)
    assert sum(shares.values()) == 100
    assert len(shares) == 2


# -- frontend memory pressure -----------------------------------------------------------

def test_fe_degrades_gracefully_when_flow_cache_full():
    env, handle = active_env(n_fes=1)
    frontend = next(iter(handle.frontends.values()))
    fe_vswitch = frontend.vswitch
    # Exhaust the FE's memory: inserts fail but packets still process.
    fe_vswitch.mem.alloc("hog", fe_vswitch.mem.available())
    got = []
    env.vnic_b.attach_guest(got.append)
    env.vswitch_a.send_from_vnic(
        env.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                               TcpFlags.of("syn")))
    env.engine.run(until=env.engine.now + 0.1)
    assert len(got) == 1                       # still delivered
    assert frontend.stats.flow_insert_failures == 1
    # Next packet of the same flow misses again (nothing was cached).
    env.vswitch_a.send_from_vnic(
        env.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                               TcpFlags.of("ack")))
    env.engine.run(until=env.engine.now + 0.1)
    assert frontend.stats.flow_cache_misses == 2


def test_fe_teardown_is_idempotent_and_scoped():
    env, handle = active_env(n_fes=2)
    env.vnic_b.attach_guest(lambda pkt: None)
    env.vswitch_a.send_from_vnic(
        env.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                               TcpFlags.of("syn")))
    env.engine.run(until=env.engine.now + 0.1)
    frontend = next(iter(handle.frontends.values()))
    fe_vswitch = frontend.vswitch
    flows_before = sum(1 for e in fe_vswitch.session_table
                       if e.mode is EntryMode.FLOWS_ONLY)
    frontend.teardown()
    assert not frontend.active
    assert sum(1 for e in fe_vswitch.session_table
               if e.mode is EntryMode.FLOWS_ONLY) == 0 or flows_before == 0
    assert frontend.mem_tag not in fe_vswitch.mem.by_tag


# -- backend guards ------------------------------------------------------------------------

def test_backend_drops_tx_when_all_fes_gone():
    env, handle = active_env(n_fes=1)
    env.orchestrator.fail_fe(handle.fe_vswitches[0])
    assert len(handle.frontends) == 0
    before = handle.backend.stats.rx_direct_dropped
    env.vswitch_b.send_from_vnic(
        env.vnic_b, Packet.tcp(TENANT_B, TENANT_A, 80, 1000,
                               TcpFlags.of("syn")))
    env.engine.run(until=env.engine.now + 0.1)
    assert handle.backend.stats.rx_direct_dropped == before + 1


def test_backend_ignores_notify_for_unknown_session():
    env, handle = active_env()
    from repro.net.five_tuple import FiveTuple, PROTO_TCP
    meta = NezhaMeta(kind=KIND_NOTIFY, vnic_id=env.vnic_b.vnic_id,
                     notify_five_tuple=FiveTuple(TENANT_A, TENANT_B,
                                                 PROTO_TCP, 55555, 80),
                     notify_policy=StatsPolicy.FULL)
    handle.backend.handle_notify(meta)
    env.engine.run(until=env.engine.now + 0.05)
    assert handle.backend.stats.notifies_applied == 0
