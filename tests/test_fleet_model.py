"""Tests for the fleet-scale demand model (repro.workloads.fleet)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics import percentile
from repro.sim import SeededRng
from repro.workloads.fleet import (
    FleetModel, HotspotKind, QuantileDistribution, cpu_utilization_dist,
    memory_utilization_dist, usage_dist,
)


# -- QuantileDistribution --------------------------------------------------------

def test_quantile_hits_anchors_exactly():
    dist = QuantileDistribution([(0.0, 1.0), (0.5, 10.0), (1.0, 100.0)])
    assert dist.quantile(0.0) == 1.0
    assert dist.quantile(0.5) == pytest.approx(10.0)
    assert dist.quantile(1.0) == pytest.approx(100.0)


def test_quantile_log_interpolates_between_anchors():
    dist = QuantileDistribution([(0.0, 1.0), (1.0, 100.0)])
    assert dist.quantile(0.5) == pytest.approx(10.0)  # geometric midpoint


def test_quantile_validation():
    with pytest.raises(ConfigError):
        QuantileDistribution([(0.1, 1.0), (1.0, 2.0)])      # no q=0
    with pytest.raises(ConfigError):
        QuantileDistribution([(0.0, 2.0), (1.0, 1.0)])      # decreasing
    with pytest.raises(ConfigError):
        QuantileDistribution([(0.0, 0.0), (1.0, 1.0)])      # zero value
    dist = QuantileDistribution([(0.0, 1.0), (1.0, 2.0)])
    with pytest.raises(ConfigError):
        dist.quantile(1.5)


@given(st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_samples_within_anchor_range(seed):
    dist = cpu_utilization_dist()
    rng = SeededRng(seed, "q")
    for _ in range(50):
        x = dist.sample(rng)
        assert 0.002 <= x <= 0.98


# -- calibration against the paper's numbers (Fig 4 / Table 1) ----------------------

def test_cpu_distribution_matches_fig4a():
    rng = SeededRng(1, "cal")
    dist = cpu_utilization_dist()
    samples = [dist.sample(rng) for _ in range(200_000)]
    assert percentile(samples, 90) == pytest.approx(0.15, rel=0.1)
    assert percentile(samples, 99) == pytest.approx(0.41, rel=0.1)
    assert percentile(samples, 99.9) == pytest.approx(0.68, rel=0.15)
    mean = sum(samples) / len(samples)
    assert 0.03 < mean < 0.08  # "about 5%"


def test_memory_distribution_matches_fig4b():
    rng = SeededRng(1, "cal")
    dist = memory_utilization_dist()
    samples = [dist.sample(rng) for _ in range(200_000)]
    assert percentile(samples, 90) == pytest.approx(0.15, rel=0.1)
    assert percentile(samples, 99) == pytest.approx(0.34, rel=0.1)
    assert percentile(samples, 99.9) == pytest.approx(0.93, rel=0.15)


def test_usage_distribution_matches_table1():
    rng = SeededRng(1, "cal")
    dist = usage_dist("cps")
    samples = [dist.sample(rng) for _ in range(200_000)]
    assert percentile(samples, 50) == pytest.approx(0.0053, rel=0.15)
    assert percentile(samples, 99) == pytest.approx(0.0641, rel=0.15)
    assert percentile(samples, 99.9) == pytest.approx(0.1838, rel=0.2)


def test_usage_dist_rejects_unknown_metric():
    with pytest.raises(ConfigError):
        usage_dist("bandwidth")


# -- vectorized sampling: RNG stream identity (ISSUE 7 satellite) ----------------

def test_sample_n_matches_repeated_sample_exactly():
    # One uniform per draw, in order: a fresh stream consumed by
    # sample_n must yield exactly what repeated sample() calls did.
    dist = usage_dist("flows")
    vectorized = dist.sample_n(SeededRng(9, "v"), 500)
    rng = SeededRng(9, "v")
    assert vectorized == [dist.sample(rng) for _ in range(500)]


def test_sample_demands_stream_unchanged_by_vectorization():
    # Reference implementation: the historical per-sample draw order —
    # one uniform per (vSwitch, metric), interleaved cps/flows/vnics.
    model = FleetModel(n_vswitches=300, rng=SeededRng(5))
    rng = SeededRng(5).child("demand")
    expected = []
    for _ in range(300):
        expected.append((model.usage[HotspotKind.CPS].quantile(rng.random()),
                         model.usage[HotspotKind.FLOWS].quantile(rng.random()),
                         model.usage[HotspotKind.VNICS].quantile(rng.random())))
    demands = model.sample_demands()
    assert [(d.cps, d.flows, d.vnics) for d in demands] == expected


def test_sample_usage_stream_unchanged_by_vectorization():
    model = FleetModel(n_vswitches=200, rng=SeededRng(6))
    rng = SeededRng(6).child("usage-cps")
    expected = [model.usage[HotspotKind.CPS].sample(rng) for _ in range(200)]
    assert model.sample_usage(HotspotKind.CPS) == expected


def test_mean_estimate_cached_and_identical():
    dist = usage_dist("cps")
    first = dist.mean_estimate(n=2000)
    # The cache must return the very same value, and the uncached sweep
    # on a fresh instance must agree bit-for-bit.
    assert dist.mean_estimate(n=2000) is dist._mean_cache[2000]
    assert usage_dist("cps").mean_estimate(n=2000) == first
    manual = sum(dist.quantile((i + 0.5) / 2000) for i in range(2000)) / 2000
    assert first == manual


def test_mean_estimate_cache_is_per_resolution():
    dist = usage_dist("vnics")
    coarse = dist.mean_estimate(n=100)
    fine = dist.mean_estimate(n=10_000)
    assert coarse != fine
    assert set(dist._mean_cache) == {100, 10_000}


# -- memoized usage_dist + column inversion (ISSUE 8 satellites) ----------------

def test_usage_dist_returns_the_memoized_instance():
    # Module-level memoization: every caller shares one distribution per
    # metric (the anchors are immutable), so per-epoch usage_dist calls
    # stop re-validating and re-building anchor tables.
    assert usage_dist("cps") is usage_dist("cps")
    assert usage_dist("flows") is usage_dist("flows")
    assert usage_dist("cps") is not usage_dist("flows")


def test_usage_dist_memoization_preserves_output_streams():
    # RNG/output identity: the memoized instance must sample exactly
    # what a freshly built QuantileDistribution over the same anchors
    # did before memoization existed.
    from repro.workloads.fleet import _USAGE_ANCHORS
    for metric in ("cps", "flows", "vnics"):
        fresh = QuantileDistribution(_USAGE_ANCHORS[metric])
        memoized = usage_dist(metric)
        rng_a = SeededRng(11, metric)
        rng_b = SeededRng(11, metric)
        assert [memoized.sample(rng_a) for _ in range(300)] \
            == [fresh.sample(rng_b) for _ in range(300)]


def test_invert_n_matches_scalar_invert_exactly():
    # The fleet's vectorized cold tail inverts whole uniform columns at
    # once; every element must be bit-identical to the scalar _invert.
    rng = SeededRng(13, "inv")
    qs = [rng.random() for _ in range(500)] + [0.0, 1.0]
    for metric in ("cps", "flows", "vnics"):
        dist = usage_dist(metric)
        assert dist.invert_n(qs) == [dist._invert(q) for q in qs]
    assert usage_dist("cps").invert_n([]) == []


# -- hotspot classification (Fig 3) ------------------------------------------------------

def test_hotspot_distribution_matches_fig3():
    model = FleetModel(n_vswitches=200_000, rng=SeededRng(3))
    shares = model.hotspot_distribution()
    assert shares[HotspotKind.CPS] == pytest.approx(0.61, abs=0.08)
    assert shares[HotspotKind.FLOWS] == pytest.approx(0.30, abs=0.08)
    assert shares[HotspotKind.VNICS] == pytest.approx(0.09, abs=0.05)


def test_hotspots_are_rare():
    model = FleetModel(n_vswitches=50_000, rng=SeededRng(4))
    demands = model.sample_demands()
    hot = sum(1 for d in demands if d.hotspots(model.capacity))
    # Overloads are a tail phenomenon: well under 2% of vSwitches.
    assert 0 < hot < 0.02 * len(demands)


# -- daily overloads (Fig 13) ----------------------------------------------------------------

def test_daily_overloads_mitigation():
    model = FleetModel(n_vswitches=20_000, rng=SeededRng(5))
    # Activation sampler: always fast (0.5s) -> everything mitigated.
    events = model.simulate_daily_overloads(
        days=5, activation_sampler=lambda rng: 0.5)
    summary = FleetModel.overload_summary(events)
    for kind in HotspotKind:
        before, residual = summary[kind]
        assert residual == 0
    assert summary[HotspotKind.CPS][0] > 0


def test_daily_overloads_residual_when_slow():
    model = FleetModel(n_vswitches=20_000, rng=SeededRng(6))
    # Activation occasionally exceeds the survivable window.
    def sampler(rng):
        return 5.0 if rng.random() < 0.1 else 1.0
    events = model.simulate_daily_overloads(days=5,
                                            activation_sampler=sampler)
    summary = FleetModel.overload_summary(events)
    before, residual = summary[HotspotKind.CPS]
    assert 0 < residual < before * 0.2
    # vNIC overloads never depend on activation time (§6.3.3).
    assert summary[HotspotKind.VNICS][1] == 0


# -- migration model (Fig A1) -------------------------------------------------------------------

def test_migration_downtime_grows_with_resources():
    small = FleetModel.migration_downtime(vcpus=4, memory_gb=16)
    large = FleetModel.migration_downtime(vcpus=128, memory_gb=1024)
    assert large > small * 10


def test_migration_1tb_takes_tens_of_minutes():
    total = FleetModel.migration_completion_time(memory_gb=1024)
    assert 600 < total < 3600  # tens of minutes (§7.2)


def test_migration_deterministic_without_rng():
    a = FleetModel.migration_downtime(8, 64)
    b = FleetModel.migration_downtime(8, 64)
    assert a == b
