"""End-to-end tests of the local vSwitch datapath over the fabric."""

import pytest

from repro.net import IPv4Address, Packet, TcpFlags
from repro.vswitch import AclRule, AclTable, Direction, TcpState, Verdict
from repro.vswitch.vswitch import PROBE_PORT
from repro.net.udp import UdpHeader
from repro.net.ethernet import EthernetHeader
from repro.net.addr import MacAddress

from tests.conftest import TENANT_A, TENANT_B, VNI, build_cloud


def syn(src=TENANT_A, dst=TENANT_B, sport=1000, dport=80):
    return Packet.tcp(src, dst, sport, dport, TcpFlags.of("syn"))


def run(cloud, duration=0.1):
    cloud.engine.run(until=cloud.engine.now + duration)


# -- basic forwarding -----------------------------------------------------------

def test_tx_packet_reaches_peer_vnic(cloud):
    got = []
    cloud.vnic_b.attach_guest(got.append)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert len(got) == 1
    assert got[0].five_tuple().dst_port == 80
    assert cloud.vswitch_a.stats.forwarded == 1
    assert cloud.vswitch_b.stats.delivered == 1


def test_second_packet_hits_fast_path(cloud):
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    cloud.vswitch_a.send_from_vnic(
        cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                                 TcpFlags.of("ack")))
    run(cloud)
    assert cloud.vswitch_a.stats.slow_path_lookups == 1
    assert cloud.vswitch_a.stats.fast_path_hits == 1


def test_bidirectional_conversation_establishes_fsm(cloud):
    """SYN out, SYN/ACK back, ACK out: both ends see ESTABLISHED."""
    replies = []

    def server_guest(pkt):
        replies.append(pkt)
        cloud.vswitch_b.send_from_vnic(
            cloud.vnic_b, Packet.tcp(TENANT_B, TENANT_A, 80, 1000,
                                     TcpFlags.of("syn", "ack")))

    acks = []

    def client_guest(pkt):
        acks.append(pkt)
        cloud.vswitch_a.send_from_vnic(
            cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                                     TcpFlags.of("ack")))

    cloud.vnic_b.attach_guest(server_guest)
    cloud.vnic_a.attach_guest(client_guest)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert replies and acks
    entry_a = cloud.vswitch_a.session_table.lookup(
        VNI, syn().five_tuple())
    entry_b = cloud.vswitch_b.session_table.lookup(
        VNI, syn().five_tuple())
    assert entry_a.state.tcp_state is TcpState.ESTABLISHED
    assert entry_b.state.tcp_state is TcpState.ESTABLISHED
    # Directions recorded correctly: A initiated (TX), B saw it ingress (RX).
    assert entry_a.state.first_direction is Direction.TX
    assert entry_b.state.first_direction is Direction.RX


# -- stateful ACL over the wire (§5.1) ---------------------------------------------

def test_unsolicited_rx_dropped_but_responses_allowed():
    acl_b = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                              direction=Direction.RX)])
    cloud = build_cloud(acl_b=acl_b)
    got_b, got_a = [], []
    cloud.vnic_b.attach_guest(got_b.append)
    cloud.vnic_a.attach_guest(got_a.append)

    # A's SYN arrives at B as RX with a drop pre-action and RX-initiated
    # state: dropped.
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert got_b == []
    assert cloud.vswitch_b.stats.acl_drops == 1

    # B initiates to A; A's response arrives at B as RX of a TX-initiated
    # session: accepted despite the drop rule.
    cloud.vswitch_b.send_from_vnic(
        cloud.vnic_b, Packet.tcp(TENANT_B, TENANT_A, 2000, 8080,
                                 TcpFlags.of("syn")))
    run(cloud)
    assert len(got_a) == 1
    cloud.vswitch_a.send_from_vnic(
        cloud.vnic_a, Packet.tcp(TENANT_A, TENANT_B, 8080, 2000,
                                 TcpFlags.of("syn", "ack")))
    run(cloud)
    assert len(got_b) == 1  # response delivered through the deny-all RX ACL


def test_tx_acl_drop(cloud_factory=build_cloud):
    acl_a = AclTable([AclRule(priority=10, verdict=Verdict.DROP,
                              direction=Direction.TX,
                              dst_port_range=(80, 80))])
    cloud = cloud_factory(acl_a=acl_a)
    got = []
    cloud.vnic_b.attach_guest(got.append)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert got == []
    assert cloud.vswitch_a.stats.acl_drops == 1


# -- resource-pressure behaviours -------------------------------------------------------

def test_unknown_destination_drops_with_no_route(cloud):
    pkt = Packet.tcp(TENANT_A, IPv4Address("192.168.0.77"), 1, 2,
                     TcpFlags.of("syn"))
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, pkt)
    run(cloud)
    # Mapping table missing the target: TX verdict drop (not overridable).
    assert cloud.vswitch_a.stats.acl_drops == 1


def test_unknown_vnic_rx_drop(cloud):
    # Remove B's vNIC then send to it: the overlay delivers to vswitch_b
    # which cannot find a local vNIC.
    cloud.vswitch_b.remove_vnic(cloud.vnic_b.vnic_id)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert cloud.vswitch_b.stats.unknown_vnic_drops == 1


def test_cpu_overload_causes_drop_tail():
    cloud = build_cloud()
    cloud.vnic_b.attach_guest(lambda pkt: None)
    # Slam 3000 new flows in at t=0; the scaled-down CPU cannot absorb them
    # within the backlog bound.
    for sport in range(3000):
        cloud.vswitch_a.send_from_vnic(
            cloud.vnic_a, syn(sport=1024 + sport))
    cloud.engine.run(until=2.0)
    assert cloud.vswitch_a.stats.cpu_drops > 0
    assert cloud.vswitch_a.stats.forwarded < 3000


def test_crashed_vswitch_goes_dark(cloud):
    got = []
    cloud.vnic_b.attach_guest(got.append)
    cloud.vswitch_b.crash()
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert got == []
    assert cloud.vswitch_b.stats.crashed_drops == 1
    cloud.vswitch_b.recover()
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn(sport=1001))
    run(cloud)
    assert len(got) == 1


def test_vnic_memory_charged_and_released(cloud):
    tag = f"rules:{cloud.vnic_a.vnic_id}"
    assert cloud.vswitch_a.mem.by_tag[tag] == cloud.vnic_a.table_memory_bytes()
    freed = cloud.vswitch_a.release_vnic_tables(cloud.vnic_a.vnic_id)
    assert freed > 0
    assert tag not in cloud.vswitch_a.mem.by_tag
    assert f"be_meta:{cloud.vnic_a.vnic_id}" in cloud.vswitch_a.mem.by_tag
    assert cloud.vnic_a.offloaded
    cloud.vswitch_a.restore_vnic_tables(cloud.vnic_a.vnic_id)
    assert cloud.vswitch_a.mem.by_tag[tag] == cloud.vnic_a.table_memory_bytes()
    assert not cloud.vnic_a.offloaded


def test_aging_process_reaps_idle_sessions(cloud):
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.start_aging(interval=0.2)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    cloud.engine.run(until=0.05)
    assert len(cloud.vswitch_a.session_table) == 1
    # SYN-state session ages out after ~1s of idleness.
    cloud.engine.run(until=2.0)
    assert len(cloud.vswitch_a.session_table) == 0


# -- health probes (§4.4) ---------------------------------------------------------------------

def probe_packet(monitor_ip, target_ip, seq=1):
    pkt = Packet.udp(monitor_ip, target_ip, 40000, PROBE_PORT,
                     payload=seq.to_bytes(4, "big"))
    return Packet([EthernetHeader(MacAddress.broadcast(), MacAddress(0xEE))]
                  + pkt.layers, pkt.payload)


def test_live_vswitch_answers_probe(cloud):
    monitor = cloud.topo.servers[0]  # reuse server A's position as monitor
    target = cloud.topo.servers[1]
    replies = []
    cloud.vswitch_a.on_probe_reply(lambda pkt: replies.append(pkt))
    monitor.send_to_fabric(probe_packet(monitor.underlay_ip,
                                        target.underlay_ip))
    run(cloud)
    assert cloud.vswitch_b.stats.probes_answered == 1
    assert len(replies) == 1


def test_crashed_vswitch_ignores_probe(cloud):
    monitor, target = cloud.topo.servers[0], cloud.topo.servers[1]
    replies = []
    cloud.vswitch_a.on_probe_reply(lambda pkt: replies.append(pkt))
    cloud.vswitch_b.crash()
    monitor.send_to_fabric(probe_packet(monitor.underlay_ip,
                                        target.underlay_ip))
    run(cloud)
    assert replies == []


# -- QoS rate limiting ----------------------------------------------------------------------

def test_vnic_rate_limit_polices_tx(cloud):
    cloud.vnic_b.attach_guest(lambda pkt: None)
    # 40B packets at 8kbps with a tiny burst: ~2 packets/s conform.
    cloud.vnic_a.rate_limit_bps = 8_000
    from repro.vswitch.qos import QosEnforcer
    cloud.vswitch_a.qos = QosEnforcer(burst_bytes=100)
    for i in range(50):
        pkt = Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                         TcpFlags.of("syn" if i == 0 else "ack"))
        cloud.engine.call_after(i * 0.02, cloud.vswitch_a.send_from_vnic,
                                cloud.vnic_a, pkt)
    cloud.engine.run(until=2.0)
    assert cloud.vswitch_a.stats.qos_drops > 20
    assert cloud.vswitch_a.stats.forwarded < 30


def test_flow_rate_limit_from_qos_table(cloud):
    from repro.vswitch.rule_tables import QosRule
    from repro.vswitch.qos import QosEnforcer
    cloud.vnic_b.attach_guest(lambda pkt: None)
    qos_table = cloud.vnic_a.slow_path.table("qos")
    qos_table.rules.append(QosRule(priority=10, qos_class=2,
                                   rate_limit_bps=8_000,
                                   dst_port_range=(80, 80)))
    cloud.vswitch_a.qos = QosEnforcer(burst_bytes=100)
    for i in range(50):
        pkt = Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                         TcpFlags.of("syn" if i == 0 else "ack"))
        cloud.engine.call_after(i * 0.02, cloud.vswitch_a.send_from_vnic,
                                cloud.vnic_a, pkt)
    cloud.engine.run(until=2.0)
    assert cloud.vswitch_a.stats.qos_drops > 20


def test_unlimited_vnic_never_qos_drops(cloud):
    cloud.vnic_b.attach_guest(lambda pkt: None)
    for i in range(20):
        pkt = Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                         TcpFlags.of("syn" if i == 0 else "ack"))
        cloud.engine.call_after(i * 0.01, cloud.vswitch_a.send_from_vnic,
                                cloud.vnic_a, pkt)
    cloud.engine.run(until=1.0)
    assert cloud.vswitch_a.stats.qos_drops == 0


# -- vSwitch-level NAT44 (§2.1) --------------------------------------------------------

def build_nat_cloud():
    """vnic_a is source-NATed to an external address; the peer only ever
    sees (and answers) the external address."""
    from repro.vswitch import Nat44Table
    from tests.conftest import wire_mapping
    cloud = build_cloud()
    external = IPv4Address("203.0.113.1")
    nat = Nat44Table()
    nat.add_mapping(TENANT_A, external)
    cloud.vnic_a.slow_path.tables.insert(1, nat)
    cloud.vswitch_a.add_vnic_alias(VNI, external, cloud.vnic_a)
    # The peer's mapping must route the external address to server A.
    wire_mapping(cloud.vnic_b.slow_path.table("vnic_server_mapping"),
                 VNI, external, cloud.topo.servers[0])
    return cloud, external


def test_nat44_rewrites_source_on_egress():
    cloud, external = build_nat_cloud()
    got = []
    cloud.vnic_b.attach_guest(got.append)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    assert len(got) == 1
    assert got[0].inner_ipv4().src == external      # translated
    assert got[0].inner_ipv4().dst == TENANT_B


def test_nat44_reverse_translation_on_ingress():
    cloud, external = build_nat_cloud()
    got_b, got_a = [], []
    cloud.vnic_b.attach_guest(got_b.append)
    cloud.vnic_a.attach_guest(got_a.append)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    # B answers the external address.
    reply = Packet.tcp(TENANT_B, external, 80, 1000,
                       TcpFlags.of("syn", "ack"))
    cloud.vswitch_b.send_from_vnic(cloud.vnic_b, reply)
    run(cloud)
    assert len(got_a) == 1
    # Delivered with the internal address restored + original recorded.
    assert got_a[0].inner_ipv4().dst == TENANT_A
    assert got_a[0].meta["nat_original_dst"] == external


def test_nat44_shares_one_session_bidirectionally():
    cloud, external = build_nat_cloud()
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vnic_a.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    reply = Packet.tcp(TENANT_B, external, 80, 1000,
                       TcpFlags.of("syn", "ack"))
    cloud.vswitch_b.send_from_vnic(cloud.vnic_b, reply)
    run(cloud)
    # One session entry at A despite the address translation: the reverse
    # translation happens before the session lookup.
    a_sessions = [e for e in cloud.vswitch_a.session_table
                  if e.vni == VNI]
    assert len(a_sessions) == 1
    assert cloud.vswitch_a.stats.slow_path_lookups == 1


def test_nat44_table_lookups():
    from repro.vswitch import Nat44Table
    nat = Nat44Table(entry_bytes=48)
    nat.add_mapping(IPv4Address("10.0.0.1"), IPv4Address("198.51.100.1"))
    assert nat.external_for(IPv4Address("10.0.0.1")) == \
        IPv4Address("198.51.100.1")
    assert nat.internal_for(IPv4Address("198.51.100.1")) == \
        IPv4Address("10.0.0.1")
    assert nat.external_for(IPv4Address("10.0.0.2")) is None
    assert nat.rule_count() == 1
    assert nat.memory_bytes() == 48


# -- burst datapath --------------------------------------------------------------

from dataclasses import asdict

from repro.host.vm import Vm
from repro.vswitch.vswitch import Datapath


def udp(sport=4242, dport=5353):
    return Packet.udp(TENANT_A, TENANT_B, sport, dport, payload=b"x" * 64)


def _mixed_burst_stats(batching):
    """Drive a burst mixing fast hits, a mid-burst miss, and an
    FSM-advancing FIN; return both vSwitches' full counter dicts."""
    saved = Datapath.batching
    Datapath.batching = batching
    try:
        cloud = build_cloud()
        cloud.vnic_b.attach_guest(lambda pkt: None)
        cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
        run(cloud)

        def ack():
            return Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                              TcpFlags.of("ack"))

        burst = [ack(), ack(), udp(sport=7), ack(),
                 Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                            TcpFlags.of("fin", "ack")), ack()]
        cloud.vswitch_a.send_from_vnic_burst(cloud.vnic_a, burst)
        run(cloud)
        return asdict(cloud.vswitch_a.stats), asdict(cloud.vswitch_b.stats)
    finally:
        Datapath.batching = saved


def test_burst_stats_identical_to_per_packet_path():
    """Every counter on both ends must match the legacy per-packet path,
    including for a burst with a miss and an FSM transition inside."""
    assert _mixed_burst_stats(batching=True) == _mixed_burst_stats(
        batching=False)


def test_warm_burst_is_one_lookup_all_fast_hits(cloud):
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, udp())
    run(cloud)
    assert cloud.vswitch_a.stats.slow_path_lookups == 1
    cloud.vswitch_a.send_from_vnic_burst(
        cloud.vnic_a, [udp() for _ in range(6)])
    run(cloud)
    assert cloud.vswitch_a.stats.slow_path_lookups == 1  # no new lookups
    assert cloud.vswitch_a.stats.fast_path_hits == 6
    assert cloud.vswitch_b.stats.delivered == 7


def test_miss_in_burst_falls_back_per_packet_then_resumes(cloud):
    """A fresh flow's first packet takes the per-packet slow path; the
    entry it installs lets the rest of the burst ride the fast path."""
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic_burst(
        cloud.vnic_a, [udp() for _ in range(5)])
    run(cloud)
    assert cloud.vswitch_a.stats.slow_path_lookups == 1
    assert cloud.vswitch_a.stats.fast_path_hits == 4
    assert cloud.vswitch_b.stats.delivered == 5


def test_fsm_advancing_packet_excluded_from_runs(cloud):
    """A FIN must leave the batch and go through the per-packet path so
    the FSM advances exactly once, in order."""
    cloud.vnic_b.attach_guest(lambda pkt: None)
    cloud.vswitch_a.send_from_vnic(cloud.vnic_a, syn())
    run(cloud)
    before = cloud.vswitch_a.stats.slow_path_lookups
    burst = [Packet.tcp(TENANT_A, TENANT_B, 1000, 80, TcpFlags.of("ack")),
             Packet.tcp(TENANT_A, TENANT_B, 1000, 80,
                        TcpFlags.of("fin", "ack"))]
    cloud.vswitch_a.send_from_vnic_burst(cloud.vnic_a, burst)
    run(cloud)
    assert cloud.vswitch_a.stats.slow_path_lookups == before  # still a hit
    entry = cloud.vswitch_a.session_table.lookup(VNI, syn().five_tuple())
    assert entry.state.tcp_state is not TcpState.ESTABLISHED  # FIN advanced it
    assert cloud.vswitch_b.stats.delivered == 3


def test_vm_send_burst_charges_kernel_once(cloud):
    vm = Vm(cloud.engine, "vm", vcpus=2)
    vm.attach_vnic(cloud.vnic_a)
    got = []
    cloud.vnic_b.attach_guest(got.append)
    vm.send_burst(cloud.vnic_a, [udp() for _ in range(4)])
    cloud.engine.run(until=0.5)
    assert len(got) == 4
    assert vm.cpu.jobs_done == 1  # one transaction for the whole burst
    assert vm.kernel_lock.jobs_done == 0  # no new connections involved


def test_vm_send_burst_drop_tail_rejects_whole_bursts(cloud):
    vm = Vm(cloud.engine, "vm", vcpus=1)
    vm.attach_vnic(cloud.vnic_a)
    for base in range(0, 1600, 8):
        vm.send_burst(cloud.vnic_a,
                      [Packet.tcp(TENANT_A, TENANT_B, 1024 + base + i, 80,
                                  TcpFlags.of("syn")) for i in range(8)],
                      new_connection=True)
    assert vm.conns_opened == 1600
    assert vm.kernel_drops > 0
    assert vm.kernel_drops % 8 == 0  # whole bursts, never partial
