"""Unit tests for SeededRng and Trace."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, SeededRng, Trace
from repro.sim.rng import make_rng


# -- SeededRng ------------------------------------------------------------------

def test_same_seed_same_stream():
    a = SeededRng(7, "x")
    b = SeededRng(7, "x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_labels_different_streams():
    a = SeededRng(7, "x")
    b = SeededRng(7, "y")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_child_streams_are_deterministic():
    parent = SeededRng(3)
    c1 = parent.child("flow")
    c2 = SeededRng(3).child("flow")
    assert [c1.randint(0, 100) for _ in range(5)] == [c2.randint(0, 100) for _ in range(5)]


def test_make_rng_defaults_to_zero_seed():
    assert make_rng(None).seed == 0
    assert make_rng(42).seed == 42


def test_poisson_zero_rate():
    assert SeededRng(1).poisson(0) == 0
    assert SeededRng(1).poisson(-5) == 0


def test_poisson_mean_small_lambda():
    rng = SeededRng(1)
    draws = [rng.poisson(3.0) for _ in range(4000)]
    assert sum(draws) / len(draws) == pytest.approx(3.0, rel=0.1)


def test_poisson_mean_large_lambda():
    rng = SeededRng(1)
    draws = [rng.poisson(200.0) for _ in range(2000)]
    assert sum(draws) / len(draws) == pytest.approx(200.0, rel=0.05)


def test_zipf_weights_normalized_and_decreasing():
    weights = SeededRng(1).zipf_weights(50, skew=1.2)
    assert sum(weights) == pytest.approx(1.0)
    assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))


def test_weighted_index_respects_weights():
    rng = SeededRng(1)
    weights = [0.0, 1.0, 0.0]
    assert all(rng.weighted_index(weights) == 1 for _ in range(20))


@given(st.integers(0, 2**31), st.floats(1.1, 5.0))
@settings(max_examples=30, deadline=None)
def test_bounded_pareto_stays_in_bounds(seed, alpha):
    rng = SeededRng(seed, "bp")
    for _ in range(20):
        x = rng.bounded_pareto(alpha, 2.0, 50.0)
        assert 2.0 <= x <= 50.0


def test_bounded_pareto_rejects_bad_bounds():
    with pytest.raises(ValueError):
        SeededRng(1).bounded_pareto(1.5, 5.0, 5.0)


def test_heavy_tail_produces_tail_samples():
    rng = SeededRng(1)
    draws = [rng.heavy_tail(0.0, 0.5, tail_prob=0.1, tail_alpha=1.2, tail_xmin=10.0)
             for _ in range(2000)]
    assert max(draws) > 10.0       # tail reached
    assert sorted(draws)[len(draws) // 2] < 3.0  # body dominates the median


def test_state_roundtrip():
    rng = SeededRng(5)
    rng.random()
    state = rng.getstate()
    a = [rng.random() for _ in range(5)]
    rng.setstate(state)
    b = [rng.random() for _ in range(5)]
    assert a == b


# -- Trace -----------------------------------------------------------------------

def _mk_trace():
    engine = Engine()
    return engine, Trace(lambda: engine.now)


def test_trace_disabled_by_default():
    _engine, trace = _mk_trace()
    trace.emit("pkt.drop", reason="full")
    assert trace.records() == []


def test_trace_records_enabled_kind_with_time():
    engine, trace = _mk_trace()
    trace.enable("pkt.drop")
    engine.call_at(2.5, trace.emit, "pkt.drop")
    engine.run()
    records = trace.records("pkt.drop")
    assert len(records) == 1
    assert records[0].time == 2.5


def test_trace_field_attribute_access():
    _engine, trace = _mk_trace()
    trace.enable("x")
    trace.emit("x", value=9)
    assert trace.records("x")[0].value == 9
    with pytest.raises(AttributeError):
        _ = trace.records("x")[0].missing


def test_trace_callback_invoked():
    _engine, trace = _mk_trace()
    seen = []
    trace.on("alert", seen.append)
    trace.emit("alert", level="high")
    assert len(seen) == 1
    assert seen[0].level == "high"


def test_trace_count_and_clear():
    _engine, trace = _mk_trace()
    trace.enable("a", "b")
    trace.emit("a")
    trace.emit("a")
    trace.emit("b")
    assert trace.count("a") == 2
    assert trace.count("b") == 1
    trace.clear()
    assert trace.count("a") == 0


def test_trace_disable_stops_recording():
    _engine, trace = _mk_trace()
    trace.enable("k")
    trace.emit("k")
    trace.disable("k")
    trace.emit("k")
    assert trace.count("k") == 1


def test_trace_enable_all_records_everything():
    _engine, trace = _mk_trace()
    trace.enable_all()
    trace.emit("never.enabled.explicitly", x=1)
    assert trace.count("never.enabled.explicitly") == 1
    # Explicit disable wins over the record-everything default.
    trace.disable("noisy")
    trace.emit("noisy")
    assert trace.count("noisy") == 0


def test_trace_ring_buffer_caps_memory():
    engine = Engine()
    trace = Trace(lambda: engine.now, capacity=3)
    trace.enable("k")
    for i in range(5):
        trace.emit("k", i=i)
    records = trace.records("k")
    assert len(records) == 3
    assert [r.i for r in records] == [2, 3, 4]  # oldest evicted first
    assert trace.dropped == 2


def test_trace_clear_resets_dropped():
    engine = Engine()
    trace = Trace(lambda: engine.now, capacity=1)
    trace.enable("k")
    trace.emit("k")
    trace.emit("k")
    assert trace.dropped == 1
    trace.clear()
    assert trace.dropped == 0
    assert trace.records() == []


def test_trace_capacity_validation():
    with pytest.raises(ValueError):
        Trace(lambda: 0.0, capacity=0)


def test_trace_disable_detaches_callbacks():
    _engine, trace = _mk_trace()
    seen = []
    trace.on("alert", seen.append)
    trace.emit("alert")
    trace.disable("alert")
    trace.emit("alert")
    assert len(seen) == 1  # callback detached, not just recording stopped
