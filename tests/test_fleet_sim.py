"""Fleet-scale simulation: shard-count determinism, flyweight records,
coordinator policy, and the runner plumbing (ISSUE 7).

The headline property is the shard-count invariance of the fleet
experiment: its rendered table must be byte-identical for every
``shards`` value, composed with the process pool (``jobs=2``) and with
the full telemetry stack installed — the fleet-scale instance of the
repo's determinism contract.
"""

from array import array

import pytest

from repro import telemetry
from repro.errors import ConfigError
from repro.fleet import (FleetCoordinator, FleetFlowStore, FleetParams,
                         demand_units, make_shards, partition,
                         run_shard_epoch, simulate_hot_epoch, vswitch_seed)
from repro.workloads.fleet import FleetCapacity, HotspotKind, VSwitchDemand

FLEET_KWARGS = dict(n_vswitches=200, epochs=2, seed=0)


# -- partitioning and seed derivation ---------------------------------------

def test_partition_contiguous_and_balanced():
    ranges = partition(10, 3)
    assert ranges == [(0, 4), (4, 7), (7, 10)]
    sizes = [hi - lo for lo, hi in ranges]
    assert max(sizes) - min(sizes) <= 1


def test_partition_clamps_to_population():
    assert partition(2, 8) == [(0, 1), (1, 2)]


def test_partition_rejects_zero_shards():
    with pytest.raises(ConfigError):
        partition(10, 0)


def test_vswitch_seeds_do_not_alias_at_fleet_scale():
    seeds = {vswitch_seed(0, g) for g in range(10_000)}
    assert len(seeds) == 10_000


def test_vswitch_seeds_do_not_alias_across_root_seeds():
    # The naive seed+index scheme collides (root 0 / vs 1 == root 1 /
    # vs 0); the derived scheme must not.
    a = {vswitch_seed(0, g) for g in range(500)}
    b = {vswitch_seed(1, g) for g in range(500)}
    assert not a & b


def test_vswitch_seed_is_shard_layout_free():
    # Walking any partition in shard order reproduces the unsharded seed
    # sequence exactly: seeds are a function of the global index alone,
    # so re-partitioning the fleet cannot change any vSwitch's stream.
    flat = [vswitch_seed(42, g) for g in range(100)]
    for shards in (2, 4, 7):
        walked = [vswitch_seed(42, g)
                  for lo, hi in partition(100, shards)
                  for g in range(lo, hi)]
        assert walked == flat
    assert len(set(flat)) == len(flat)


# -- flyweight store --------------------------------------------------------

def test_flyweight_alloc_grows_zeroed():
    store = FleetFlowStore()
    slots = store.alloc_block(5)
    assert list(slots) == [0, 1, 2, 3, 4]
    assert len(store) == 5 and store.capacity == 5
    assert store.totals() == (0, 0)


def test_flyweight_free_and_recycle_rezeroes():
    store = FleetFlowStore()
    slots = store.alloc_block(4)
    store.fold(slots, pending_packets=8, pending_bytes=80)
    store.free_block(slots[2:])
    assert len(store) == 2
    recycled = store.alloc_block(2)          # LIFO reuse of freed slots
    assert set(recycled) <= {2, 3}
    assert store.capacity == 4               # no growth needed
    assert all(store.packets[s] == 0 for s in recycled)


def test_flyweight_fold_is_exact_with_remainder():
    store = FleetFlowStore()
    slots = store.alloc_block(3)
    folded = store.fold(slots, pending_packets=10, pending_bytes=101)
    assert folded == (10, 101)
    assert sorted(store.packets[s] for s in slots) == [3, 3, 4]
    assert store.totals() == (10, 101)


def test_flyweight_fold_without_live_slots_defers():
    store = FleetFlowStore()
    assert store.fold(array("l"), 7, 70) == (0, 0)
    assert store.totals() == (0, 0)


def test_flyweight_nbytes_tracks_columns():
    store = FleetFlowStore()
    store.alloc_block(100)
    assert store.nbytes() == 100 * 16       # two 'q' columns, empty free list


# -- hot micro-sim ----------------------------------------------------------

def test_hot_sim_deterministic():
    a = simulate_hot_epoch(seed=7, demand_ratio=3.0, granted=False)
    b = simulate_hot_epoch(seed=7, demand_ratio=3.0, granted=False)
    assert a == b


def test_hot_sim_overload_drops_and_grant_desaturates():
    overloaded = simulate_hot_epoch(seed=7, demand_ratio=6.0, granted=False)
    granted = simulate_hot_epoch(seed=7, demand_ratio=6.0, granted=True)
    assert overloaded["sim_drops"] > 0
    assert granted["sim_drops"] == 0
    assert granted["sim_cpu"] < overloaded["sim_cpu"]
    assert granted["sim_delivered"] == granted["sim_sent"]


def test_demand_units_scale_with_excess():
    capacity = FleetCapacity()
    mild = VSwitchDemand(cps=capacity.cps * 1.2, flows=0.0005, vnics=0.0005)
    severe = VSwitchDemand(cps=capacity.cps * 5.0, flows=0.0005, vnics=0.0005)
    assert demand_units(mild, capacity) == 1
    assert demand_units(severe, capacity) == 4


# -- coordinator ------------------------------------------------------------

def _report(entries):
    return [{"epoch": 0, "lo": 0, "hi": 100,
             "cold": {"count": 0, "flows": 0, "pkts": 0, "bytes": 0,
                      "born": 0, "died": 0},
             "hot": entries}]


def _hot(index, units, kinds=("cps",)):
    return {"index": index, "units": units, "kinds": list(kinds)}


def test_coordinator_all_or_nothing_denial():
    coord = FleetCoordinator(seed=0, pool_units=3)
    coord.settle(0, _report([_hot(1, 2), _hot(2, 2)]))
    assert coord.grants == {1: 2}            # 2 left < 2 requested: denied
    assert coord.denied_requests == 1
    occurrences, residual = coord.overloads[HotspotKind.CPS]
    assert (occurrences, residual) == (2, 1)  # the denied one stands


def test_coordinator_renewals_beat_newcomers():
    coord = FleetCoordinator(seed=0, pool_units=2)
    coord.settle(0, _report([_hot(5, 2)]))
    assert coord.grants == {5: 2}
    # Next epoch a lower-index newcomer competes; the holder renews.
    coord.settle(1, _report([_hot(1, 2), _hot(5, 2)]))
    assert coord.grants == {5: 2}
    assert coord.denied_requests == 1


def test_coordinator_releases_quiet_grants():
    coord = FleetCoordinator(seed=0, pool_units=4)
    coord.settle(0, _report([_hot(3, 4)]))
    assert coord.units_in_use() == 4
    coord.settle(1, _report([]))
    assert coord.grants == {} and coord.units_in_use() == 0
    assert coord.utilization == [1.0, 0.0]


def test_coordinator_vnics_always_mitigated_when_granted():
    coord = FleetCoordinator(seed=0, pool_units=8)
    coord.settle(0, _report([_hot(1, 1, kinds=("vnics",))]))
    occurrences, residual = coord.overloads[HotspotKind.VNICS]
    assert (occurrences, residual) == (1, 0)


def test_coordinator_denied_vnics_is_residual():
    coord = FleetCoordinator(seed=0, pool_units=0)
    coord.settle(0, _report([_hot(1, 1, kinds=("vnics",))]))
    occurrences, residual = coord.overloads[HotspotKind.VNICS]
    assert (occurrences, residual) == (1, 1)


# -- shard epoch step -------------------------------------------------------

def test_shard_epoch_reports_are_shard_invariant():
    params = FleetParams(seed=0, n_vswitches=60)

    def epoch_reports(shards):
        states = make_shards(params, shards)
        merged_cold, merged_hot = [], []
        for state in states:
            _state, report = run_shard_epoch((state, 0, {}, params))
            merged_cold.append(report["cold"])
            merged_hot.extend(report["hot"])
        totals = {key: sum(cold[key] for cold in merged_cold)
                  for key in merged_cold[0]}
        return totals, merged_hot

    base = epoch_reports(1)
    assert epoch_reports(2) == base
    assert epoch_reports(3) == base


def test_shard_hot_lists_ascend_globally():
    params = FleetParams(seed=0, n_vswitches=300)
    indices = []
    for state in make_shards(params, 4):
        _state, report = run_shard_epoch((state, 0, {}, params))
        indices.extend(entry["index"] for entry in report["hot"])
    assert indices == sorted(indices)


# -- the experiment: byte-identity across shard counts ----------------------

def test_fleet_experiment_identical_across_shard_counts():
    from repro.experiments import fleet
    texts = {shards: fleet.run(shards=shards, jobs=1,
                               **FLEET_KWARGS).to_text()
             for shards in (1, 2, 4)}
    assert texts[1] == texts[2] == texts[4]
    assert "fleet" in texts[1]


def test_fleet_experiment_identical_with_pool_and_telemetry():
    """shards=2/jobs=2 (real process pool) with the telemetry stack
    installed must render the same table as the bare shards=1/jobs=1
    run — the test_flow_records_determinism composition."""
    from repro.experiments import fleet
    base = fleet.run(shards=1, jobs=1, **FLEET_KWARGS).to_text()
    telemetry.install(profile=True)
    try:
        composed = fleet.run(shards=2, jobs=2, **FLEET_KWARGS).to_text()
    finally:
        telemetry.uninstall()
    assert composed == base


def test_fleet_experiment_seed_sensitivity():
    from repro.experiments import fleet
    a = fleet.run(n_vswitches=200, epochs=2, seed=0, shards=1, jobs=1)
    b = fleet.run(n_vswitches=200, epochs=2, seed=1, shards=1, jobs=1)
    assert a.to_text() != b.to_text()


# -- runner plumbing --------------------------------------------------------

def test_resolve_jobs_serializes_inside_workers(monkeypatch):
    from repro.experiments import parallel
    assert parallel.resolve_jobs(4, 8) == 4
    monkeypatch.setattr(parallel, "_IN_WORKER", True)
    assert parallel.resolve_jobs(4, 8) == 1
    assert parallel.resolve_jobs(None, 8) == 1


def test_sweep_inside_worker_runs_in_process(monkeypatch):
    from repro.experiments import parallel
    monkeypatch.setattr(parallel, "_IN_WORKER", True)
    # A nested pool would fork; in-worker the sweep must be the plain
    # loop, which works on unpicklable closures.
    captured = []
    result = parallel.sweep([1, 2, 3], lambda p: captured.append(p) or p * 2,
                            jobs=4)
    assert result == [2, 4, 6] and captured == [1, 2, 3]


def test_cli_fleet_shards_flag(capsys):
    from repro.experiments.runner import main
    assert main(["fleet", "--fast", "--shards", "2", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "== fleet:" in out
    assert "invariant to the shard count" in out


def test_cli_rejects_bad_shards(capsys):
    from repro.experiments.runner import main
    with pytest.raises(SystemExit):
        main(["fleet", "--shards", "0"])


def test_runner_forwards_shards_only_when_accepted():
    from repro.experiments.runner import _run_kwargs

    def fleet_like(seed=0, jobs=1, shards=None):
        pass

    def classic(seed=0, jobs=1):
        pass

    assert _run_kwargs(fleet_like, 3, 2, 4) == dict(seed=3, jobs=2, shards=4)
    assert _run_kwargs(fleet_like, 3, 2, None) == dict(seed=3, jobs=2)
    assert _run_kwargs(classic, 3, 2, 4) == dict(seed=3, jobs=2)
