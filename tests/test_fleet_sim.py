"""Fleet-scale simulation: shard-count determinism, flyweight records,
coordinator policy, and the runner plumbing (ISSUE 7).

The headline property is the shard-count invariance of the fleet
experiment: its rendered table must be byte-identical for every
``shards`` value, composed with the process pool (``jobs=2``) and with
the full telemetry stack installed — the fleet-scale instance of the
repo's determinism contract.
"""

from array import array

import pytest

from repro import telemetry
from repro.errors import ConfigError
from repro.fleet import (FleetCoordinator, FleetFlowStore, FleetParams,
                         demand_units, make_shards, partition,
                         run_shard_epoch, simulate_hot_epoch, vswitch_seed)
from repro.workloads.fleet import FleetCapacity, HotspotKind, VSwitchDemand

FLEET_KWARGS = dict(n_vswitches=200, epochs=2, seed=0)


# -- partitioning and seed derivation ---------------------------------------

def test_partition_contiguous_and_balanced():
    ranges = partition(10, 3)
    assert ranges == [(0, 4), (4, 7), (7, 10)]
    sizes = [hi - lo for lo, hi in ranges]
    assert max(sizes) - min(sizes) <= 1


def test_partition_clamps_to_population():
    assert partition(2, 8) == [(0, 1), (1, 2)]


def test_partition_rejects_zero_shards():
    with pytest.raises(ConfigError):
        partition(10, 0)


def test_vswitch_seeds_do_not_alias_at_fleet_scale():
    seeds = {vswitch_seed(0, g) for g in range(10_000)}
    assert len(seeds) == 10_000


def test_vswitch_seeds_do_not_alias_across_root_seeds():
    # The naive seed+index scheme collides (root 0 / vs 1 == root 1 /
    # vs 0); the derived scheme must not.
    a = {vswitch_seed(0, g) for g in range(500)}
    b = {vswitch_seed(1, g) for g in range(500)}
    assert not a & b


def test_vswitch_seed_is_shard_layout_free():
    # Walking any partition in shard order reproduces the unsharded seed
    # sequence exactly: seeds are a function of the global index alone,
    # so re-partitioning the fleet cannot change any vSwitch's stream.
    flat = [vswitch_seed(42, g) for g in range(100)]
    for shards in (2, 4, 7):
        walked = [vswitch_seed(42, g)
                  for lo, hi in partition(100, shards)
                  for g in range(lo, hi)]
        assert walked == flat
    assert len(set(flat)) == len(flat)


# -- flyweight store --------------------------------------------------------

def test_flyweight_alloc_grows_zeroed():
    store = FleetFlowStore()
    slots = store.alloc_block(5)
    assert list(slots) == [0, 1, 2, 3, 4]
    assert len(store) == 5 and store.capacity == 5
    assert store.totals() == (0, 0)


def test_flyweight_free_and_recycle_rezeroes():
    store = FleetFlowStore()
    slots = store.alloc_block(4)
    store.fold(slots, pending_packets=8, pending_bytes=80)
    store.free_block(slots[2:])
    assert len(store) == 2
    recycled = store.alloc_block(2)          # LIFO reuse of freed slots
    assert set(recycled) <= {2, 3}
    assert store.capacity == 4               # no growth needed
    assert all(store.packets[s] == 0 for s in recycled)


def test_flyweight_fold_is_exact_with_remainder():
    store = FleetFlowStore()
    slots = store.alloc_block(3)
    folded = store.fold(slots, pending_packets=10, pending_bytes=101)
    assert folded == (10, 101)
    assert sorted(store.packets[s] for s in slots) == [3, 3, 4]
    assert store.totals() == (10, 101)


def test_flyweight_fold_without_live_slots_defers():
    store = FleetFlowStore()
    assert store.fold(array("l"), 7, 70) == (0, 0)
    assert store.totals() == (0, 0)


def test_flyweight_nbytes_tracks_columns():
    store = FleetFlowStore()
    store.alloc_block(100)
    assert store.nbytes() == 100 * 16       # two 'q' columns, empty free list


# -- hot micro-sim ----------------------------------------------------------

def test_hot_sim_deterministic():
    a = simulate_hot_epoch(seed=7, demand_ratio=3.0, granted=False)
    b = simulate_hot_epoch(seed=7, demand_ratio=3.0, granted=False)
    assert a == b


def test_hot_sim_overload_drops_and_grant_desaturates():
    overloaded = simulate_hot_epoch(seed=7, demand_ratio=6.0, granted=False)
    granted = simulate_hot_epoch(seed=7, demand_ratio=6.0, granted=True)
    assert overloaded["sim_drops"] > 0
    assert granted["sim_drops"] == 0
    assert granted["sim_cpu"] < overloaded["sim_cpu"]
    assert granted["sim_delivered"] == granted["sim_sent"]


def test_demand_units_scale_with_excess():
    capacity = FleetCapacity()
    mild = VSwitchDemand(cps=capacity.cps * 1.2, flows=0.0005, vnics=0.0005)
    severe = VSwitchDemand(cps=capacity.cps * 5.0, flows=0.0005, vnics=0.0005)
    assert demand_units(mild, capacity) == 1
    assert demand_units(severe, capacity) == 4


# -- coordinator ------------------------------------------------------------

def _report(entries):
    return [{"epoch": 0, "lo": 0, "hi": 100,
             "cold": {"count": 0, "flows": 0, "pkts": 0, "bytes": 0,
                      "born": 0, "died": 0},
             "hot": entries}]


def _hot(index, units, kinds=("cps",)):
    return {"index": index, "units": units, "kinds": list(kinds)}


def test_coordinator_all_or_nothing_denial():
    coord = FleetCoordinator(seed=0, pool_units=3)
    coord.settle(0, _report([_hot(1, 2), _hot(2, 2)]))
    assert coord.grants == {1: 2}            # 2 left < 2 requested: denied
    assert coord.denied_requests == 1
    occurrences, residual = coord.overloads[HotspotKind.CPS]
    assert (occurrences, residual) == (2, 1)  # the denied one stands


def test_coordinator_renewals_beat_newcomers():
    coord = FleetCoordinator(seed=0, pool_units=2)
    coord.settle(0, _report([_hot(5, 2)]))
    assert coord.grants == {5: 2}
    # Next epoch a lower-index newcomer competes; the holder renews.
    coord.settle(1, _report([_hot(1, 2), _hot(5, 2)]))
    assert coord.grants == {5: 2}
    assert coord.denied_requests == 1


def test_coordinator_releases_quiet_grants():
    coord = FleetCoordinator(seed=0, pool_units=4)
    coord.settle(0, _report([_hot(3, 4)]))
    assert coord.units_in_use() == 4
    coord.settle(1, _report([]))
    assert coord.grants == {} and coord.units_in_use() == 0
    assert coord.utilization == [1.0, 0.0]


def test_coordinator_vnics_always_mitigated_when_granted():
    coord = FleetCoordinator(seed=0, pool_units=8)
    coord.settle(0, _report([_hot(1, 1, kinds=("vnics",))]))
    occurrences, residual = coord.overloads[HotspotKind.VNICS]
    assert (occurrences, residual) == (1, 0)


def test_coordinator_denied_vnics_is_residual():
    coord = FleetCoordinator(seed=0, pool_units=0)
    coord.settle(0, _report([_hot(1, 1, kinds=("vnics",))]))
    occurrences, residual = coord.overloads[HotspotKind.VNICS]
    assert (occurrences, residual) == (1, 1)


# -- shard epoch step -------------------------------------------------------

def test_shard_epoch_reports_are_shard_invariant():
    params = FleetParams(seed=0, n_vswitches=60)

    def epoch_reports(shards):
        states = make_shards(params, shards)
        merged_cold, merged_hot = [], []
        for state in states:
            _state, report = run_shard_epoch((state, 0, {}, params))
            merged_cold.append(report["cold"])
            merged_hot.extend(report["hot"])
        totals = {key: sum(cold[key] for cold in merged_cold)
                  for key in merged_cold[0]}
        return totals, merged_hot

    base = epoch_reports(1)
    assert epoch_reports(2) == base
    assert epoch_reports(3) == base


def test_shard_hot_lists_ascend_globally():
    params = FleetParams(seed=0, n_vswitches=300)
    indices = []
    for state in make_shards(params, 4):
        _state, report = run_shard_epoch((state, 0, {}, params))
        indices.extend(entry["index"] for entry in report["hot"])
    assert indices == sorted(indices)


# -- vectorized cold tail: RNG stream identity (ISSUE 8) --------------------

def test_epoch_uniform_columns_match_scalar_rng_exactly():
    """The vectorized draw (one reused Random reseeded per vSwitch from
    cached hash prefixes) must reproduce the scalar reference stream
    ``SeededRng(vswitch_seed(seed, g), f"e{epoch}")`` bit-for-bit."""
    from repro.fleet.shard import _epoch_uniform_columns
    from repro.sim.rng import SeededRng
    params = FleetParams(seed=3, n_vswitches=40)
    state = make_shards(params, 1)[0]
    for epoch in (0, 1, 7):
        u_cps, u_flows, u_vnics = _epoch_uniform_columns(state, 3, epoch)
        for i in range(40):
            rng = SeededRng(vswitch_seed(3, i), f"e{epoch}")
            assert (u_cps[i], u_flows[i], u_vnics[i]) \
                == (rng.random(), rng.random(), rng.random())


def test_epoch_columns_invert_to_scalar_demands():
    """Column inversion of the uniforms == the boxed scalar reference
    (_epoch_demand) for every vSwitch — the end-to-end identity the
    vectorized epoch step rests on."""
    from repro.fleet.shard import _epoch_demand, _epoch_uniform_columns
    from repro.workloads.fleet import usage_dist
    params = FleetParams(seed=5, n_vswitches=30)
    state = make_shards(params, 1)[0]
    dists = (usage_dist("cps"), usage_dist("flows"), usage_dist("vnics"))
    u_cps, u_flows, u_vnics = _epoch_uniform_columns(state, 5, 2)
    cps_col = dists[0].invert_n(u_cps)
    flows_col = dists[1].invert_n(u_flows)
    vnics_col = dists[2].invert_n(u_vnics)
    for i in range(30):
        demand = _epoch_demand(5, i, 2, dists)
        assert (cps_col[i], flows_col[i], vnics_col[i]) \
            == (demand.cps, demand.flows, demand.vnics)


def test_seed_prefixes_cached_per_root_seed():
    state = make_shards(FleetParams(seed=0, n_vswitches=10), 1)[0]
    first = state.seed_prefixes(0)
    assert state.seed_prefixes(0) is first          # cached
    other = state.seed_prefixes(1)                  # reseed invalidates
    assert other != first and state.seed_prefixes(1) is other
    assert first == [b"%d:" % vswitch_seed(0, g) for g in range(10)]


def test_shard_state_pickle_drops_prefix_cache():
    import pickle
    state = make_shards(FleetParams(seed=0, n_vswitches=10), 1)[0]
    state.seed_prefixes(0)
    clone = pickle.loads(pickle.dumps(state))
    assert clone._seed_prefixes is None             # rebuilt lazily
    assert clone.seed_prefixes(0) == state.seed_prefixes(0)


# -- materialization idempotency (ISSUE 8 satellite) ------------------------

def test_materialize_is_idempotent_and_clears_pending():
    params = FleetParams(seed=0, n_vswitches=50)
    state = make_shards(params, 1)[0]
    for epoch in range(2):
        state, _report = run_shard_epoch((state, epoch, {}, params))
    first = state.materialize()
    assert first != (0, 0)
    assert not any(state.pending_pkts) and not any(state.pending_bytes)
    assert state.materialize() == (0, 0)            # second call: no-op
    totals_after_first = state.store.totals()
    state.materialize()
    assert state.store.totals() == totals_after_first


def test_materialize_clears_pending_without_live_slots():
    # A vSwitch that ends an epoch with zero live flows cannot fold its
    # pending traffic into slots; the remainder is returned once and the
    # accumulator still clears — no double counting on a second pass.
    state = make_shards(FleetParams(seed=0, n_vswitches=2), 1)[0]
    state.pending_pkts[0] = 7
    state.pending_bytes[0] = 700
    assert state.materialize() == (7, 700)
    assert state.pending_pkts[0] == 0 and state.pending_bytes[0] == 0
    assert state.materialize() == (0, 0)
    assert state.store.totals() == (0, 0)           # nowhere to fold


# -- hot micro-sim: fluid fast-forward identity (ISSUE 8) -------------------

def test_hot_sim_fluid_fast_forward_is_output_identical():
    """simulate_hot_epoch(fluid=True) — the default — must return the
    same measurements as the per-packet fluid=False run: the §5.5
    fast-forward is a wall-clock optimization, never an output one."""
    for seed, ratio, granted in ((7, 3.0, False), (11, 6.0, False),
                                 (11, 6.0, True), (23, 1.2, False)):
        fast = simulate_hot_epoch(seed=seed, demand_ratio=ratio,
                                  granted=granted, fluid=True)
        slow = simulate_hot_epoch(seed=seed, demand_ratio=ratio,
                                  granted=granted, fluid=False)
        assert fast == slow


def test_hot_sim_restores_global_fluid_mode():
    from repro.vswitch.flow_records import FluidMode
    prior = FluidMode.enabled
    try:
        FluidMode.enabled = False
        simulate_hot_epoch(seed=7, demand_ratio=2.0, granted=False)
        assert FluidMode.enabled is False
        FluidMode.enabled = True
        simulate_hot_epoch(seed=7, demand_ratio=2.0, granted=False,
                           fluid=False)
        assert FluidMode.enabled is True
    finally:
        FluidMode.enabled = prior


# -- the experiment: byte-identity across shard counts ----------------------

def test_fleet_experiment_identical_across_shard_counts():
    from repro.experiments import fleet
    texts = {shards: fleet.run(shards=shards, jobs=1,
                               **FLEET_KWARGS).to_text()
             for shards in (1, 2, 4)}
    assert texts[1] == texts[2] == texts[4]
    assert "fleet" in texts[1]


def test_fleet_experiment_identical_with_pool_and_telemetry():
    """shards=2/jobs=2 (real process pool) with the telemetry stack
    installed must render the same table as the bare shards=1/jobs=1
    run — the test_flow_records_determinism composition."""
    from repro.experiments import fleet
    base = fleet.run(shards=1, jobs=1, **FLEET_KWARGS).to_text()
    telemetry.install(profile=True)
    try:
        composed = fleet.run(shards=2, jobs=2, **FLEET_KWARGS).to_text()
    finally:
        telemetry.uninstall()
    assert composed == base


def test_fleet_experiment_identity_matrix_shards_jobs_resident():
    """The PR 8 determinism matrix, grown a telemetry axis by PR 10:
    every shards × jobs × residency × telemetry combination renders the
    byte-identical table AND folds the byte-identical fleet-metrics
    snapshot. jobs=1 is the legacy in-process loop (resident=True
    degenerates to it in-process — no worker processes, no pickling);
    jobs=2 exercises the real pool both per-epoch-swept and resident;
    the telemetry axis proves observation never perturbs the run."""
    import itertools
    from repro.experiments import fleet
    base_stats = {}
    base = fleet.run(shards=1, jobs=1, resident=False, fleet_metrics=True,
                     stats=base_stats, **FLEET_KWARGS).to_text()
    base_snapshot = base_stats["fleet_metrics"]
    assert base_snapshot["counters"]["vswitches"] > 0
    for shards, jobs, resident, with_tel in itertools.product(
            (1, 2, 4), (1, 2), (False, True), (False, True)):
        combo = (shards, jobs, resident, with_tel)
        if with_tel:
            telemetry.install()
        try:
            stats = {}
            text = fleet.run(shards=shards, jobs=jobs, resident=resident,
                             fleet_metrics=True, stats=stats,
                             **FLEET_KWARGS).to_text()
        finally:
            if with_tel:
                telemetry.uninstall()
        assert text == base, combo
        assert stats["fleet_metrics"] == base_snapshot, combo


def test_fleet_experiment_seed_sensitivity():
    from repro.experiments import fleet
    a = fleet.run(n_vswitches=200, epochs=2, seed=0, shards=1, jobs=1)
    b = fleet.run(n_vswitches=200, epochs=2, seed=1, shards=1, jobs=1)
    assert a.to_text() != b.to_text()


# -- runner plumbing --------------------------------------------------------

def test_resolve_jobs_serializes_inside_workers(monkeypatch):
    from repro.experiments import parallel
    assert parallel.resolve_jobs(4, 8) == 4
    monkeypatch.setattr(parallel, "_IN_WORKER", True)
    assert parallel.resolve_jobs(4, 8) == 1
    assert parallel.resolve_jobs(None, 8) == 1


def test_sweep_inside_worker_runs_in_process(monkeypatch):
    from repro.experiments import parallel
    monkeypatch.setattr(parallel, "_IN_WORKER", True)
    # A nested pool would fork; in-worker the sweep must be the plain
    # loop, which works on unpicklable closures.
    captured = []
    result = parallel.sweep([1, 2, 3], lambda p: captured.append(p) or p * 2,
                            jobs=4)
    assert result == [2, 4, 6] and captured == [1, 2, 3]


def test_cli_fleet_shards_flag(capsys):
    from repro.experiments.runner import main
    assert main(["fleet", "--fast", "--shards", "2", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "== fleet:" in out
    assert "invariant to the shard count" in out


def test_cli_rejects_bad_shards(capsys):
    from repro.experiments.runner import main
    with pytest.raises(SystemExit):
        main(["fleet", "--shards", "0"])


def test_cli_fleet_resident_flag(capsys):
    from repro.experiments.runner import main
    assert main(["fleet", "--fast", "--shards", "2", "--jobs", "2",
                 "--resident"]) == 0
    resident_out = capsys.readouterr().out
    assert main(["fleet", "--fast", "--shards", "2", "--jobs", "2",
                 "--no-resident"]) == 0
    swept_out = capsys.readouterr().out

    def table(out):  # strip the timing line, keep the rendered result
        return out.split("[fleet finished")[0]

    assert table(resident_out) == table(swept_out)
    assert "residency mode" in resident_out


def test_runner_forwards_shards_only_when_accepted():
    from repro.experiments.runner import _run_kwargs

    def fleet_like(seed=0, jobs=1, shards=None, resident=None):
        pass

    def classic(seed=0, jobs=1):
        pass

    assert _run_kwargs(fleet_like, 3, 2, 4) \
        == dict(seed=3, jobs=2, shards=4)
    assert _run_kwargs(fleet_like, 3, 2, 4, True) \
        == dict(seed=3, jobs=2, shards=4, resident=True)
    assert _run_kwargs(fleet_like, 3, 2, None, False) \
        == dict(seed=3, jobs=2, resident=False)
    assert _run_kwargs(fleet_like, 3, 2, None) == dict(seed=3, jobs=2)
    assert _run_kwargs(classic, 3, 2, 4, True) == dict(seed=3, jobs=2)
