"""Telemetry wired into the real stack: component self-registration,
fig12 span reconciliation, the experiment/chaos CLI export paths, the
post-mortem CLI, and the bench overhead harness."""

import importlib.util
import sys
import types
from pathlib import Path

import pytest

from repro import telemetry
from repro.experiments import fig12
from repro.telemetry.export import load, validate_report

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    telemetry.uninstall()


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "telemetry_cli", REPO_ROOT / "tools" / "telemetry.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# -- component self-registration ---------------------------------------------


def test_components_register_metrics_when_installed():
    from tests.conftest import build_nezha_env

    tel = telemetry.install()
    env = build_nezha_env(n_servers=3)
    names = tel.registry.names()
    assert any(name.startswith("vswitch.") for name in names)
    assert "gateway.version" in names
    snap = tel.registry.snapshot("vswitch.*.cpu.utilization")
    assert len(snap) == 3
    assert all(value == 0.0 for value in snap.values())
    assert tel.registry.snapshot("gateway.*")["gateway.entries"] == 2
    # The shared trace is what the env's components emit into.
    assert env.vswitch_a.trace is tel.trace


def test_no_registration_without_install():
    from tests.conftest import build_cloud

    assert telemetry.current() is None
    cloud = build_cloud()  # must not blow up, must not create a registry
    assert telemetry.current() is None
    assert cloud.vswitch_a.trace is not None  # private per-component trace


# -- fig12 reconciliation (the headline acceptance criterion) ----------------


def test_fig12_span_p50_matches_experiment_exactly():
    """The span recorder's aggregate must reproduce fig12's own latency
    numbers — identically, because ``finish()`` stamps the same instant
    the experiment's listener reads."""
    tel = telemetry.install()
    _util, p50 = fig12._measure(0, nezha=True, seed=0, duration=0.3)
    agg = tel.spans.aggregate()
    entry = agg["offloaded/load0"]
    assert entry["count"] > 0
    assert entry["latency"]["P50"] == p50  # float-identical, not approx
    # The offloaded path shows the BE->FE detour; per-segment times sum
    # to the total.
    assert "vswitch_rx->fe_relay" in entry["segments"]
    seg_sum = sum(summary["P50"] for summary in entry["segments"].values())
    assert seg_sum == pytest.approx(entry["latency"]["P50"], rel=1e-9)


def test_fig12_local_path_has_no_fe_segments():
    tel = telemetry.install()
    _util, p50 = fig12._measure(0, nezha=False, seed=0, duration=0.3)
    entry = tel.spans.aggregate()["local/load0"]
    assert entry["latency"]["P50"] == p50
    assert not any("fe" in name for name in entry["segments"])


def test_telemetry_on_does_not_change_results():
    """Observation purity: installing the full stack (spans + registry +
    trace + profiler) must leave the simulation's numbers untouched."""
    bare = fig12._measure(0, nezha=False, seed=0, duration=0.2)
    telemetry.install(profile=True)
    observed = fig12._measure(0, nezha=False, seed=0, duration=0.2)
    telemetry.uninstall()
    assert observed == bare


# -- CLI export paths --------------------------------------------------------


def test_runner_cli_telemetry_export(tmp_path, capsys):
    from repro.experiments.runner import main

    out = tmp_path / "run.jsonl"
    assert main(["tablea1", "--telemetry", str(out), "--jobs", "2"]) == 0
    assert "[telemetry:" in capsys.readouterr().out
    assert validate_report(load(out)) == []
    assert telemetry.current() is None  # uninstalled even on success


def test_runner_cli_fast_single_experiment_uses_quick_kwargs(monkeypatch):
    from repro.experiments.runner import run_experiment

    captured = {}
    fake = types.ModuleType("repro.experiments.fig9")

    def run(seed=0, jobs=1, **kwargs):
        captured.update(kwargs)

        class R:
            rows = []

            def to_text(self):
                return "fake"

        return R()

    fake.run = run
    monkeypatch.setitem(sys.modules, "repro.experiments.fig9", fake)
    run_experiment("fig9", fast=True)
    from repro.bench.macro import MACRO_BENCHES
    quick = next(b for b in MACRO_BENCHES if b.name == "fig9").quick_kwargs
    assert captured == quick
    captured.clear()
    run_experiment("fig9", fast=False)
    assert captured == {}


def test_chaos_cli_telemetry_postmortem(tmp_path, capsys):
    from repro.experiments.chaos import main

    out = tmp_path / "soak.jsonl"
    rc = main(["--horizon", "1.5", "--settle", "1.5", "--min-faults", "1",
               "--telemetry", str(out)])
    assert rc == 0, capsys.readouterr().out
    records = load(out)
    assert validate_report(records) == []
    kinds = {r["kind"] for r in records if r["type"] == "trace"}
    # The unified stream interleaves sabotage with the control plane's
    # reactions — that is the post-mortem timeline.
    assert any(kind.startswith("fault.") for kind in kinds)
    assert any(kind.startswith("controller.") or kind.startswith("nezha.")
               for kind in kinds)
    metric_names = {r["name"] for r in records if r["type"] == "metric"}
    assert "monitor.targets" in metric_names
    assert "controller.decisions" in metric_names


# -- post-mortem CLI ---------------------------------------------------------


@pytest.fixture
def capture(tmp_path):
    """A small real capture: metrics, two span labels, trace, profile."""
    from repro.sim import Engine
    from repro.telemetry import spans as span_hooks

    tel = telemetry.install(profile=True)
    engine = Engine()
    tel.bind_engine(engine)
    tel.registry.counter("demo.count").inc(3)

    class Pkt:
        def __init__(self):
            self.meta = {}

    for label, detour in (("local", 0.0), ("offloaded", 0.2)):
        for start in (1.0, 2.0):
            pkt = Pkt()
            span_hooks.begin(pkt, label, start)
            span_hooks.hop(pkt, "vswitch_in", start + 0.1)
            if detour:
                span_hooks.hop(pkt, "fe_relay", start + 0.1 + detour)
            span_hooks.finish(pkt, "vm_rx", start + 0.3 + detour)
    tel.trace.emit("fault.injected", fault="crash_vswitch", target="be0")
    engine.call_at(
        1.0, lambda: tel.trace.emit("controller.failover", target="be0"))
    engine.run()
    path = tmp_path / "capture.jsonl"
    tel.export(path)
    telemetry.uninstall()
    return path


def test_cli_report(capture, capsys):
    cli = _load_cli()
    assert cli.main(["report", str(capture)]) == 0
    out = capsys.readouterr().out
    assert "demo.count" in out
    assert "local" in out and "offloaded" in out
    assert "engine profile" in out


def test_cli_spans_label_filter(capture, capsys):
    cli = _load_cli()
    assert cli.main(["spans", str(capture), "--label", "offloaded"]) == 0
    out = capsys.readouterr().out
    assert "vswitch_in->fe_relay" in out
    assert "local" not in out


def test_cli_timeline_orders_and_filters(capture, capsys):
    cli = _load_cli()
    assert cli.main(["timeline", str(capture)]) == 0
    out = capsys.readouterr().out.splitlines()
    assert "fault.injected" in out[0] and "target=be0" in out[0]
    assert "controller.failover" in out[1]  # later virtual time prints after
    assert cli.main(["timeline", str(capture), "--kind", "fault.*"]) == 0
    filtered = capsys.readouterr().out
    assert "controller.failover" not in filtered


def test_cli_validate(capture, tmp_path, capsys):
    cli = _load_cli()
    assert cli.main(["validate", str(capture)]) == 0
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "metric", "name": "x"}\n')
    assert cli.main(["validate", str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_cli_aggregate_matches_recorder(capture):
    """The CLI's from-JSONL aggregation mirrors SpanRecorder.aggregate."""
    cli = _load_cli()
    spans = [r for r in load(capture) if r["type"] == "span"]
    agg = cli.aggregate_spans(spans)
    assert agg["local"]["count"] == 2
    assert agg["local"]["latency"]["P50"] == pytest.approx(0.3)
    assert agg["offloaded"]["latency"]["P50"] == pytest.approx(0.5)
    assert set(agg["offloaded"]["segments"]) == {
        "start->vswitch_in", "vswitch_in->fe_relay", "fe_relay->vm_rx"}


# -- bench overhead harness --------------------------------------------------


def test_run_telemetry_overhead_shape(monkeypatch):
    """Exercise the harness against a stubbed fig9 (the real one takes
    ~15s per run; the wall-clock numbers are bench territory)."""
    fake = types.ModuleType("repro.experiments.fig9")
    calls = {"installed": []}

    def run(jobs=1, **kwargs):
        calls["installed"].append(telemetry.current() is not None)

        class R:
            rows = []

            def to_text(self):
                return "table"

        return R()

    fake.run = run
    monkeypatch.setitem(sys.modules, "repro.experiments.fig9", fake)
    from repro.bench.macro import run_telemetry_overhead

    entry = run_telemetry_overhead(repeats=2)
    # untimed warm-up, then off, on, then (repeats-1) more interleaved
    # off/on runs
    assert calls["installed"] == [False, False, True, False, True]
    assert entry["identical_output"] is True
    assert entry["off_s"] >= 0 and entry["on_s"] >= 0
    assert entry["normalized_off"] >= 0
    assert entry["bench"] == "fig9"
    assert telemetry.current() is None
