"""Tests for the underlay fabric: links, switches, topology, ECMP."""

import pytest

from repro.errors import TopologyError
from repro.fabric import Link, ServerNode, Topology, UnderlaySwitch
from repro.fabric.topology import connect
from repro.net import IPv4Address, MacAddress, Packet, TcpFlags
from repro.sim import Engine


def mk_server(engine, name, ip, mac=1):
    return ServerNode(engine, name, IPv4Address(ip), MacAddress(mac))


def mk_packet(src="10.0.0.1", dst="10.1.0.1", sport=1000, dport=80):
    return Packet.tcp(IPv4Address(src), IPv4Address(dst), sport, dport,
                      TcpFlags.of("syn"))


# -- Link ------------------------------------------------------------------------

def test_link_delivers_with_latency_and_serialization():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    connect(engine, a, b, latency=10e-6, gbps=1.0)  # 1 Gbps
    arrivals = []
    b.attach_sink(lambda pkt: arrivals.append(engine.now))
    pkt = mk_packet()
    a.send_to_fabric(pkt)
    engine.run()
    # 40B at 1 Gbps = 320ns serialization + 10us propagation.
    expected = pkt.wire_length * 8 / 1e9 + 10e-6
    assert arrivals == [pytest.approx(expected)]


def test_link_serializes_back_to_back_packets():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    connect(engine, a, b, latency=0.0, gbps=1.0)
    arrivals = []
    b.attach_sink(lambda pkt: arrivals.append(engine.now))
    p = mk_packet()
    a.send_to_fabric(p.copy())
    a.send_to_fabric(p.copy())
    engine.run()
    tx = p.wire_length * 8 / 1e9
    assert arrivals[0] == pytest.approx(tx)
    assert arrivals[1] == pytest.approx(2 * tx)


def test_link_down_drops_silently():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    link = connect(engine, a, b)
    got = []
    b.attach_sink(got.append)
    link.set_up(False)
    a.send_to_fabric(mk_packet())
    engine.run()
    assert got == []
    assert link.drops_down == 1


def test_link_rejects_double_connection():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    c = mk_server(engine, "c", "10.0.0.3", mac=3)
    connect(engine, a, b)
    with pytest.raises(TopologyError):
        Link(engine, a.ports[0], c.ports[0])


def test_send_on_disconnected_port_returns_false():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    assert not a.send_to_fabric(mk_packet())


# -- Link bursts ---------------------------------------------------------------


def _burst_arrivals(burst_on, n=4):
    """Arrival times of an n-packet train, with Link.burst on or off."""
    saved = Link.burst
    Link.burst = burst_on
    try:
        engine = Engine()
        a = mk_server(engine, "a", "10.0.0.1")
        b = mk_server(engine, "b", "10.0.0.2", mac=2)
        connect(engine, a, b, latency=10e-6, gbps=1.0)
        arrivals = []
        b.attach_sink(lambda pkt: arrivals.append((engine.now, pkt)))
        a.send_to_fabric_burst([mk_packet(sport=1000 + i) for i in range(n)])
        engine.run()
        return arrivals
    finally:
        Link.burst = saved


def test_burst_arrival_times_match_per_packet_transmits():
    """The exact-timing guarantee: one coalesced heap entry delivers each
    packet at precisely the serialization+latency instant N separate
    transmits would."""
    coalesced = _burst_arrivals(burst_on=True)
    per_packet = _burst_arrivals(burst_on=False)
    assert [t for t, _ in coalesced] == [t for t, _ in per_packet]
    assert ([p.five_tuple() for _, p in coalesced]
            == [p.five_tuple() for _, p in per_packet])
    # Strictly increasing: serialization separates back-to-back packets.
    times = [t for t, _ in coalesced]
    assert all(t1 < t2 for t1, t2 in zip(times, times[1:]))


def test_burst_on_downed_link_drops_whole_burst():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    link = connect(engine, a, b)
    got = []
    b.attach_sink(got.append)
    link.set_up(False)
    a.send_to_fabric_burst([mk_packet(sport=2000 + i) for i in range(5)])
    engine.run()
    assert got == []
    assert link.drops_down == 5          # one per packet
    assert link.bytes_carried == 0       # dropped bursts are not carried
    assert link.packets_carried == 0


def test_link_down_mid_traffic_preserves_carried_counters():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    link = connect(engine, a, b)
    b.attach_sink(lambda pkt: None)
    first = [mk_packet(sport=3000 + i) for i in range(3)]
    a.send_to_fabric_burst(first)
    engine.run()
    carried_bytes = link.bytes_carried
    assert link.packets_carried == 3
    assert carried_bytes == sum(p.wire_length for p in first)
    link.set_up(False)
    a.send_to_fabric_burst([mk_packet(sport=4000 + i) for i in range(7)])
    engine.run()
    assert link.drops_down == 7
    assert link.packets_carried == 3             # untouched by the drop
    assert link.bytes_carried == carried_bytes   # untouched by the drop


def test_send_burst_on_disconnected_port_returns_false():
    engine = Engine()
    a = mk_server(engine, "a", "10.0.0.1")
    assert not a.send_to_fabric_burst([mk_packet()])


# -- UnderlaySwitch ------------------------------------------------------------------

def test_switch_forwards_installed_route():
    engine = Engine()
    sw = UnderlaySwitch(engine, "sw", num_ports=2)
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    connect(engine, a, sw)
    connect(engine, sw, b)
    sw.install_route(IPv4Address("10.0.0.2").value, [1])
    got = []
    b.attach_sink(lambda pkt: got.append(pkt))
    a.send_to_fabric(mk_packet(dst="10.0.0.2"))
    engine.run()
    assert len(got) == 1
    assert sw.forwarded == 1


def test_switch_drops_unrouted_and_counts():
    engine = Engine()
    sw = UnderlaySwitch(engine, "sw", num_ports=2)
    a = mk_server(engine, "a", "10.0.0.1")
    connect(engine, a, sw)
    a.send_to_fabric(mk_packet(dst="10.99.0.1"))
    engine.run()
    assert sw.no_route_drops == 1


def test_switch_drops_on_ttl_expiry():
    engine = Engine()
    sw = UnderlaySwitch(engine, "sw", num_ports=2)
    a = mk_server(engine, "a", "10.0.0.1")
    b = mk_server(engine, "b", "10.0.0.2", mac=2)
    connect(engine, a, sw)
    connect(engine, sw, b)
    sw.install_route(IPv4Address("10.0.0.2").value, [1])
    pkt = mk_packet(dst="10.0.0.2")
    pkt.inner_ipv4().ttl = 1
    a.send_to_fabric(pkt)
    engine.run()
    assert sw.ttl_drops == 1


def test_switch_rejects_bad_route_install():
    sw = UnderlaySwitch(Engine(), "sw", num_ports=2)
    with pytest.raises(TopologyError):
        sw.install_route(1, [])
    with pytest.raises(TopologyError):
        sw.install_route(1, [7])


# -- Topology -------------------------------------------------------------------------

def test_leaf_spine_shape():
    engine = Engine()
    topo = Topology.leaf_spine(engine, n_tors=3, servers_per_tor=4, n_spines=2)
    assert len(topo.servers) == 12
    assert len(topo.tors) == 3
    assert len(topo.spines) == 2
    # each server-link + tor-spine mesh
    assert len(topo.links) == 12 + 3 * 2


def test_leaf_spine_validation():
    with pytest.raises(TopologyError):
        Topology.leaf_spine(Engine(), 0, 1)
    with pytest.raises(TopologyError):
        Topology.leaf_spine(Engine(), 300, 1)


def test_addressing_and_lookup():
    topo = Topology.leaf_spine(Engine(), 2, 2)
    server = topo.server_at(IPv4Address("10.1.0.2"))
    assert server is not None and server.name == "s1-1"
    assert topo.server_at(IPv4Address("10.9.0.1")) is None


def test_same_tor_and_hop_distance():
    topo = Topology.leaf_spine(Engine(), 2, 2)
    s00, s01, s10 = topo.servers[0], topo.servers[1], topo.servers[2]
    assert topo.same_tor(s00, s01)
    assert not topo.same_tor(s00, s10)
    assert topo.hop_distance(s00, s00) == 0
    assert topo.hop_distance(s00, s01) == 2
    assert topo.hop_distance(s00, s10) == 4


def test_end_to_end_delivery_same_tor():
    engine = Engine()
    topo = Topology.leaf_spine(engine, 2, 2)
    src, dst = topo.servers[0], topo.servers[1]
    got = []
    dst.attach_sink(lambda pkt: got.append(engine.now))
    src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                 dst=str(dst.underlay_ip)))
    engine.run()
    assert len(got) == 1


def test_end_to_end_delivery_cross_tor():
    engine = Engine()
    topo = Topology.leaf_spine(engine, 2, 2)
    src, dst = topo.servers[0], topo.servers[3]
    got = []
    dst.attach_sink(lambda pkt: got.append(engine.now))
    src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                 dst=str(dst.underlay_ip)))
    engine.run()
    assert len(got) == 1
    # Cross-tor path is longer than same-tor.
    cross_latency = got[0]
    got2 = []
    sibling = topo.servers[1]
    sibling.attach_sink(lambda pkt: got2.append(engine.now))
    t0 = engine.now
    src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                 dst=str(sibling.underlay_ip)))
    engine.run()
    assert got2[0] - t0 < cross_latency


def test_ecmp_spreads_flows_across_spines():
    engine = Engine()
    topo = Topology.leaf_spine(engine, 2, 1, n_spines=4)
    src, dst = topo.servers[0], topo.servers[1]
    dst.attach_sink(lambda pkt: None)
    for sport in range(200):
        src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                     dst=str(dst.underlay_ip), sport=sport))
    engine.run()
    used = [spine.forwarded for spine in topo.spines]
    assert sum(used) == 200
    # All four spines should see some share of 200 distinct flows.
    assert all(count > 10 for count in used)


def test_same_flow_stays_on_one_path():
    engine = Engine()
    topo = Topology.leaf_spine(engine, 2, 1, n_spines=4)
    src, dst = topo.servers[0], topo.servers[1]
    dst.attach_sink(lambda pkt: None)
    for _ in range(50):
        src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                     dst=str(dst.underlay_ip), sport=777))
    engine.run()
    used = [spine.forwarded for spine in topo.spines]
    assert sorted(used) == [0, 0, 0, 50]


def test_fail_server_links_blackholes():
    engine = Engine()
    topo = Topology.leaf_spine(engine, 2, 2)
    src, dst = topo.servers[0], topo.servers[3]
    got = []
    dst.attach_sink(lambda pkt: got.append(pkt))
    topo.fail_server_links(dst)
    src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                 dst=str(dst.underlay_ip)))
    engine.run()
    assert got == []
    topo.fail_server_links(dst, up=True)
    src.send_to_fabric(mk_packet(src=str(src.underlay_ip),
                                 dst=str(dst.underlay_ip)))
    engine.run()
    assert len(got) == 1
