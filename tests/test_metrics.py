"""Tests for the metrics package."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import Cdf, RateMeter, TimeSeries, percentile, percentile_summary
from repro.sim import Engine


# -- percentile ---------------------------------------------------------------

def test_percentile_basics():
    data = list(range(1, 101))
    assert percentile(data, 0) == 1
    assert percentile(data, 100) == 100
    assert percentile(data, 50) == pytest.approx(50.5)


def test_percentile_single_value():
    assert percentile([7.0], 99) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
       st.floats(0, 100))
def test_percentile_within_range(data, q):
    value = percentile(data, q)
    assert min(data) <= value <= max(data)


def test_percentile_summary_labels():
    summary = percentile_summary([1.0, 2.0, 3.0])
    assert set(summary) == {"avg", "P50", "P90", "P99", "P999", "P9999"}
    assert summary["avg"] == pytest.approx(2.0)


def test_percentile_summary_empty():
    assert percentile_summary([])["P99"] == 0.0


# -- Cdf --------------------------------------------------------------------------

def test_cdf_fraction_below():
    cdf = Cdf(range(100))
    assert cdf.fraction_below(49) == pytest.approx(0.5)
    assert cdf.fraction_below(-1) == 0.0
    assert cdf.fraction_below(1000) == 1.0


def test_cdf_quantile_and_add():
    cdf = Cdf()
    cdf.extend([1, 2, 3])
    cdf.add(4)
    assert cdf.quantile(1.0) == 4
    assert len(cdf) == 4


def test_cdf_points_monotone():
    cdf = Cdf(range(1000))
    pts = cdf.points(50)
    fractions = [f for _v, f in pts]
    assert fractions == sorted(fractions)
    assert pts[-1][1] == 1.0


def test_cdf_empty_raises():
    with pytest.raises(ValueError):
        Cdf().fraction_below(1)


# -- TimeSeries -----------------------------------------------------------------------

def test_timeseries_record_and_stats():
    ts = TimeSeries("util")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
        ts.record(t, v)
    assert ts.mean() == pytest.approx(3.0)
    assert ts.max() == 5.0
    assert ts.mean(start=0.5) == pytest.approx(4.0)


def test_timeseries_rejects_time_reversal():
    ts = TimeSeries()
    ts.record(1.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(0.5, 2.0)


def test_timeseries_resample():
    ts = TimeSeries()
    for i in range(10):
        ts.record(i * 0.1, float(i))
    buckets = ts.resample(0.5)
    assert len(buckets) == 2
    assert buckets[0][1] == pytest.approx(2.0)  # mean of 0..4


def test_timeseries_sampler_process():
    from repro.metrics.timeseries import sample_periodically
    engine = Engine()
    ts = TimeSeries("clock")
    sample_periodically(engine, ts, lambda: engine.now, period=0.1)
    engine.run(until=0.55)
    assert len(ts) == 6  # t=0, .1, .2, .3, .4, .5


# -- RateMeter ----------------------------------------------------------------------------

def test_rate_meter_measures_rate():
    engine = Engine()
    meter = RateMeter(lambda: engine.now, window=1.0)
    for i in range(10):
        engine.call_at(i * 0.1, meter.mark)
    engine.run()
    # Only 0.9 s elapsed since the first mark, so the divisor is the
    # elapsed time, not the full window: 10 events / 0.9 s.
    assert meter.rate() == pytest.approx(10 / 0.9)
    assert meter.total == 10


def test_rate_meter_no_startup_bias():
    """Early readings divide by elapsed time, not the full window."""
    engine = Engine()
    meter = RateMeter(lambda: engine.now, window=1.0)
    for i in range(4):
        engine.call_at(i * 0.05, meter.mark)
    engine.call_at(0.2, lambda: None)
    engine.run()
    # 4 events over 0.2 s: the old code reported 4/s; unbiased is 20/s.
    assert meter.rate() == pytest.approx(4 / 0.2)


def test_rate_meter_full_window_unchanged():
    """Once a full window has elapsed, rates match the old definition."""
    engine = Engine()
    meter = RateMeter(lambda: engine.now, window=1.0)
    for i in range(30):
        engine.call_at(i * 0.1, meter.mark)
    engine.run()
    # At t=2.9 the trailing 1 s window holds the marks at 2.0..2.9.
    assert meter.rate() == pytest.approx(10.0)


def test_rate_meter_no_marks_is_zero():
    meter = RateMeter(lambda: 5.0, window=1.0)
    assert meter.rate() == 0.0


def test_rate_meter_window_expiry():
    engine = Engine()
    meter = RateMeter(lambda: engine.now, window=1.0)
    meter.mark()
    engine.call_at(5.0, lambda: None)
    engine.run()
    assert meter.rate() == 0.0


def test_rate_meter_validation():
    with pytest.raises(ValueError):
        RateMeter(lambda: 0.0, window=0.0)
