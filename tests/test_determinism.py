"""Seeded end-to-end determinism: the fast-path optimizations must not
change a single simulation output.

Every optimization added by the performance overhaul ships with a legacy
switch (pure-heap engine, uncached slow path, unbucketed ACL, unmemoized
packets). These tests run scaled-down fig9/fig12 experiments with the
optimizations on and off and require *identical* result tables — the
strongest possible statement that the caches are semantically invisible.
"""

import pytest

from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.vswitch.rule_tables import AclTable
from repro.vswitch.slow_path import SlowPath

_SWITCHES = (
    (Engine, "micro_queue"),
    (SlowPath, "caching"),
    (AclTable, "bucketed"),
    (Packet, "memoize"),
)


@pytest.fixture
def legacy_mode():
    """Context manager flipping every optimization to its legacy path."""
    saved = [(cls, name, getattr(cls, name)) for cls, name in _SWITCHES]

    def enable(optimized: bool) -> None:
        for cls, name in _SWITCHES:
            setattr(cls, name, optimized)

    yield enable
    for cls, name, value in saved:
        setattr(cls, name, value)


def test_fig9_table_identical_with_and_without_optimizations(legacy_mode):
    from repro.experiments import fig9
    kwargs = dict(fe_counts=(0, 2), duration=0.4, warmup=0.2,
                  concurrency_per_client=8, seed=3)
    legacy_mode(True)
    optimized = fig9.run(**kwargs)
    legacy_mode(False)
    legacy = fig9.run(**kwargs)
    assert optimized.rows == legacy.rows


def test_fig12_table_identical_with_and_without_optimizations(legacy_mode):
    from repro.experiments import fig12
    kwargs = dict(load_levels=(8,), seed=2)
    legacy_mode(True)
    optimized = fig12.run(**kwargs)
    legacy_mode(False)
    legacy = fig12.run(**kwargs)
    assert optimized.rows == legacy.rows


def test_same_seed_same_table_twice(legacy_mode):
    """The optimized pipeline itself is run-to-run deterministic."""
    from repro.experiments import fig9
    kwargs = dict(fe_counts=(2,), duration=0.3, warmup=0.1,
                  concurrency_per_client=8, seed=11)
    legacy_mode(True)
    first = fig9.run(**kwargs)
    second = fig9.run(**kwargs)
    assert first.rows == second.rows
