"""Unified telemetry: one registry, one trace, spans, and a profiler.

Usage shape (what ``runner.py --telemetry`` does)::

    from repro import telemetry

    tel = telemetry.install(profile=True)
    result = fig12.run(...)          # components self-register as built
    tel.export(Path("run.jsonl"))
    telemetry.uninstall()

Install/uninstall manage one module-global :class:`Telemetry`. While
installed:

* components that are constructed without an explicit ``trace`` pick up
  the telemetry's single capacity-bounded, record-everything
  :class:`~repro.sim.trace.Trace` (via :func:`active_trace`), so faults,
  controller decisions, and monitor verdicts interleave in one stream —
  the chaos post-mortem timeline;
* span call sites in the datapath go live (``spans.ACTIVE``);
* engines bound to the telemetry get the profiler attached.

While *not* installed, every hook degrades to a single attribute or
``is None`` check — the ≤2 % overhead contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.trace import Trace
from repro.telemetry import spans as _spans
from repro.telemetry.export import SCHEMA, write_jsonl
from repro.telemetry.fleet import DecisionJournal, fold
from repro.telemetry.profiler import EngineProfiler
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import SpanRecorder

_current: Optional["Telemetry"] = None

TRACE_CAPACITY = 200_000
SPAN_CAPACITY = 100_000


class Telemetry:
    """One run's worth of telemetry state."""

    def __init__(self, profile: bool = False,
                 trace_capacity: Optional[int] = TRACE_CAPACITY,
                 span_capacity: Optional[int] = SPAN_CAPACITY) -> None:
        self.registry = MetricRegistry()
        self.spans = SpanRecorder(capacity=span_capacity)
        self.profiler = EngineProfiler() if profile else None
        #: Typed grant/denial/preemption/... events from the fleet
        #: coordinator and the controller's policy seam.
        self.decisions = DecisionJournal()
        #: Folded fleet metric snapshot (repro.telemetry.fleet), set by
        #: the fleet experiment at end of run.
        self.fleet_metrics: Optional[Dict[str, Any]] = None
        self._engine = None
        # One shared trace for every component built while installed.
        # enable_all(): the unified stream captures every kind; capacity
        # bounds a long soak (satellite fix in sim/trace.py).
        self.trace = Trace(self._now, capacity=trace_capacity)
        self.trace.enable_all()

    def _now(self) -> float:
        return self._engine.now if self._engine is not None else 0.0

    # -- engine binding ----------------------------------------------------

    def bind_engine(self, engine) -> None:
        """Point the clock (and profiler) at the run's engine.

        Sweeps rebuild the engine per point; the latest bound engine
        wins, which matches "the run currently executing".
        """
        if engine is self._engine:
            return
        self._engine = engine
        if self.profiler is not None:
            engine.profiler = self.profiler

    # -- component registration --------------------------------------------
    # Called from component constructors when telemetry is installed.
    # Gauges are probe-backed: zero hot-path cost, evaluated at snapshot.

    def register_vswitch(self, vs) -> None:
        self.bind_engine(vs.engine)
        reg = self.registry
        base = f"vswitch.{vs.name}"
        reg.gauge(f"{base}.cpu.cycles_consumed",
                  probe=lambda vs=vs: vs.cpu.total_cycles)
        reg.gauge(f"{base}.cpu.drops", probe=lambda vs=vs: vs.stats.cpu_drops)
        reg.gauge(f"{base}.cpu.utilization",
                  probe=lambda vs=vs: vs.cpu_utilization())
        reg.gauge(f"{base}.cache.hits",
                  probe=lambda vs=vs: vs.stats.fast_path_hits)
        reg.gauge(f"{base}.cache.misses",
                  probe=lambda vs=vs: vs.stats.slow_path_lookups)
        reg.gauge(f"{base}.sessions.occupancy",
                  probe=lambda vs=vs: len(vs.session_table))

    def register_smartnic(self, nic) -> None:
        self.bind_engine(nic.engine)
        reg = self.registry
        base = f"smartnic.{nic.name}"
        reg.gauge(f"{base}.cpu.headroom",
                  probe=lambda nic=nic: 1.0 - nic.cpu_utilization())
        reg.gauge(f"{base}.mem.headroom",
                  probe=lambda nic=nic: 1.0 - nic.memory_utilization())

    def register_link(self, link) -> None:
        self.bind_engine(link.engine)
        reg = self.registry
        base = f"fabric.link.{link.name}"
        reg.gauge(f"{base}.packets",
                  probe=lambda link=link: link.packets_carried)
        reg.gauge(f"{base}.bytes", probe=lambda link=link: link.bytes_carried)
        reg.gauge(f"{base}.drops", probe=lambda link=link: link.drops_down)
        reg.gauge(f"{base}.queue_depth",
                  probe=lambda link=link: link.queue_depth())
        reg.gauge(f"{base}.utilization",
                  probe=lambda link=link: link.utilization())

    def register_monitor(self, monitor) -> None:
        self.bind_engine(monitor.engine)
        reg = self.registry
        reg.gauge("monitor.targets",
                  probe=lambda m=monitor: len(m.targets))
        reg.gauge("monitor.down",
                  probe=lambda m=monitor: sum(
                      1 for s in m.targets.values() if s.down_reported))
        reg.gauge("monitor.suspended",
                  probe=lambda m=monitor: float(m.suspended))

    def register_gateway(self, gateway) -> None:
        self.bind_engine(gateway.engine)
        reg = self.registry
        reg.gauge("gateway.version", probe=lambda g=gateway: g.version)
        reg.gauge("gateway.entries",
                  probe=lambda g=gateway: len(g._entries))
        reg.gauge("gateway.learners",
                  probe=lambda g=gateway: len(g.learners))
        reg.gauge("gateway.pulls_dropped",
                  probe=lambda g=gateway: sum(
                      learner.pulls_dropped for learner in g.learners))

    def register_controller(self, controller) -> None:
        self.bind_engine(controller.engine)
        self.registry.events("controller.decisions", capacity=50_000)
        self.registry.counter("controller.reconcile.errors")

    def register_resident_pool(self, pool) -> None:
        """Probe-backed gauges over a fleet ResidentPool: liveness, IPC
        bytes by phase, and per-worker wall-clock/queue-wait totals —
        the artifact that answers "where does --jobs time go". Probes
        read plain pool attributes, so they stay valid (and cheap) after
        the pool is closed."""
        reg = self.registry
        reg.gauge("fleet.pool.jobs", probe=lambda p=pool: p.jobs)
        reg.gauge("fleet.pool.workers_alive",
                  probe=lambda p=pool: float(sum(p.alive())))
        reg.gauge("fleet.pool.ipc.init_bytes",
                  probe=lambda p=pool: p.init_ipc_bytes)
        reg.gauge("fleet.pool.ipc.step_bytes",
                  probe=lambda p=pool: sum(p.step_ipc_bytes))
        reg.gauge("fleet.pool.ipc.collect_bytes",
                  probe=lambda p=pool: p.collect_ipc_bytes)
        for w in range(len(pool.worker_runtime)):
            base = f"fleet.pool.worker{w}"
            reg.gauge(f"{base}.alive",
                      probe=lambda p=pool, w=w: float(p.alive()[w]))
            reg.gauge(f"{base}.steps",
                      probe=lambda p=pool, w=w: p.worker_runtime[w]["steps"])
            for phase in ("init", "step", "collect"):
                reg.gauge(
                    f"{base}.{phase}_wall_s",
                    probe=lambda p=pool, w=w, ph=phase:
                        p.worker_runtime[w][f"{ph}_wall_s"])
            reg.gauge(f"{base}.recv_wait_s",
                      probe=lambda p=pool, w=w:
                          p.worker_runtime[w]["recv_wait_s"])

    # -- structured hooks --------------------------------------------------

    def decision(self, now: float, action: str, **fields: Any) -> None:
        """Controller decision log: why each offload/scale/fallback fired."""
        log = self.registry.events("controller.decisions", capacity=50_000)
        log.record(now, action=action, **fields)
        if action == "reconcile_error":
            self.registry.counter("controller.reconcile.errors").inc()

    def offload_transition(self, handle, state: str, now: float) -> None:
        """Offload handle state machine step, with timestamp."""
        log = self.registry.events("offload.transitions", capacity=50_000)
        log.record(now, vnic=handle.vnic.vnic_id, state=state)

    def set_fleet_metrics(self, snapshot: Dict[str, Any]) -> None:
        """Attach a folded fleet metric snapshot to this capture; a
        second fleet run in the same session folds in (one capture =
        one session's worth of fleet activity)."""
        self.fleet_metrics = snapshot if self.fleet_metrics is None \
            else fold(self.fleet_metrics, snapshot)

    # -- export ------------------------------------------------------------

    def _lines(self) -> Iterator[Dict[str, Any]]:
        yield {"type": "header", "schema": SCHEMA,
               "metrics": len(self.registry),
               "spans": len(self.spans.spans),
               "trace_records": len(self.trace.records()),
               "trace_dropped": self.trace.dropped,
               "span_dropped": self.spans.dropped,
               "decisions": len(self.decisions),
               "decisions_dropped": self.decisions.dropped}
        for name in self.registry.names():
            metric = self.registry.get(name)
            if metric.enabled:
                yield {"type": "metric", "name": name, "kind": metric.kind,
                       "value": metric.value()}
        if self.fleet_metrics is not None:
            # Folded fleet snapshot as metric lines: counters verbatim,
            # histograms as {"edges", "counts"} under kind fleet_hist.
            for key, value in self.fleet_metrics["counters"].items():
                yield {"type": "metric", "name": f"fleet.{key}",
                       "kind": "counter", "value": value}
            for name, hist in self.fleet_metrics["hist"].items():
                yield {"type": "metric", "name": f"fleet.hist.{name}",
                       "kind": "fleet_hist",
                       "value": {"edges": hist["edges"],
                                 "counts": hist["counts"]}}
        for span in self.spans.to_dicts():
            yield dict(span, type="span")
        for record in self.trace.records():
            yield {"type": "trace", "time": record.time,
                   "kind": record.kind, "fields": record.fields}
        for event in self.decisions.to_dicts():
            yield dict(event, type="decision")
        if self.profiler is not None:
            yield dict(self.profiler.to_dict(), type="profile")

    def export(self, path: Path) -> int:
        """Dump everything to JSONL; returns the line count."""
        return write_jsonl(path, self._lines())


# -- module-level lifecycle ------------------------------------------------


def install(profile: bool = False,
            trace_capacity: Optional[int] = TRACE_CAPACITY,
            span_capacity: Optional[int] = SPAN_CAPACITY) -> Telemetry:
    """Activate telemetry for subsequently-built components."""
    global _current
    if _current is not None:
        uninstall()
    _current = Telemetry(profile=profile, trace_capacity=trace_capacity,
                         span_capacity=span_capacity)
    _current.spans.install()
    return _current


def uninstall() -> None:
    global _current
    if _current is not None:
        _current.spans.uninstall()
        if _current._engine is not None:
            _current._engine.profiler = None
        _current = None


def current() -> Optional[Telemetry]:
    return _current


def active_trace(engine) -> Optional[Trace]:
    """The shared trace for components built while telemetry is
    installed — or None, letting the component make its own."""
    if _current is None:
        return None
    _current.bind_engine(engine)
    return _current.trace


@contextmanager
def span_session():
    """The span recorder for one measurement window.

    With telemetry installed this *is* the installed recorder (spans
    land in the capture and the caller's aggregation alike — one code
    path for fig12 captures and the policy arena); without, a temporary
    standalone :class:`SpanRecorder` is installed for the duration and
    torn down on exit. Callers that pre-warm should ``clear(label)``
    only their own label: the shared recorder may hold other spans.
    """
    if _current is not None:
        yield _current.spans
        return
    recorder = SpanRecorder()
    recorder.install()
    try:
        yield recorder
    finally:
        recorder.uninstall()
