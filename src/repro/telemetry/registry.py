"""Hierarchical metric registry: counters, gauges, histograms, event logs.

Components register metrics under dotted names (``vswitch.be0.cpu.drops``,
``controller.reconcile.errors``) so a whole subtree can be selected with a
glob pattern. The cost model follows the repo's legacy-switch idiom:

* **Disabled metrics are one attribute check.** ``Counter.inc`` starts
  with ``if not self.enabled: return``; no dict lookups, no clock reads.
* **Gauges read lazily.** Most component state (session-table occupancy,
  budget headroom, link queue depth) is *already maintained* by the
  simulator, so a gauge holds a zero-argument callback that is only
  invoked when someone snapshots the registry — the hot path pays
  nothing at all.
* **Histograms defer aggregation** to :func:`percentile_summary` at
  snapshot time; ``observe`` is one list append.

Registration is idempotent with *replace* semantics for callbacks: an
experiment sweep rebuilds its testbed per point, and each rebuild
re-registers the same metric names — the registry keeps one metric object
per name and re-points gauge callbacks at the live component.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.percentiles import percentile_summary


class Metric:
    """Base: a dotted name plus the shared enable flag."""

    kind = "metric"
    __slots__ = ("name", "enabled")

    def __init__(self, name: str) -> None:
        self.name = name
        self.enabled = True

    def value(self) -> Any:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Monotonic count; ``inc`` is the only hot-path entry point."""

    kind = "counter"
    __slots__ = ("count",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.count = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        self.count += amount

    def value(self) -> float:
        return self.count

    def reset(self) -> None:
        self.count = 0.0


class Gauge(Metric):
    """Point-in-time value, usually probe-backed.

    ``set`` stores a value pushed by the component; ``bind`` attaches a
    callback evaluated only at snapshot time (and wins over any pushed
    value). Probe callbacks are the zero-overhead path: nothing happens
    until someone asks.
    """

    kind = "gauge"
    __slots__ = ("_value", "_probe")

    def __init__(self, name: str,
                 probe: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name)
        self._value = 0.0
        self._probe = probe

    def set(self, value: float) -> None:
        if not self.enabled:
            return
        self._value = value

    def bind(self, probe: Callable[[], float]) -> None:
        self._probe = probe

    def value(self) -> float:
        if self._probe is not None:
            try:
                return float(self._probe())
            except Exception:
                # A probe outliving its component (sweep teardown) must
                # not crash the snapshot of every other metric.
                return float("nan")
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram(Metric):
    """Sample collector summarized with the shared percentile machinery."""

    kind = "histogram"
    __slots__ = ("samples",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.samples: List[float] = []

    def observe(self, sample: float) -> None:
        if not self.enabled:
            return
        self.samples.append(sample)

    def value(self) -> Dict[str, float]:
        summary = percentile_summary(self.samples)
        summary["count"] = float(len(self.samples))
        return summary

    def reset(self) -> None:
        self.samples.clear()


class EventLog(Metric):
    """Timestamped structured entries — decision logs, state transitions."""

    kind = "events"
    __slots__ = ("entries", "capacity", "dropped")

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        super().__init__(name)
        self.entries: List[Tuple[float, Dict[str, Any]]] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, time: float, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.entries) >= self.capacity:
            self.dropped += 1
            del self.entries[0]
        self.entries.append((time, fields))

    def value(self) -> List[Dict[str, Any]]:
        return [dict(fields, time=time) for time, fields in self.entries]

    def reset(self) -> None:
        self.entries.clear()
        self.dropped = 0


class MetricRegistry:
    """One flat namespace of dotted metric names.

    Creation methods return the existing metric when the name is already
    registered (counters keep accumulating across testbed rebuilds;
    gauges re-bind their probe to the newest component instance).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- creation ----------------------------------------------------------

    def _get_or_create(self, name: str, factory: Callable[[], Metric],
                       expected: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, expected):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str,
              probe: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(name, lambda: Gauge(name), Gauge)
        if probe is not None:
            gauge.bind(probe)
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name), Histogram)

    def events(self, name: str, capacity: Optional[int] = None) -> EventLog:
        log = self._get_or_create(
            name, lambda: EventLog(name, capacity), EventLog)
        return log

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self, pattern: str = "*") -> List[str]:
        return sorted(name for name in self._metrics
                      if fnmatchcase(name, pattern))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- enable/disable ----------------------------------------------------

    def enable(self, pattern: str = "*") -> int:
        """Enable every metric matching the glob; returns how many."""
        return self._set_enabled(pattern, True)

    def disable(self, pattern: str = "*") -> int:
        return self._set_enabled(pattern, False)

    def _set_enabled(self, pattern: str, state: bool) -> int:
        hits = 0
        for name, metric in self._metrics.items():
            if fnmatchcase(name, pattern):
                metric.enabled = state
                hits += 1
        return hits

    # -- aggregation -------------------------------------------------------

    def snapshot(self, pattern: str = "*") -> Dict[str, Any]:
        """``{name: value}`` for every enabled metric matching the glob.

        This is where probe gauges actually run; calling it mid-run is
        safe and has no side effects on the metrics themselves.
        """
        out: Dict[str, Any] = {}
        for name in self.names(pattern):
            metric = self._metrics[name]
            if metric.enabled:
                out[name] = metric.value()
        return out

    def describe(self, pattern: str = "*") -> List[Dict[str, Any]]:
        """Schema-ish listing: name, kind, enabled — for the CLI."""
        return [{"name": name, "kind": self._metrics[name].kind,
                 "enabled": self._metrics[name].enabled}
                for name in self.names(pattern)]

    def reset(self, pattern: str = "*") -> None:
        for name in self.names(pattern):
            self._metrics[name].reset()

    def clear(self) -> None:
        self._metrics.clear()
