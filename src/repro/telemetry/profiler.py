"""Engine profiler: attribute events and wall-clock time to owners.

The engine's dispatch loop checks ``self.profiler is None`` (cached in a
local at the top of ``run``), so a profiler-less run pays one ``is``
test per event and a profiled run routes every callback through
:meth:`EngineProfiler.dispatch`, which times it with ``perf_counter`` and
buckets it by owner.

Attribution: bound methods bucket under ``TypeName.method`` — and when
the receiver has a ``name`` (``Process``, ``Event``), under that name —
so "which process is hot" falls straight out of :meth:`top`. Relay
dispatches (``engine.call_soon`` scheduled as the callback itself, the
direct-dispatch CPU completion path) are unwrapped to the relayed
callback's owner so they don't pile up under the engine.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple


class ProfileBucket:
    """Accumulated cost for one owner key."""

    __slots__ = ("events", "wall_s")

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0


class EngineProfiler:
    """Per-owner event counts and real elapsed time for one engine run."""

    def __init__(self) -> None:
        self.buckets: Dict[str, ProfileBucket] = {}
        self.total_events = 0
        self.total_wall_s = 0.0
        self.started_at: float = time.perf_counter()

    def _owner_of(self, fn: Callable[..., Any],
                  args: Tuple[Any, ...] = ()) -> str:
        # Relay unwrap: the direct-dispatch CPU path schedules its
        # completion as ``engine.call_at(end, engine.call_soon, fn,
        # *args)`` (resources.try_submit_call), so the heap pop hands the
        # profiler the bound ``Engine.call_soon`` with the real callback
        # in ``args[0]``. That cost belongs to the relayed callback's
        # owner, not the engine's enqueue helper.
        while (getattr(fn, "__name__", None) == "call_soon"
               and getattr(fn, "__self__", None) is not None
               and args and callable(args[0])):
            fn, args = args[0], args[1:]
        receiver = getattr(fn, "__self__", None)
        fn_name = getattr(fn, "__name__", repr(fn))
        if receiver is None:
            return fn_name
        label = type(receiver).__name__
        name = getattr(receiver, "name", None)
        if isinstance(name, str) and name:
            return f"{label}:{name}"
        return f"{label}.{fn_name}"

    def dispatch(self, fn: Callable[..., Any], args: Tuple[Any, ...],
                 now: float) -> None:
        """Run one engine callback under the clock. ``now`` is virtual
        time (reserved for future virtual-time attribution; wall time is
        the cost that matters for 'where do my seconds go')."""
        started = time.perf_counter()
        try:
            fn(*args)
        finally:
            elapsed = time.perf_counter() - started
            key = self._owner_of(fn, args)
            bucket = self.buckets.get(key)
            if bucket is None:
                bucket = self.buckets[key] = ProfileBucket()
            bucket.events += 1
            bucket.wall_s += elapsed
            self.total_events += 1
            self.total_wall_s += elapsed

    # -- reporting ---------------------------------------------------------

    def events_per_sec(self) -> float:
        elapsed = time.perf_counter() - self.started_at
        return self.total_events / elapsed if elapsed > 0 else 0.0

    def top(self, n: int = 10) -> List[Dict[str, Any]]:
        """Hottest owners by wall-clock time."""
        ranked = sorted(self.buckets.items(),
                        key=lambda item: item[1].wall_s, reverse=True)
        total = self.total_wall_s or 1.0
        return [{"owner": key, "events": bucket.events,
                 "wall_s": bucket.wall_s,
                 "share": bucket.wall_s / total}
                for key, bucket in ranked[:n]]

    def to_dict(self, top_n: int = 20) -> Dict[str, Any]:
        return {
            "total_events": self.total_events,
            "total_wall_s": self.total_wall_s,
            "events_per_sec": self.events_per_sec(),
            "owners": len(self.buckets),
            "top": self.top(top_n),
        }

    def reset(self) -> None:
        self.buckets.clear()
        self.total_events = 0
        self.total_wall_s = 0.0
        self.started_at = time.perf_counter()
