"""JSONL export and validation for telemetry captures.

One run dumps to one ``.jsonl`` file. The first line is a header; each
subsequent line is a self-describing record::

    {"type": "header", "schema": "telemetry/v1", ...}
    {"type": "metric", "name": "...", "kind": "counter", "value": ...}
    {"type": "span", "label": "...", "t0": ..., "hops": [...]}
    {"type": "trace", "time": ..., "kind": "...", "fields": {...}}
    {"type": "decision", "source": "...", "policy": "...", "action": ...}
    {"type": "profile", "total_events": ..., "top": [...]}

``tools/telemetry.py`` consumes these files; :func:`validate_report`
is the schema gate CI runs against a fresh export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List

SCHEMA = "telemetry/v1"

LINE_TYPES = ("header", "metric", "span", "trace", "decision", "profile")

_REQUIRED_FIELDS: Dict[str, tuple] = {
    "header": ("schema",),
    "metric": ("name", "kind", "value"),
    "span": ("label", "t0", "hops", "total"),
    "trace": ("time", "kind", "fields"),
    "decision": ("source", "policy", "action"),
    "profile": ("total_events", "total_wall_s", "top"),
}


def _jsonable(value: Any) -> Any:
    """Best-effort coercion so free-form trace fields never break a dump."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return repr(value)


def write_jsonl(path: Path, lines: Iterable[Dict[str, Any]]) -> int:
    """Write records as JSONL; returns the number of lines written."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(_jsonable(line), sort_keys=True) + "\n")
            count += 1
    return count


def load(path: Path) -> List[Dict[str, Any]]:
    """Parse a JSONL export back into a list of record dicts."""
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                records.append(json.loads(raw))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON: {exc}") from exc
    return records


def validate_report(records: List[Dict[str, Any]]) -> List[str]:
    """Schema check; returns human-readable problems (empty = valid)."""
    problems: List[str] = []
    if not records:
        return ["file is empty"]
    header = records[0]
    if header.get("type") != "header":
        problems.append("first line is not a header record")
    elif header.get("schema") != SCHEMA:
        problems.append(
            f"unknown schema {header.get('schema')!r}, expected {SCHEMA!r}")
    for index, record in enumerate(records, 1):
        line_type = record.get("type")
        if line_type not in LINE_TYPES:
            problems.append(f"line {index}: unknown type {line_type!r}")
            continue
        for field in _REQUIRED_FIELDS[line_type]:
            if field not in record:
                problems.append(
                    f"line {index}: {line_type} record missing {field!r}")
    return problems
