"""Fleet-scale observability: shard metric snapshots and the decision
journal.

Two plain-data building blocks sit on top of the PR 5 telemetry layer:

* **Shard metric snapshots.** Each ``run_shard_epoch`` call can distill
  its finished report into a :func:`snapshot_shard` dict — integer
  counters plus fixed-bucket histograms — that rides inside the report
  back to the parent. Because every bucket edge is a module constant and
  every value is an integer count, :func:`fold` is a pure element-wise
  add: associative, commutative, and byte-identical however the fleet
  was split. The parent folds per-epoch snapshots in slot/submission
  order (= ascending global index), so the merged fleet metrics are
  the same dict for every ``shards x jobs x resident`` combination —
  the fleet instance of the determinism contract (DESIGN §5.9).

* **The decision journal.** Every grant, renewal, denial, release,
  preemption, and mitigation the :class:`~repro.fleet.coordinator.
  FleetCoordinator` settles — and every decision the controller's
  :class:`~repro.controller.policy.LoadSharingPolicy` seam emits — is
  recorded as one typed plain-dict event carrying the policy name, so
  "why did supernic preempt where nezha granted?" is answerable from a
  single JSONL capture (``tools/telemetry.py decisions``). Events are
  appended only when a journal is wired up; with telemetry uninstalled
  every producer site degrades to one ``is None`` check.

Nothing in this module touches an RNG, a clock, or simulation state:
snapshots are derived from already-final reports and journal writes are
pure observation, which is what keeps telemetry on/off byte-identical.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional

FLEET_METRICS_SCHEMA = "fleet-metrics/v1"

#: Fixed histogram bucket edges. Bucket ``i`` counts values
#: ``<= edges[i]``; the final (implicit) bucket takes the rest. Fixed
#: edges are what make the fold a plain element-wise integer add.
HIST_EDGES: Dict[str, List[float]] = {
    # Worst demand/capacity ratio of each hot vSwitch (> 1 by
    # construction; the Table 1 tail reaches ~10x).
    "demand_ratio": [1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0],
    # Measured micro-sim CPU utilization of each hot vSwitch.
    "hot_cpu": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    # FE units requested per hot vSwitch.
    "hot_units": [1, 2, 4, 8, 16],
    # Live flows per vSwitch (hot and cold), power-of-two buckets:
    # bucket k counts vSwitches with bit_length(flows) == k.
    "flows_per_vswitch": [2 ** k - 1 for k in range(22)],
}

#: Integer counter names every snapshot carries (kind counters included
#: so folded key sets never depend on which shard saw which overload).
COUNTER_KEYS = (
    "vswitches",
    "cold.count", "cold.flows", "cold.pkts", "cold.bytes",
    "churn.born", "churn.died",
    "hot.count", "hot.units_requested",
    "hot.flows", "hot.pkts", "hot.bytes",
    "hot.sim_sent", "hot.sim_delivered", "hot.sim_drops",
    "hot.kind.cps", "hot.kind.flows", "hot.kind.vnics",
)


def empty_snapshot() -> Dict[str, Any]:
    """The fold identity: every counter 0, every histogram bucket 0."""
    return {
        "schema": FLEET_METRICS_SCHEMA,
        "counters": {key: 0 for key in COUNTER_KEYS},
        "hist": {name: {"edges": list(edges),
                        "counts": [0] * (len(edges) + 1)}
                 for name, edges in HIST_EDGES.items()},
    }


def _observe(hist: Dict[str, Any], value: float) -> None:
    counts = hist["counts"]
    counts[min(bisect_left(hist["edges"], value), len(counts) - 1)] += 1


def snapshot_shard(report: Dict[str, Any],
                   slots: Iterable[Any]) -> Dict[str, Any]:
    """Distill one shard's finished epoch report into a snapshot.

    ``slots`` is the shard's per-vSwitch flow-slot blocks *after* the
    epoch step (their lengths equal the classification-time populations:
    churn for a vSwitch completes before its report entry is built and
    is not revisited), so the whole snapshot derives from final state —
    the epoch loop itself needs zero instrumentation.
    """
    snap = empty_snapshot()
    counters = snap["counters"]
    hist = snap["hist"]

    counters["vswitches"] = report["hi"] - report["lo"]
    cold = report["cold"]
    counters["cold.count"] = cold["count"]
    counters["cold.flows"] = cold["flows"]
    counters["cold.pkts"] = cold["pkts"]
    counters["cold.bytes"] = cold["bytes"]
    counters["churn.born"] = cold["born"]
    counters["churn.died"] = cold["died"]

    flows_hist = hist["flows_per_vswitch"]
    for block in slots:
        _observe(flows_hist, len(block))

    ratio_hist = hist["demand_ratio"]
    cpu_hist = hist["hot_cpu"]
    units_hist = hist["hot_units"]
    for entry in report["hot"]:
        counters["hot.count"] += 1
        counters["hot.units_requested"] += entry["units"]
        counters["hot.flows"] += entry["flows"]
        counters["hot.pkts"] += entry["pkts"]
        counters["hot.bytes"] += entry["bytes"]
        counters["hot.sim_sent"] += entry["sim_sent"]
        counters["hot.sim_delivered"] += entry["sim_delivered"]
        counters["hot.sim_drops"] += entry["sim_drops"]
        for kind in entry["kinds"]:
            key = f"hot.kind.{kind}"
            counters[key] = counters.get(key, 0) + 1
        _observe(ratio_hist, entry["ratio"])
        _observe(cpu_hist, entry["sim_cpu"])
        _observe(units_hist, entry["units"])
    return snap


def _check_schema(snap: Dict[str, Any]) -> None:
    if snap.get("schema") != FLEET_METRICS_SCHEMA:
        raise ValueError(f"not a fleet metric snapshot: "
                         f"schema={snap.get('schema')!r}")


def fold(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Merge two snapshots; pure integer adds, so associative and
    commutative — the slot-order fold is deterministic by construction,
    not by care."""
    _check_schema(a)
    _check_schema(b)
    counters = dict(a["counters"])
    for key, value in b["counters"].items():
        counters[key] = counters.get(key, 0) + value
    hist = {name: {"edges": list(h["edges"]), "counts": list(h["counts"])}
            for name, h in a["hist"].items()}
    for name, h in b["hist"].items():
        mine = hist.get(name)
        if mine is None:
            hist[name] = {"edges": list(h["edges"]),
                          "counts": list(h["counts"])}
        else:
            if mine["edges"] != list(h["edges"]):
                raise ValueError(
                    f"histogram {name!r}: bucket edges differ, refusing "
                    f"to fold mismatched layouts")
            mine["counts"] = [x + y
                              for x, y in zip(mine["counts"], h["counts"])]
    return {"schema": FLEET_METRICS_SCHEMA, "counters": counters,
            "hist": hist}


def fold_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Left fold in the given (slot/submission) order; empty input folds
    to the identity snapshot."""
    out: Optional[Dict[str, Any]] = None
    for snap in snapshots:
        out = snap if out is None else fold(out, snap)
    return empty_snapshot() if out is None else out


# -- decision journal --------------------------------------------------------


class DecisionJournal:
    """Capacity-bounded list of typed decision events (plain dicts).

    Every event carries ``source`` (``"coordinator"`` or
    ``"controller"``), the ``policy`` name it was decided under, and an
    ``action``; coordinator events add the settle ``epoch`` and the
    vSwitch ``index``/``tenant``, controller events the virtual ``time``.
    ``None``-valued fields are dropped so events stay compact.

    On overflow the journal keeps the *earliest* events and counts the
    rest in :attr:`dropped` — a post-mortem wants the decisions that led
    into a state, and the exporter surfaces the drop count in the
    capture header.
    """

    def __init__(self, capacity: Optional[int] = 100_000) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0

    def record(self, source: str, policy: str, action: str,
               **fields: Any) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        event: Dict[str, Any] = {"source": source, "policy": policy,
                                 "action": action}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        self.events.append(event)

    def coordinator_event(self, epoch: Optional[int], policy: str,
                          action: str, index: Optional[int] = None,
                          **fields: Any) -> None:
        """One ``FleetCoordinator.settle`` decision."""
        self.record("coordinator", policy, action, epoch=epoch,
                    index=index, **fields)

    def controller_event(self, time: float, policy: str, action: str,
                         fields: Dict[str, Any]) -> None:
        """One controller/policy-seam decision (``_decide``)."""
        self.record("controller", policy, action, time=time, **fields)

    def by_policy(self) -> Dict[str, List[Dict[str, Any]]]:
        out: Dict[str, List[Dict[str, Any]]] = {}
        for event in self.events:
            out.setdefault(event["policy"], []).append(event)
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return list(self.events)

    def __len__(self) -> int:
        return len(self.events)
