"""Per-packet latency spans across the BE↔FE detour.

A span rides in ``packet.meta["span"]``. Encapsulation copies ``meta``
with a shallow ``dict()`` (both VXLAN transport and the NSH hop header do
this), so the *same* mutable :class:`Span` object is visible at every hop
of the journey — vNIC ingress, BE datapath, the fabric TX, the FE relay,
and final guest delivery all append to one hop list, and the finished
span lands in the recorder exactly once.

The hot-path contract: every instrumentation site in the datapath is
guarded by ``if _spans.ACTIVE:`` — a module attribute read, no function
call — so runs without telemetry pay one truthiness check per site.
Sites then call :func:`hop`, which is a no-op for packets without a span,
so background traffic stays cheap even while probes are being traced.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.percentiles import percentile_summary

# Module-level fast gate. Checked at call sites before any function call;
# flipped only by SpanRecorder.install()/uninstall().
ACTIVE = False

_recorder: Optional["SpanRecorder"] = None

META_KEY = "span"


class Span:
    """One packet's journey: a label plus ``(hop_name, timestamp)`` pairs."""

    __slots__ = ("label", "t0", "hops", "done")

    def __init__(self, label: str, t0: float) -> None:
        self.label = label
        self.t0 = t0
        self.hops: List[Tuple[str, float]] = []
        self.done = False

    def total(self) -> float:
        """End-to-end latency (last hop minus start)."""
        return (self.hops[-1][1] - self.t0) if self.hops else 0.0

    def segments(self) -> List[Tuple[str, float]]:
        """``("a->b", dt)`` for each consecutive hop pair, from t0."""
        out: List[Tuple[str, float]] = []
        prev_name, prev_t = "start", self.t0
        for name, t in self.hops:
            out.append((f"{prev_name}->{name}", t - prev_t))
            prev_name, prev_t = name, t
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "t0": self.t0, "done": self.done,
                "total": self.total(),
                "hops": [{"name": name, "time": t} for name, t in self.hops]}


def begin(packet, label: str, now: float) -> Span:
    """Attach a fresh span to ``packet`` (caller already checked ACTIVE)."""
    span = Span(label, now)
    packet.meta[META_KEY] = span
    return span


def hop(packet, name: str, now: float) -> None:
    """Record a waypoint; no-op for packets without a span."""
    span = packet.meta.get(META_KEY)
    if span is not None and not span.done:
        span.hops.append((name, now))


def finish(packet, name: str, now: float) -> None:
    """Record the terminal hop and hand the span to the recorder.

    Called at guest delivery — the same instant the experiment's own
    listener computes its latency, so span totals and experiment numbers
    agree exactly.
    """
    span = packet.meta.get(META_KEY)
    if span is None or span.done:
        return
    span.hops.append((name, now))
    span.done = True
    if _recorder is not None:
        _recorder.add(span)


class SpanRecorder:
    """Collects finished spans and aggregates them per label."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        global ACTIVE, _recorder
        _recorder = self
        ACTIVE = True

    def uninstall(self) -> None:
        global ACTIVE, _recorder
        if _recorder is self:
            _recorder = None
            ACTIVE = False

    # -- collection --------------------------------------------------------

    def add(self, span: Span) -> None:
        if self.capacity is not None and len(self.spans) >= self.capacity:
            self.dropped += 1
            del self.spans[0]
        self.spans.append(span)

    def clear(self, label: Optional[str] = None) -> None:
        """Drop recorded spans — all of them, or one label (warmup)."""
        if label is None:
            self.spans.clear()
            self.dropped = 0
        else:
            self.spans = [s for s in self.spans if s.label != label]

    def by_label(self, label: str) -> List[Span]:
        return [s for s in self.spans if s.label == label]

    def labels(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.label not in seen:
                seen.append(span.label)
        return seen

    # -- aggregation -------------------------------------------------------

    def aggregate(self) -> Dict[str, Dict[str, Any]]:
        """Per-label breakdown: count, total-latency summary, and a
        per-segment summary — the Fig-12-style decomposition in one call.

        Only spans sharing a label are merged, so local and offloaded
        paths (different hop sequences) never mix segments.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for label in self.labels():
            spans = self.by_label(label)
            totals = [s.total() for s in spans]
            segment_samples: Dict[str, List[float]] = {}
            for span in spans:
                for seg_name, dt in span.segments():
                    segment_samples.setdefault(seg_name, []).append(dt)
            out[label] = {
                "count": len(spans),
                "latency": percentile_summary(totals),
                "segments": {name: percentile_summary(samples)
                             for name, samples in segment_samples.items()},
            }
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]
