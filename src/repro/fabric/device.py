"""Fabric device base classes."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.addr import IPv4Address, MacAddress
from repro.net.packet import Packet
from repro.fabric.link import Port
from repro.sim.engine import Engine


class Device:
    """Anything with ports: switches and servers derive from this."""

    def __init__(self, engine: Engine, name: str, num_ports: int) -> None:
        self.engine = engine
        self.name = name
        self.ports: List[Port] = [Port(self, i) for i in range(num_ports)]

    def add_port(self) -> Port:
        port = Port(self, len(self.ports))
        self.ports.append(port)
        return port

    def free_port(self) -> Port:
        """The first unconnected port, growing the port list if needed."""
        for port in self.ports:
            if not port.connected:
                return port
        return self.add_port()

    def receive(self, packet: Packet, in_port: Port) -> None:
        raise NotImplementedError

    def receive_run(self, packet: Packet, count: int, in_port: Port) -> None:
        """Fluid arrival: ``count`` identical packets behind one
        template. Devices without an analytic path materialize copies."""
        for _ in range(count):
            self.receive(packet.copy(), in_port)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class ServerNode(Device):
    """A physical server: one fabric-facing NIC port, an underlay address,
    and a pluggable packet sink (the SmartNIC vSwitch registers here).
    """

    def __init__(self, engine: Engine, name: str,
                 underlay_ip: IPv4Address, mac: MacAddress) -> None:
        super().__init__(engine, name, num_ports=1)
        self.underlay_ip = IPv4Address(underlay_ip)
        self.mac = MacAddress(mac)
        self._sink: Optional[Callable[[Packet], None]] = None
        self._run_sink: Optional[Callable[[Packet, int], None]] = None
        self.rx_packets = 0
        self.tx_packets = 0

    @property
    def uplink(self) -> Port:
        return self.ports[0]

    def attach_sink(self, sink: Callable[[Packet], None]) -> None:
        """Register the function that consumes packets arriving from the
        fabric (the SmartNIC's ingress)."""
        self._sink = sink

    def attach_run_sink(self, sink: Callable[[Packet, int], None]) -> None:
        """Register the fluid-run ingress (template packet + count);
        without one, arriving runs materialize through the plain sink."""
        self._run_sink = sink

    def receive(self, packet: Packet, in_port: Port) -> None:
        self.rx_packets += 1
        if self._sink is not None:
            self._sink(packet)

    def receive_run(self, packet: Packet, count: int, in_port: Port) -> None:
        self.rx_packets += count
        if self._run_sink is not None:
            self._run_sink(packet, count)
        elif self._sink is not None:
            for _ in range(count):
                self._sink(packet.copy())

    def send_to_fabric(self, packet: Packet) -> bool:
        """Emit a packet onto the underlay; False when disconnected."""
        self.tx_packets += 1
        return self.uplink.send(packet)

    def send_to_fabric_burst(self, packets: List[Packet]) -> bool:
        """Emit a burst onto the underlay as one back-to-back train."""
        self.tx_packets += len(packets)
        return self.uplink.send_burst(packets)

    def send_to_fabric_run(self, packet: Packet, count: int) -> bool:
        """Emit a fluid run onto the underlay as one descriptor."""
        self.tx_packets += count
        return self.uplink.send_run(packet, count)
