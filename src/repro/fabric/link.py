"""Full-duplex point-to-point links with latency and serialization delay."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import TopologyError
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.device import Device
    from repro.net.packet import Packet


class Port:
    """One end of a link, attached to a device."""

    __slots__ = ("device", "index", "link", "peer")

    def __init__(self, device: "Device", index: int) -> None:
        self.device = device
        self.index = index
        self.link: Optional[Link] = None
        self.peer: Optional[Port] = None

    @property
    def connected(self) -> bool:
        return self.link is not None

    def send(self, packet: "Packet") -> bool:
        """Transmit out this port; False if the port is disconnected."""
        if self.link is None or self.peer is None:
            return False
        self.link.transmit(self, packet)
        return True

    def send_burst(self, packets: Sequence["Packet"]) -> bool:
        """Transmit a burst out this port; False if disconnected."""
        if self.link is None or self.peer is None:
            return False
        self.link.transmit_burst(self, packets)
        return True

    def send_run(self, packet: "Packet", count: int) -> bool:
        """Transmit a fluid run (``count`` identical packets behind one
        template) out this port; False if disconnected."""
        if self.link is None or self.peer is None:
            return False
        self.link.transmit_run(self, packet, count)
        return True

    def __repr__(self) -> str:
        return f"Port({self.device.name}[{self.index}])"


class Link:
    """A full-duplex link: per-direction serialization plus propagation.

    Delivery time for a packet entering at ``t`` is::

        start = max(t, direction_busy_until)
        arrive = start + wire_length*8/bps + latency

    ``up`` (True) lets experiments take a link down to exercise the
    BE↔FE mutual-ping path (Appendix C.1): transmissions on a downed link
    are silently dropped, exactly like a dark fiber.
    """

    #: Class-level switch for coalesced burst delivery. ``False`` restores
    #: the per-packet transmit path (one heap entry per packet); the burst
    #: determinism suite runs fig9/fig12 both ways and requires identical
    #: tables.
    burst: bool = True

    def __init__(self, engine: Engine, a: Port, b: Port,
                 latency: float = 5e-6, gbps: float = 100.0) -> None:
        if a.connected or b.connected:
            raise TopologyError("port already connected")
        if latency < 0 or gbps <= 0:
            raise TopologyError("bad link parameters")
        self.engine = engine
        self.a = a
        self.b = b
        self.latency = latency
        self.bits_per_second = gbps * 1e9
        self.up = True
        self.packets_carried = 0
        self.bytes_carried = 0
        self.drops_down = 0
        self._busy_until = {id(a): 0.0, id(b): 0.0}
        self._created_at = engine.now
        a.link = b.link = self
        a.peer, b.peer = b, a
        from repro import telemetry
        tel = telemetry.current()
        if tel is not None:
            tel.register_link(self)

    @property
    def name(self) -> str:
        return f"{self.a.device.name}--{self.b.device.name}"

    def queue_depth(self) -> float:
        """Worst-direction backlog (seconds of queued serialization)."""
        now = self.engine.now
        return max(0.0, max(self._busy_until.values()) - now)

    def utilization(self) -> float:
        """Lifetime carried bits over the link's one-direction capacity."""
        elapsed = self.engine.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return (self.bytes_carried * 8) / (self.bits_per_second * elapsed)

    def transmit(self, from_port: Port, packet: "Packet") -> None:
        if not self.up:
            self.drops_down += 1
            return
        now = self.engine.now
        start = max(now, self._busy_until[id(from_port)])
        tx_time = packet.wire_length * 8 / self.bits_per_second
        self._busy_until[id(from_port)] = start + tx_time
        arrive = start + tx_time + self.latency
        self.packets_carried += 1
        self.bytes_carried += packet.wire_length
        to_port = from_port.peer
        self.engine.call_at(arrive, to_port.device.receive, packet, to_port)

    def transmit_burst(self, from_port: Port,
                       packets: Sequence["Packet"]) -> None:
        """Transmit ``packets`` back-to-back out of ``from_port``.

        Serialization stays exact — every packet's arrival time is what
        N consecutive :meth:`transmit` calls would compute — but delivery
        coalesces into one engine heap entry carrying the whole burst
        (:meth:`Engine.call_at_batch`). A downed link drops the entire
        burst: ``drops_down`` counts each packet, ``bytes_carried`` and
        ``packets_carried`` stay untouched.
        """
        if not packets:
            return
        if not self.up:
            self.drops_down += len(packets)
            return
        if not self.burst:
            for packet in packets:
                self.transmit(from_port, packet)
            return
        engine = self.engine
        start = max(engine.now, self._busy_until[id(from_port)])
        to_port = from_port.peer
        receive = to_port.device.receive
        bps = self.bits_per_second
        latency = self.latency
        items = []
        nbytes = 0
        for packet in packets:
            wire = packet.wire_length
            start += wire * 8 / bps
            nbytes += wire
            items.append((start + latency, receive, (packet, to_port)))
        self._busy_until[id(from_port)] = start
        self.packets_carried += len(packets)
        self.bytes_carried += nbytes
        engine.call_at_batch(items)

    def transmit_run(self, from_port: Port, packet: "Packet",
                     count: int) -> None:
        """Fluid transmit: ``count`` identical packets back-to-back.

        The direction's busy time and the byte/packet counters are
        exactly what ``count`` :meth:`transmit` calls would produce;
        delivery coalesces into ONE engine event at the *last* packet's
        arrival, carrying the run descriptor onward. Mid-run arrival
        timestamps are the deliberate fluid-mode approximation
        (aggregates exact, per-packet timing collapsed).
        """
        if not self.up:
            self.drops_down += count
            return
        engine = self.engine
        start = max(engine.now, self._busy_until[id(from_port)])
        tx_time = packet.wire_length * 8 / self.bits_per_second
        end = start + count * tx_time
        self._busy_until[id(from_port)] = end
        self.packets_carried += count
        self.bytes_carried += count * packet.wire_length
        to_port = from_port.peer
        engine.call_at(end + self.latency,
                       to_port.device.receive_run, packet, count, to_port)

    def set_up(self, up: bool) -> None:
        self.up = up
