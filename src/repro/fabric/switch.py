"""Underlay switch with ECMP forwarding.

Routes are installed per destination /32 (the topology builder computes
them via BFS); equal-cost next hops are chosen by hashing the **outer**
IP pair and L4 ports, which keeps a flow on one path but spreads flows —
the behaviour the paper leans on for BE↔FE traffic.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.errors import TopologyError
from repro.fabric.device import Device
from repro.fabric.link import Port
from repro.net.ipv4 import IPv4Header
from repro.net.packet import Packet
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader
from repro.sim.engine import Engine


class UnderlaySwitch(Device):
    """A store-and-forward switch with per-/32 ECMP routes."""

    def __init__(self, engine: Engine, name: str, num_ports: int,
                 forwarding_delay: float = 1e-6) -> None:
        super().__init__(engine, name, num_ports)
        self.forwarding_delay = forwarding_delay
        # dst ip value -> list of egress port indices (equal cost)
        self.routes: Dict[int, List[int]] = {}
        self.forwarded = 0
        self.no_route_drops = 0
        self.ttl_drops = 0

    def install_route(self, dst_ip_value: int, port_indices: List[int]) -> None:
        if not port_indices:
            raise TopologyError(f"{self.name}: empty next-hop set")
        for index in port_indices:
            if not 0 <= index < len(self.ports):
                raise TopologyError(f"{self.name}: bad port {index}")
        self.routes[dst_ip_value] = list(port_indices)

    @staticmethod
    def _ecmp_hash(packet: Packet) -> int:
        """Hash the outermost IP pair + L4 ports (5-tuple of the underlay)."""
        ip = packet.expect(IPv4Header)
        sport = dport = 0
        for layer in packet.layers:
            if isinstance(layer, (TcpHeader, UdpHeader)):
                sport, dport = layer.src_port, layer.dst_port
                break
        blob = (ip.src.to_bytes() + ip.dst.to_bytes()
                + bytes([ip.proto])
                + sport.to_bytes(2, "big") + dport.to_bytes(2, "big"))
        return int.from_bytes(hashlib.blake2b(blob, digest_size=4).digest(), "big")

    def receive(self, packet: Packet, in_port: Port) -> None:
        ip = packet.find(IPv4Header)
        if ip is None:
            self.no_route_drops += 1
            return
        next_hops = self.routes.get(ip.dst.value)
        if not next_hops:
            self.no_route_drops += 1
            return
        if not ip.decrement_ttl():
            self.ttl_drops += 1
            return
        if len(next_hops) == 1:
            egress = next_hops[0]
        else:
            egress = next_hops[self._ecmp_hash(packet) % len(next_hops)]
        self.forwarded += 1
        self.engine.call_after(self.forwarding_delay,
                               self.ports[egress].send, packet)

    def receive_run(self, packet: Packet, count: int, in_port: Port) -> None:
        """Fluid arrival: route once for the whole run (identical
        packets hash identically). The shared template's TTL is
        decremented once per switch hop — exactly what each materialized
        packet's own header would experience."""
        ip = packet.find(IPv4Header)
        if ip is None:
            self.no_route_drops += count
            return
        next_hops = self.routes.get(ip.dst.value)
        if not next_hops:
            self.no_route_drops += count
            return
        if not ip.decrement_ttl():
            self.ttl_drops += count
            return
        if len(next_hops) == 1:
            egress = next_hops[0]
        else:
            egress = next_hops[self._ecmp_hash(packet) % len(next_hops)]
        self.forwarded += count
        self.engine.call_after(self.forwarding_delay,
                               self.ports[egress].send_run, packet, count)
