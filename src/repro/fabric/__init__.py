"""Underlay data-center fabric.

A graph of devices joined by full-duplex links with propagation latency and
serialization delay. Switches forward by outer destination IP with ECMP
across equal-cost next hops; servers are terminal devices that hand packets
to whatever is attached (a SmartNIC vSwitch in this library).

The topology builder produces the leaf-spine fabric the paper's testbed
implies: servers under ToRs, ToRs meshed to spines. FE placement policy
(§B.1: same-ToR first) uses :meth:`Topology.hop_distance`.
"""

from repro.fabric.link import Link, Port
from repro.fabric.device import Device, ServerNode
from repro.fabric.switch import UnderlaySwitch
from repro.fabric.topology import Topology

__all__ = [
    "Link",
    "Port",
    "Device",
    "ServerNode",
    "UnderlaySwitch",
    "Topology",
]
