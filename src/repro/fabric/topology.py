"""Topology builder: leaf-spine fabrics with computed ECMP routes.

``Topology.leaf_spine`` builds the testbed-shaped fabric: ``n_tors`` ToR
switches each with ``servers_per_tor`` servers, fully meshed to ``n_spines``
spine switches. Underlay addressing is ``10.<tor>.<0>.<host+1>`` for
servers, and routes to every server /32 are computed by BFS with all
equal-cost next hops installed (ECMP).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.fabric.device import Device, ServerNode
from repro.fabric.link import Link
from repro.fabric.switch import UnderlaySwitch
from repro.net.addr import IPv4Address, MacAddress
from repro.sim.engine import Engine


def connect(engine: Engine, a: Device, b: Device,
            latency: float = 5e-6, gbps: float = 100.0) -> Link:
    """Join two devices with a fresh link on their first free ports."""
    return Link(engine, a.free_port(), b.free_port(), latency=latency, gbps=gbps)


class Topology:
    """A built fabric: servers, switches, links, address maps, and routes."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.servers: List[ServerNode] = []
        self.tors: List[UnderlaySwitch] = []
        self.spines: List[UnderlaySwitch] = []
        self.links: List[Link] = []
        self.server_by_ip: Dict[int, ServerNode] = {}
        self._tor_of: Dict[str, UnderlaySwitch] = {}

    # -- builders ---------------------------------------------------------------

    @classmethod
    def leaf_spine(
        cls,
        engine: Engine,
        n_tors: int,
        servers_per_tor: int,
        n_spines: int = 2,
        link_latency: float = 5e-6,
        link_gbps: float = 100.0,
    ) -> "Topology":
        if n_tors < 1 or servers_per_tor < 1 or n_spines < 1:
            raise TopologyError("leaf_spine needs >=1 of each element")
        if n_tors > 250 or servers_per_tor > 250:
            raise TopologyError("addressing supports at most 250x250")
        topo = cls(engine)
        for spine_idx in range(n_spines):
            spine = UnderlaySwitch(engine, f"spine{spine_idx}",
                                   num_ports=n_tors)
            topo.spines.append(spine)
        for tor_idx in range(n_tors):
            tor = UnderlaySwitch(engine, f"tor{tor_idx}",
                                 num_ports=servers_per_tor + n_spines)
            topo.tors.append(tor)
            for host_idx in range(servers_per_tor):
                ip = IPv4Address(f"10.{tor_idx}.0.{host_idx + 1}")
                mac = MacAddress((0x02 << 40) | (tor_idx << 8) | (host_idx + 1))
                server = ServerNode(engine, f"s{tor_idx}-{host_idx}", ip, mac)
                topo.servers.append(server)
                topo.server_by_ip[ip.value] = server
                topo._tor_of[server.name] = tor
                topo.links.append(connect(engine, server, tor,
                                          latency=link_latency, gbps=link_gbps))
            for spine in topo.spines:
                topo.links.append(connect(engine, tor, spine,
                                          latency=link_latency, gbps=link_gbps))
        topo.compute_routes()
        return topo

    # -- routing -----------------------------------------------------------------

    def _adjacency(self) -> Dict[Device, List[Tuple[Device, int]]]:
        """device -> [(neighbor, egress port index on device)]"""
        adj: Dict[Device, List[Tuple[Device, int]]] = {}
        for link in self.links:
            a_port, b_port = link.a, link.b
            adj.setdefault(a_port.device, []).append((b_port.device, a_port.index))
            adj.setdefault(b_port.device, []).append((a_port.device, b_port.index))
        return adj

    def compute_routes(self) -> None:
        """Install per-server /32 ECMP routes on every switch via BFS."""
        adj = self._adjacency()
        for server in self.servers:
            # BFS distances from the destination server.
            dist: Dict[Device, int] = {server: 0}
            frontier = deque([server])
            while frontier:
                node = frontier.popleft()
                for neighbor, _port in adj.get(node, ()):
                    if neighbor not in dist:
                        dist[neighbor] = dist[node] + 1
                        frontier.append(neighbor)
            # Every switch forwards toward any neighbor one step closer.
            for device in adj:
                if not isinstance(device, UnderlaySwitch):
                    continue
                if device not in dist:
                    continue
                next_hops = [port for neighbor, port in adj[device]
                             if dist.get(neighbor, 1 << 30) == dist[device] - 1]
                if next_hops:
                    device.install_route(server.underlay_ip.value, next_hops)

    # -- queries ------------------------------------------------------------------

    def tor_of(self, server: ServerNode) -> UnderlaySwitch:
        return self._tor_of[server.name]

    def servers_under(self, tor: UnderlaySwitch) -> List[ServerNode]:
        return [s for s in self.servers if self._tor_of[s.name] is tor]

    def same_tor(self, a: ServerNode, b: ServerNode) -> bool:
        return self._tor_of[a.name] is self._tor_of[b.name]

    def hop_distance(self, a: ServerNode, b: ServerNode) -> int:
        """Link hops between two servers (0 for the same server)."""
        if a is b:
            return 0
        return 2 if self.same_tor(a, b) else 4

    def server_at(self, ip: IPv4Address) -> Optional[ServerNode]:
        return self.server_by_ip.get(IPv4Address(ip).value)

    def fail_server_links(self, server: ServerNode, up: bool = False) -> None:
        """Take a server's access link down (or back up)."""
        for link in self.links:
            if server in (link.a.device, link.b.device):
                link.set_up(up)
