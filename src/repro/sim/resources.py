"""Simulated resources: CPU budgets, memory budgets, and FIFO queues.

These model the scarce quantities the paper's analysis revolves around:

* :class:`CpuResource` — a pool of cores, each with a cycles/second rating.
  Work is submitted as a cycle count; the resource serializes work per core
  and exposes a utilization estimate over a sliding window. This is how the
  vSwitch's "CPU limits CPS" behaviour arises.
* :class:`MemoryBudget` — a byte-accounted allocator with named reservations.
  This is how "memory limits #concurrent flows / #vNICs" arises.
* :class:`FifoQueue` — a bounded producer/consumer queue with drop-tail
  semantics, used for NIC rx queues.
"""

from __future__ import annotations

from collections import deque
from typing import (Any, Callable, Deque, Dict, Generator, List, Optional,
                    Tuple)

from repro.errors import ResourceExhausted, SimulationError
from repro.sim.engine import Engine, Event


class CpuResource:
    """A multi-core CPU with per-core FIFO service.

    Jobs are submitted with :meth:`execute` (a process-style generator you
    ``yield from``) or fire-and-forget :meth:`submit`. Each job costs a
    number of cycles; service time is ``cycles / hz``. Jobs are dispatched
    to the least-loaded core (shortest backlog), which models the
    run-to-completion, flow-pinned polling threads of a real vSwitch
    closely enough for capacity analysis.

    Utilization is measured as busy-time over a sliding window so the
    controller can poll "current" utilization the way production telemetry
    does.
    """

    #: Class-level switch for direct completion dispatch: booked jobs
    #: schedule their completion callback straight onto the engine
    #: (one micro-queue hop after the completion instant, exactly where
    #: a process resumed by the job Event would run) instead of paying
    #: an Event + generator Process per job. ``False`` restores the
    #: event-driven path; the flow-records determinism suite runs
    #: fig9/fig12 both ways and requires identical tables.
    direct_dispatch: bool = True

    def __init__(
        self,
        engine: Engine,
        cores: int,
        hz: float,
        name: str = "cpu",
        util_window: float = 1.0,
    ) -> None:
        if cores <= 0:
            raise SimulationError("cores must be positive")
        if hz <= 0:
            raise SimulationError("hz must be positive")
        self.engine = engine
        self.cores = cores
        self.hz = float(hz)
        self.name = name
        self.util_window = float(util_window)
        # Per-core time at which the core becomes free.
        self._free_at: List[float] = [0.0] * cores
        # (start, end) busy intervals, pruned outside the window.
        self._busy: Deque[Tuple[float, float]] = deque()
        self.total_cycles = 0.0
        self.jobs_done = 0
        self.jobs_rejected = 0

    # -- job submission -----------------------------------------------------

    def service_time(self, cycles: float) -> float:
        """Seconds one core needs for ``cycles`` cycles."""
        return cycles / self.hz

    def _book(self, cycles: float) -> float:
        """Reserve the least-loaded core for ``cycles``; returns the
        completion time. The argmin runs through C-level ``min`` +
        ``list.index`` instead of a per-core lambda — this is the single
        hottest expression in a CPS sweep."""
        free = self._free_at
        if len(free) == 1:
            core = 0
            start = free[0]
        else:
            start = min(free)
            core = free.index(start)
        now = self.engine.now
        if start < now:
            start = now
        end = start + cycles / self.hz
        free[core] = end
        self._record_busy(start, end)
        self.total_cycles += cycles
        self.jobs_done += 1
        return end

    def submit(self, cycles: float) -> Event:
        """Enqueue a job; returns an Event fired at its completion time."""
        end = self._book(cycles)
        done = self.engine.event(name=f"{self.name}.job")
        self.engine.call_at(end, done.succeed, None)
        return done

    def execute(self, cycles: float) -> Generator[Any, Any, None]:
        """Process-style helper: ``yield from cpu.execute(cycles)``."""
        yield self.submit(cycles)

    def _backlogged(self, max_backlog: float) -> bool:
        free = self._free_at
        head = free[0] if len(free) == 1 else min(free)
        return head - self.engine.now > max_backlog

    def try_submit(self, cycles: float, max_backlog: float) -> Optional[Event]:
        """Submit unless the least-loaded core's backlog exceeds
        ``max_backlog`` seconds; returns None (and counts a rejection) when
        the job is dropped. This models drop-tail under overload.
        """
        if self._backlogged(max_backlog):
            self.jobs_rejected += 1
            return None
        return self.submit(cycles)

    def try_book(self, cycles: float, max_backlog: float) -> Optional[float]:
        """Drop-tail admission returning the bare completion time.

        The direct-dispatch twin of :meth:`try_submit`: the caller
        schedules its own completion callback, so no Event is built.
        """
        if self._backlogged(max_backlog):
            self.jobs_rejected += 1
            return None
        return self._book(cycles)

    def try_submit_call(self, cycles: float, max_backlog: float,
                        fn: Callable[..., None], *args: Any) -> bool:
        """Book a job and run ``fn(*args)`` at its completion (drop-tail).

        The callback lands on the engine's micro-queue one hop after the
        completion instant's heap pop — the exact position a process
        resumed by the job's Event would run at — so schedules are
        indistinguishable from the event-driven path.
        """
        if self._backlogged(max_backlog):
            self.jobs_rejected += 1
            return False
        end = self._book(cycles)
        engine = self.engine
        engine.call_at(end, engine.call_soon, fn, *args)
        return True

    # -- telemetry ----------------------------------------------------------

    def backlog(self) -> float:
        """Seconds of queued work on the least-loaded core."""
        now = self.engine.now
        return max(0.0, min(self._free_at) - now)

    def utilization(self) -> float:
        """Fraction of capacity busy over the trailing window, in [0, 1]."""
        now = self.engine.now
        lo = now - self.util_window
        self._prune(lo)
        busy = 0.0
        for start, end in self._busy:
            # Booked intervals may lie (partly) in the future when the core
            # has a backlog; only the portion inside [lo, now] counts.
            busy += max(0.0, min(end, now) - max(start, lo))
        return min(1.0, busy / (self.util_window * self.cores))

    def _record_busy(self, start: float, end: float) -> None:
        self._busy.append((start, end))

    def _prune(self, lo: float) -> None:
        while self._busy and self._busy[0][1] < lo:
            self._busy.popleft()


class MemoryBudget:
    """Byte-accounted memory with named reservations.

    ``alloc(tag, nbytes)`` either succeeds or raises
    :class:`ResourceExhausted`; ``free(tag, nbytes)`` releases. Per-tag
    accounting lets experiments report where memory went (session table vs
    rule tables vs BE metadata), mirroring the paper's breakdowns.
    """

    def __init__(self, capacity: int, name: str = "mem") -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.capacity = int(capacity)
        self.name = name
        self.used = 0
        self.by_tag: Dict[str, int] = {}
        self.failed_allocs = 0
        self.peak = 0

    def alloc(self, tag: str, nbytes: int) -> None:
        if nbytes < 0:
            raise SimulationError("cannot alloc negative bytes")
        if self.used + nbytes > self.capacity:
            self.failed_allocs += 1
            raise ResourceExhausted(
                f"{self.name}: alloc {nbytes}B for {tag!r} exceeds capacity "
                f"({self.used}/{self.capacity} used)"
            )
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes

    def try_alloc(self, tag: str, nbytes: int) -> bool:
        """Like :meth:`alloc` but returns False instead of raising."""
        try:
            self.alloc(tag, nbytes)
        except ResourceExhausted:
            return False
        return True

    def free(self, tag: str, nbytes: int) -> None:
        have = self.by_tag.get(tag, 0)
        if nbytes > have:
            raise SimulationError(
                f"{self.name}: freeing {nbytes}B from {tag!r} but only "
                f"{have}B allocated"
            )
        self.by_tag[tag] = have - nbytes
        if self.by_tag[tag] == 0:
            del self.by_tag[tag]
        self.used -= nbytes

    def free_all(self, tag: str) -> int:
        """Release everything under ``tag``; returns the bytes freed."""
        nbytes = self.by_tag.pop(tag, 0)
        self.used -= nbytes
        return nbytes

    def utilization(self) -> float:
        return self.used / self.capacity

    def available(self) -> int:
        return self.capacity - self.used


class FifoQueue:
    """Bounded FIFO with drop-tail, for NIC queues and inter-stage buffers.

    Consumers wait via ``yield queue.get()``; producers call :meth:`put`,
    which returns False (and counts a drop) when the queue is full.
    """

    def __init__(self, engine: Engine, capacity: int = 0, name: str = "queue") -> None:
        self.engine = engine
        self.capacity = int(capacity)  # 0 means unbounded
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.drops = 0
        self.puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> bool:
        if self.capacity and len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self.puts += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an Event that fires with the next item."""
        done = self.engine.event(name=f"{self.name}.get")
        if self._items:
            done.succeed(self._items.popleft())
        else:
            self._getters.append(done)
        return done
