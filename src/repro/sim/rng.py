"""Deterministic random-number helpers.

Every stochastic component takes a :class:`SeededRng` (or a child of one) so
whole experiments replay bit-for-bit from a single seed. Children are derived
by hashing the parent seed with a label, which keeps streams independent even
when components are created in different orders.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A labelled, reproducible random stream wrapping :mod:`random`."""

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        self._random = random.Random(self._mix(seed, label))

    @staticmethod
    def _mix(seed: int, label: str) -> int:
        digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def child(self, label: str) -> "SeededRng":
        """Derive an independent stream for a sub-component."""
        return SeededRng(self.seed, f"{self.label}/{label}")

    # -- basic draws ----------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def pareto(self, alpha: float, xmin: float = 1.0) -> float:
        """Pareto draw with minimum ``xmin`` and tail index ``alpha``."""
        return xmin * (1.0 + self._random.paretovariate(alpha) - 1.0)

    # -- composite draws -------------------------------------------------------

    def bounded_pareto(self, alpha: float, lo: float, hi: float) -> float:
        """Pareto truncated to ``[lo, hi]`` via inverse-CDF sampling."""
        if not lo < hi:
            raise ValueError("lo must be < hi")
        u = self._random.random()
        la, ha = lo ** alpha, hi ** alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def heavy_tail(self, body_mu: float, body_sigma: float,
                   tail_prob: float, tail_alpha: float, tail_xmin: float) -> float:
        """Mixture used by the fleet model: log-normal body + Pareto tail.

        With probability ``tail_prob`` draws from a Pareto tail, otherwise
        from a log-normal body — the classic shape of per-tenant demand
        (most vSwitches idle, a few extremely hot; paper Fig 4 / Table 1).
        """
        if self._random.random() < tail_prob:
            return self.pareto(tail_alpha, tail_xmin)
        return self._random.lognormvariate(body_mu, body_sigma)

    def poisson(self, lam: float) -> int:
        """Poisson draw (Knuth for small lambda, normal approx for large)."""
        if lam <= 0:
            return 0
        if lam > 50:
            return max(0, int(round(self._random.gauss(lam, math.sqrt(lam)))))
        threshold = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= self._random.random()
            if p <= threshold:
                return k
            k += 1

    def zipf_weights(self, n: int, skew: float) -> List[float]:
        """Normalized Zipf weights over ``n`` ranks with exponent ``skew``."""
        raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(raw)
        return [w / total for w in raw]

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Index drawn proportionally to ``weights``."""
        total = sum(weights)
        x = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if x < acc:
                return i
        return len(weights) - 1

    def getstate(self):
        return self._random.getstate()

    def setstate(self, state) -> None:
        self._random.setstate(state)


def make_rng(seed: Optional[int], label: str = "root") -> SeededRng:
    """Build a root RNG, defaulting to seed 0 for reproducibility."""
    return SeededRng(0 if seed is None else seed, label)


def derive_seed(seed: int, label: str) -> int:
    """Stable 64-bit seed for a labelled sub-computation.

    Sweep points that replicate an experiment (different VMs, different
    load levels, different worker processes) must draw from streams that
    are independent of each other *and* of the root ``seed`` — naive
    schemes like ``seed + index`` alias across points (seed 0 / point 1
    collides with seed 1 / point 0). This uses the same SHA-256 mixing
    as :class:`SeededRng` stream derivation, so a derived seed is a
    plain ``int`` that can cross a process boundary and rebuild the
    exact same stream in a pool worker.
    """
    return SeededRng._mix(seed, label)
