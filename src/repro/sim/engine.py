"""Core discrete-event engine.

The engine keeps a heap of ``(time, seq, callback)`` entries. Two programming
models are supported and freely mixed:

* **callbacks** — ``engine.call_at(t, fn)`` / ``engine.call_after(dt, fn)``;
* **processes** — generator functions that yield :class:`Timeout`,
  :class:`Event`, or another :class:`Process`; the engine resumes them when
  the yielded thing completes.

The process model is what most of the library uses: a vSwitch worker loop,
a TCP client, the controller's reconciliation loop are all processes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (Any, Callable, Deque, Generator, Iterable, List, Optional,
                    Tuple)

from repro.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) fires it,
    resuming every waiting process with the given value (or exception).
    Waiting on an already-fired event resumes the waiter immediately.
    """

    __slots__ = ("engine", "_value", "_exc", "_fired", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._waiters: List["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking all waiters."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._schedule_waiters()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiters see it raised."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        self._schedule_waiters()
        return self

    def _schedule_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine.call_soon(proc._resume, self._value, self._exc)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self.engine.call_soon(proc._resume, self._value, self._exc)
        else:
            self._waiters.append(proc)


class Timeout:
    """Yielded by a process to sleep for ``delay`` seconds of virtual time."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGen = Generator[Any, Any, Any]


class Process:
    """A running generator coroutine driven by the engine.

    Yield targets:

    * ``Timeout(dt)``   — resume after ``dt`` virtual seconds;
    * ``Event``         — resume when the event fires (with its value);
    * ``Process``       — resume when that process terminates;
    * ``None``          — resume on the next engine tick (a cooperative yield).

    A process is itself awaitable by other processes and exposes a
    :attr:`done` flag plus its return :attr:`value`.
    """

    __slots__ = ("engine", "gen", "name", "_done", "_value", "_exc",
                 "_completion", "_interrupts", "_begun")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._completion = Event(engine, name=f"{self.name}.done")
        self._interrupts: List[Interrupt] = []
        self._begun = False
        engine.call_soon(self._resume, None, None)

    # -- public API ---------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"process {self.name!r} still running")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def completion(self) -> Event:
        """Event fired when this process terminates."""
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume point."""
        if self._done:
            return
        self._interrupts.append(Interrupt(cause))
        self.engine.call_soon(self._resume, None, None)

    # -- engine plumbing ----------------------------------------------------

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        try:
            if self._interrupts:
                intr = self._interrupts.pop(0)
                if not self._begun:
                    # Interrupted before the generator ever ran: throwing
                    # would raise at its first line, outside any try block.
                    # Treat it as a clean cancellation instead.
                    self.gen.close()
                    self._finish(None, None)
                    return
                target = self.gen.throw(intr)
            elif exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
            self._begun = True
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via event
            self._finish(None, err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self.engine.call_soon(self._resume, None, None)
        elif isinstance(target, Timeout):
            self.engine.call_after(target.delay, self._resume, target.value, None)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target._completion._add_waiter(self)
        else:
            self._finish(
                None,
                SimulationError(
                    f"process {self.name!r} yielded unsupported {target!r}"
                ),
            )

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self._done = True
        self._value = value
        self._exc = exc
        if exc is not None:
            if self._completion._waiters:
                self._completion.fail(exc)
            else:
                # Nobody is waiting; surface the crash through the engine so
                # it is not silently swallowed.
                self._completion._fired = True
                self._completion._exc = exc
                self.engine._report_crash(self, exc)
        else:
            self._completion.succeed(value)


class Engine:
    """The event loop: a time-ordered heap plus a same-time micro-queue.

    ``run(until=...)`` executes callbacks in time order until nothing is
    queued or virtual time would pass ``until``. The engine is
    deterministic: simultaneous callbacks run in scheduling order (FIFO).

    Callbacks scheduled *at the current instant* — ``call_soon``, a
    ``call_after(0, ...)``, an event waking its waiters — are the dominant
    case (process resumes, event waiters), so they bypass the heap through
    a FIFO micro-queue instead of paying ``heappush``/``heappop`` churn.
    Ordering is unchanged: heap entries for the current instant were
    necessarily scheduled at an earlier time (lower sequence numbers than
    anything enqueued now), so draining the heap's current-time entries
    before the micro-queue reproduces the exact ``(time, seq)`` total
    order of a pure-heap engine. ``Engine.micro_queue = False`` restores
    the pure-heap path; the determinism regression tests run both and
    require identical traces.
    """

    #: Class-level switch for the same-time FIFO micro-queue. Tests flip it
    #: to prove the optimized scheduler changes no simulation outputs.
    micro_queue: bool = True

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._ready: Deque[Tuple[Callable[..., None], tuple]] = deque()
        self._seq = 0
        self._run_until: Optional[float] = None
        self._crashes: List[Tuple[Process, BaseException]] = []
        self.strict = True
        # Optional telemetry hook (repro.telemetry.profiler). None keeps
        # dispatch on the direct ``fn(*args)`` path — one ``is None``
        # check per event, cached in a local by the run loop.
        self.profiler = None

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}"
            )
        if when == self._now and self.micro_queue:
            self._ready.append((fn, args))
            return
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        self.call_at(self._now + delay, fn, *args)

    def call_at_batch(
        self,
        items: Iterable[Tuple[float, Callable[..., None], tuple]],
    ) -> None:
        """Schedule many ``(when, fn, args)`` callbacks as one heap entry.

        ``items`` must be sorted by non-decreasing ``when`` with every
        time >= now — the shape a burst of back-to-back link deliveries
        naturally has. Items due *now* drain through the micro-queue
        (no heap traffic at all); the remainder becomes a single heap
        entry that unfolds in place, re-entering the heap only when an
        unrelated callback must run in between.

        Ordering is indistinguishable from calling :meth:`call_at` once
        per item: the whole batch shares one sequence number, so against
        any competitor the batch orders exactly as N consecutive pushes
        would (earlier pushes carry lower seqs, later pushes higher
        ones). :meth:`pending` counts an unfinished batch as one entry.
        With ``micro_queue`` off this degrades to per-item ``call_at``.
        """
        items = tuple(items)
        if not items:
            return
        now = self._now
        prev = now
        for when, _fn, _args in items:
            if when < prev:
                raise SimulationError(
                    f"batch items must be time-sorted and >= now={now}")
            prev = when
        if not self.micro_queue:
            for when, fn, args in items:
                self.call_at(when, fn, *args)
            return
        index = 0
        ready = self._ready
        while index < len(items) and items[index][0] == now:
            ready.append((items[index][1], items[index][2]))
            index += 1
        if index == len(items):
            return
        heapq.heappush(self._heap,
                       (items[index][0], self._seq, self._run_batch,
                        (items, index, self._seq)))
        self._seq += 1

    def _run_batch(self, items: tuple, index: int, seq: int) -> None:
        """Execute a batch entry's items in place.

        Runs consecutive items without touching the heap until a
        competitor must interleave: a ready-queue callback before the
        clock may advance, a heap entry that is earlier (or same-time
        with a lower seq, i.e. scheduled before this batch), or an item
        beyond the active ``run(until=...)`` bound. The remainder is
        then re-pushed under the batch's *original* seq, preserving its
        order against entries scheduled before/after the batch.
        """
        heap = self._heap
        ready = self._ready
        bound = self._run_until
        profiler = self.profiler
        last = len(items) - 1
        while True:
            when, fn, args = items[index]
            self._now = when
            if profiler is None:
                fn(*args)
            else:
                profiler.dispatch(fn, args, when)
            if index == last:
                return
            index += 1
            next_when = items[index][0]
            if bound is not None and next_when > bound:
                break
            if ready and next_when > self._now:
                break
            if heap:
                head = heap[0]
                if head[0] < next_when or (head[0] == next_when
                                           and head[1] < seq):
                    break
        heapq.heappush(heap, (next_when, seq, self._run_batch,
                              (items, index, seq)))

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current time (after pending ties)."""
        if self.micro_queue:
            self._ready.append((fn, args))
        else:
            self.call_at(self._now, fn, *args)

    # -- process / event construction ---------------------------------------

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def all_of(self, waitables: Iterable[Any], name: str = "all_of") -> Event:
        """Event fired once every given event/process has completed."""
        items = list(waitables)
        done_event = self.event(name)
        remaining = len(items)
        if remaining == 0:
            done_event.succeed([])
            return done_event
        results: List[Any] = [None] * remaining

        def waiter(index: int, item: Any) -> ProcessGen:
            value = yield item
            results[index] = value
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                done_event.succeed(list(results))

        for i, item in enumerate(items):
            self.process(waiter(i, item), name=f"{name}[{i}]")
        return done_event

    # -- running ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap is empty or virtual time reaches ``until``.

        Returns the virtual time at which execution stopped. Crashed
        processes with no waiters raise at the end of the run when the
        engine is ``strict`` (the default).
        """
        heap = self._heap
        ready = self._ready
        profiler = self.profiler
        # Published so batch entries (call_at_batch) stop unfolding at the
        # bound instead of running items past ``until``.
        self._run_until = until
        try:
            while heap or ready:
                # Heap entries for the current instant carry lower sequence
                # numbers than anything in the micro-queue (they predate the
                # clock reaching this instant), so they go first.
                take_heap = bool(heap) and (not ready
                                            or heap[0][0] == self._now)
                when = heap[0][0] if take_heap else self._now
                if until is not None and when > until:
                    self._now = until
                    break
                if take_heap:
                    when, _seq, fn, args = heapq.heappop(heap)
                    self._now = when
                else:
                    fn, args = ready.popleft()
                if profiler is None:
                    fn(*args)
                else:
                    profiler.dispatch(fn, args, self._now)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._run_until = None
        if self._crashes and self.strict:
            proc, exc = self._crashes[0]
            raise SimulationError(
                f"process {proc.name!r} crashed at t={self._now:.6f}: {exc!r}"
            ) from exc
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending callback. Returns False if none left."""
        if self._heap and (not self._ready
                           or self._heap[0][0] == self._now):
            when, _seq, fn, args = heapq.heappop(self._heap)
            self._now = when
        elif self._ready:
            fn, args = self._ready.popleft()
        else:
            return False
        if self.profiler is None:
            fn(*args)
        else:
            self.profiler.dispatch(fn, args, self._now)
        return True

    @property
    def pending(self) -> int:
        """Number of callbacks still queued."""
        return len(self._heap) + len(self._ready)

    # -- crash bookkeeping ---------------------------------------------------

    def _report_crash(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    @property
    def crashed_processes(self) -> List[Tuple[Process, BaseException]]:
        return list(self._crashes)
