"""Lightweight structured tracing for simulations.

Components emit ``trace.emit(kind, **fields)`` records; experiments filter
and aggregate them afterwards. Tracing defaults to *disabled per kind* until
a kind is subscribed, so hot paths pay one dict lookup when idle.

Long soaks can emit millions of records; pass ``capacity`` to keep only
the most recent N (a ring buffer) and count the rest in :attr:`dropped`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: virtual time, a kind tag, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Trace:
    """Collects :class:`TraceRecord` objects for subscribed kinds."""

    def __init__(self, clock: Callable[[], float],
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._enabled: Dict[str, bool] = {}
        self._default = False
        self._callbacks: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        self.dropped = 0

    def enable(self, *kinds: str) -> None:
        """Start recording the given kinds (e.g. ``"pkt.drop"``)."""
        for kind in kinds:
            self._enabled[kind] = True

    def enable_all(self) -> None:
        """Record every kind not explicitly disabled."""
        self._default = True

    def disable(self, *kinds: str) -> None:
        """Stop recording the given kinds and detach their callbacks.

        Callbacks must go too: ``on()`` re-enables the kind, so a stale
        callback list would silently resurrect a disabled kind (and leak
        closures) the next time anyone subscribes to it.
        """
        for kind in kinds:
            self._enabled[kind] = False
            self._callbacks.pop(kind, None)

    def on(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for each emitted record of ``kind``."""
        self._enabled[kind] = True
        self._callbacks.setdefault(kind, []).append(callback)

    def emit(self, kind: str, **fields: Any) -> None:
        if not self._enabled.get(kind, self._default):
            return
        record = TraceRecord(self._clock(), kind, fields)
        if self.capacity is not None and len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)
        for callback in self._callbacks.get(kind, ()):
            callback(record)

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def iter(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self._records if r.kind == kind)

    def count(self, kind: str) -> int:
        return sum(1 for r in self._records if r.kind == kind)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
