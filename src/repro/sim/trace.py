"""Lightweight structured tracing for simulations.

Components emit ``trace.emit(kind, **fields)`` records; experiments filter
and aggregate them afterwards. Tracing defaults to *disabled per kind* until
a kind is subscribed, so hot paths pay one dict lookup when idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: virtual time, a kind tag, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Trace:
    """Collects :class:`TraceRecord` objects for subscribed kinds."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._records: List[TraceRecord] = []
        self._enabled: Dict[str, bool] = {}
        self._callbacks: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def enable(self, *kinds: str) -> None:
        """Start recording the given kinds (e.g. ``"pkt.drop"``)."""
        for kind in kinds:
            self._enabled[kind] = True

    def disable(self, *kinds: str) -> None:
        for kind in kinds:
            self._enabled[kind] = False

    def on(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for each emitted record of ``kind``."""
        self._enabled[kind] = True
        self._callbacks.setdefault(kind, []).append(callback)

    def emit(self, kind: str, **fields: Any) -> None:
        if not self._enabled.get(kind, False):
            return
        record = TraceRecord(self._clock(), kind, fields)
        self._records.append(record)
        for callback in self._callbacks.get(kind, ()):
            callback(record)

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def iter(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self._records if r.kind == kind)

    def count(self, kind: str) -> int:
        return sum(1 for r in self._records if r.kind == kind)

    def clear(self) -> None:
        self._records.clear()
