"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: processes are Python
generators that ``yield`` *commands* (delays, events, resource requests) and
the :class:`~repro.sim.engine.Engine` advances virtual time between them.

Public surface::

    from repro.sim import Engine, Event, Process, Timeout
    from repro.sim import CpuResource, MemoryBudget, FifoQueue
    from repro.sim import SeededRng, Trace

Time is a float number of **seconds** of virtual time; sub-microsecond
resolution is routinely used (e.g. per-packet CPU costs of a few hundred
nanoseconds).
"""

from repro.sim.engine import Engine, Event, Interrupt, Process, Timeout
from repro.sim.resources import CpuResource, FifoQueue, MemoryBudget
from repro.sim.rng import SeededRng, derive_seed
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "CpuResource",
    "MemoryBudget",
    "FifoQueue",
    "SeededRng",
    "derive_seed",
    "Trace",
    "TraceRecord",
]
