"""Struct-of-arrays flow records and the fluid fast-forward switch.

The steady-state hot loop — FULL-mode session-table hits on established,
FSM-quiet flows — does not need Python objects per packet: a classified
run is fully described by its entry, its packet count, and its byte
total. :class:`FlowRecordStore` keeps the per-session mutable hot fields
(packet/byte counters, last-seen, a mode/policy flags word) in parallel
stdlib ``array`` columns indexed by a small integer slot stored on the
:class:`~repro.vswitch.session_table.SessionEntry`. A charged run is a
handful of C-level array adds; the deltas are folded back into the
boxed :class:`~repro.vswitch.state.SessionState` only at
*materialization boundaries* — aging sweeps, entry removal/demotion,
and any other point that reads the state object (see DESIGN.md §5.5).

Two deliberate deviations from a naive one-column-per-field layout:

* **QoS tokens** stay in the shared per-(vNIC, class) token buckets —
  flow-level limits are class-scoped, not session-scoped — and runs
  consume them through the closed-form
  :meth:`~repro.vswitch.qos.TokenBucket.allow_run`, which admits the
  same prefix of the run that per-packet policing would;
* the **flags column** is a cache (entry mode + stats policy snapshot)
  refreshed on every charge, never the source of truth: policy changes
  arrive through slow control paths (Nezha notify) that bypass slots.

:class:`FluidMode` gates the second phase: long-lived elephant runs are
advanced analytically — one descriptor (template packet + count)
crosses the whole pipeline, charged with closed-form packet/byte/cycle
deltas — and re-materialize into per-packet processing at event
boundaries (FSM changes, QoS limits, NAT, mirrors, telemetry spans,
offload demotion). Both switches follow the repo's legacy-switch
pattern: the determinism suite runs fig9/fig12 with them on and off and
requires byte-identical tables.
"""

from __future__ import annotations

from array import array
from typing import List

# flags-column bits: low two bits mirror StatsPolicy.value (BYTES=1,
# PACKETS=2, FULL=3); bit 2 marks the slot live.
FLAG_LIVE = 0x4
POLICY_MASK = 0x3


class FluidMode:
    """Class-level switch for analytic (run-descriptor) fast-forward.

    Off by default: fluid advancement coalesces a whole same-flow burst
    into one event per pipeline stage, which preserves every aggregate
    (counts, bytes, CPU cycles, link busy time) but not mid-burst
    timestamps, so it is opt-in per experiment.
    """

    enabled: bool = False


class FlowRecordStore:
    """Parallel-array flow records, one slot per stateful session entry."""

    #: Class-level switch: ``False`` retires the slots — the datapath
    #: falls back to per-packet updates of the boxed SessionState, the
    #: pre-flow-records behavior.
    enabled: bool = True

    __slots__ = ("packets_tx", "packets_rx", "bytes_tx", "bytes_rx",
                 "last_seen", "flags", "_free")

    def __init__(self) -> None:
        self.packets_tx = array("q")
        self.packets_rx = array("q")
        self.bytes_tx = array("q")
        self.bytes_rx = array("q")
        self.last_seen = array("d")
        self.flags = array("b")
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self.flags) - len(self._free)

    # -- slot lifecycle -----------------------------------------------------

    def alloc(self) -> int:
        """Claim a zeroed slot (recycling freed ones first)."""
        if self._free:
            slot = self._free.pop()
            self.packets_tx[slot] = 0
            self.packets_rx[slot] = 0
            self.bytes_tx[slot] = 0
            self.bytes_rx[slot] = 0
            self.last_seen[slot] = 0.0
            self.flags[slot] = FLAG_LIVE
            return slot
        slot = len(self.flags)
        self.packets_tx.append(0)
        self.packets_rx.append(0)
        self.bytes_tx.append(0)
        self.bytes_rx.append(0)
        self.last_seen.append(0.0)
        self.flags.append(FLAG_LIVE)
        return slot

    def free(self, slot: int) -> None:
        self.flags[slot] = 0
        self._free.append(slot)

    def clear(self) -> None:
        """Drop every slot (table-wide invalidation)."""
        del self.packets_tx[:]
        del self.packets_rx[:]
        del self.bytes_tx[:]
        del self.bytes_rx[:]
        del self.last_seen[:]
        del self.flags[:]
        self._free.clear()

    # -- run charging -------------------------------------------------------

    def charge(self, slot: int, tx: bool, n: int, nbytes: int,
               policy: int, now: float) -> None:
        """Account one classified run: ``n`` packets, ``nbytes`` total,
        observed at ``now``. ``policy`` is the live StatsPolicy value;
        gating here is bit-for-bit what ``SessionState.record_packet``
        applies per packet."""
        if policy:
            if tx:
                if policy & 1:
                    self.bytes_tx[slot] += nbytes
                if policy & 2:
                    self.packets_tx[slot] += n
            else:
                if policy & 1:
                    self.bytes_rx[slot] += nbytes
                if policy & 2:
                    self.packets_rx[slot] += n
        self.last_seen[slot] = now
        self.flags[slot] = FLAG_LIVE | (policy & POLICY_MASK)

    def touch(self, slot: int, now: float) -> None:
        """Run of ACL-dropped packets: aging advances, counters do not
        (``record_packet`` is skipped on a DROP verdict, ``touch`` is
        not)."""
        self.last_seen[slot] = now

    # -- materialization ----------------------------------------------------

    def flush(self, slot: int, state) -> None:
        """Fold a slot's deltas back into the boxed SessionState.

        Counter deltas commute with direct ``record_packet`` updates, so
        mixed per-packet/per-run traffic stays exact; ``last_seen``
        merges by max because single-packet paths touch the state object
        directly and either side may be ahead."""
        v = self.packets_tx[slot]
        if v:
            state.packets_tx += v
            self.packets_tx[slot] = 0
        v = self.packets_rx[slot]
        if v:
            state.packets_rx += v
            self.packets_rx[slot] = 0
        v = self.bytes_tx[slot]
        if v:
            state.bytes_tx += v
            self.bytes_tx[slot] = 0
        v = self.bytes_rx[slot]
        if v:
            state.bytes_rx += v
            self.bytes_rx[slot] = 0
        seen = self.last_seen[slot]
        if seen > state.last_seen:
            state.last_seen = seen
