"""Rule tables: the stateless, offloadable half of the vSwitch.

Each table implements :meth:`RuleTable.apply`, folding its lookup result
into the bidirectional :class:`~repro.vswitch.actions.PreActions`, and
reports its memory footprint (what Nezha frees on the BE by moving the
table to FEs). A basic vNIC chain has five tables — ACL, QoS, policy,
VXLAN routing, vNIC-server mapping (§2.2.2) — and advanced features
(policy routing, mirroring, flow logging) push it toward twelve.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TableError
from repro.net.addr import IPv4Address, MacAddress
from repro.net.five_tuple import FiveTuple
from repro.vswitch.actions import Direction, PreAction, PreActions, Verdict
from repro.vswitch.state import StatsPolicy


@dataclass
class LookupContext:
    """Inputs to a slow-path lookup: the flow key and tenant identity."""

    five_tuple: FiveTuple
    vni: int
    packet_bytes: int = 64


class RuleTable:
    """Base class: named, sized, and applied in chain order.

    Tables notify the chains that contain them (via :meth:`_bump`) whenever
    a mutator runs, so a :class:`~repro.vswitch.slow_path.SlowPath` can
    cache chain-level aggregates (rule counts, memory, lookup cost) and
    invalidate them only when something actually changes. Every mutator
    method MUST call ``self._bump()`` — mutating a table's internals
    directly bypasses the invalidation (see DESIGN.md §3).
    """

    name = "table"

    def __init__(self) -> None:
        self._chains: List = []

    def _attach(self, chain) -> None:
        """Register a chain whose caches depend on this table."""
        self._chains.append(chain)

    def _bump(self) -> None:
        """Invalidate every dependent chain cache after a mutation."""
        for chain in self._chains:
            chain.invalidate_caches()

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        raise NotImplementedError

    def memory_bytes(self) -> int:
        raise NotImplementedError

    def rule_count(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.rule_count()} rules)"


# -- ACL ---------------------------------------------------------------------


def _prefix_mask(prefix: Optional[IPv4Address],
                 length: int) -> Tuple[int, int]:
    """(mask, masked prefix value) for integer prefix matching.

    ``addr & mask == net`` is equivalent to ``addr.in_prefix(prefix, len)``
    but costs one AND + compare instead of two shifts through method calls.
    """
    if prefix is None:
        return 0, 0
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    return mask, IPv4Address(prefix).value & mask


@dataclass
class AclRule:
    """One prioritized ACL rule with prefix and port-range matching."""

    priority: int
    verdict: Verdict
    direction: Optional[Direction] = None       # None = both directions
    src_prefix: Optional[IPv4Address] = None
    src_prefix_len: int = 0
    dst_prefix: Optional[IPv4Address] = None
    dst_prefix_len: int = 0
    proto: Optional[int] = None
    src_port_range: Optional[Tuple[int, int]] = None
    dst_port_range: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        self._src_mask, self._src_net = _prefix_mask(self.src_prefix,
                                                     self.src_prefix_len)
        self._dst_mask, self._dst_net = _prefix_mask(self.dst_prefix,
                                                     self.dst_prefix_len)

    def matches(self, ft: FiveTuple) -> bool:
        if self.proto is not None and ft.proto != self.proto:
            return False
        return self._matches_addrs_ports(ft)

    def _matches_addrs_ports(self, ft: FiveTuple) -> bool:
        """Prefix/port matching only — proto and direction are already
        guaranteed by the bucket an :class:`AclTable` pulled the rule from."""
        if ft.src_ip.value & self._src_mask != self._src_net:
            return False
        if ft.dst_ip.value & self._dst_mask != self._dst_net:
            return False
        if self.src_port_range is not None:
            lo, hi = self.src_port_range
            if not lo <= ft.src_port <= hi:
                return False
        if self.dst_port_range is not None:
            lo, hi = self.dst_port_range
            if not lo <= ft.dst_port <= hi:
                return False
        return True


class AclTable(RuleTable):
    """A stateful ACL: per-direction verdicts, overridable by session state.

    ``default_verdict`` applies when no rule matches; rules are evaluated
    in descending priority. The TX direction is matched against the flow's
    5-tuple as sent, the RX direction against the reversed tuple — one
    lookup fills both directions of the cached flow.
    """

    name = "acl"

    #: Class-level switch for the (proto, direction)-bucketed match path.
    #: Tests flip it to prove bucketing changes no verdicts.
    bucketed: bool = True

    def __init__(self, rules: List[AclRule] = None,
                 default_verdict: Verdict = Verdict.ACCEPT,
                 rule_bytes: int = 64) -> None:
        super().__init__()
        self.rules = sorted(rules or [], key=lambda r: -r.priority)
        self.default_verdict = default_verdict
        self.rule_bytes = rule_bytes
        # direction -> {proto or None -> priority-ordered candidate rules}.
        # Wildcard-proto rules are replicated into every proto bucket; the
        # None bucket serves protocols with no specific rules. Rebuilt
        # lazily after mutations.
        self._buckets: Optional[Dict[Direction,
                                     Dict[Optional[int],
                                          List[AclRule]]]] = None

    def add_rule(self, rule: AclRule) -> None:
        # insort_right on the negated priority == stable append-then-sort:
        # equal priorities keep insertion order.
        insort(self.rules, rule, key=lambda r: -r.priority)
        self._buckets = None
        self._bump()

    def _build_buckets(self) -> None:
        buckets: Dict[Direction, Dict[Optional[int], List[AclRule]]] = {}
        protos = {r.proto for r in self.rules if r.proto is not None}
        for direction in (Direction.TX, Direction.RX):
            per: Dict[Optional[int], List[AclRule]] = {None: []}
            for proto in protos:
                per[proto] = []
            for rule in self.rules:     # already priority-ordered
                if rule.direction is not None and rule.direction != direction:
                    continue
                if rule.proto is None:
                    for bucket in per.values():
                        bucket.append(rule)
                else:
                    per[rule.proto].append(rule)
            buckets[direction] = per
        self._buckets = buckets

    def _verdict(self, ft: FiveTuple, direction: Direction) -> Verdict:
        if not self.bucketed:
            return self._verdict_scan(ft, direction)
        if self._buckets is None:
            self._build_buckets()
        per = self._buckets[direction]
        bucket = per.get(ft.proto)
        if bucket is None:
            bucket = per[None]
        for rule in bucket:
            if rule._matches_addrs_ports(ft):
                return rule.verdict
        return self.default_verdict

    def _verdict_scan(self, ft: FiveTuple, direction: Direction) -> Verdict:
        """Reference full-scan matcher (the pre-bucketing implementation);
        kept for the A/B equivalence tests and the benchmark baseline."""
        for rule in self.rules:
            if rule.direction is not None and rule.direction != direction:
                continue
            if rule.matches(ft):
                return rule.verdict
        return self.default_verdict

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        pre.tx.verdict = self._verdict(ctx.five_tuple, Direction.TX)
        pre.rx.verdict = self._verdict(ctx.five_tuple.reversed(), Direction.RX)

    def memory_bytes(self) -> int:
        return len(self.rules) * self.rule_bytes

    def rule_count(self) -> int:
        return len(self.rules)


# -- Routing (LPM) ----------------------------------------------------------------


class RouteTable(RuleTable):
    """Longest-prefix-match VXLAN route table.

    Routes admit destinations (and can blackhole them); an unrouted
    destination drops at TX time.
    """

    name = "route"

    def __init__(self, route_bytes: int = 32) -> None:
        super().__init__()
        # prefix length -> {masked prefix value -> blackhole?}
        self._by_len: Dict[int, Dict[int, bool]] = {}
        self._count = 0
        self.route_bytes = route_bytes

    def add_route(self, prefix: IPv4Address, length: int,
                  blackhole: bool = False) -> None:
        if not 0 <= length <= 32:
            raise TableError(f"bad prefix length {length}")
        masked = prefix.value >> (32 - length) if length else 0
        bucket = self._by_len.setdefault(length, {})
        if masked not in bucket:
            self._count += 1
        bucket[masked] = blackhole
        self._bump()

    def lookup(self, dst: IPv4Address) -> Optional[bool]:
        """Returns blackhole flag of the longest match, or None."""
        for length in sorted(self._by_len, reverse=True):
            masked = dst.value >> (32 - length) if length else 0
            bucket = self._by_len[length]
            if masked in bucket:
                return bucket[masked]
        return None

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        found = self.lookup(ctx.five_tuple.dst_ip)
        if found is None or found:
            pre.tx.verdict = Verdict.DROP
            pre.tx.stateful_acl = False  # routing drops are not overridable
        rev = self.lookup(ctx.five_tuple.src_ip)
        if rev is None or rev:
            pre.rx.verdict = Verdict.DROP
            pre.rx.stateful_acl = False

    def memory_bytes(self) -> int:
        return self._count * self.route_bytes

    def rule_count(self) -> int:
        return self._count


# -- QoS ------------------------------------------------------------------------------


@dataclass
class QosRule:
    priority: int
    qos_class: int
    rate_limit_bps: Optional[float] = None
    proto: Optional[int] = None
    dst_port_range: Optional[Tuple[int, int]] = None

    def matches(self, ft: FiveTuple) -> bool:
        if self.proto is not None and ft.proto != self.proto:
            return False
        if self.dst_port_range is not None:
            lo, hi = self.dst_port_range
            if not lo <= ft.dst_port <= hi:
                return False
        return True


class QosTable(RuleTable):
    """Classifies flows into QoS classes with optional rate limits."""

    name = "qos"

    def __init__(self, rules: List[QosRule] = None, rule_bytes: int = 48) -> None:
        super().__init__()
        self.rules = sorted(rules or [], key=lambda r: -r.priority)
        self.rule_bytes = rule_bytes

    def add_rule(self, rule: QosRule) -> None:
        insort(self.rules, rule, key=lambda r: -r.priority)
        self._bump()

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        for rule in self.rules:
            if rule.matches(ctx.five_tuple):
                for pa in (pre.tx, pre.rx):
                    pa.qos_class = rule.qos_class
                    pa.rate_limit_bps = rule.rate_limit_bps
                return

    def memory_bytes(self) -> int:
        return len(self.rules) * self.rule_bytes

    def rule_count(self) -> int:
        return len(self.rules)


# -- vNIC-server mapping ----------------------------------------------------------------


@dataclass(frozen=True)
class Location:
    """One underlay endpoint (a server's fabric address)."""

    underlay_ip: IPv4Address
    underlay_mac: MacAddress


class MappingEntry:
    """Where a tenant IP is served: one location (its BE) or, when the vNIC
    is offloaded, the set of its FE locations (Fig 7: "IP/MAC of FE 1-N").

    Senders pick among multiple locations by 5-tuple hash — this is how
    Nezha spreads a vNIC's ingress flows across FEs without consistent or
    symmetric hashing (§3.2.3).
    """

    __slots__ = ("locations", "vni", "version")

    def __init__(self, underlay_ip: IPv4Address = None,
                 underlay_mac: MacAddress = None, vni: int = 0,
                 locations: Optional[List[Location]] = None,
                 version: int = 0) -> None:
        if locations is not None:
            self.locations = list(locations)
        else:
            if underlay_ip is None or underlay_mac is None:
                raise TableError("MappingEntry needs a location")
            self.locations = [Location(underlay_ip, underlay_mac)]
        if not self.locations:
            raise TableError("MappingEntry needs at least one location")
        self.vni = vni
        self.version = version

    @property
    def underlay_ip(self) -> IPv4Address:
        return self.locations[0].underlay_ip

    @property
    def underlay_mac(self) -> MacAddress:
        return self.locations[0].underlay_mac

    def select(self, ft: FiveTuple, seed: int = 0) -> Location:
        """Hash-pick one location for this flow."""
        if len(self.locations) == 1:
            return self.locations[0]
        return self.locations[ft.hash(seed) % len(self.locations)]

    def __repr__(self) -> str:
        ips = ",".join(str(loc.underlay_ip) for loc in self.locations)
        return f"MappingEntry(vni={self.vni}, [{ips}], v{self.version})"


class MappingTable(RuleTable):
    """The vNIC-server mapping: tenant (vni, ip) → server underlay address.

    The global copy lives at the gateway; vSwitches hold learned subsets.
    Large VPCs need O(100K) entries ≈ 200 MB (§2.2.2), which is what makes
    #vNICs memory-bound.
    """

    name = "vnic_server_mapping"

    def __init__(self, entry_bytes: int = 2048) -> None:
        super().__init__()
        self._entries: Dict[Tuple[int, int], MappingEntry] = {}
        self.entry_bytes = entry_bytes
        self.hash_seed = 0

    def set_entry(self, vni: int, tenant_ip: IPv4Address,
                  entry: MappingEntry) -> None:
        self._entries[(vni, IPv4Address(tenant_ip).value)] = entry
        self._bump()

    def remove_entry(self, vni: int, tenant_ip: IPv4Address) -> None:
        self._entries.pop((vni, IPv4Address(tenant_ip).value), None)
        self._bump()

    def lookup(self, vni: int, tenant_ip: IPv4Address) -> Optional[MappingEntry]:
        return self._entries.get((vni, IPv4Address(tenant_ip).value))

    def entries(self) -> Dict[Tuple[int, int], MappingEntry]:
        return dict(self._entries)

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        entry = self.lookup(ctx.vni, ctx.five_tuple.dst_ip)
        if entry is None:
            pre.tx.verdict = Verdict.DROP
            pre.tx.stateful_acl = False
            return
        location = entry.select(ctx.five_tuple, self.hash_seed)
        pre.tx.next_hop_ip = location.underlay_ip
        pre.tx.next_hop_mac = location.underlay_mac
        pre.tx.vni = entry.vni

    def memory_bytes(self) -> int:
        return len(self._entries) * self.entry_bytes

    def rule_count(self) -> int:
        return len(self._entries)


# -- advanced / optional tables ------------------------------------------------------------


class PolicyRouteTable(RuleTable):
    """Policy-based routing: per-prefix next-hop overrides."""

    name = "policy_route"

    def __init__(self, rule_bytes: int = 40) -> None:
        super().__init__()
        self._overrides: List[Tuple[IPv4Address, int, IPv4Address, MacAddress]] = []
        self.rule_bytes = rule_bytes

    def add_override(self, prefix: IPv4Address, length: int,
                     next_hop_ip: IPv4Address, next_hop_mac: MacAddress) -> None:
        self._overrides.append((prefix, length, next_hop_ip, next_hop_mac))
        self._bump()

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        for prefix, length, hop_ip, hop_mac in self._overrides:
            if ctx.five_tuple.dst_ip.in_prefix(prefix, length):
                pre.tx.next_hop_ip = hop_ip
                pre.tx.next_hop_mac = hop_mac
                return

    def memory_bytes(self) -> int:
        return len(self._overrides) * self.rule_bytes

    def rule_count(self) -> int:
        return len(self._overrides)


class MirrorTable(RuleTable):
    """Traffic mirroring: matching flows get a mirror destination."""

    name = "mirror"

    def __init__(self, rule_bytes: int = 40) -> None:
        super().__init__()
        self._rules: List[Tuple[IPv4Address, int, IPv4Address]] = []
        self.rule_bytes = rule_bytes

    def add_mirror(self, prefix: IPv4Address, length: int,
                   mirror_to: IPv4Address) -> None:
        self._rules.append((prefix, length, mirror_to))
        self._bump()

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        for prefix, length, target in self._rules:
            if (ctx.five_tuple.dst_ip.in_prefix(prefix, length)
                    or ctx.five_tuple.src_ip.in_prefix(prefix, length)):
                pre.tx.mirror_to = target
                pre.rx.mirror_to = target
                return

    def memory_bytes(self) -> int:
        return len(self._rules) * self.rule_bytes

    def rule_count(self) -> int:
        return len(self._rules)


class FlowLogTable(RuleTable):
    """Flow logging: decides the statistics policy — the canonical
    *rule-table-involved* state source (§3.2.2)."""

    name = "flow_log"

    def __init__(self, rule_bytes: int = 40) -> None:
        super().__init__()
        self._rules: List[Tuple[IPv4Address, int, StatsPolicy]] = []
        self.rule_bytes = rule_bytes

    def add_policy(self, prefix: IPv4Address, length: int,
                   policy: StatsPolicy) -> None:
        self._rules.append((prefix, length, policy))
        self._bump()

    def clear(self) -> None:
        self._rules.clear()
        self._bump()

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        for prefix, length, policy in self._rules:
            if (ctx.five_tuple.src_ip.in_prefix(prefix, length)
                    or ctx.five_tuple.dst_ip.in_prefix(prefix, length)):
                pre.tx.stats_policy = policy
                pre.rx.stats_policy = policy
                return

    def memory_bytes(self) -> int:
        return len(self._rules) * self.rule_bytes

    def rule_count(self) -> int:
        return len(self._rules)


class Nat44Table(RuleTable):
    """Source-NAT44: static internal→external address mappings (§2.1 lists
    NAT among the vSwitch's tenant-configured NFs).

    TX packets from a mapped internal address leave with the external
    source (``pre.tx.nat_src``); RX packets addressed to the external
    address are translated back (``pre.rx.nat_dst``) before delivery. The
    hosting vSwitch must register the external address as a vNIC alias so
    ingress dispatch finds the right vNIC.
    """

    name = "nat44"

    def __init__(self, entry_bytes: int = 48) -> None:
        super().__init__()
        self._by_internal: Dict[int, IPv4Address] = {}
        self._by_external: Dict[int, IPv4Address] = {}
        self.entry_bytes = entry_bytes

    def add_mapping(self, internal: IPv4Address,
                    external: IPv4Address) -> None:
        internal, external = IPv4Address(internal), IPv4Address(external)
        self._by_internal[internal.value] = external
        self._by_external[external.value] = internal
        self._bump()

    def external_for(self, internal: IPv4Address) -> Optional[IPv4Address]:
        return self._by_internal.get(IPv4Address(internal).value)

    def internal_for(self, external: IPv4Address) -> Optional[IPv4Address]:
        return self._by_external.get(IPv4Address(external).value)

    def apply(self, ctx: LookupContext, pre: PreActions) -> None:
        external = self._by_internal.get(ctx.five_tuple.src_ip.value)
        if external is not None:
            pre.tx.nat_src = external
            pre.rx.nat_dst = ctx.five_tuple.src_ip

    def memory_bytes(self) -> int:
        return len(self._by_internal) * self.entry_bytes

    def rule_count(self) -> int:
        return len(self._by_internal)
