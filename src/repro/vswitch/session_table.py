"""The session table: the fast path's exact-match store.

Entries are keyed by (VNI, direction-independent session key) and hold the
cached bidirectional pre-actions together with the session state, exactly
one entry per session (§2.1). Under Nezha the same structure serves three
roles, selected per entry:

* ``FULL``        — traditional local vSwitch: pre-actions + state;
* ``FLOWS_ONLY``  — an FE's cached flows: pre-actions, no state;
* ``STATE_ONLY``  — a BE's residue: state, no pre-actions.

Memory is charged to a :class:`~repro.sim.resources.MemoryBudget`; an
exhausted budget makes inserts raise :class:`~repro.errors.TableFull`,
which is how "#concurrent flows limited by memory" manifests.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import TableFull
from repro.net.five_tuple import FiveTuple
from repro.sim.resources import MemoryBudget
from repro.vswitch.actions import PreActions
from repro.vswitch.costs import CostModel
from repro.vswitch.flow_records import FlowRecordStore
from repro.vswitch.state import SessionState

MEM_TAG = "session_table"

# Entry overhead per role. A full entry is ~96B of keys/pre-actions plus the
# state slot; a state-only entry keeps a compact key and the state slot.
FLOWS_KEY_BYTES = 96
STATE_KEY_BYTES = 32


class EntryMode(enum.Enum):
    FULL = "full"
    FLOWS_ONLY = "flows_only"
    STATE_ONLY = "state_only"


class SessionEntry:
    """One bidirectional session.

    ``slot`` indexes the table's :class:`FlowRecordStore` column arrays
    (-1 when the entry carries no state or the store is disabled);
    ``encap`` caches the entry's :class:`~repro.net.packet.EncapTemplate`
    and is dropped whenever the route may change (demotion, promotion,
    peer invalidation).
    """

    __slots__ = ("vni", "five_tuple", "pre_actions", "state", "mode",
                 "charged_bytes", "slot", "encap")

    def __init__(self, vni: int, five_tuple: FiveTuple,
                 pre_actions: Optional[PreActions],
                 state: Optional[SessionState],
                 mode: EntryMode, charged_bytes: int) -> None:
        self.vni = vni
        self.five_tuple = five_tuple
        self.pre_actions = pre_actions
        self.state = state
        self.mode = mode
        self.charged_bytes = charged_bytes
        self.slot = -1
        self.encap = None

    def __repr__(self) -> str:
        return (f"SessionEntry({self.five_tuple!r}, vni={self.vni}, "
                f"mode={self.mode.value})")


Key = Tuple[int, tuple]


class SessionTable:
    """Exact-match session store with aging and byte-accurate accounting."""

    def __init__(self, mem: MemoryBudget, cost_model: CostModel,
                 variable_state: bool = False) -> None:
        self.mem = mem
        self.cost_model = cost_model
        self.variable_state = variable_state
        self._entries: Dict[Key, SessionEntry] = {}
        self.records = FlowRecordStore()
        self.inserts = 0
        self.insert_failures = 0
        self.aged_out = 0

    @staticmethod
    def _key(vni: int, five_tuple: FiveTuple) -> Key:
        return (vni, five_tuple.session_key())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SessionEntry]:
        return iter(list(self._entries.values()))

    # -- lookups -------------------------------------------------------------

    def lookup(self, vni: int, five_tuple: FiveTuple) -> Optional[SessionEntry]:
        """Exact-match probe.

        The burst datapath performs *one* lookup per per-flow run and
        holds the returned entry across the whole burst. That is sound
        because nothing here mutates between same-instant packets of one
        flow: entries are identity-stable (demote/promote/invalidate
        rewrite fields in place rather than replacing the object), so a
        held entry observes any concurrent demotion — the batched
        completion re-checks ``pre_actions``/``state`` exactly like the
        per-packet path does.
        """
        return self._entries.get(self._key(vni, five_tuple))

    def __contains__(self, key: Tuple[int, FiveTuple]) -> bool:
        vni, five_tuple = key
        return self._key(vni, five_tuple) in self._entries

    # -- sizing ---------------------------------------------------------------

    def _entry_bytes(self, mode: EntryMode,
                     state: Optional[SessionState]) -> int:
        if mode is EntryMode.FLOWS_ONLY:
            return FLOWS_KEY_BYTES
        if self.variable_state and state is not None:
            state_bytes = state.variable_size()
        else:
            state_bytes = self.cost_model.state_bytes_fixed
        key_bytes = (STATE_KEY_BYTES if mode is EntryMode.STATE_ONLY
                     else FLOWS_KEY_BYTES)
        return key_bytes + state_bytes

    # -- mutation ---------------------------------------------------------------

    def insert(self, vni: int, five_tuple: FiveTuple,
               pre_actions: Optional[PreActions],
               state: Optional[SessionState],
               now: float, mode: EntryMode = EntryMode.FULL) -> SessionEntry:
        """Create a session entry, charging memory; raises TableFull."""
        key = self._key(vni, five_tuple)
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        nbytes = self._entry_bytes(mode, state)
        if not self.mem.try_alloc(MEM_TAG, nbytes):
            self.insert_failures += 1
            raise TableFull(
                f"session table full ({len(self._entries)} entries, "
                f"{self.mem.used}/{self.mem.capacity}B)")
        if state is not None:
            state.created_at = now
            state.last_seen = now
        entry = SessionEntry(vni, five_tuple, pre_actions, state, mode, nbytes)
        if FlowRecordStore.enabled and state is not None:
            entry.slot = self.records.alloc()
        self._entries[key] = entry
        self.inserts += 1
        return entry

    def _release(self, entry: SessionEntry) -> None:
        """Materialization boundary for a dying entry: fold any pending
        flow-record deltas into its state, recycle the slot, free memory."""
        if entry.slot >= 0:
            self.records.flush(entry.slot, entry.state)
            self.records.free(entry.slot)
            entry.slot = -1
        self.mem.free(MEM_TAG, entry.charged_bytes)

    def remove(self, vni: int, five_tuple: FiveTuple) -> bool:
        key = self._key(vni, five_tuple)
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._release(entry)
        return True

    def clear(self) -> int:
        """Drop every entry (rule-table change invalidation); returns count."""
        count = len(self._entries)
        for entry in self._entries.values():
            self._release(entry)
        self._entries.clear()
        self.records.clear()
        return count

    def remove_vni(self, vni: int, mode: Optional[EntryMode] = None) -> int:
        """Drop all entries of one tenant (vNIC offload/fallback),
        optionally restricted to one entry mode."""
        doomed = [k for k, e in self._entries.items()
                  if e.vni == vni and (mode is None or e.mode is mode)]
        for key in doomed:
            entry = self._entries.pop(key)
            self._release(entry)
        return len(doomed)

    def demote_vni(self, vni: int) -> int:
        """Convert a tenant's FULL entries to STATE_ONLY, freeing the cached
        pre-actions (Nezha offload activation); returns entries converted."""
        converted = 0
        for entry in self._entries.values():
            if entry.vni != vni or entry.mode is not EntryMode.FULL:
                continue
            new_bytes = self._entry_bytes(EntryMode.STATE_ONLY, entry.state)
            delta = entry.charged_bytes - new_bytes
            if delta > 0:
                self.mem.free(MEM_TAG, delta)
            entry.pre_actions = None
            entry.mode = EntryMode.STATE_ONLY
            entry.charged_bytes = new_bytes
            entry.encap = None
            if entry.slot >= 0:
                self.records.flush(entry.slot, entry.state)
            converted += 1
        return converted

    def promote(self, entry: SessionEntry, pre_actions: PreActions) -> bool:
        """Convert a STATE_ONLY entry back to FULL by attaching pre-actions
        (Nezha fallback, lazily on first packet); False if memory is out."""
        if entry.mode is EntryMode.FULL:
            return True
        new_bytes = self._entry_bytes(EntryMode.FULL, entry.state)
        delta = new_bytes - entry.charged_bytes
        if delta > 0 and not self.mem.try_alloc(MEM_TAG, delta):
            return False
        entry.pre_actions = pre_actions
        entry.mode = EntryMode.FULL
        entry.charged_bytes = new_bytes
        entry.encap = None
        return True

    def invalidate_peer_flows(self, vni: int, peer_ip_value: int) -> int:
        """Rule-table change invalidation (Fig 1): drop cached pre-actions
        for flows touching ``peer_ip``; they regenerate via the slow path.

        FULL entries are demoted to STATE_ONLY (session state survives);
        FLOWS_ONLY entries are removed outright. Returns entries affected.
        """
        affected = 0
        doomed = []
        for key, entry in self._entries.items():
            if entry.vni != vni:
                continue
            ft = entry.five_tuple
            if peer_ip_value not in (ft.src_ip.value, ft.dst_ip.value):
                continue
            if entry.mode is EntryMode.FULL:
                new_bytes = self._entry_bytes(EntryMode.STATE_ONLY,
                                              entry.state)
                delta = entry.charged_bytes - new_bytes
                if delta > 0:
                    self.mem.free(MEM_TAG, delta)
                entry.pre_actions = None
                entry.mode = EntryMode.STATE_ONLY
                entry.charged_bytes = new_bytes
                entry.encap = None
                if entry.slot >= 0:
                    self.records.flush(entry.slot, entry.state)
                affected += 1
            elif entry.mode is EntryMode.FLOWS_ONLY:
                doomed.append(key)
        for key in doomed:
            entry = self._entries.pop(key)
            self._release(entry)
            affected += 1
        return affected

    def sweep(self, now: float) -> int:
        """Age out idle sessions (state-dependent timeouts, §7.3).

        A sweep is a materialization boundary: run-charged activity lives
        in the flow-record columns until flushed here, so ``last_seen``
        (and thus ``expired``) observes it exactly as the per-packet path
        would have recorded it.
        """
        doomed = []
        records = self.records
        for key, entry in self._entries.items():
            state = entry.state
            if state is None:
                continue
            if entry.slot >= 0:
                records.flush(entry.slot, state)
            if state.expired(now):
                doomed.append(key)
        for key in doomed:
            entry = self._entries.pop(key)
            self._release(entry)
        self.aged_out += len(doomed)
        return len(doomed)

    # -- capacity -------------------------------------------------------------------

    def capacity_estimate(self, mode: EntryMode = EntryMode.FULL) -> int:
        """How many more entries of ``mode`` would fit right now."""
        per_entry = self._entry_bytes(mode, None)
        return self.mem.available() // per_entry
