"""Session-level TCP finite-state machine.

The middlebox view of a TCP connection: coarser than an endpoint FSM, it
tracks enough to distinguish embryonic, established, and closing sessions
(which drives state-dependent aging, §7.3) and to notice resets.
"""

from __future__ import annotations

import enum

from repro.net.tcp import TcpFlags


class TcpState(enum.Enum):
    NONE = 0            # no TCP packet seen yet (or non-TCP session)
    SYN_SENT = 1        # initiator's SYN observed
    SYN_RECEIVED = 2    # responder's SYN/ACK observed
    ESTABLISHED = 3     # initiator's final handshake ACK observed
    FIN_WAIT = 4        # one side has sent FIN
    CLOSED = 5          # both FINs, or RST, observed


def tcp_transition(current: TcpState, from_initiator: bool,
                   flags: TcpFlags) -> TcpState:
    """Advance the session FSM for one observed packet.

    ``from_initiator`` is True when the packet travels in the same
    direction as the session's first packet.
    """
    if flags.rst:
        return TcpState.CLOSED
    if current is TcpState.NONE:
        if flags.syn and not flags.ack and from_initiator:
            return TcpState.SYN_SENT
        return current
    if current is TcpState.SYN_SENT:
        if flags.syn and flags.ack and not from_initiator:
            return TcpState.SYN_RECEIVED
        return current
    if current is TcpState.SYN_RECEIVED:
        if flags.ack and from_initiator:
            return TcpState.ESTABLISHED
        return current
    if current is TcpState.ESTABLISHED:
        if flags.fin:
            return TcpState.FIN_WAIT
        return current
    if current is TcpState.FIN_WAIT:
        if flags.fin:
            return TcpState.CLOSED
        return current
    return current
