"""The vNIC: a tenant's virtual NIC, hosted by exactly one vSwitch.

Each vNIC owns a rule-table chain (its slow path) whose memory is charged
to the hosting SmartNIC until Nezha offloads it. ``deliver`` hands RX
packets to whatever guest endpoint is attached (a VM TCP stack, a
middlebox loop, or a test callback).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.net.addr import IPv4Address, MacAddress
from repro.net.packet import Packet
from repro.telemetry import spans as _spans
from repro.vswitch.slow_path import SlowPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.vswitch.vswitch import VSwitch


class Vnic:
    """A tenant vNIC descriptor plus its attached guest."""

    def __init__(
        self,
        vnic_id: int,
        vni: int,
        tenant_ip: IPv4Address,
        mac: MacAddress,
        slow_path: SlowPath,
        table_memory_extra: int = 0,
        parent: Optional["Vnic"] = None,
    ) -> None:
        self.vnic_id = vnic_id
        self.vni = vni
        self.tenant_ip = IPv4Address(tenant_ip)
        self.mac = MacAddress(mac)
        self.slow_path = slow_path
        # Child vNICs (§7.4): share the parent's I/O adapter (one BDF
        # number for the whole family); traffic is distinguished by tag.
        self.parent = parent
        self.children: list = []
        if parent is not None:
            parent.children.append(self)
        # Models rule tables whose bulk is not individually populated in the
        # simulation (e.g. a middlebox's O(100MB) config): raw extra bytes.
        self.table_memory_extra = int(table_memory_extra)
        # Stateful decapsulation (§5.2): record the overlay source on RX and
        # return TX responses to it — enabled for LB real-server vNICs.
        self.stateful_decap = False
        # vNIC-level egress rate limit (bps). Enforced at the single point
        # all the vNIC's traffic traverses: the local vSwitch, or under
        # Nezha the BE — no distributed rate limiting needed (§2.3.3).
        self.rate_limit_bps = None
        self.host: Optional["VSwitch"] = None
        self._guest_rx: Optional[Callable[[Packet], None]] = None
        self._guest_rx_run: Optional[Callable[[Packet, int], None]] = None
        self.offloaded = False          # Nezha: rule tables live on FEs
        self.rx_delivered = 0
        self.tx_sent = 0

    # -- guest attachment -----------------------------------------------------

    def attach_guest(self, on_rx: Callable[[Packet], None],
                     on_rx_run: Optional[Callable[[Packet, int],
                                                  None]] = None) -> None:
        """``on_rx_run`` lets a guest accept fluid runs (template packet
        + count) without materialization — a VM kernel registers one;
        bare callbacks leave it None and runs materialize into copies."""
        self._guest_rx = on_rx
        self._guest_rx_run = on_rx_run

    def deliver(self, packet: Packet) -> None:
        """Hand an RX packet to the guest behind this vNIC.

        A child vNIC tags the packet and delivers through its parent's
        I/O adapter (§7.4) unless an app registered on the child directly.
        """
        self.rx_delivered += 1
        if _spans.ACTIVE and self.host is not None:
            _spans.hop(packet, "deliver", self.host.engine.now)
        if self.parent is not None and self._guest_rx is None:
            packet.meta["child_vnic"] = self.vnic_id
            self.parent.deliver(packet)
            return
        if self._guest_rx is not None:
            self._guest_rx(packet)

    def deliver_burst(self, packets) -> None:
        """Burst delivery: per-packet semantics of :meth:`deliver`, kept
        as the one loop the aggregated RX completion drives. With no
        spans recording and a guest attached directly, the per-packet
        branchwork collapses to one counter add and the callback loop."""
        rx = self._guest_rx
        if _spans.ACTIVE or rx is None:
            for packet in packets:
                self.deliver(packet)
            return
        self.rx_delivered += len(packets)
        for packet in packets:
            rx(packet)

    def deliver_run(self, packet: Packet, count: int) -> None:
        """Fluid delivery: one call when the guest understands runs,
        materialized copies otherwise (spans, bare callbacks, child
        vNICs delivering through a parent)."""
        if (_spans.ACTIVE or self._guest_rx_run is None
                or self._guest_rx is None):
            for _ in range(count):
                self.deliver(packet.copy())
            return
        self.rx_delivered += count
        self._guest_rx_run(packet, count)

    # -- sizing ------------------------------------------------------------------

    def table_memory_bytes(self) -> int:
        """Rule-table bytes this vNIC pins on whichever node hosts them."""
        return self.slow_path.memory_bytes() + self.table_memory_extra

    def __repr__(self) -> str:
        return (f"Vnic(id={self.vnic_id}, vni={self.vni}, "
                f"ip={self.tenant_ip}, offloaded={self.offloaded})")
