"""Token-bucket rate limiting.

QoS rules classify flows and may attach a rate limit (bits/second). The
enforcement point matters architecturally: the traditional vSwitch and a
Nezha BE both see *all* of a vNIC's traffic, so a single local bucket
suffices. A Sirius-style pool spreads one vNIC over multiple cards, each
seeing a fraction — VM-level limiting there becomes a distributed
rate-limiting problem (§2.3.3), which Nezha avoids by construction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigError


class TokenBucket:
    """A classic token bucket over virtual time."""

    def __init__(self, rate_bps: float, burst_bytes: int = 16 * 1024) -> None:
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ConfigError("rate and burst must be positive")
        self.rate_bytes_per_s = rate_bps / 8.0
        self.burst_bytes = float(burst_bytes)
        self.tokens = float(burst_bytes)
        self.last_refill = 0.0
        self.conformed = 0
        self.dropped = 0

    def allow(self, nbytes: int, now: float) -> bool:
        """Consume tokens for a packet; False means police (drop)."""
        elapsed = max(0.0, now - self.last_refill)
        self.last_refill = now
        self.tokens = min(self.burst_bytes,
                          self.tokens + elapsed * self.rate_bytes_per_s)
        if self.tokens >= nbytes:
            self.tokens -= nbytes
            self.conformed += 1
            return True
        self.dropped += 1
        return False

    def allow_run(self, nbytes: int, n: int, now: float) -> int:
        """Police ``n`` same-size packets observed at one instant; returns
        how many conform (a prefix — admitted packets are the first ``k``).

        Exactly equivalent to ``n`` sequential :meth:`allow` calls at
        ``now``: the bucket refills once (elapsed is zero from the second
        call on), then floor-consumes whole packets until tokens run
        short, after which every remaining call drops with tokens
        unchanged.
        """
        elapsed = max(0.0, now - self.last_refill)
        self.last_refill = now
        tokens = min(self.burst_bytes,
                     self.tokens + elapsed * self.rate_bytes_per_s)
        if nbytes <= 0:
            self.tokens = tokens
            self.conformed += n
            return n
        # Repeated subtraction (not k*nbytes) so the float token state is
        # bit-identical to the per-packet path's.
        k = 0
        while k < n and tokens >= nbytes:
            tokens -= nbytes
            k += 1
        self.tokens = tokens
        self.conformed += k
        self.dropped += n - k
        return k


class QosEnforcer:
    """Per-(vNIC, QoS class) token buckets for one enforcement point."""

    def __init__(self, burst_bytes: int = 16 * 1024) -> None:
        self.burst_bytes = burst_bytes
        self._buckets: Dict[Tuple[int, int], TokenBucket] = {}

    def allow(self, vnic_id: int, qos_class: int, rate_bps: float,
              nbytes: int, now: float) -> bool:
        key = (vnic_id, qos_class)
        bucket = self._buckets.get(key)
        if bucket is None or \
                bucket.rate_bytes_per_s != rate_bps / 8.0:
            bucket = TokenBucket(rate_bps, self.burst_bytes)
            bucket.last_refill = now
            self._buckets[key] = bucket
        return bucket.allow(nbytes, now)

    def allow_run(self, vnic_id: int, qos_class: int, rate_bps: float,
                  nbytes: int, n: int, now: float) -> int:
        """Run form of :meth:`allow`; returns the conforming prefix size."""
        key = (vnic_id, qos_class)
        bucket = self._buckets.get(key)
        if bucket is None or \
                bucket.rate_bytes_per_s != rate_bps / 8.0:
            bucket = TokenBucket(rate_bps, self.burst_bytes)
            bucket.last_refill = now
            self._buckets[key] = bucket
        return bucket.allow_run(nbytes, n, now)

    def bucket_for(self, vnic_id: int, qos_class: int) -> TokenBucket:
        return self._buckets[(vnic_id, qos_class)]
