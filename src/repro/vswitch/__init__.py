"""SmartNIC-based vSwitch: slow path, fast path, session table, rule tables.

This package implements the paper's Fig 1 architecture:

* **slow path** — per-vNIC rule-table chain (ACL, QoS, policy, VXLAN
  routing, vNIC-server mapping, plus optional mirror/flow-log/policy
  routing); a lookup computes *bidirectional pre-actions* and costs CPU
  proportional to table count, ACL size and packet size;
* **fast path** — the session table caching bidirectional flows
  (VPC ID + 5-tuple → pre-actions) together with per-session *state*
  (TCP FSM, first-packet direction, statistics, aging);
* ``Action = func(pkt, rules, states)`` collapses to
  ``process_pkt(pre_actions, states)`` on the fast path.

CPU and memory are accounted against the SmartNIC budgets, which is where
the paper's three bottlenecks (CPS, #concurrent flows, #vNICs) emerge.
"""

from repro.vswitch.actions import (
    Direction, FinalAction, PreAction, PreActions, Verdict, process_pkt,
)
from repro.vswitch.costs import CostModel
from repro.vswitch.rule_tables import (
    AclRule, AclTable, FlowLogTable, Location, MappingEntry, MappingTable,
    MirrorTable, Nat44Table, PolicyRouteTable, QosTable, RouteTable,
    RuleTable,
)
from repro.vswitch.session_table import SessionEntry, SessionTable
from repro.vswitch.slow_path import SlowPath
from repro.vswitch.state import SessionState, StatsPolicy
from repro.vswitch.tcp_fsm import TcpState, tcp_transition
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import (
    PROBE_PORT, Datapath, LocalDatapath, VSwitch, VSwitchStats,
    make_standard_chain,
)

__all__ = [
    "Direction", "Verdict", "PreAction", "PreActions", "FinalAction",
    "process_pkt",
    "CostModel",
    "RuleTable", "AclTable", "AclRule", "RouteTable", "QosTable",
    "MappingTable", "MappingEntry", "Location", "MirrorTable", "FlowLogTable",
    "Nat44Table",
    "PolicyRouteTable",
    "SessionTable", "SessionEntry",
    "SessionState", "StatsPolicy",
    "SlowPath",
    "TcpState", "tcp_transition",
    "Vnic",
    "VSwitch", "VSwitchStats", "Datapath", "LocalDatapath",
    "make_standard_chain", "PROBE_PORT",
]
