"""The slow path: a per-vNIC chain of rule tables.

One lookup runs every table in chain order, producing *bidirectional*
pre-actions (Fig 1 caches both directions at once), and reports its CPU
cost from the cost model: base + extra tables + ACL rules + packet bytes
(the dependencies Table A1 measures).

The chain caches everything that is constant between table mutations —
the ACL rule count, the chain memory footprint, the static component of
the lookup cost, and a name→table index — so the per-lookup work is one
dict probe per table plus a multiply-add for the byte term. Tables
invalidate the caches through :meth:`invalidate_caches`, wired up via
``RuleTable._attach`` at construction (every mutator calls
``RuleTable._bump``; see DESIGN.md §3 for the invariant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vswitch.actions import PreActions
from repro.vswitch.costs import CostModel
from repro.vswitch.rule_tables import AclTable, LookupContext, RuleTable


class _ChainTables(list):
    """The chain's table list: every list mutation notifies the owning
    :class:`SlowPath` so the name index and cached aggregates stay fresh
    even for code that edits ``slow_path.tables`` directly."""

    def __init__(self, items, chain: "SlowPath") -> None:
        super().__init__(items)
        self._chain = chain

    def _note(self) -> None:
        self._chain._on_tables_changed()

    def append(self, item) -> None:
        super().append(item)
        self._note()

    def insert(self, index, item) -> None:
        super().insert(index, item)
        self._note()

    def extend(self, items) -> None:
        super().extend(items)
        self._note()

    def remove(self, item) -> None:
        super().remove(item)
        self._note()

    def pop(self, index=-1):
        item = super().pop(index)
        self._note()
        return item

    def clear(self) -> None:
        super().clear()
        self._note()

    def sort(self, **kwargs) -> None:
        super().sort(**kwargs)
        self._note()

    def reverse(self) -> None:
        super().reverse()
        self._note()

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._note()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._note()

    def __iadd__(self, items):
        result = super().__iadd__(items)
        self._note()
        return result


class SlowPath:
    """An ordered rule-table chain with cost accounting."""

    #: Class-level switch for the chain-level caches. Tests flip it to
    #: prove caching changes no lookup results or costs.
    caching: bool = True

    def __init__(self, tables: List[RuleTable], cost_model: CostModel) -> None:
        self.tables = _ChainTables(tables, self)
        self.cost_model = cost_model
        self.lookups = 0
        self._acl_rule_count: Optional[int] = None
        self._memory_bytes: Optional[int] = None
        self._static_cycles: Optional[float] = None
        self._by_name: Dict[str, RuleTable] = {}
        self._on_tables_changed()

    def _on_tables_changed(self) -> None:
        """Rebuild the name index and re-wire invalidation after the
        chain's table list itself changed."""
        for table in self.tables:
            if self not in table._chains:
                table._attach(self)
        # First occurrence wins on duplicate names (the advanced 12-table
        # chain repeats table types), matching the original linear scan.
        self._by_name = {t.name: t for t in reversed(self.tables)}
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop every chain-level cache; called when a table mutates."""
        self._acl_rule_count = None
        self._memory_bytes = None
        self._static_cycles = None

    def table(self, name: str) -> Optional[RuleTable]:
        if self.caching:
            return self._by_name.get(name)
        for table in self.tables:
            if table.name == name:
                return table
        return None

    def acl_rule_count(self) -> int:
        if not self.caching:
            return sum(t.rule_count() for t in self.tables
                       if isinstance(t, AclTable))
        count = self._acl_rule_count
        if count is None:
            count = sum(t.rule_count() for t in self.tables
                        if isinstance(t, AclTable))
            self._acl_rule_count = count
        return count

    def lookup_cost(self, packet_bytes: int) -> float:
        """Cycle cost of one lookup, chargeable before running it."""
        if not self.caching:
            return self.cost_model.lookup_cycles(
                n_tables=len(self.tables),
                n_acl_rules=self.acl_rule_count(),
                packet_bytes=packet_bytes,
            )
        static = self._static_cycles
        if static is None:
            static = self.cost_model.lookup_cycles_static(
                len(self.tables), self.acl_rule_count())
            self._static_cycles = static
        return static + packet_bytes * self.cost_model.cycles_per_byte

    def lookup(self, ctx: LookupContext) -> Tuple[PreActions, float]:
        """Run the chain; returns (bidirectional pre-actions, cycle cost)."""
        self.lookups += 1
        pre = PreActions()
        for table in self.tables:
            table.apply(ctx, pre)
        return pre, self.lookup_cost(ctx.packet_bytes)

    def memory_bytes(self) -> int:
        """Total rule-table memory this chain pins on its host."""
        if not self.caching:
            return sum(table.memory_bytes() for table in self.tables)
        total = self._memory_bytes
        if total is None:
            total = sum(table.memory_bytes() for table in self.tables)
            self._memory_bytes = total
        return total
