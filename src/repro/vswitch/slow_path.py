"""The slow path: a per-vNIC chain of rule tables.

One lookup runs every table in chain order, producing *bidirectional*
pre-actions (Fig 1 caches both directions at once), and reports its CPU
cost from the cost model: base + extra tables + ACL rules + packet bytes
(the dependencies Table A1 measures).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.vswitch.actions import PreActions
from repro.vswitch.costs import CostModel
from repro.vswitch.rule_tables import AclTable, LookupContext, RuleTable


class SlowPath:
    """An ordered rule-table chain with cost accounting."""

    def __init__(self, tables: List[RuleTable], cost_model: CostModel) -> None:
        self.tables = list(tables)
        self.cost_model = cost_model
        self.lookups = 0

    def table(self, name: str) -> Optional[RuleTable]:
        for table in self.tables:
            if table.name == name:
                return table
        return None

    def acl_rule_count(self) -> int:
        return sum(t.rule_count() for t in self.tables if isinstance(t, AclTable))

    def lookup_cost(self, packet_bytes: int) -> float:
        """Cycle cost of one lookup, chargeable before running it."""
        return self.cost_model.lookup_cycles(
            n_tables=len(self.tables),
            n_acl_rules=self.acl_rule_count(),
            packet_bytes=packet_bytes,
        )

    def lookup(self, ctx: LookupContext) -> Tuple[PreActions, float]:
        """Run the chain; returns (bidirectional pre-actions, cycle cost)."""
        self.lookups += 1
        pre = PreActions()
        for table in self.tables:
            table.apply(ctx, pre)
        return pre, self.lookup_cost(ctx.packet_bytes)

    def memory_bytes(self) -> int:
        """Total rule-table memory this chain pins on its host."""
        return sum(table.memory_bytes() for table in self.tables)
