"""CPU-cycle and memory cost model for the simulated SmartNIC vSwitch.

Two presets:

* :meth:`CostModel.testbed` — scaled down ~50x so discrete-event runs
  finish quickly; every reported experiment uses ratios, which the scaling
  preserves.
* :meth:`CostModel.production` — calibrated against the paper's absolute
  numbers: Table A1 (6.61 Mpps raw rule-table lookup at 64 B / 0 ACL rules
  on 8 cores, falling to ~5.4 Mpps at 1000 rules and ~4.8 Mpps at 512 B)
  and §2.2.2 (O(100K) CPS per vSwitch).

Derivation of the Table A1 calibration (8 cores x 1.2 GHz):

* ``9.6e9 / 6.61e6 ≈ 1452`` cycles per bare lookup → ``slow_path_base``;
* 1000 ACL rules cost ``9.6e9/5.422e6 - 1452 ≈ 319`` extra cycles
  → ``acl_cycles_per_rule ≈ 0.32``;
* 512 B vs 64 B costs ``9.6e9/5.985e6 - 9.6e9/6.612e6 ≈ 152`` extra
  cycles over 448 B → ``cycles_per_byte ≈ 0.34``.

Full connection setup costs far more than a bare lookup (session insert,
both-direction pre-action computation, hardware flow insertion, metadata),
captured by ``session_setup_cycles`` so an 8-core vSwitch lands at O(100K)
CPS as the paper states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass
class CostModel:
    """All tunables for CPU-cycle and memory accounting."""

    # -- CPU -----------------------------------------------------------------
    cores: int = 8
    hz: float = 1.2e9                      # cycles/second/core
    slow_path_base: float = 1452.0         # bare multi-table lookup, 5 tables
    slow_path_per_extra_table: float = 180.0   # each table beyond the basic 5
    acl_cycles_per_rule: float = 0.22      # range matching, linear in #rules
    # Moderate rule counts cost disproportionately (range-match tiers /
    # cache effects), saturating at ~130 cycles — visible in Table A1's
    # mid-size cells.
    acl_tier_cycles: float = 130.0
    acl_tier_scale: float = 40.0
    cycles_per_byte: float = 0.34          # NIC->vSwitch move cost
    fast_path_cycles: float = 220.0        # exact-match hit + process_pkt
    # Session establishment splits into the cached-flow insertion (flow
    # programming — moves to the FE under Nezha) and the software state
    # insert. The traditional local path pays both; a Nezha BE instead
    # pays only the hardware-accelerated state insert (§7.3). Note that
    # bidirectional flows of one session may hash to *different* FEs
    # (§3.2.3), so the FE side pays the flow insert once per direction —
    # Nezha spends more total cycles per connection than the local path,
    # which is why ~4 FEs are needed to saturate the VM-side limit (Fig 9).
    flow_insert_cycles: float = 40000.0
    state_insert_cycles: float = 36000.0
    be_state_insert_cycles: float = 6000.0  # hardware-assisted BE insert
    encap_cycles: float = 120.0            # push/pop one tunnel header
    state_encode_cycles: float = 60.0      # Nezha: pack state/pre-action TLVs
    notify_cycles: float = 300.0           # Nezha: emit/absorb a notify packet
    be_fastpath_cycles: float = 90.0       # §7.3 hardware-inserted per-flow logic

    # -- memory ----------------------------------------------------------------
    memory_bytes: int = 10 * GB            # vSwitch share of SmartNIC memory
    packet_buffer_bytes: int = 6 * GB      # reserved, mirrors "most for buffers"
    session_key_bytes: int = 96            # bidirectional 5-tuples + VPC + pre-actions
    state_bytes_fixed: int = 64            # fixed-size state slot (§7.1)
    vnic_base_table_bytes: int = 8 * MB    # typical per-vNIC rule tables (5.5-10MB)
    vnic_be_metadata_bytes: int = 2 * KB   # BE residue when offloaded (§6.2.1)
    acl_rule_bytes: int = 64
    mapping_entry_bytes: int = 2 * KB      # vNIC-server entry (200MB / 100K)

    # -- misc -------------------------------------------------------------------
    max_cpu_backlog: float = 0.02          # seconds of queue before drop-tail
    util_window: float = 0.1               # telemetry smoothing window (s)

    # -- derived helpers ----------------------------------------------------------

    @property
    def total_hz(self) -> float:
        return self.cores * self.hz

    @property
    def session_setup_cycles(self) -> float:
        """Full local-session establishment cost (flow + state inserts)."""
        return self.flow_insert_cycles + self.state_insert_cycles

    def lookup_cycles_static(self, n_tables: int, n_acl_rules: int) -> float:
        """The packet-size-independent part of :meth:`lookup_cycles`.

        Constant while the rule-table chain is unchanged, so
        :class:`~repro.vswitch.slow_path.SlowPath` caches it and adds only
        the per-byte term per lookup.
        """
        extra = max(0, n_tables - 5) * self.slow_path_per_extra_table
        tier = self.acl_tier_cycles * (
            1.0 - math.exp(-n_acl_rules / self.acl_tier_scale))
        return (self.slow_path_base + extra + tier
                + n_acl_rules * self.acl_cycles_per_rule)

    def lookup_cycles(self, n_tables: int, n_acl_rules: int,
                      packet_bytes: int) -> float:
        """Cycles for one slow-path rule-table lookup (Table A1's op)."""
        return (self.lookup_cycles_static(n_tables, n_acl_rules)
                + packet_bytes * self.cycles_per_byte)

    def session_entry_bytes(self, state_bytes: int = None) -> int:
        """Memory for one session-table entry (bidirectional flows + state)."""
        state = self.state_bytes_fixed if state_bytes is None else state_bytes
        return self.session_key_bytes + state

    @classmethod
    def production(cls) -> "CostModel":
        """Paper-calibrated absolute numbers (slow to simulate at scale)."""
        return cls()

    @classmethod
    def testbed(cls, scale: float = 50.0) -> "CostModel":
        """Scaled-down preset: same ratios, ~``scale``x less work to simulate.

        CPU frequency is divided by ``scale`` (so capacities shrink) and
        memory budgets shrink accordingly so memory-bound experiments also
        run with small absolute table sizes.
        """
        model = cls()
        model.hz = model.hz / scale
        model.memory_bytes = int(model.memory_bytes / scale)
        model.packet_buffer_bytes = int(model.packet_buffer_bytes / scale)
        model.vnic_base_table_bytes = int(model.vnic_base_table_bytes / scale)
        return model
