"""The SmartNIC vSwitch: dispatch, local datapath, telemetry.

A :class:`VSwitch` attaches to a :class:`~repro.fabric.device.ServerNode`
and processes packets under explicit CPU and memory budgets. Per-vNIC
*datapaths* are pluggable: the default :class:`LocalDatapath` implements
the traditional architecture (Fig 1); the Nezha package swaps in BE and FE
datapaths without touching this module — mirroring the paper's "<5 % of
vSwitch code modified" claim.

Entry points:

* :meth:`VSwitch.send_from_vnic` — a guest transmitted a packet (TX);
* the fabric sink (wired in ``__init__``) — underlay arrivals: VXLAN
  overlay traffic (RX), Nezha NSH traffic (handed to a registered
  handler), and health probes (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, TableFull
from repro.fabric.device import ServerNode
from repro.net.addr import IPv4Address, MacAddress
from repro.net.ethernet import EthernetHeader
from repro.net.five_tuple import PROTO_TCP, FiveTuple
from repro.net.ipv4 import IPv4Header
from repro.net.nsh import NshHeader
from repro.net.packet import (EncapTemplate, NSH_PORT, Packet,
                              make_underlay_transport)
from repro.net.tcp import TcpHeader
from repro.net.udp import UdpHeader
from repro.net.vxlan import VXLAN_PORT, VxlanHeader
from repro.sim.engine import Engine
from repro.sim.resources import CpuResource, MemoryBudget
from repro.sim.trace import Trace
from repro import telemetry as _telemetry
from repro.telemetry import spans as _spans
from repro.vswitch.actions import (ActionKind, Direction, FinalAction,
                                   PreActions, Verdict, process_pkt,
                                   resolve_verdict)
from repro.vswitch.costs import CostModel
from repro.vswitch.flow_records import FlowRecordStore, FluidMode
from repro.vswitch.rule_tables import (AclTable, FlowLogTable, LookupContext,
                                       MappingTable, MirrorTable,
                                       PolicyRouteTable, QosTable, RouteTable)
from repro.vswitch.session_table import EntryMode, SessionTable
from repro.vswitch.slow_path import SlowPath
from repro.vswitch.state import SessionState
from repro.vswitch.tcp_fsm import tcp_transition
from repro.vswitch.vnic import Vnic

PROBE_PORT = 9527  # "flow direct" health-probe port (§4.4)


@dataclass
class VSwitchStats:
    """Datapath counters, all monotonic."""

    tx_packets: int = 0
    rx_packets: int = 0
    forwarded: int = 0
    delivered: int = 0
    acl_drops: int = 0
    no_route_drops: int = 0
    cpu_drops: int = 0
    session_full_drops: int = 0
    unknown_vnic_drops: int = 0
    crashed_drops: int = 0
    slow_path_lookups: int = 0
    fast_path_hits: int = 0
    mirrored: int = 0
    qos_drops: int = 0
    probes_answered: int = 0
    nsh_received: int = 0

    def total_drops(self) -> int:
        return (self.acl_drops + self.no_route_drops + self.cpu_drops
                + self.session_full_drops + self.unknown_vnic_drops
                + self.crashed_drops + self.qos_drops)


class Datapath:
    """Per-vNIC packet-processing strategy (local / Nezha BE / Nezha FE)."""

    #: Class-level switch for the vectorized burst path. ``False`` forces
    #: per-packet processing everywhere (the pre-burst behavior); the
    #: burst determinism suite runs fig9/fig12 both ways and requires
    #: identical tables.
    batching: bool = True

    def handle_tx(self, vnic: Vnic, packet: Packet) -> None:
        raise NotImplementedError

    def handle_rx(self, vnic: Vnic, packet: Packet,
                  overlay_src: Optional[IPv4Address] = None) -> None:
        raise NotImplementedError

    # Burst entry points: the default unrolls to the per-packet handlers,
    # so every datapath (Nezha BE/FE included) accepts bursts; strategies
    # with a real vectorized path override these.

    def handle_tx_burst(self, vnic: Vnic, packets: List[Packet]) -> None:
        for packet in packets:
            self.handle_tx(vnic, packet)

    def handle_rx_burst(self, vnic: Vnic, packets: List[Packet],
                        overlay_src: Optional[IPv4Address] = None) -> None:
        for packet in packets:
            self.handle_rx(vnic, packet, overlay_src)

    # Fluid entry points: one template packet standing for ``count``
    # identical packets (FluidMode). The default materializes copies and
    # takes the burst path, so every datapath accepts runs; strategies
    # with a real analytic path override these.

    def handle_tx_run(self, vnic: Vnic, packet: Packet, count: int) -> None:
        self.handle_tx_burst(vnic, [packet.copy() for _ in range(count)])

    def handle_rx_run(self, vnic: Vnic, packet: Packet, count: int,
                      overlay_src: Optional[IPv4Address] = None) -> None:
        self.handle_rx_burst(vnic, [packet.copy() for _ in range(count)],
                             overlay_src)


class VSwitch:
    """One SmartNIC vSwitch instance."""

    def __init__(self, engine: Engine, server: ServerNode,
                 cost_model: CostModel, name: Optional[str] = None,
                 trace: Optional[Trace] = None) -> None:
        self.engine = engine
        self.server = server
        self.cost_model = cost_model
        self.name = name or f"vs-{server.name}"
        self.trace = trace or _telemetry.active_trace(engine) \
            or Trace(lambda: engine.now)
        self.cpu = CpuResource(engine, cost_model.cores, cost_model.hz,
                               name=f"{self.name}.cpu",
                               util_window=cost_model.util_window)
        self.mem = MemoryBudget(cost_model.memory_bytes, name=f"{self.name}.mem")
        self.mem.alloc("packet_buffers", cost_model.packet_buffer_bytes)
        self.session_table = SessionTable(self.mem, cost_model)
        from repro.vswitch.qos import QosEnforcer
        self.qos = QosEnforcer()
        self.stats = VSwitchStats()
        self.vnics: Dict[int, Vnic] = {}
        self._vnic_by_addr: Dict[Tuple[int, int], Vnic] = {}
        self._datapaths: Dict[int, Datapath] = {}
        self._local_datapath = LocalDatapath(self)
        self.nsh_handler: Optional[Callable[[Packet], None]] = None
        # Nezha FE hook: consulted for (already decapped) overlay arrivals
        # targeting vNICs not hosted here but *fronted* here. Receives the
        # packet, the VNI, and the outer source IP (needed by stateful
        # decap, §5.2); returns True when consumed.
        self.overlay_fallback: Optional[
            Callable[[Packet, int, Optional[IPv4Address]], bool]] = None
        self.crashed = False
        self._aging_started = False
        self._probe_reply_cbs: List[Callable[[Packet], None]] = []
        server.attach_sink(self._fabric_sink)
        server.attach_run_sink(self._fabric_sink_run)
        tel = _telemetry.current()
        if tel is not None:
            tel.register_vswitch(self)

    # -- vNIC management --------------------------------------------------------

    def add_vnic(self, vnic: Vnic) -> None:
        """Host a vNIC, charging its rule-table memory to this SmartNIC."""
        if vnic.vnic_id in self.vnics:
            raise ConfigError(f"vNIC {vnic.vnic_id} already hosted")
        self.mem.alloc(f"rules:{vnic.vnic_id}", vnic.table_memory_bytes())
        self.vnics[vnic.vnic_id] = vnic
        self._vnic_by_addr[(vnic.vni, vnic.tenant_ip.value)] = vnic
        vnic.host = self

    def remove_vnic(self, vnic_id: int) -> Vnic:
        vnic = self.vnics.pop(vnic_id, None)
        if vnic is None:
            raise ConfigError(f"vNIC {vnic_id} not hosted here")
        self._vnic_by_addr.pop((vnic.vni, vnic.tenant_ip.value), None)
        self.mem.free_all(f"rules:{vnic_id}")
        self._datapaths.pop(vnic_id, None)
        vnic.host = None
        return vnic

    def recharge_vnic(self, vnic_id: int) -> None:
        """Re-sync a vNIC's rule-table memory charge after its tables
        changed (controller config pushes, gateway learning)."""
        vnic = self.vnics[vnic_id]
        if vnic.offloaded:
            return  # tables live on FEs; nothing charged locally
        self.mem.free_all(f"rules:{vnic_id}")
        self.mem.alloc(f"rules:{vnic_id}", vnic.table_memory_bytes())

    def release_vnic_tables(self, vnic_id: int) -> int:
        """Free a vNIC's rule-table memory locally (Nezha offload), keeping
        only BE metadata (§6.2.1); returns the bytes released."""
        vnic = self.vnics[vnic_id]
        freed = self.mem.free_all(f"rules:{vnic_id}")
        self.mem.alloc(f"be_meta:{vnic_id}",
                       self.cost_model.vnic_be_metadata_bytes)
        vnic.offloaded = True
        return freed - self.cost_model.vnic_be_metadata_bytes

    def restore_vnic_tables(self, vnic_id: int) -> None:
        """Re-pin a vNIC's rule tables locally (Nezha fallback)."""
        vnic = self.vnics[vnic_id]
        self.mem.free_all(f"be_meta:{vnic_id}")
        self.mem.alloc(f"rules:{vnic_id}", vnic.table_memory_bytes())
        vnic.offloaded = False

    def add_vnic_alias(self, vni: int, ip: IPv4Address, vnic: Vnic) -> None:
        """Register an extra ingress address for a vNIC (e.g. its NAT44
        external address): arriving packets are translated back to the
        tenant address before processing."""
        self._vnic_by_addr[(vni, IPv4Address(ip).value)] = vnic

    def vnic_for(self, vni: int, tenant_ip: IPv4Address) -> Optional[Vnic]:
        return self._vnic_by_addr.get((vni, IPv4Address(tenant_ip).value))

    def set_datapath(self, vnic_id: int, datapath: Optional[Datapath]) -> None:
        """Override the datapath for one vNIC (None restores local)."""
        if datapath is None:
            self._datapaths.pop(vnic_id, None)
        else:
            self._datapaths[vnic_id] = datapath

    def datapath_for(self, vnic: Vnic) -> Datapath:
        return self._datapaths.get(vnic.vnic_id, self._local_datapath)

    # -- telemetry ------------------------------------------------------------------

    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    def memory_utilization(self) -> float:
        return self.mem.utilization()

    # -- aging ------------------------------------------------------------------------

    def start_aging(self, interval: float = 0.5) -> None:
        """Begin periodic session-table sweeps (idempotent)."""
        if self._aging_started:
            return
        self._aging_started = True

        def loop():
            while True:
                yield self.engine.timeout(interval)
                self.session_table.sweep(self.engine.now)

        self.engine.process(loop(), name=f"{self.name}.aging")

    # -- crash injection -----------------------------------------------------------------

    def crash(self) -> None:
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    # -- CPU-charged execution helper -------------------------------------------------------

    def charge(self, cycles: float, fn: Callable[[], None]) -> bool:
        """Run ``fn`` after ``cycles`` of CPU time; False = drop-tail.

        Under :attr:`CpuResource.direct_dispatch` the completion callback
        is scheduled straight on the engine — same completion instant and
        micro-queue position as the event-driven path, minus one Event,
        one Process, and one generator per packet."""
        if CpuResource.direct_dispatch:
            if self.cpu.try_submit_call(cycles, self.cost_model.max_cpu_backlog,
                                        fn):
                return True
            self.stats.cpu_drops += 1
            self.trace.emit("pkt.cpu_drop", vswitch=self.name)
            return False
        job = self.cpu.try_submit(cycles, self.cost_model.max_cpu_backlog)
        if job is None:
            self.stats.cpu_drops += 1
            self.trace.emit("pkt.cpu_drop", vswitch=self.name)
            return False

        def runner():
            yield job
            fn()

        self.engine.process(runner(), name=f"{self.name}.job")
        return True

    def charge_batch(self, cycles: float, n_packets: int,
                     fn: Callable[[], None]) -> bool:
        """Run ``fn`` after ``cycles`` of CPU time charged as *one* job
        covering a burst of ``n_packets``; drop-tail rejects the whole
        burst (``cpu_drops`` still counts every packet)."""
        if CpuResource.direct_dispatch:
            if self.cpu.try_submit_call(cycles, self.cost_model.max_cpu_backlog,
                                        fn):
                return True
            self.stats.cpu_drops += n_packets
            for _ in range(n_packets):
                self.trace.emit("pkt.cpu_drop", vswitch=self.name)
            return False
        job = self.cpu.try_submit(cycles, self.cost_model.max_cpu_backlog)
        if job is None:
            self.stats.cpu_drops += n_packets
            for _ in range(n_packets):
                self.trace.emit("pkt.cpu_drop", vswitch=self.name)
            return False

        def runner():
            yield job
            fn()

        self.engine.process(runner(), name=f"{self.name}.job")
        return True

    # -- packet entry points ---------------------------------------------------------------

    def send_from_vnic(self, vnic: Vnic, packet: Packet) -> None:
        """Guest egress (TX)."""
        if self.crashed:
            self.stats.crashed_drops += 1
            return
        if vnic.host is not self:
            raise ConfigError(f"{vnic!r} is not hosted by {self.name}")
        self.stats.tx_packets += 1
        vnic.tx_sent += 1
        if _spans.ACTIVE:
            _spans.hop(packet, "vswitch_in", self.engine.now)
        self.datapath_for(vnic).handle_tx(vnic, packet)

    def send_from_vnic_burst(self, vnic: Vnic, packets: List[Packet]) -> None:
        """Guest egress (TX), burst variant: the whole per-flow burst
        enters the datapath together."""
        if self.crashed:
            self.stats.crashed_drops += len(packets)
            return
        if vnic.host is not self:
            raise ConfigError(f"{vnic!r} is not hosted by {self.name}")
        self.stats.tx_packets += len(packets)
        vnic.tx_sent += len(packets)
        if _spans.ACTIVE:
            now = self.engine.now
            for packet in packets:
                _spans.hop(packet, "vswitch_in", now)
        self.datapath_for(vnic).handle_tx_burst(vnic, packets)

    def send_from_vnic_run(self, vnic: Vnic, packet: Packet,
                           count: int) -> None:
        """Guest egress (TX), fluid variant: ``packet`` is a template
        standing for ``count`` identical packets. With telemetry spans
        active the run re-materializes immediately — spans annotate
        individual packets, and observation purity beats speed."""
        if self.crashed:
            self.stats.crashed_drops += count
            return
        if vnic.host is not self:
            raise ConfigError(f"{vnic!r} is not hosted by {self.name}")
        if _spans.ACTIVE:
            self.send_from_vnic_burst(
                vnic, [packet.copy() for _ in range(count)])
            return
        self.stats.tx_packets += count
        vnic.tx_sent += count
        self.datapath_for(vnic).handle_tx_run(vnic, packet, count)

    def _fabric_sink(self, packet: Packet) -> None:
        """Underlay arrival: classify by outer headers."""
        if self.crashed:
            self.stats.crashed_drops += 1
            return
        udp = packet.find(UdpHeader)
        if udp is not None and udp.dst_port == NSH_PORT:
            self.stats.nsh_received += 1
            if self.nsh_handler is not None:
                self.nsh_handler(packet)
            return
        if udp is not None and udp.dst_port == PROBE_PORT:
            self._answer_probe(packet)
            return
        vxlan = packet.find(VxlanHeader)
        if vxlan is not None:
            self._handle_overlay_rx(packet, vxlan.vni)
            return
        # Probe replies and unknown traffic terminate here.
        reply_port = packet.meta.get("probe_reply_port")
        if reply_port is not None:
            for callback in self._probe_reply_cbs:
                callback(packet)

    def on_probe_reply(self, callback: Callable[[Packet], None]) -> None:
        """Register a callback for probe replies (several pingers may
        share one vSwitch; each filters by its own sequence space)."""
        self._probe_reply_cbs.append(callback)

    def _answer_probe(self, packet: Packet) -> None:
        """Health probe (§4.4): flow-direct to the vSwitch VF, so a live
        vSwitch answers even under load — crash means silence."""
        outer_ip = packet.expect(IPv4Header)
        udp = packet.expect(UdpHeader)

        def reply():
            self.stats.probes_answered += 1
            resp = Packet.udp(outer_ip.dst, outer_ip.src,
                              PROBE_PORT, udp.src_port, payload=packet.payload)
            resp.meta["probe_reply_port"] = udp.src_port
            wrapped = Packet(
                [EthernetHeader(MacAddress.broadcast(), self.server.mac)]
                + resp.layers, resp.payload, dict(resp.meta))
            self.server.send_to_fabric(wrapped)

        self.charge(self.cost_model.fast_path_cycles, reply)

    def _handle_overlay_rx(self, packet: Packet, vni: int) -> None:
        self.stats.rx_packets += 1
        if _spans.ACTIVE:
            _spans.hop(packet, "vswitch_rx", self.engine.now)
        outer_ip = packet.find(IPv4Header)
        outer_src = outer_ip.src if outer_ip is not None else None
        packet.decap_until(VxlanHeader)
        packet.decap(1)                      # VXLAN
        packet.decap_until(IPv4Header)       # inner Ethernet
        inner_ip = packet.expect(IPv4Header)
        vnic = self.vnic_for(vni, inner_ip.dst)
        if vnic is None:
            if (self.overlay_fallback is not None
                    and self.overlay_fallback(packet, vni, outer_src)):
                return
            self.stats.unknown_vnic_drops += 1
            self.trace.emit("pkt.unknown_vnic", vswitch=self.name, vni=vni)
            return
        if inner_ip.dst != vnic.tenant_ip:
            # Arrived via a vNIC alias (NAT44 external address): translate
            # back before the session lookup so bidirectional flows share
            # one entry.
            packet.meta["nat_original_dst"] = inner_ip.dst
            inner_ip.dst = vnic.tenant_ip
            packet.invalidate_flow_cache()
        self.datapath_for(vnic).handle_rx(vnic, packet, outer_src)

    def _fabric_sink_run(self, packet: Packet, count: int) -> None:
        """Fluid underlay arrival: one template for ``count`` packets.

        Only VXLAN overlay traffic rides runs (the fluid TX path emits
        nothing else); spans active or any non-overlay template falls
        back to per-packet sinking of materialized copies."""
        if self.crashed:
            self.stats.crashed_drops += count
            return
        vxlan = packet.find(VxlanHeader)
        if vxlan is None or _spans.ACTIVE:
            for _ in range(count):
                self._fabric_sink(packet.copy())
            return
        self.stats.rx_packets += count
        outer_ip = packet.find(IPv4Header)
        outer_src = outer_ip.src if outer_ip is not None else None
        packet.decap_until(VxlanHeader)
        packet.decap(1)                      # VXLAN
        packet.decap_until(IPv4Header)       # inner Ethernet
        inner_ip = packet.expect(IPv4Header)
        vni = vxlan.vni
        vnic = self.vnic_for(vni, inner_ip.dst)
        if vnic is None:
            # Fallback consumption is a function of packet content, so one
            # probe decides the whole (identical-packet) run.
            if (self.overlay_fallback is not None
                    and self.overlay_fallback(packet.copy(), vni, outer_src)):
                for _ in range(count - 1):
                    self.overlay_fallback(packet.copy(), vni, outer_src)
                return
            self.stats.unknown_vnic_drops += count
            for _ in range(count):
                self.trace.emit("pkt.unknown_vnic", vswitch=self.name,
                                vni=vni)
            return
        if inner_ip.dst != vnic.tenant_ip:
            # NAT alias ingress rewrites headers per packet: materialize.
            for _ in range(count):
                copy = packet.copy()
                copy.meta["nat_original_dst"] = copy.expect(IPv4Header).dst
                copy.expect(IPv4Header).dst = vnic.tenant_ip
                copy.invalidate_flow_cache()
                self.datapath_for(vnic).handle_rx(vnic, copy, outer_src)
            return
        self.datapath_for(vnic).handle_rx_run(vnic, packet, count, outer_src)

    # -- underlay transmission helper ----------------------------------------------------------

    def forward_overlay(self, packet: Packet, action: FinalAction) -> None:
        """Encapsulate per the final action and emit to the fabric."""
        if action.next_hop_ip is None:
            self.stats.no_route_drops += 1
            self.trace.emit("pkt.no_route", vswitch=self.name)
            return
        if _spans.ACTIVE:
            _spans.hop(packet, "fabric_tx", self.engine.now)
        entropy = 49152 + (packet.five_tuple().hash() & 0x3FFF)
        wrapped = make_underlay_transport(
            self.server.mac, action.next_hop_mac or MacAddress.broadcast(),
            self.server.underlay_ip, action.next_hop_ip,
            packet, vni=action.vni, src_port=entropy)
        self.stats.forwarded += 1
        self.server.send_to_fabric(wrapped)
        if action.mirror_to is not None:
            self.stats.mirrored += 1
            mirror = make_underlay_transport(
                self.server.mac, MacAddress.broadcast(),
                self.server.underlay_ip, action.mirror_to,
                packet.copy(), vni=action.vni, src_port=entropy)
            self.server.send_to_fabric(mirror)

    def encap_template(self, entry, next_hop_ip: IPv4Address,
                       next_hop_mac: MacAddress, vni: int,
                       src_port: int) -> EncapTemplate:
        """The entry's cached :class:`EncapTemplate`, (re)built when the
        route key changed since it was cached."""
        tmpl = entry.encap if entry is not None else None
        if tmpl is None or not tmpl.matches(
                self.server.mac, next_hop_mac, self.server.underlay_ip,
                next_hop_ip, vni, src_port):
            tmpl = EncapTemplate(self.server.mac, next_hop_mac,
                                 self.server.underlay_ip, next_hop_ip,
                                 vni, src_port)
            if entry is not None:
                entry.encap = tmpl
        return tmpl

    def forward_overlay_burst(
            self, routed: List[Tuple[Packet, FinalAction]],
            entry=None) -> None:
        """Encapsulate a burst of (packet, action) pairs and emit them to
        the fabric as one serialized train. Per-packet encapsulation,
        entropy, and mirror handling match :meth:`forward_overlay`
        exactly; only the uplink scheduling is coalesced. When the
        caller's session ``entry`` is given (and flow records are on),
        the constant outer headers come from its cached
        :class:`EncapTemplate` instead of being rebuilt per packet."""
        out: List[Packet] = []
        use_template = FlowRecordStore.enabled
        for packet, action in routed:
            if action.next_hop_ip is None:
                self.stats.no_route_drops += 1
                self.trace.emit("pkt.no_route", vswitch=self.name)
                continue
            if _spans.ACTIVE:
                _spans.hop(packet, "fabric_tx", self.engine.now)
            entropy = 49152 + (packet.five_tuple().hash() & 0x3FFF)
            if use_template:
                tmpl = self.encap_template(
                    entry, action.next_hop_ip,
                    action.next_hop_mac or MacAddress.broadcast(),
                    action.vni, entropy)
                wrapped = tmpl.wrap(packet)
            else:
                wrapped = make_underlay_transport(
                    self.server.mac,
                    action.next_hop_mac or MacAddress.broadcast(),
                    self.server.underlay_ip, action.next_hop_ip,
                    packet, vni=action.vni, src_port=entropy)
            self.stats.forwarded += 1
            out.append(wrapped)
            if action.mirror_to is not None:
                self.stats.mirrored += 1
                out.append(make_underlay_transport(
                    self.server.mac, MacAddress.broadcast(),
                    self.server.underlay_ip, action.mirror_to,
                    packet.copy(), vni=action.vni, src_port=entropy))
        if out:
            self.server.send_to_fabric_burst(out)

    def forward_overlay_run(self, entry, packet: Packet, count: int,
                            next_hop_ip: Optional[IPv4Address],
                            next_hop_mac: Optional[MacAddress],
                            vni: int) -> None:
        """Fluid forward: wrap the template once and emit one run
        descriptor; the fabric advances it analytically."""
        if next_hop_ip is None:
            self.stats.no_route_drops += count
            for _ in range(count):
                self.trace.emit("pkt.no_route", vswitch=self.name)
            return
        entropy = 49152 + (packet.five_tuple().hash() & 0x3FFF)
        tmpl = self.encap_template(entry, next_hop_ip,
                                   next_hop_mac or MacAddress.broadcast(),
                                   vni, entropy)
        wrapped = tmpl.wrap(packet)
        self.stats.forwarded += count
        self.server.send_to_fabric_run(wrapped, count)


class LocalDatapath(Datapath):
    """The traditional architecture: everything processed on this vSwitch."""

    def __init__(self, vswitch: VSwitch) -> None:
        self.vswitch = vswitch

    # -- shared machinery ---------------------------------------------------------

    def _lookup_or_create(self, vnic: Vnic, packet: Packet,
                          direction: Direction):
        """Fast-path lookup, falling back to the slow path + session insert.

        Returns (entry, cycles) or (None, cycles) when the session table
        rejected the insert.
        """
        vs = self.vswitch
        ft = packet.five_tuple()
        nbytes = packet.wire_length
        entry = vs.session_table.lookup(vnic.vni, ft)
        if entry is not None and entry.pre_actions is None:
            # A STATE_ONLY residue from a Nezha fallback: re-derive the
            # cached flow locally so the session survives un-offloading.
            ctx = LookupContext(
                ft if direction is Direction.TX else ft.reversed(),
                vni=vnic.vni, packet_bytes=nbytes)
            pre, lookup_cycles = vnic.slow_path.lookup(ctx)
            vs.stats.slow_path_lookups += 1
            if not vs.session_table.promote(entry, pre):
                vs.stats.session_full_drops += 1
                return None, lookup_cycles
            cycles = lookup_cycles + vs.cost_model.flow_insert_cycles + \
                nbytes * vs.cost_model.cycles_per_byte
            return entry, cycles
        if entry is not None:
            vs.stats.fast_path_hits += 1
            cycles = vs.cost_model.fast_path_cycles + \
                nbytes * vs.cost_model.cycles_per_byte
            return entry, cycles
        vs.stats.slow_path_lookups += 1
        ctx = LookupContext(ft if direction is Direction.TX else ft.reversed(),
                            vni=vnic.vni, packet_bytes=nbytes)
        pre, lookup_cycles = vnic.slow_path.lookup(ctx)
        state = SessionState(first_direction=direction)
        try:
            entry = vs.session_table.insert(
                vnic.vni, ft, pre, state, vs.engine.now, EntryMode.FULL)
        except TableFull:
            vs.stats.session_full_drops += 1
            vs.trace.emit("pkt.session_full", vswitch=vs.name)
            return None, lookup_cycles
        cycles = lookup_cycles + vs.cost_model.session_setup_cycles + \
            nbytes * vs.cost_model.cycles_per_byte
        return entry, cycles

    @staticmethod
    def _advance_tcp(entry, direction: Direction, packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        if tcp is None or entry.state is None:
            return
        from_initiator = entry.state.first_direction == direction
        entry.state.tcp_state = tcp_transition(
            entry.state.tcp_state, from_initiator, tcp.flags)

    # -- burst classification ------------------------------------------------------

    def _fsm_quiet(self, entry, direction: Direction,
                   packet: Packet) -> bool:
        """True when ``packet`` leaves the session's TCP FSM untouched
        (non-TCP always does). Only such packets may ride a batch: the
        state they are processed against is then provably the state the
        per-packet path would have seen."""
        tcp = packet.find(TcpHeader)
        if tcp is None:
            return True
        state = entry.state
        from_initiator = state.first_direction == direction
        return tcp_transition(state.tcp_state, from_initiator,
                              tcp.flags) == state.tcp_state

    def _classify_run(self, vnic: Vnic, packets: List[Packet], index: int,
                      direction: Direction):
        """Longest batchable run of ``packets[index:]``: consecutive
        packets of one flow whose session entry is a FULL-mode hit and
        whose TCP FSM no packet advances.

        One session lookup covers the whole run. Returns
        ``(entry, run, cycles, next_index, fsm_snap, run_bytes)``;
        ``entry is None`` means ``packets[index]`` must take the
        per-packet path (miss, STATE_ONLY residue, or an FSM-advancing
        packet). ``fsm_snap`` is the TCP FSM state the run was classified
        against: completion may process the run aggregately only while
        the live state still equals it (the CPU queue can delay
        completion past an FSM-advancing packet of the same session).
        """
        vs = self.vswitch
        first = packets[index]
        entry = vs.session_table.lookup(vnic.vni, first.five_tuple())
        if (entry is None or entry.pre_actions is None
                or entry.state is None
                or not self._fsm_quiet(entry, direction, first)):
            return None, None, 0.0, index + 1, None, 0
        ft = first.five_tuple()
        # Same flow key => same inner proto, so one check covers the run:
        # non-TCP flows carry no FSM and every packet is trivially quiet.
        tcp_flow = ft.proto == PROTO_TCP
        per_byte = vs.cost_model.cycles_per_byte
        base = vs.cost_model.fast_path_cycles
        run = [first]
        nbytes = first.wire_length
        cycles = base + nbytes * per_byte
        j = index + 1
        n = len(packets)
        while j < n:
            packet = packets[j]
            pft = packet.five_tuple()
            if pft is not ft and pft != ft:
                break
            if tcp_flow and not self._fsm_quiet(entry, direction, packet):
                break
            run.append(packet)
            wire = packet.wire_length
            nbytes += wire
            cycles += base + wire * per_byte
            j += 1
        vs.stats.fast_path_hits += len(run)
        return entry, run, cycles, j, entry.state.tcp_state, nbytes

    # -- TX ------------------------------------------------------------------------

    def handle_tx(self, vnic: Vnic, packet: Packet) -> None:
        if Datapath.batching:
            self.handle_tx_burst(vnic, [packet])
        else:
            self._tx_single(vnic, packet)

    def handle_tx_burst(self, vnic: Vnic, packets: List[Packet]) -> None:
        """Vectorized TX: batchable runs pay one lookup and one CPU
        transaction; everything else falls back to the per-packet slow
        path at its position in the burst."""
        if not Datapath.batching:
            for packet in packets:
                self._tx_single(vnic, packet)
            return
        vs = self.vswitch
        encap = vs.cost_model.encap_cycles
        index = 0
        n = len(packets)
        while index < n:
            entry, run, cycles, index, snap, nbytes = self._classify_run(
                vnic, packets, index, Direction.TX)
            if entry is None:
                self._tx_single(vnic, packets[index - 1])
                continue
            vs.charge_batch(
                cycles + len(run) * encap, len(run),
                lambda e=entry, r=run, s=snap, b=nbytes:
                    self._complete_tx_batch(vnic, e, r, s, b))

    def _tx_run_eligible(self, entry, fsm_snap) -> bool:
        """May a charged TX run complete through the flow-record fast
        path? Requires a live slot, an unmoved TCP FSM (every packet was
        verified quiet against ``fsm_snap`` at classify time), and no
        per-packet header work (NAT rewrite, mirroring)."""
        if not FlowRecordStore.enabled or entry.slot < 0:
            return False
        if fsm_snap is not None and entry.state.tcp_state is not fsm_snap:
            return False
        pre = entry.pre_actions.tx
        return pre.nat_src is None and pre.mirror_to is None

    def _complete_tx_batch(self, vnic: Vnic, entry, packets,
                           fsm_snap=None, run_bytes: int = -1) -> None:
        vs = self.vswitch
        if entry.pre_actions is None or entry.state is None:
            # Offloaded (entry demoted) while the job sat in the CPU
            # queue; the burst is lost like any in-flight packets during
            # a reconfiguration.
            vs.stats.cpu_drops += len(packets)
            return
        if (run_bytes >= 0 and not _spans.ACTIVE
                and self._tx_run_eligible(entry, fsm_snap)):
            self._complete_tx_run(vnic, entry, packets, run_bytes)
            return
        routed = []
        for packet in packets:
            self._advance_tcp(entry, Direction.TX, packet)
            entry.state.touch(vs.engine.now)
            action = process_pkt(Direction.TX, entry.pre_actions,
                                 entry.state, packet.wire_length)
            if action.is_drop:
                vs.stats.acl_drops += 1
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name,
                              direction="tx")
                continue
            pre = entry.pre_actions.tx
            if not _qos_admits(vs, vnic, pre, packet.wire_length):
                continue
            if pre.nat_src is not None:
                packet.inner_ipv4().src = pre.nat_src
                packet.invalidate_flow_cache()
            if (vnic.stateful_decap
                    and entry.state.decap_overlay_src is not None):
                action.next_hop_ip = entry.state.decap_overlay_src
                action.next_hop_mac = None
            routed.append((packet, action))
        vs.forward_overlay_burst(routed, entry)

    def _complete_tx_run(self, vnic: Vnic, entry, packets,
                         run_bytes: int) -> None:
        """Aggregate TX completion: the whole run is charged, counted,
        and routed without touching per-packet state objects — flow
        statistics land in the session table's record columns, QoS runs
        per packet only when a rate limit is actually attached, and the
        forward reuses the entry's encap template. Per-packet
        observables (acl/qos/no-route traces, admitted prefixes) are
        identical to the per-packet loop."""
        vs = self.vswitch
        state = entry.state
        pre = entry.pre_actions.tx
        n = len(packets)
        now = vs.engine.now
        records = vs.session_table.records
        slot = entry.slot
        if resolve_verdict(Direction.TX, pre, state) is Verdict.DROP:
            vs.stats.acl_drops += n
            for _ in range(n):
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name,
                              direction="tx")
            records.touch(slot, now)
            return
        records.charge(slot, True, n, run_bytes, state.stats_policy.value,
                       now)
        if (vnic.rate_limit_bps is not None
                or pre.rate_limit_bps is not None):
            out = [p for p in packets
                   if _qos_admits(vs, vnic, pre, p.wire_length)]
            if not out:
                return
        else:
            out = packets
        if vnic.stateful_decap and state.decap_overlay_src is not None:
            next_hop_ip, next_hop_mac = state.decap_overlay_src, None
        else:
            next_hop_ip, next_hop_mac = pre.next_hop_ip, pre.next_hop_mac
        if next_hop_ip is None:
            vs.stats.no_route_drops += len(out)
            for _ in range(len(out)):
                vs.trace.emit("pkt.no_route", vswitch=vs.name)
            return
        entropy = 49152 + (out[0].five_tuple().hash() & 0x3FFF)
        tmpl = vs.encap_template(entry, next_hop_ip,
                                 next_hop_mac or MacAddress.broadcast(),
                                 pre.vni, entropy)
        vs.stats.forwarded += len(out)
        vs.server.send_to_fabric_burst([tmpl.wrap(p) for p in out])

    # -- fluid TX (FluidMode) ------------------------------------------------------

    def handle_tx_run(self, vnic: Vnic, packet: Packet, count: int) -> None:
        """Fluid TX: one template packet stands for ``count`` identical
        packets of a long-lived flow. Eligibility mirrors
        :meth:`_classify_run` (FULL hit, FSM-quiet) plus the flow-record
        fast-path conditions; anything else re-materializes into the
        burst path."""
        vs = self.vswitch
        entry = vs.session_table.lookup(vnic.vni, packet.five_tuple())
        if (not Datapath.batching
                or entry is None or entry.pre_actions is None
                or entry.state is None or entry.slot < 0
                or not FlowRecordStore.enabled
                or not self._fsm_quiet(entry, Direction.TX, packet)
                or entry.pre_actions.tx.nat_src is not None
                or entry.pre_actions.tx.mirror_to is not None):
            Datapath.handle_tx_run(self, vnic, packet, count)
            return
        vs.stats.fast_path_hits += count
        cm = vs.cost_model
        wire = packet.wire_length
        cycles = count * (cm.fast_path_cycles + wire * cm.cycles_per_byte
                          + cm.encap_cycles)
        snap = entry.state.tcp_state
        vs.charge_batch(
            cycles, count,
            lambda: self._complete_tx_fluid(vnic, entry, packet, count,
                                            snap, wire))

    def _complete_tx_fluid(self, vnic: Vnic, entry, packet: Packet,
                           count: int, fsm_snap, wire: int) -> None:
        vs = self.vswitch
        if entry.pre_actions is None or entry.state is None:
            vs.stats.cpu_drops += count
            return
        if not self._tx_run_eligible(entry, fsm_snap):
            # Event boundary (FSM moved, route/policy changed) landed
            # while the run sat in the CPU queue: re-materialize and
            # replay the per-packet completion.
            self._complete_tx_batch(vnic, entry,
                                    [packet.copy() for _ in range(count)])
            return
        state = entry.state
        pre = entry.pre_actions.tx
        now = vs.engine.now
        records = vs.session_table.records
        if resolve_verdict(Direction.TX, pre, state) is Verdict.DROP:
            vs.stats.acl_drops += count
            for _ in range(count):
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name,
                              direction="tx")
            records.touch(entry.slot, now)
            return
        records.charge(entry.slot, True, count, count * wire,
                       state.stats_policy.value, now)
        k = count
        if (vnic.rate_limit_bps is not None
                or pre.rate_limit_bps is not None):
            k = _qos_admits_run(vs, vnic, pre, wire, count)
            if k == 0:
                return
        if vnic.stateful_decap and state.decap_overlay_src is not None:
            next_hop_ip, next_hop_mac = state.decap_overlay_src, None
        else:
            next_hop_ip, next_hop_mac = pre.next_hop_ip, pre.next_hop_mac
        vs.forward_overlay_run(entry, packet, k, next_hop_ip, next_hop_mac,
                               pre.vni)

    def _tx_single(self, vnic: Vnic, packet: Packet) -> None:
        vs = self.vswitch
        entry, cycles = self._lookup_or_create(vnic, packet, Direction.TX)
        if entry is None:
            return

        def complete():
            if entry.pre_actions is None or entry.state is None:
                # The vNIC was offloaded (entry demoted) while this job sat
                # in the CPU queue; the packet is lost like any in-flight
                # packet during a reconfiguration.
                vs.stats.cpu_drops += 1
                return
            self._advance_tcp(entry, Direction.TX, packet)
            entry.state.touch(vs.engine.now)
            action = process_pkt(Direction.TX, entry.pre_actions,
                                 entry.state, packet.wire_length)
            if action.is_drop:
                vs.stats.acl_drops += 1
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name, direction="tx")
                return
            pre = entry.pre_actions.tx
            if not _qos_admits(vs, vnic, pre, packet.wire_length):
                return
            if pre.nat_src is not None:
                packet.inner_ipv4().src = pre.nat_src
                packet.invalidate_flow_cache()
            if (vnic.stateful_decap
                    and entry.state.decap_overlay_src is not None):
                action.next_hop_ip = entry.state.decap_overlay_src
                action.next_hop_mac = None
            vs.forward_overlay(packet, action)

        vs.charge(cycles + vs.cost_model.encap_cycles, complete)

    # -- RX --------------------------------------------------------------------------

    def handle_rx(self, vnic: Vnic, packet: Packet,
                  overlay_src: Optional[IPv4Address] = None) -> None:
        if Datapath.batching:
            self.handle_rx_burst(vnic, [packet], overlay_src)
        else:
            self._rx_single(vnic, packet, overlay_src)

    def handle_rx_burst(self, vnic: Vnic, packets: List[Packet],
                        overlay_src: Optional[IPv4Address] = None) -> None:
        """Vectorized RX: mirror of :meth:`handle_tx_burst`."""
        if not Datapath.batching:
            for packet in packets:
                self._rx_single(vnic, packet, overlay_src)
            return
        vs = self.vswitch
        index = 0
        n = len(packets)
        while index < n:
            entry, run, cycles, index, snap, nbytes = self._classify_run(
                vnic, packets, index, Direction.RX)
            if entry is None:
                self._rx_single(vnic, packets[index - 1], overlay_src)
                continue
            if vnic.stateful_decap and overlay_src is not None:
                entry.state.decap_overlay_src = IPv4Address(overlay_src)
            vs.charge_batch(
                cycles, len(run),
                lambda e=entry, r=run, s=snap, b=nbytes:
                    self._complete_rx_batch(vnic, e, r, s, b))

    def _complete_rx_batch(self, vnic: Vnic, entry, packets,
                           fsm_snap=None, run_bytes: int = -1) -> None:
        vs = self.vswitch
        if entry.pre_actions is None or entry.state is None:
            vs.stats.cpu_drops += len(packets)
            return
        if (run_bytes >= 0 and not _spans.ACTIVE
                and FlowRecordStore.enabled and entry.slot >= 0
                and (fsm_snap is None
                     or entry.state.tcp_state is fsm_snap)):
            self._complete_rx_run(vnic, entry, packets, run_bytes)
            return
        for packet in packets:
            self._advance_tcp(entry, Direction.RX, packet)
            entry.state.touch(vs.engine.now)
            action = process_pkt(Direction.RX, entry.pre_actions,
                                 entry.state, packet.wire_length)
            if action.is_drop:
                vs.stats.acl_drops += 1
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name,
                              direction="rx")
                continue
            vs.stats.delivered += 1
            vnic.deliver(packet)

    def _complete_rx_run(self, vnic: Vnic, entry, packets,
                         run_bytes: int) -> None:
        """Aggregate RX completion: mirror of :meth:`_complete_tx_run`
        (the RX pipeline has no QoS or NAT stage)."""
        vs = self.vswitch
        state = entry.state
        pre = entry.pre_actions.rx
        n = len(packets)
        now = vs.engine.now
        records = vs.session_table.records
        slot = entry.slot
        if resolve_verdict(Direction.RX, pre, state) is Verdict.DROP:
            vs.stats.acl_drops += n
            for _ in range(n):
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name,
                              direction="rx")
            records.touch(slot, now)
            return
        records.charge(slot, False, n, run_bytes, state.stats_policy.value,
                       now)
        vs.stats.delivered += n
        vnic.deliver_burst(packets)

    # -- fluid RX (FluidMode) ------------------------------------------------------

    def handle_rx_run(self, vnic: Vnic, packet: Packet, count: int,
                      overlay_src: Optional[IPv4Address] = None) -> None:
        """Fluid RX: mirror of :meth:`handle_tx_run` (no QoS/NAT stage)."""
        vs = self.vswitch
        entry = vs.session_table.lookup(vnic.vni, packet.five_tuple())
        if (not Datapath.batching
                or entry is None or entry.pre_actions is None
                or entry.state is None or entry.slot < 0
                or not FlowRecordStore.enabled
                or not self._fsm_quiet(entry, Direction.RX, packet)):
            Datapath.handle_rx_run(self, vnic, packet, count, overlay_src)
            return
        if vnic.stateful_decap and overlay_src is not None:
            entry.state.decap_overlay_src = IPv4Address(overlay_src)
        vs.stats.fast_path_hits += count
        cm = vs.cost_model
        wire = packet.wire_length
        cycles = count * (cm.fast_path_cycles + wire * cm.cycles_per_byte)
        snap = entry.state.tcp_state
        vs.charge_batch(
            cycles, count,
            lambda: self._complete_rx_fluid(vnic, entry, packet, count,
                                            snap, wire))

    def _complete_rx_fluid(self, vnic: Vnic, entry, packet: Packet,
                           count: int, fsm_snap, wire: int) -> None:
        vs = self.vswitch
        if entry.pre_actions is None or entry.state is None:
            vs.stats.cpu_drops += count
            return
        state = entry.state
        if (not FlowRecordStore.enabled or entry.slot < 0
                or state.tcp_state is not fsm_snap):
            self._complete_rx_batch(vnic, entry,
                                    [packet.copy() for _ in range(count)])
            return
        pre = entry.pre_actions.rx
        now = vs.engine.now
        records = vs.session_table.records
        if resolve_verdict(Direction.RX, pre, state) is Verdict.DROP:
            vs.stats.acl_drops += count
            for _ in range(count):
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name,
                              direction="rx")
            records.touch(entry.slot, now)
            return
        records.charge(entry.slot, False, count, count * wire,
                       state.stats_policy.value, now)
        vs.stats.delivered += count
        vnic.deliver_run(packet, count)

    def _rx_single(self, vnic: Vnic, packet: Packet,
                   overlay_src: Optional[IPv4Address] = None) -> None:
        vs = self.vswitch
        entry, cycles = self._lookup_or_create(vnic, packet, Direction.RX)
        if entry is None:
            return
        if vnic.stateful_decap and overlay_src is not None:
            # Stateful decap (§5.2): remember the overlay source so the
            # response returns through it (the LB), not to the client.
            entry.state.decap_overlay_src = IPv4Address(overlay_src)

        def complete():
            if entry.pre_actions is None or entry.state is None:
                vs.stats.cpu_drops += 1
                return
            self._advance_tcp(entry, Direction.RX, packet)
            entry.state.touch(vs.engine.now)
            action = process_pkt(Direction.RX, entry.pre_actions,
                                 entry.state, packet.wire_length)
            if action.is_drop:
                vs.stats.acl_drops += 1
                vs.trace.emit("pkt.acl_drop", vswitch=vs.name, direction="rx")
                return
            vs.stats.delivered += 1
            vnic.deliver(packet)

        vs.charge(cycles, complete)


def _qos_admits(vs: "VSwitch", vnic: Vnic, pre, nbytes: int,
                vnic_level: bool = True) -> bool:
    """Police the vNIC-level and flow-level egress rate limits.

    ``vnic_level=False`` at an FE: a frontend sees only the flows hashed
    to it, so the vNIC-level (VM-level) limit must be enforced where all
    traffic converges — the BE (§2.3.3); the FE polices flow-level limits
    only.
    """
    now = vs.engine.now
    if vnic_level and vnic.rate_limit_bps is not None:
        if not vs.qos.allow(vnic.vnic_id, -1, vnic.rate_limit_bps,
                            nbytes, now):
            vs.stats.qos_drops += 1
            return False
    if pre is not None and pre.rate_limit_bps is not None:
        if not vs.qos.allow(vnic.vnic_id, pre.qos_class,
                            pre.rate_limit_bps, nbytes, now):
            vs.stats.qos_drops += 1
            return False
    return True


def _qos_admits_run(vs: "VSwitch", vnic: Vnic, pre, nbytes: int, n: int,
                    vnic_level: bool = True) -> int:
    """Run form of :func:`_qos_admits` for ``n`` same-size packets at one
    instant; returns the admitted prefix length. Bucket token state and
    drop counts match ``n`` sequential per-packet calls exactly: packets
    rejected by the vNIC-level bucket never reach the flow-level one."""
    now = vs.engine.now
    k = n
    if vnic_level and vnic.rate_limit_bps is not None:
        k = vs.qos.allow_run(vnic.vnic_id, -1, vnic.rate_limit_bps,
                             nbytes, n, now)
        vs.stats.qos_drops += n - k
    if k and pre is not None and pre.rate_limit_bps is not None:
        admitted = vs.qos.allow_run(vnic.vnic_id, pre.qos_class,
                                    pre.rate_limit_bps, nbytes, k, now)
        vs.stats.qos_drops += k - admitted
        k = admitted
    return k


def make_standard_chain(cost_model: CostModel,
                        acl: Optional[AclTable] = None,
                        mapping: Optional[MappingTable] = None,
                        advanced: bool = False) -> SlowPath:
    """Build the basic 5-table chain (§2.2.2), optionally the 12-table
    advanced variant with policy routing, mirroring and flow logging."""
    tables: List = [
        acl or AclTable(),
        QosTable(),
        PolicyRouteTable(),
        RouteTable(),
        mapping or MappingTable(entry_bytes=cost_model.mapping_entry_bytes),
    ]
    route = tables[3]
    route.add_route(IPv4Address("0.0.0.0"), 0)  # default: route everything
    if advanced:
        tables.extend([MirrorTable(), FlowLogTable(),
                       PolicyRouteTable(), MirrorTable(),
                       FlowLogTable(), QosTable(), PolicyRouteTable()])
    return SlowPath(tables, cost_model)
