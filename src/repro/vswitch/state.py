"""Per-session state: the one thing Nezha keeps local.

A :class:`SessionState` records everything the paper calls *state*: the
first-packet direction (stateful ACL, §5.1), the TCP FSM, flow statistics
whose policy comes from a rule table (§3.2.2), the recorded overlay source
IP for stateful decap (§5.2), and aging metadata (§7.3).

States are fixed-size 64 B slots in production; §7.1 measures the *useful*
content at 5–8 B on average and proposes variable-length states, which
:meth:`SessionState.variable_size` models (the ``fig15``/ablation benches
use it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.net.addr import IPv4Address
from repro.vswitch.tcp_fsm import TcpState

if TYPE_CHECKING:  # pragma: no cover
    from repro.vswitch.actions import Direction


class StatsPolicy(enum.Enum):
    """What flow-level statistics to record — *rule-table-involved* state:
    the policy itself comes from a statistics-policy table lookup, so the
    BE can only learn it via a notify packet (§3.2.2)."""

    NONE = 0
    BYTES = 1
    PACKETS = 2
    FULL = 3

    def to_wire(self) -> bytes:
        return bytes([self.value])

    @classmethod
    def from_wire(cls, data: bytes) -> "StatsPolicy":
        return cls(data[0])


# Aging defaults (seconds). Established flows linger ~8 s on average in the
# paper; half-open (SYN) sessions age fast to blunt SYN floods (§7.3).
AGING_ESTABLISHED = 8.0
AGING_EMBRYONIC = 1.0
AGING_CLOSED = 0.25


@dataclass
class SessionState:
    """Mutable per-session state, stored exactly once (on the BE)."""

    first_direction: Optional["Direction"] = None
    tcp_state: TcpState = TcpState.NONE
    stats_policy: StatsPolicy = StatsPolicy.NONE
    bytes_tx: int = 0
    bytes_rx: int = 0
    packets_tx: int = 0
    packets_rx: int = 0
    # Stateful decap (§5.2): overlay source (the LB's address) recorded on RX.
    decap_overlay_src: Optional[IPv4Address] = None
    created_at: float = 0.0
    last_seen: float = 0.0

    # -- updates ------------------------------------------------------------

    def record_packet(self, direction: "Direction", nbytes: int) -> None:
        """Update statistics according to the active policy."""
        if self.stats_policy is StatsPolicy.NONE:
            return
        if direction.value == "tx":
            if self.stats_policy in (StatsPolicy.BYTES, StatsPolicy.FULL):
                self.bytes_tx += nbytes
            if self.stats_policy in (StatsPolicy.PACKETS, StatsPolicy.FULL):
                self.packets_tx += 1
        else:
            if self.stats_policy in (StatsPolicy.BYTES, StatsPolicy.FULL):
                self.bytes_rx += nbytes
            if self.stats_policy in (StatsPolicy.PACKETS, StatsPolicy.FULL):
                self.packets_rx += 1

    def touch(self, now: float) -> None:
        self.last_seen = now

    # -- aging -----------------------------------------------------------------

    def aging_time(self) -> float:
        """State-dependent idle timeout: short for embryonic sessions."""
        if self.tcp_state in (TcpState.NONE, TcpState.SYN_SENT,
                              TcpState.SYN_RECEIVED):
            return AGING_EMBRYONIC
        if self.tcp_state is TcpState.CLOSED:
            return AGING_CLOSED
        return AGING_ESTABLISHED

    def expired(self, now: float) -> bool:
        return now - self.last_seen > self.aging_time()

    # -- sizing (§7.1) ------------------------------------------------------------

    def variable_size(self) -> int:
        """Bytes of *useful* state, were states variable-length."""
        size = 0
        if self.first_direction is not None:
            size += 1
        if self.tcp_state is not TcpState.NONE:
            size += 1
        if self.stats_policy is not StatsPolicy.NONE:
            size += 1 + 16  # policy byte + counters
        if self.decap_overlay_src is not None:
            size += 4
        size += 4  # aging timestamp, always needed
        return size

    # -- wire form (carried TX-ward in the Nezha header) -----------------------------

    def to_wire(self) -> bytes:
        """Compact encoding of the fields the FE needs (§3.2.1)."""
        direction = (self.first_direction.to_wire()
                     if self.first_direction is not None else b"?")
        decap = (self.decap_overlay_src.to_bytes()
                 if self.decap_overlay_src is not None else b"\x00" * 4)
        has_decap = b"\x01" if self.decap_overlay_src is not None else b"\x00"
        return (direction + bytes([self.tcp_state.value])
                + self.stats_policy.to_wire() + has_decap + decap)

    @classmethod
    def from_wire(cls, data: bytes) -> "SessionState":
        from repro.vswitch.actions import Direction
        if len(data) < 8:
            raise ValueError(f"state blob needs 8B, got {len(data)}")
        state = cls()
        if data[0:1] != b"?":
            state.first_direction = Direction.from_wire(data[0:1])
        state.tcp_state = TcpState(data[1])
        state.stats_policy = StatsPolicy.from_wire(data[2:3])
        if data[3]:
            state.decap_overlay_src = IPv4Address.from_bytes(data[4:8])
        return state
