"""Pre-actions, final actions, and the ``process_pkt`` combinator.

The paper abstracts every NF as ``Action = func(pkt, rules, states)`` and,
with cached flows, ``process_pkt(pre-actions, states)`` (§2.1). Rule-table
lookups yield *preliminary* actions because stateful NFs must still combine
them with session state — the canonical example is the stateful ACL whose
"drop" verdict for RX traffic is overridden for responses to locally
initiated connections (§5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.net.addr import IPv4Address, MacAddress
from repro.vswitch.state import SessionState, StatsPolicy


class Direction(enum.Enum):
    """Packet direction relative to the local VM: TX egress, RX ingress."""

    TX = "tx"
    RX = "rx"

    @property
    def opposite(self) -> "Direction":
        return Direction.RX if self is Direction.TX else Direction.TX

    def to_wire(self) -> bytes:
        return b"T" if self is Direction.TX else b"R"

    @classmethod
    def from_wire(cls, data: bytes) -> "Direction":
        return Direction.TX if data == b"T" else Direction.RX


class Verdict(enum.Enum):
    ACCEPT = "accept"
    DROP = "drop"

    def to_wire(self) -> bytes:
        return b"A" if self is Verdict.ACCEPT else b"D"

    @classmethod
    def from_wire(cls, data: bytes) -> "Verdict":
        return Verdict.ACCEPT if data == b"A" else Verdict.DROP


@dataclass
class PreAction:
    """Rule-lookup result for one direction of a flow."""

    verdict: Verdict = Verdict.ACCEPT
    # Underlay forwarding target for this direction (vNIC-server mapping).
    next_hop_ip: Optional[IPv4Address] = None
    next_hop_mac: Optional[MacAddress] = None
    vni: int = 0
    # NAT44 rewrite to apply to the inner header, if any.
    nat_src: Optional[IPv4Address] = None
    nat_dst: Optional[IPv4Address] = None
    nat_src_port: Optional[int] = None
    nat_dst_port: Optional[int] = None
    # QoS classification.
    qos_class: int = 0
    rate_limit_bps: Optional[float] = None
    # Advanced features.
    mirror_to: Optional[IPv4Address] = None
    stats_policy: StatsPolicy = StatsPolicy.NONE
    # Stateful-ACL marker: verdicts may be overridden by session state.
    stateful_acl: bool = True

    def copy(self) -> "PreAction":
        return replace(self)

    def wire_bytes(self) -> int:
        """Approximate TLV size when carried in a Nezha header."""
        return 16


@dataclass
class PreActions:
    """Bidirectional pre-actions, exactly what a cached flow stores."""

    tx: PreAction = field(default_factory=PreAction)
    rx: PreAction = field(default_factory=PreAction)

    def for_direction(self, direction: Direction) -> PreAction:
        return self.tx if direction is Direction.TX else self.rx

    def copy(self) -> "PreActions":
        return PreActions(self.tx.copy(), self.rx.copy())


class ActionKind(enum.Enum):
    DELIVER = "deliver"       # hand to the local vNIC / VM
    FORWARD = "forward"       # encapsulate and send to next_hop
    DROP = "drop"


@dataclass
class FinalAction:
    """The fully resolved packet action after combining state and rules."""

    kind: ActionKind
    next_hop_ip: Optional[IPv4Address] = None
    next_hop_mac: Optional[MacAddress] = None
    vni: int = 0
    mirror_to: Optional[IPv4Address] = None
    reason: str = ""

    @property
    def is_drop(self) -> bool:
        return self.kind is ActionKind.DROP


def resolve_verdict(direction: Direction, pre: PreAction,
                    state: SessionState) -> Verdict:
    """Combine a directional pre-action with session state (§5.1).

    For a stateful ACL the pre-action verdict is not final: a packet whose
    direction *differs* from the session's first-packet direction belongs
    to a locally- (or remotely-) initiated conversation that was already
    admitted, so it is accepted even when its directional rule says drop.
    Packets in the same direction as the first packet obey the rule.
    """
    if pre.verdict is Verdict.ACCEPT:
        return Verdict.ACCEPT
    if not pre.stateful_acl:
        return pre.verdict
    if state.first_direction is not None and state.first_direction != direction:
        return Verdict.ACCEPT
    return Verdict.DROP


def process_pkt(direction: Direction, pre_actions: PreActions,
                state: SessionState, wire_length: int = 0) -> FinalAction:
    """The fast-path combinator: pre-actions + state → final action.

    This is the *same code* run by a local vSwitch, a Nezha FE (for TX
    packets, with state carried in the packet), and a Nezha BE (for RX
    packets, with pre-actions carried in the packet) — the property the
    paper's separation argument rests on (§3.1).
    """
    pre = pre_actions.for_direction(direction)
    verdict = resolve_verdict(direction, pre, state)
    if verdict is Verdict.DROP:
        return FinalAction(ActionKind.DROP, reason="acl")
    state.record_packet(direction, wire_length)
    if direction is Direction.RX:
        return FinalAction(ActionKind.DELIVER, mirror_to=pre.mirror_to)
    return FinalAction(
        ActionKind.FORWARD,
        next_hop_ip=pre.next_hop_ip,
        next_hop_mac=pre.next_hop_mac,
        vni=pre.vni,
        mirror_to=pre.mirror_to,
    )
