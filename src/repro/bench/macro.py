"""Macro wall-clock benchmarks: sequential vs parallel experiment runs.

Complements the microbenchmarks in :mod:`repro.bench.micro`: instead of
ops/sec on per-packet hot paths, each entry times a whole experiment
sweep twice — ``jobs=1`` (the legacy in-process path) and ``jobs=N``
(the process-pool fan-out) — and records both elapsed times, their
ratio, and whether the two runs rendered byte-identical tables (they
must; a mismatch is reported, not asserted, so a bench run can never
crash on it).

Raw seconds are machine-dependent and the speedup depends on the host's
core count (recorded in the config block), so the tracked JSON is a
provenance record, not a cross-machine gate — CI uploads it as a
non-gating artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.parallel import default_jobs, sweep


@dataclass
class MacroBench:
    """One macro bench: an experiment ``run`` plus scaled-down kwargs."""

    name: str
    description: str
    module: str                 # import path under repro.experiments
    quick_kwargs: Dict[str, object]
    full_kwargs: Dict[str, object]

    def kwargs(self, profile: str) -> Dict[str, object]:
        return dict(self.quick_kwargs if profile == "quick"
                    else self.full_kwargs)


# Scaled parameter sets: "quick" finishes in a couple of minutes on one
# core (CI-friendly); "full" uses each experiment's paper-fidelity
# defaults.
MACRO_BENCHES: List[MacroBench] = [
    MacroBench(
        "fig2", "8 saturated-VM samples (4 in quick mode)", "fig2",
        quick_kwargs=dict(n_vms=4, duration=0.6, concurrency_per_client=16),
        full_kwargs=dict()),
    MacroBench(
        "fig9", "CPS sweep over FE counts", "fig9",
        quick_kwargs=dict(fe_counts=(0, 1, 2, 4), duration=0.5, warmup=0.3,
                          concurrency_per_client=16),
        full_kwargs=dict()),
    MacroBench(
        "fig10", "CPS sweep over vCPU counts, with/without Nezha", "fig10",
        quick_kwargs=dict(vcpu_counts=(16, 32, 64), duration=0.5, warmup=0.3,
                          concurrency_per_client=16),
        full_kwargs=dict()),
    MacroBench(
        "fig12", "probe-latency sweep over load levels", "fig12",
        quick_kwargs=dict(load_levels=(0, 16, 48)),
        full_kwargs=dict()),
    MacroBench(
        "tablea1", "rule-lookup throughput grid (24 cells)", "tablea1",
        quick_kwargs=dict(lookups_per_cell=100),
        full_kwargs=dict()),
    MacroBench(
        "chaos", "fault-injection soak over the failover control plane",
        "chaos",
        quick_kwargs=dict(horizon=4.0, settle=2.5),
        full_kwargs=dict()),
    MacroBench(
        "fleet", "sharded fleet epochs, hot/cold split (400 vSwitches "
        "in quick mode)", "fleet",
        quick_kwargs=dict(n_vswitches=400, epochs=2),
        full_kwargs=dict()),
    MacroBench(
        "policy_arena", "load-sharing policies head-to-head (reduced "
        "testbed + fleet in quick mode)", "policy_arena",
        quick_kwargs=dict(duration=0.4, warmup=0.2,
                          concurrency_per_client=16,
                          fleet_vswitches=300, fleet_epochs=2),
        full_kwargs=dict()),
]

# ``all --fast`` exercises the runner-level fan-out: whole experiments
# in parallel, each sequential inside its worker.
ALL_FAST_NAME = "all_fast"


def _timed(fn: Callable[[], object]) -> Tuple[object, float]:
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def run_macro_bench(bench: MacroBench, jobs: int,
                    profile: str = "quick") -> Dict[str, object]:
    """Time one experiment sequentially and with ``jobs`` workers."""
    import importlib
    module = importlib.import_module(f"repro.experiments.{bench.module}")
    kwargs = bench.kwargs(profile)
    sequential, sequential_s = _timed(lambda: module.run(jobs=1, **kwargs))
    parallel, parallel_s = _timed(lambda: module.run(jobs=jobs, **kwargs))
    return {
        "description": bench.description,
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(sequential_s / parallel_s, 3) if parallel_s else None,
        "rows": len(parallel.rows),
        "identical_output": sequential.to_text() == parallel.to_text(),
    }


def run_all_fast(jobs: int, seed: int = 0) -> Dict[str, object]:
    """Time the ``all --fast`` entry point sequentially vs pooled."""
    from repro.experiments.runner import (FAST_EXPERIMENTS,
                                          _experiment_point, run_experiment)

    def sequential() -> List[str]:
        return [run_experiment(name, seed, jobs=1)[0].to_text()
                for name in FAST_EXPERIMENTS]

    def parallel() -> List[str]:
        return [text for text, _elapsed in
                sweep([(name, seed) for name in FAST_EXPERIMENTS],
                      _experiment_point, jobs=jobs)]

    seq_texts, sequential_s = _timed(sequential)
    par_texts, parallel_s = _timed(parallel)
    return {
        "description": "runner-level fan-out over the 11 fast experiments",
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(sequential_s / parallel_s, 3) if parallel_s else None,
        "rows": len(par_texts),
        "identical_output": seq_texts == par_texts,
    }


def run_telemetry_overhead(profile: str = "quick",
                           repeats: int = 3) -> Dict[str, object]:
    """fig9 wall clock with the telemetry stack installed vs not.

    Checks the telemetry layer's two performance contracts:

    * **tracing-off cost** — with nothing installed every hook is a
      single attribute/module-flag check, so ``off_s`` must stay within
      a few percent of the committed baseline. Raw seconds are
      machine-dependent, so the tracked number is ``normalized_off``:
      seconds times the same pure-python calibration loop the micro
      smoke gate uses (a machine-independent "calibration ops' worth of
      work" figure);
    * **observation purity** — the telemetry-on run must render a
      byte-identical result table (``identical_output``); recording
      never perturbs the simulation.

    Both runs use best-of-``repeats`` after one untimed warm-up (the
    first run of a fresh process pays import/allocator costs that the
    committed min-of-N baseline never sees), and the calibration is
    best-of-3 — single samples of either swing far more than the smoke
    gate's tolerance on small boxes.
    """
    import importlib

    from repro import telemetry
    from repro.bench.micro import _ops_per_sec, calibration_loop

    bench = next(b for b in MACRO_BENCHES if b.name == "fig9")
    module = importlib.import_module(f"repro.experiments.{bench.module}")
    kwargs = bench.kwargs(profile)

    def run_once(with_telemetry: bool) -> Tuple[object, float]:
        if with_telemetry:
            telemetry.install(profile=True)
        try:
            return _timed(lambda: module.run(jobs=1, **kwargs))
        finally:
            if with_telemetry:
                telemetry.uninstall()

    run_once(False)  # warm-up: imports, code objects, allocator pools
    off_result, off_s = run_once(False)
    on_result, on_s = run_once(True)
    for _ in range(max(0, repeats - 1)):
        _ignored, elapsed = run_once(False)
        off_s = min(off_s, elapsed)
        _ignored, elapsed = run_once(True)
        on_s = min(on_s, elapsed)
    calibration = max(_ops_per_sec(calibration_loop, 10_000, 0.1)
                      for _ in range(3))
    return {
        "description": "fig9 (quick) wall clock, telemetry installed vs not",
        "bench": bench.name,
        "profile": profile,
        "repeats": repeats,
        "off_s": round(off_s, 3),
        "on_s": round(on_s, 3),
        "overhead_ratio": round(on_s / off_s, 4) if off_s else None,
        "normalized_off": round(off_s * calibration, 1),
        "calibration_ops_per_sec": round(calibration, 1),
        "identical_output": off_result.to_text() == on_result.to_text(),
    }


def run_macro(jobs: Optional[int] = None, profile: str = "quick",
              include_all_fast: bool = True,
              names: Optional[List[str]] = None) -> Dict[str, Dict]:
    """Run the macro suite; returns ``{bench name: entry}``."""
    jobs = default_jobs() if jobs is None else jobs
    results: Dict[str, Dict] = {}
    for bench in MACRO_BENCHES:
        if names and bench.name not in names:
            continue
        results[bench.name] = run_macro_bench(bench, jobs, profile)
    if include_all_fast and (not names or ALL_FAST_NAME in names):
        results[ALL_FAST_NAME] = run_all_fast(jobs)
    return results
