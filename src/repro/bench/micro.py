"""Microbenchmarks over the per-packet hot paths.

Each :class:`MicroBench` builds a workload once and exposes the optimized
op plus, where the optimization kept its pre-change implementation behind
a legacy switch, the baseline op. The baseline runs the *same workload
through the pre-overhaul code path* (pure-heap engine, uncached chain,
full-scan ACL, per-label percentile sorts), so the recorded speedup is a
true before/after delta on the same machine.

Ops/sec numbers are machine-dependent; speedups and the calibration-
normalized throughputs are not, which is what the CI smoke gate checks
(see ``tools/bench.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.fabric.device import ServerNode
from repro.fabric.link import Link
from repro.metrics.percentiles import STANDARD_LABELS, percentile, \
    percentile_summary
from repro.net.addr import IPv4Address, MacAddress
from repro.net.five_tuple import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.packet import Packet, make_underlay_transport
from repro.sim.engine import Engine
from repro.sim.resources import CpuResource, MemoryBudget
from repro.vswitch.actions import Direction, Verdict
from repro.vswitch.costs import CostModel
from repro.vswitch.flow_records import FlowRecordStore, FluidMode
from repro.vswitch.rule_tables import (AclRule, AclTable, LookupContext,
                                       MappingEntry)
from repro.vswitch.session_table import EntryMode, SessionTable
from repro.vswitch.slow_path import SlowPath
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import Datapath, VSwitch, make_standard_chain


@dataclass
class MicroBench:
    """One benchmark: a setup returning (optimized op, legacy op, ops/call)."""

    name: str
    description: str
    setup: Callable[[], Tuple[Callable[[], object],
                              Optional[Callable[[], object]], int]]


def _legacy_flags(fn: Callable[[], object]) -> Callable[[], object]:
    """Run ``fn`` with every optimization switched to its legacy path."""

    def wrapped() -> object:
        saved = (Engine.micro_queue, SlowPath.caching,
                 AclTable.bucketed, Packet.memoize,
                 Link.burst, Datapath.batching, FiveTuple.memoize_key,
                 CpuResource.direct_dispatch, FlowRecordStore.enabled,
                 FluidMode.enabled)
        Engine.micro_queue = False
        SlowPath.caching = False
        AclTable.bucketed = False
        Packet.memoize = False
        Link.burst = False
        Datapath.batching = False
        FiveTuple.memoize_key = False
        CpuResource.direct_dispatch = False
        FlowRecordStore.enabled = False
        FluidMode.enabled = False
        try:
            return fn()
        finally:
            (Engine.micro_queue, SlowPath.caching,
             AclTable.bucketed, Packet.memoize,
             Link.burst, Datapath.batching, FiveTuple.memoize_key,
             CpuResource.direct_dispatch, FlowRecordStore.enabled,
             FluidMode.enabled) = saved

    return wrapped


def _pre_batching(fn: Callable[[], object]) -> Callable[[], object]:
    """Run ``fn`` on the pre-burst path: PR-1 optimizations stay on, only
    the burst-era switches flip off. The burst benches use this so their
    recorded speedup isolates batching from the earlier cache work."""

    def wrapped() -> object:
        saved = (Link.burst, Datapath.batching, FiveTuple.memoize_key,
                 CpuResource.direct_dispatch, FlowRecordStore.enabled,
                 FluidMode.enabled)
        Link.burst = False
        Datapath.batching = False
        FiveTuple.memoize_key = False
        CpuResource.direct_dispatch = False
        FlowRecordStore.enabled = False
        FluidMode.enabled = False
        try:
            return fn()
        finally:
            (Link.burst, Datapath.batching, FiveTuple.memoize_key,
             CpuResource.direct_dispatch, FlowRecordStore.enabled,
             FluidMode.enabled) = saved

    return wrapped


def _pre_records(fn: Callable[[], object]) -> Callable[[], object]:
    """Run ``fn`` on the pre-flow-records path: burst-era switches stay
    on, only this PR's switches (array-backed records, direct CPU
    dispatch, fluid runs) flip off — the recorded speedup isolates the
    flow-record work from the earlier batching work."""

    def wrapped() -> object:
        saved = (CpuResource.direct_dispatch, FlowRecordStore.enabled,
                 FluidMode.enabled)
        CpuResource.direct_dispatch = False
        FlowRecordStore.enabled = False
        FluidMode.enabled = False
        try:
            return fn()
        finally:
            (CpuResource.direct_dispatch, FlowRecordStore.enabled,
             FluidMode.enabled) = saved

    return wrapped


# -- workload builders -------------------------------------------------------


def _dense_acl_rules(n_rules: int, seed: int = 7) -> List[AclRule]:
    """Rules spread across (proto, direction) that no probe matches, so a
    verdict pays the worst case: a full candidate scan to the default."""
    rng = random.Random(seed)
    rules = []
    protos = (PROTO_TCP, PROTO_UDP, PROTO_ICMP)
    directions = (Direction.TX, Direction.RX, None)
    for i in range(n_rules):
        rules.append(AclRule(
            priority=i % 37,
            verdict=Verdict.DROP,
            direction=directions[i % 3],
            proto=protos[i % 3],
            src_prefix=IPv4Address(rng.getrandbits(32)),
            src_prefix_len=30,
            dst_port_range=(0, 0),      # probes use port 80: never matches
        ))
    return rules


def _probe_tuples(count: int, seed: int = 11) -> List[FiveTuple]:
    rng = random.Random(seed)
    return [FiveTuple(IPv4Address(rng.getrandbits(32)),
                      IPv4Address("10.0.0.2"),
                      PROTO_TCP, rng.randrange(1024, 65536), 80)
            for _ in range(count)]


def _setup_slow_path_lookup():
    cost_model = CostModel()
    acl = AclTable(_dense_acl_rules(240))
    chain = make_standard_chain(cost_model, acl=acl)
    mapping = chain.table("vnic_server_mapping")
    mapping.set_entry(7, IPv4Address("10.0.0.2"),
                      MappingEntry(IPv4Address("172.16.0.2"), MacAddress(2),
                                   vni=7))
    contexts = [LookupContext(ft, vni=7, packet_bytes=64)
                for ft in _probe_tuples(32)]

    def op() -> object:
        out = None
        for ctx in contexts:
            out = chain.lookup(ctx)
        return out

    return op, _legacy_flags(op), len(contexts)


def _setup_acl_verdict():
    acl = AclTable(_dense_acl_rules(240))
    probes = _probe_tuples(32)

    def optimized() -> object:
        out = None
        for ft in probes:
            out = acl._verdict(ft, Direction.TX)
            out = acl._verdict(ft.reversed(), Direction.RX)
        return out

    def legacy() -> object:
        out = None
        for ft in probes:
            out = acl._verdict_scan(ft, Direction.TX)
            out = acl._verdict_scan(ft.reversed(), Direction.RX)
        return out

    optimized()                      # build the buckets outside the clock
    return optimized, legacy, len(probes) * 2


def _setup_session_table():
    cost_model = CostModel()
    mem = MemoryBudget(64 * 1024 * 1024)
    table = SessionTable(mem, cost_model)
    tuples = _probe_tuples(256, seed=23)

    def op() -> object:
        for ft in tuples:
            table.insert(7, ft, None, None, 0.0, EntryMode.FLOWS_ONLY)
        hit = None
        for ft in tuples:
            hit = table.lookup(7, ft)
        for ft in tuples:
            table.remove(7, ft)
        return hit

    # Legacy twin: the uncached session key is rebuilt on every probe
    # (three per tuple here), which is what the burst work memoized.
    return op, _legacy_flags(op), len(tuples) * 3


def _setup_engine_dispatch():
    n_dispatch = 2000

    def op() -> object:
        engine = Engine()
        # Background future work keeps the heap non-trivial, as in a real
        # run where timers and links always have pending entries.
        for i in range(64):
            engine.call_at(1e6 + i, float)
        state = {"count": 0}

        def tick() -> None:
            state["count"] += 1
            if state["count"] < n_dispatch:
                engine.call_soon(tick)

        def proc():
            for _ in range(50):
                yield None           # cooperative yield -> call_soon

        for _ in range(4):
            engine.process(proc())
        engine.call_soon(tick)
        engine.run(until=1.0)
        return state["count"]

    return op, _legacy_flags(op), n_dispatch + 200


def _setup_packet_codec():
    inner = Packet.tcp(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                       1234, 80, payload=b"x" * 64)
    wrapped = make_underlay_transport(
        MacAddress(1), MacAddress(2), IPv4Address("172.16.0.1"),
        IPv4Address("172.16.0.2"), inner, vni=7)
    wire = wrapped.encode()
    batch = 16

    def op() -> object:
        out = None
        for _ in range(batch):
            out = Packet.decode(wire, first_layer="ethernet").encode()
        assert out == wire
        return out

    # Legacy twin: the same round trip with every switch (packet
    # memoization included) off. The codec itself has no cached fast
    # path, so the recorded speedup is ~1x — the committed baseline
    # makes that visible and lets the smoke gate catch a real
    # regression in either direction of the pair.
    return op, _legacy_flags(op), batch


def _setup_packet_copy_fivetuple():
    inner = Packet.tcp(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                       1234, 80, payload=b"x" * 64)
    wrapped = make_underlay_transport(
        MacAddress(1), MacAddress(2), IPv4Address("172.16.0.1"),
        IPv4Address("172.16.0.2"), inner, vni=7)
    batch = 32

    def op() -> object:
        out = None
        for _ in range(batch):
            hop = wrapped.copy()
            out = (hop.five_tuple(), hop.five_tuple(),
                   hop.wire_length, hop.wire_length)
        return out

    return op, _legacy_flags(op), batch


def _setup_link_burst_transmit():
    engine = Engine()
    sender = ServerNode(engine, "bench-a", IPv4Address("172.16.9.1"),
                        MacAddress(0xA1))
    receiver = ServerNode(engine, "bench-b", IPv4Address("172.16.9.2"),
                          MacAddress(0xA2))
    Link(engine, sender.free_port(), receiver.free_port())
    inner = Packet.tcp(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                       1234, 80, payload=b"x" * 256)
    wrapped = make_underlay_transport(
        MacAddress(1), MacAddress(2), IPv4Address("172.16.9.1"),
        IPv4Address("172.16.9.2"), inner, vni=7)
    burst = [wrapped.copy() for _ in range(32)]

    def op() -> object:
        sender.send_to_fabric_burst(burst)
        engine.run()
        return receiver.rx_packets

    return op, _pre_batching(op), len(burst)


def _setup_datapath_burst_hit():
    engine = Engine()
    server = ServerNode(engine, "bench-s", IPv4Address("172.16.9.9"),
                        MacAddress(0xA9))
    cost_model = CostModel()
    vswitch = VSwitch(engine, server, cost_model)
    vnic = Vnic(1, 7, IPv4Address("10.0.0.2"), MacAddress(2),
                make_standard_chain(cost_model))
    vswitch.add_vnic(vnic)
    vnic.attach_guest(lambda pkt: None)
    datapath = vswitch.datapath_for(vnic)
    # One UDP flow: the first packet walks the slow path and creates the
    # session; every benched packet is then a pure fast-path hit with no
    # TCP FSM to consult — the batchable steady state.
    pkt = Packet.udp(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                     4242, 5353, payload=b"x" * 256)
    datapath.handle_rx(vnic, pkt)
    engine.run()
    assert vswitch.stats.delivered == 1
    burst = [pkt.copy() for _ in range(32)]

    def op() -> object:
        datapath.handle_rx_burst(vnic, burst)
        engine.run()
        return vswitch.stats.delivered

    return op, _pre_batching(op), len(burst)


def _setup_flow_record_hit():
    engine = Engine()
    server = ServerNode(engine, "bench-s", IPv4Address("172.16.9.9"),
                        MacAddress(0xA9))
    cost_model = CostModel()
    vswitch = VSwitch(engine, server, cost_model)
    vnic = Vnic(1, 7, IPv4Address("10.0.0.2"), MacAddress(2),
                make_standard_chain(cost_model))
    vswitch.add_vnic(vnic)
    vnic.attach_guest(lambda pkt: None)
    datapath = vswitch.datapath_for(vnic)
    pkt = Packet.udp(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                     4242, 5353, payload=b"x" * 256)
    datapath.handle_rx(vnic, pkt)
    engine.run()
    assert vswitch.stats.delivered == 1
    burst = [pkt.copy() for _ in range(32)]

    def op() -> object:
        datapath.handle_rx_burst(vnic, burst)
        engine.run()
        return vswitch.stats.delivered

    # Legacy twin keeps the burst machinery on and flips only this PR's
    # switches: the classified run is charged per packet through
    # SessionState objects instead of the array-backed store.
    return op, _pre_records(op), len(burst)


def _setup_fluid_fastforward():
    engine = Engine()
    server = ServerNode(engine, "bench-s", IPv4Address("172.16.9.9"),
                        MacAddress(0xA9))
    cost_model = CostModel()
    vswitch = VSwitch(engine, server, cost_model)
    vnic = Vnic(1, 7, IPv4Address("10.0.0.2"), MacAddress(2),
                make_standard_chain(cost_model))
    vswitch.add_vnic(vnic)
    # A run-aware guest: fluid delivery stays one descriptor end-to-end.
    vnic.attach_guest(lambda pkt: None, lambda pkt, n: None)
    datapath = vswitch.datapath_for(vnic)
    pkt = Packet.udp(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
                     4242, 5353, payload=b"x" * 256)
    datapath.handle_rx(vnic, pkt)
    engine.run()
    assert vswitch.stats.delivered == 1
    run_len = 32

    def op() -> object:
        datapath.handle_rx_run(vnic, pkt, run_len)
        engine.run()
        return vswitch.stats.delivered

    # Legacy twin: with the record store off the run materializes into
    # 32 copies and replays the burst path — the speedup is the fluid
    # fast-forward's alone.
    return op, _pre_records(op), run_len


def _legacy_percentile_summary(data) -> Dict[str, float]:
    """The pre-overhaul implementation: one full sort per label."""
    summary = {}
    for label, q in STANDARD_LABELS:
        if q < 0:
            summary[label] = sum(data) / len(data) if data else 0.0
        else:
            summary[label] = percentile(data, q) if data else 0.0
    return summary


def _setup_percentile_summary():
    rng = random.Random(5)
    data = [rng.expovariate(1.0) for _ in range(4000)]

    def optimized() -> object:
        return percentile_summary(data)

    def legacy() -> object:
        return _legacy_percentile_summary(data)

    assert optimized() == legacy()
    return optimized, legacy, 1


BENCHES: Tuple[MicroBench, ...] = (
    MicroBench("slow_path_lookup",
               "full 5-table chain lookup, 240 ACL rules (Table A1's op)",
               _setup_slow_path_lookup),
    MicroBench("acl_verdict",
               "ACL verdict for both directions, 240 rules, worst-case miss",
               _setup_acl_verdict),
    MicroBench("session_table",
               "session-table insert + exact-match hit + remove",
               _setup_session_table),
    MicroBench("engine_dispatch",
               "same-time callback dispatch with a non-trivial heap",
               _setup_engine_dispatch),
    MicroBench("packet_codec",
               "VXLAN overlay packet decode+encode round trip",
               _setup_packet_codec),
    MicroBench("packet_copy_fivetuple",
               "per-hop packet copy + repeated flow-key/wire-length reads",
               _setup_packet_copy_fivetuple),
    MicroBench("percentile_summary",
               "avg/P50..P9999 summary over 4000 samples",
               _setup_percentile_summary),
    MicroBench("link_burst_transmit",
               "32-packet burst over one link vs per-packet transmits",
               _setup_link_burst_transmit),
    MicroBench("datapath_burst_hit",
               "32-packet same-flow RX burst through the vSwitch fast path",
               _setup_datapath_burst_hit),
    MicroBench("flow_record_hit",
               "32-packet burst charged to array-backed flow records "
               "vs per-packet SessionState objects",
               _setup_flow_record_hit),
    MicroBench("fluid_fastforward",
               "32-packet fluid run (one descriptor end-to-end) vs "
               "materialized burst replay",
               _setup_fluid_fastforward),
)


# -- measurement --------------------------------------------------------------


def _ops_per_sec(fn: Callable[[], object], ops_per_call: int,
                 target_seconds: float) -> float:
    fn()                              # warmup / lazy-build outside the clock
    calls = 1
    while True:
        start = perf_counter()
        for _ in range(calls):
            fn()
        elapsed = perf_counter() - start
        if elapsed >= target_seconds:
            return calls * ops_per_call / elapsed
        calls *= 2


def calibration_loop() -> int:
    """A fixed pure-python loop used to normalize ops/sec across machines."""
    acc = 0
    for i in range(10_000):
        acc = (acc + i * i) & 0xFFFFFF
    return acc


def run_bench(bench: MicroBench,
              target_seconds: float = 0.25) -> Dict[str, Optional[float]]:
    optimized, legacy, ops = bench.setup()
    result: Dict[str, Optional[float]] = {
        "description": bench.description,
        "ops_per_sec": _ops_per_sec(optimized, ops, target_seconds),
        "baseline_ops_per_sec": None,
        "speedup": None,
    }
    if legacy is not None:
        baseline = _ops_per_sec(legacy, ops, target_seconds)
        result["baseline_ops_per_sec"] = baseline
        result["speedup"] = result["ops_per_sec"] / baseline
    return result


def run_all(target_seconds: float = 0.25) -> Dict[str, Dict]:
    calibration = _ops_per_sec(calibration_loop, 10_000, target_seconds)
    results: Dict[str, Dict] = {}
    for bench in BENCHES:
        entry = run_bench(bench, target_seconds)
        entry["normalized"] = entry["ops_per_sec"] / calibration
        results[bench.name] = entry
    results["_calibration_ops_per_sec"] = calibration
    return results
