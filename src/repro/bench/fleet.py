"""Fleet-scale wall-clock and peak-memory benchmarks (BENCH_fleet.json).

Each scale point runs the ``fleet`` experiment twice: once untraced for
an honest wall clock, once under :mod:`tracemalloc` for the peak-memory
high-water mark. The headline number is ``peak_over_naive``: measured
peak divided by what the same live-flow population would cost as *naive
per-object sessions* — one boxed
:class:`~repro.vswitch.state.SessionState` per flow in a dict, the
representation the flyweight store replaces. The per-object cost is
itself measured (tracemalloc over a sampled allocation, extrapolated),
not assumed, and deliberately conservative: the real naive layout would
also pay for a FiveTuple key object per flow.

The ISSUE 7 acceptance bar — peak at 10K vSwitches ≤ 25% of naive — is
checked by the full run and recorded in the JSON; the CI smoke re-runs
the reduced scale point and gates its peak against the committed
baseline (``gate_tolerance`` travels in the JSON, the
BENCH_fastpath.json idiom).
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Dict, Optional

#: Scale points for the tracked full run. 100K is the PR 8 headline:
#: the vectorized cold tail plus fluid hot sims keep it tractable on a
#: single core, and the flyweight ratio bar holds an order of magnitude
#: past the paper's fleet size.
SCALES = (1_000, 10_000, 100_000)
#: The reduced scale the CI fleet-smoke job re-measures.
SMOKE_SCALE = 500
SMOKE_SHARDS = 2
#: Scale for the smoke's resident-pool identity check (kept below
#: SMOKE_SCALE so the extra two runs stay cheap in CI).
RESIDENT_SMOKE_SCALE = 400
#: Worker/shard count for the per-scale resident-mode measurement.
RESIDENT_SHARDS = 2
RESIDENT_JOBS = 2
#: Worker counts the resident measurement sweeps: jobs=1 is the
#: in-process pseudo-pool (no IPC, the fork/pipe cost isolated away),
#: jobs=2 the real two-worker pool — their per-phase walls answer
#: "where does --jobs time go" (ROADMAP: true multi-core numbers).
RESIDENT_JOBS_SWEEP = (1, 2)
#: Scale for the telemetry-overhead measurement. Larger than the quick
#: profile (1000 vSwitches x 3 epochs, ~0.4s untraced) so the 2% gate
#: measures the hooks, not scheduler noise on a 0.1s run.
OVERHEAD_SCALE = 1_000
OVERHEAD_EPOCHS = 3
#: Smoke-gate slack on the tracing-off fleet wall clock
#: (calibration-normalized): the ISSUE 10 bar — the disabled metric
#: hooks must stay within 2% of the committed baseline.
TELEMETRY_GATE_TOLERANCE = 0.02
#: Smoke-gate slack on peak memory: at 500 vSwitches fixed overheads
#: (imports, code objects, the hot micro-sims' engines) are a large
#: share of a small peak, so the gate is loose; the ratio bar is what
#: the full 10K run enforces.
SMOKE_GATE_TOLERANCE = 0.50
#: ISSUE 7 acceptance bar, recorded with every full-scale entry.
NAIVE_RATIO_CEILING = 0.25


def measure_naive_bytes_per_flow(sample: int = 20_000) -> float:
    """Measured cost of one flow as a boxed SessionState in a dict."""
    from repro.vswitch.state import SessionState
    tracemalloc.start()
    try:
        before, _peak = tracemalloc.get_traced_memory()
        table = {index: SessionState() for index in range(sample)}
        after, _peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    del table
    return (after - before) / sample


def run_fleet_point(n_vswitches: int, epochs: int = 3, seed: int = 0,
                    shards: int = 1, measure_wall: bool = True,
                    measure_resident: bool = False) -> Dict[str, object]:
    """One scale point: wall clock (untraced) + tracemalloc peak.

    The untraced run also records per-phase timings — the seed epoch
    (every cold flow is born: bulk slot allocation dominates) vs the
    steady epochs (vectorized cold tail + hot micro-sims) — so the
    benches can tell allocation cost from per-epoch cost.

    ``measure_resident`` adds a third run on the resident worker pool
    (``RESIDENT_SHARDS`` shards × ``RESIDENT_JOBS`` workers) and records
    its IPC accounting: ``ipc_bytes_per_epoch`` must stay flat —
    proportional to the hot-report count, independent of the flyweight
    state size — or state has started round-tripping again (DESIGN
    §5.7).
    """
    from repro.experiments.fleet import run

    kwargs = dict(n_vswitches=n_vswitches, epochs=epochs, seed=seed,
                  shards=shards, jobs=1)
    naive_per_flow = measure_naive_bytes_per_flow()

    wall_s: Optional[float] = None
    phases: Dict[str, object] = {}
    if measure_wall:
        started = time.perf_counter()
        run(**kwargs, stats=phases)
        wall_s = time.perf_counter() - started

    tracemalloc.start()
    try:
        result = run(**kwargs)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    live_flows = result.row_where("metric", "live flows")["value"]
    naive_bytes = live_flows * naive_per_flow
    entry: Dict[str, object] = {
        "n_vswitches": n_vswitches,
        "epochs": epochs,
        "wall_s": round(wall_s, 3) if wall_s is not None else None,
        "seed_epoch_s": round(phases["seed_epoch_s"], 3)
        if phases else None,
        "steady_epoch_s": round(phases["steady_epoch_s"], 3)
        if phases else None,
        "peak_mb": round(peak / 1e6, 3),
        "live_flows": live_flows,
        "naive_bytes_per_flow": round(naive_per_flow, 1),
        "naive_mb": round(naive_bytes / 1e6, 3),
        "peak_over_naive": round(peak / naive_bytes, 4) if naive_bytes
        else None,
        "rows": len(result.rows),
    }
    if measure_resident:
        resident: Dict[str, Dict[str, object]] = {}
        for jobs in RESIDENT_JOBS_SWEEP:
            rstats: Dict[str, object] = {}
            started = time.perf_counter()
            run(n_vswitches=n_vswitches, epochs=epochs, seed=seed,
                shards=RESIDENT_SHARDS, jobs=jobs, resident=True,
                stats=rstats)
            pool = rstats.get("pool", {})
            phase_wall = pool.get("phase_wall_s", {})
            steps = phase_wall.get("step", [])
            resident[f"jobs_{jobs}"] = {
                "shards": RESIDENT_SHARDS,
                "jobs": rstats["jobs"],
                "wall_s": round(time.perf_counter() - started, 3),
                "seed_epoch_s": round(rstats["seed_epoch_s"], 3),
                "steady_epoch_s": round(rstats["steady_epoch_s"], 3),
                "phase_wall_s": {
                    "init": round(phase_wall.get("init", 0.0), 3),
                    "step_seed": round(steps[0], 3) if steps else None,
                    "step_steady": round(sum(steps[1:])
                                         / max(1, len(steps) - 1), 3)
                    if len(steps) > 1 else None,
                    "collect": round(phase_wall.get("collect", 0.0), 3),
                },
                "ipc_bytes_per_epoch":
                    round(rstats.get("ipc_bytes_per_epoch", 0), 1),
                "ipc_bytes_init": rstats.get("ipc_bytes_init", 0),
                "ipc_bytes_collect": rstats.get("ipc_bytes_collect", 0),
                "state_mb": round(rstats["state_nbytes"] / 1e6, 3),
            }
        entry["resident"] = resident
    return entry


def run_fleet_telemetry_overhead(repeats: int = 3) -> Dict[str, object]:
    """Fleet (quick scale) wall clock with telemetry installed vs not.

    The fleet instance of the telemetry layer's two performance
    contracts (the ``run_telemetry_overhead`` idiom from
    :mod:`repro.bench.macro`, on the fleet epoch loop instead of fig9):

    * **tracing-off cost** — with nothing installed, metric collection
      is one ``params.collect_metrics`` check per shard epoch and the
      coordinator journal one ``is None`` check per decision site, so
      the tracked ``normalized_off`` (seconds x the machine-independent
      calibration loop) must hold within ``TELEMETRY_GATE_TOLERANCE``
      of the committed baseline;
    * **observation purity** — the telemetry-on run (snapshots
      collected, folded, journaled) must render a byte-identical
      result table.

    Both runs are best-of-``repeats`` after one untimed warm-up.
    """
    from repro import telemetry
    from repro.bench.micro import _ops_per_sec, calibration_loop
    from repro.experiments.fleet import run

    kwargs = dict(n_vswitches=OVERHEAD_SCALE, epochs=OVERHEAD_EPOCHS,
                  seed=0, shards=1, jobs=1)

    def run_once(with_telemetry: bool):
        if with_telemetry:
            telemetry.install(profile=False)
        try:
            started = time.perf_counter()
            result = run(**kwargs)
            return result, time.perf_counter() - started
        finally:
            if with_telemetry:
                telemetry.uninstall()

    run_once(False)  # warm-up: imports, code objects, allocator pools
    off_result, off_s = run_once(False)
    on_result, on_s = run_once(True)
    for _ in range(max(0, repeats - 1)):
        _ignored, elapsed = run_once(False)
        off_s = min(off_s, elapsed)
        _ignored, elapsed = run_once(True)
        on_s = min(on_s, elapsed)
    # Best-of-5 over longer windows than the micro benches use: the 2%
    # gate leaves no room for sampling noise in the normalizer.
    calibration = max(_ops_per_sec(calibration_loop, 10_000, 0.25)
                      for _ in range(5))
    return {
        "description": "fleet (quick) wall clock, telemetry installed "
                       "vs not",
        "n_vswitches": OVERHEAD_SCALE,
        "epochs": OVERHEAD_EPOCHS,
        "repeats": repeats,
        "off_s": round(off_s, 3),
        "on_s": round(on_s, 3),
        "overhead_ratio": round(on_s / off_s, 4) if off_s else None,
        "normalized_off": round(off_s * calibration, 1),
        "calibration_ops_per_sec": round(calibration, 1),
        "identical_output": off_result.to_text() == on_result.to_text(),
        "gate_tolerance": TELEMETRY_GATE_TOLERANCE,
    }


def run_fleet_suite(epochs: int = 3, seed: int = 0) -> Dict[str, Dict]:
    """The tracked full run: every scale point plus the smoke point."""
    entries: Dict[str, Dict] = {}
    smoke = run_fleet_point(SMOKE_SCALE, epochs=epochs, seed=seed)
    smoke["gate_tolerance"] = SMOKE_GATE_TOLERANCE
    entries["smoke"] = smoke
    for scale in SCALES:
        entry = run_fleet_point(scale, epochs=epochs, seed=seed,
                                measure_resident=True)
        entry["naive_ratio_ceiling"] = NAIVE_RATIO_CEILING
        entries[f"scale_{scale}"] = entry
    return entries


def run_fleet_smoke(epochs: int = 3, seed: int = 0) -> Dict[str, object]:
    """The CI check: shard/residency identity + the smoke memory point.

    Runs the reduced fleet with ``shards=1`` and ``shards=SMOKE_SHARDS``
    and byte-compares the rendered tables (the determinism contract);
    repeats the comparison at ``RESIDENT_SMOKE_SCALE`` with the resident
    worker pool on vs off (same shards/jobs, so residency is the only
    variable); then measures the smoke point's peak for the caller to
    gate against the committed baseline.
    """
    from repro.experiments.fleet import run

    base = run(n_vswitches=SMOKE_SCALE, epochs=epochs, seed=seed,
               shards=1, jobs=1).to_text()
    sharded = run(n_vswitches=SMOKE_SCALE, epochs=epochs, seed=seed,
                  shards=SMOKE_SHARDS, jobs=1).to_text()
    swept = run(n_vswitches=RESIDENT_SMOKE_SCALE, epochs=epochs, seed=seed,
                shards=RESIDENT_SHARDS, jobs=RESIDENT_JOBS,
                resident=False).to_text()
    pooled = run(n_vswitches=RESIDENT_SMOKE_SCALE, epochs=epochs, seed=seed,
                 shards=RESIDENT_SHARDS, jobs=RESIDENT_JOBS,
                 resident=True).to_text()
    entry = run_fleet_point(SMOKE_SCALE, epochs=epochs, seed=seed,
                            measure_wall=False)
    entry["identical_across_shards"] = base == sharded
    entry["identical_with_resident_pool"] = swept == pooled
    return entry
