"""Tracked benchmark definitions.

Two layers:

* **micro** — (setup, optimized op, legacy op) triples over the
  per-packet hot paths; ``tools/bench.py`` runs them and writes
  ``BENCH_fastpath.json``; ``benchmarks/test_micro.py`` runs the same
  ops under pytest-benchmark.
* **macro** — whole-experiment wall clocks, sequential vs process-pool
  (``tools/bench.py --experiments`` → ``BENCH_experiments.json``).
* **fleet** — fleet-scale wall clock + tracemalloc peak per scale point
  (``tools/bench.py --fleet`` → ``BENCH_fleet.json``).

Keeping the workloads in one package guarantees the tracked JSONs and
the pytest benches measure the same thing.
"""

from repro.bench.micro import (BENCHES, MicroBench, calibration_loop,
                               run_bench, run_all)
from repro.bench.macro import (MACRO_BENCHES, MacroBench, run_macro,
                               run_macro_bench, run_telemetry_overhead)
from repro.bench.fleet import (run_fleet_point, run_fleet_smoke,
                               run_fleet_suite,
                               run_fleet_telemetry_overhead)

__all__ = ["BENCHES", "MicroBench", "calibration_loop", "run_bench",
           "run_all", "MACRO_BENCHES", "MacroBench", "run_macro",
           "run_macro_bench", "run_telemetry_overhead",
           "run_fleet_point", "run_fleet_smoke", "run_fleet_suite",
           "run_fleet_telemetry_overhead"]
