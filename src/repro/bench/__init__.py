"""Fast-path microbenchmark definitions.

Each bench is a (setup, optimized op, legacy op) triple over the hot
paths the performance overhaul touched. ``tools/bench.py`` runs them and
writes ``BENCH_fastpath.json``; ``benchmarks/test_micro.py`` runs the
same ops under pytest-benchmark. Keeping the workloads in one module
guarantees the tracked JSON and the pytest benches measure the same
thing.
"""

from repro.bench.micro import (BENCHES, MicroBench, calibration_loop,
                               run_bench, run_all)

__all__ = ["BENCHES", "MicroBench", "calibration_loop", "run_bench",
           "run_all"]
