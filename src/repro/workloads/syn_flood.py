"""SYN flood: half-open session pressure from a local VM (§7.3)."""

from __future__ import annotations

from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.sim.engine import Engine
from repro.sim.rng import SeededRng
from repro.vswitch.vnic import Vnic


class SynFlood:
    """Emits bare SYNs at a fixed rate toward a destination that never
    answers (or whose FE drops them): every SYN creates BE state that only
    aging can reclaim."""

    def __init__(self, engine: Engine, vm: Vm, vnic: Vnic,
                 dst_ip: IPv4Address, rate_pps: float,
                 rng: SeededRng = None, burst: int = 1) -> None:
        self.engine = engine
        self.vm = vm
        self.vnic = vnic
        self.dst_ip = IPv4Address(dst_ip)
        self.rate_pps = rate_pps
        self.rng = rng or SeededRng(0, "synflood")
        # burst > 1 sends the SYNs ``burst`` at a time (one kernel
        # transaction) while keeping the rate: each burst sleeps the sum
        # of ``burst`` exponential gaps, so the per-packet draw count —
        # and hence the RNG stream — is unchanged.
        self.burst = max(1, int(burst))
        self.sent = 0
        self._stop_at = None

    def run(self, duration: float) -> "SynFlood":
        self._stop_at = self.engine.now + duration
        self.engine.process(self._loop(), name="syn-flood")
        return self

    def _loop(self):
        sport = 1024
        while self.engine.now < self._stop_at:
            if self.burst == 1:
                pkt = Packet.tcp(self.vnic.tenant_ip, self.dst_ip,
                                 sport, 80, TcpFlags.of("syn"))
                sport = 1024 + (sport - 1023) % 60000
                self.vm.send(self.vnic, pkt, new_connection=True)
                self.sent += 1
                yield self.engine.timeout(self.rng.expovariate(self.rate_pps))
            else:
                pkts = []
                for _ in range(self.burst):
                    pkts.append(Packet.tcp(self.vnic.tenant_ip, self.dst_ip,
                                           sport, 80, TcpFlags.of("syn")))
                    sport = 1024 + (sport - 1023) % 60000
                self.vm.send_burst(self.vnic, pkts, new_connection=True)
                self.sent += self.burst
                delay = sum(self.rng.expovariate(self.rate_pps)
                            for _ in range(self.burst))
                yield self.engine.timeout(delay)
