"""A single elephant flow: one 5-tuple at high packet rate (§7.5)."""

from __future__ import annotations

from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.five_tuple import FiveTuple, PROTO_TCP
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.sim.engine import Engine
from repro.vswitch.flow_records import FluidMode
from repro.vswitch.vnic import Vnic


class ElephantFlow:
    """Pumps data packets of one flow at ``rate_pps``.

    ``burst > 1`` emits the data packets ``burst`` at a time through the
    vectorized datapath (one kernel transaction, one vSwitch lookup per
    burst) while keeping the average rate: each burst is followed by
    ``burst`` inter-packet gaps. The opening SYN always travels alone —
    it has to take the slow path and create the session.
    """

    def __init__(self, engine: Engine, vm: Vm, vnic: Vnic,
                 dst_ip: IPv4Address, rate_pps: float,
                 payload_bytes: int = 1400, sport: int = 5001,
                 dport: int = 5201, burst: int = 1) -> None:
        self.engine = engine
        self.vm = vm
        self.vnic = vnic
        self.dst_ip = IPv4Address(dst_ip)
        self.rate_pps = rate_pps
        self.payload = b"e" * payload_bytes
        self.sport = sport
        self.dport = dport
        self.burst = max(1, int(burst))
        self.sent = 0
        self._stop_at = None

    @property
    def five_tuple(self) -> FiveTuple:
        return FiveTuple(self.vnic.tenant_ip, self.dst_ip, PROTO_TCP,
                         self.sport, self.dport)

    def run(self, duration: float) -> "ElephantFlow":
        self._stop_at = self.engine.now + duration
        self.engine.process(self._loop(), name="elephant")
        return self

    def _data_packet(self) -> Packet:
        return Packet.tcp(self.vnic.tenant_ip, self.dst_ip, self.sport,
                          self.dport, TcpFlags.of("psh", "ack"),
                          self.payload)

    def _loop(self):
        gap = 1.0 / self.rate_pps
        if self.engine.now < self._stop_at:
            syn = Packet.tcp(self.vnic.tenant_ip, self.dst_ip, self.sport,
                             self.dport, TcpFlags.of("syn"))
            self.vm.send(self.vnic, syn, new_connection=True)
            self.sent += 1
            yield self.engine.timeout(gap)
        while self.engine.now < self._stop_at:
            if self.burst == 1:
                self.vm.send(self.vnic, self._data_packet())
                self.sent += 1
                yield self.engine.timeout(gap)
            elif FluidMode.enabled:
                # One template packet stands in for the whole run; the
                # datapath only materializes copies at event boundaries.
                self.vm.send_run(self.vnic, self._data_packet(), self.burst)
                self.sent += self.burst
                yield self.engine.timeout(gap * self.burst)
            else:
                pkts = [self._data_packet() for _ in range(self.burst)]
                self.vm.send_burst(self.vnic, pkts)
                self.sent += self.burst
                yield self.engine.timeout(gap * self.burst)
