"""A single elephant flow: one 5-tuple at high packet rate (§7.5)."""

from __future__ import annotations

from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.five_tuple import FiveTuple, PROTO_TCP
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.sim.engine import Engine
from repro.vswitch.vnic import Vnic


class ElephantFlow:
    """Pumps data packets of one flow at ``rate_pps``."""

    def __init__(self, engine: Engine, vm: Vm, vnic: Vnic,
                 dst_ip: IPv4Address, rate_pps: float,
                 payload_bytes: int = 1400, sport: int = 5001,
                 dport: int = 5201) -> None:
        self.engine = engine
        self.vm = vm
        self.vnic = vnic
        self.dst_ip = IPv4Address(dst_ip)
        self.rate_pps = rate_pps
        self.payload = b"e" * payload_bytes
        self.sport = sport
        self.dport = dport
        self.sent = 0
        self._stop_at = None

    @property
    def five_tuple(self) -> FiveTuple:
        return FiveTuple(self.vnic.tenant_ip, self.dst_ip, PROTO_TCP,
                         self.sport, self.dport)

    def run(self, duration: float) -> "ElephantFlow":
        self._stop_at = self.engine.now + duration
        self.engine.process(self._loop(), name="elephant")
        return self

    def _loop(self):
        first = True
        gap = 1.0 / self.rate_pps
        while self.engine.now < self._stop_at:
            flags = TcpFlags.of("syn") if first else TcpFlags.of("psh", "ack")
            pkt = Packet.tcp(self.vnic.tenant_ip, self.dst_ip, self.sport,
                             self.dport, flags,
                             b"" if first else self.payload)
            self.vm.send(self.vnic, pkt, new_connection=first)
            self.sent += 1
            first = False
            yield self.engine.timeout(gap)
