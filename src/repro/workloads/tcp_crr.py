"""TCP_CRR-style connect/request/response workload generator.

Open-loop: transactions start at exponential inter-arrival times around a
target rate regardless of completions — exactly how netperf TCP_CRR
saturates a vSwitch's connection setup path. The achieved completion rate
is the measured CPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.host.guest_tcp import GuestTcp
from repro.metrics.percentiles import percentile_summary
from repro.net.addr import IPv4Address
from repro.sim.engine import Engine
from repro.sim.rng import SeededRng


@dataclass
class CrrResult:
    offered: int = 0
    completed: int = 0
    failed: int = 0
    duration: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def achieved_cps(self) -> float:
        return self.completed / self.duration if self.duration else 0.0

    @property
    def offered_cps(self) -> float:
        return self.offered / self.duration if self.duration else 0.0

    @property
    def failure_fraction(self) -> float:
        done = self.completed + self.failed
        return self.failed / done if done else 0.0

    def latency_summary(self):
        return percentile_summary(self.latencies)


class CrrLoadGenerator:
    """Drives one GuestTcp client at a target transaction-open rate."""

    def __init__(self, engine: Engine, client: GuestTcp,
                 dst_ip: IPv4Address, dst_port: int,
                 rate_cps: float, rng: Optional[SeededRng] = None,
                 max_latency_samples: int = 10000) -> None:
        self.engine = engine
        self.client = client
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.rate_cps = rate_cps
        self.rng = rng or SeededRng(0, "crr")
        self.max_latency_samples = max_latency_samples
        self.result = CrrResult()
        self._stop_at: Optional[float] = None

    def run(self, duration: float) -> "CrrLoadGenerator":
        """Start the open-loop generator for ``duration`` seconds."""
        self._stop_at = self.engine.now + duration
        self.result.duration = duration
        self.engine.process(self._loop(), name="crr-gen")
        return self

    def _loop(self):
        while self.engine.now < self._stop_at:
            self._open_one()
            gap = self.rng.expovariate(self.rate_cps)
            yield self.engine.timeout(gap)

    def _open_one(self) -> None:
        self.result.offered += 1
        self.client.open(self.dst_ip, self.dst_port,
                         on_done=self._on_done, on_fail=self._on_fail)

    def _on_done(self, conn) -> None:
        self.result.completed += 1
        if len(self.result.latencies) < self.max_latency_samples:
            self.result.latencies.append(conn.latency)

    def _on_fail(self, _conn) -> None:
        self.result.failed += 1


class ClosedLoopCrr:
    """netperf-style closed loop: ``concurrency`` transaction slots, each
    immediately reopening on completion or failure. Throughput saturates
    at whatever the slowest stage admits — the measured CPS."""

    def __init__(self, engine: Engine, client: GuestTcp,
                 dst_ip: IPv4Address, dst_port: int,
                 concurrency: int = 64) -> None:
        self.engine = engine
        self.client = client
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.concurrency = concurrency
        self.completed = 0
        self.failed = 0
        self._running = False

    def start(self) -> "ClosedLoopCrr":
        self._running = True
        for _ in range(self.concurrency):
            self._spawn()
        return self

    def stop(self) -> None:
        self._running = False

    def _spawn(self) -> None:
        if not self._running:
            return
        self.client.open(self.dst_ip, self.dst_port,
                         on_done=self._on_done, on_fail=self._on_fail)

    def _on_done(self, _conn) -> None:
        self.completed += 1
        self._spawn()

    def _on_fail(self, _conn) -> None:
        self.failed += 1
        self._spawn()


def measure_cps(engine: Engine, loops: List["ClosedLoopCrr"],
                warmup: float, duration: float) -> float:
    """Run warmup, then measure aggregate completions/second."""
    engine.run(until=engine.now + warmup)
    start = sum(loop.completed for loop in loops)
    engine.run(until=engine.now + duration)
    return (sum(loop.completed for loop in loops) - start) / duration
