"""Concurrent-flow pressure: long-lived sessions holding table entries."""

from __future__ import annotations

from typing import Optional

from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.sim.engine import Engine
from repro.vswitch.vnic import Vnic


class ConcurrentFlowHolder:
    """Opens ``target`` long-lived flows and keeps them alive.

    Each flow is a TCP session kept ESTABLISHED with periodic keepalives
    (so aging never reclaims it) — the L4-LB persistent-connection pattern
    that bloats session tables (§2.2.2). ``established()`` reports how
    many flows the infrastructure actually admitted.
    """

    def __init__(self, engine: Engine, vm: Vm, vnic: Vnic,
                 dst_ip: IPv4Address, target: int,
                 keepalive: float = 2.0, ramp_rate: float = 2000.0,
                 base_port: int = 1024, burst: int = 1) -> None:
        self.engine = engine
        self.vm = vm
        self.vnic = vnic
        self.dst_ip = IPv4Address(dst_ip)
        self.target = int(target)
        self.keepalive = keepalive
        self.ramp_rate = ramp_rate
        self.base_port = base_port
        # burst > 1 chunks the keepalive sweep — the canonical same-
        # instant fan-out (``opened`` sends at one tick) — into kernel
        # bursts of that size instead of per-packet vm.send calls.
        self.burst = max(1, int(burst))
        self.opened = 0
        self._running = False

    def start(self) -> "ConcurrentFlowHolder":
        self._running = True
        self.engine.process(self._ramp(), name="flow-holder")
        self.engine.process(self._keepalive_loop(), name="flow-keepalive")
        return self

    def stop(self) -> None:
        self._running = False

    def _flow_port(self, index: int) -> int:
        return self.base_port + index

    def _make(self, index: int, flags: TcpFlags) -> Packet:
        sport = self._flow_port(index)
        dport = 7000 + index % 100
        return Packet.tcp(self.vnic.tenant_ip, self.dst_ip, sport, dport,
                          flags)

    def _send(self, index: int, flags: TcpFlags) -> None:
        self.vm.send(self.vnic, self._make(index, flags),
                     new_connection=flags.syn)

    def _ramp(self):
        gap = 1.0 / self.ramp_rate
        while self._running and self.opened < self.target:
            self._send(self.opened, TcpFlags.of("syn"))
            self.opened += 1
            yield self.engine.timeout(gap)

    def _keepalive_loop(self):
        ack = TcpFlags.of("ack")
        while self._running:
            yield self.engine.timeout(self.keepalive)
            if self.burst == 1:
                for index in range(self.opened):
                    self._send(index, ack)
            else:
                for base in range(0, self.opened, self.burst):
                    top = min(base + self.burst, self.opened)
                    self.vm.send_burst(
                        self.vnic,
                        [self._make(i, ack) for i in range(base, top)])

    def established(self) -> int:
        """Sessions currently held in the local vSwitch's table."""
        host = self.vnic.host
        if host is None:
            return 0
        return sum(1 for entry in host.session_table
                   if entry.vni == self.vnic.vni)
