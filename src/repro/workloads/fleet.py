"""Fleet-scale demand model, calibrated to the paper's published numbers.

The motivation and production results (Figs 2–4, Table 1, Fig 13,
App B.2) describe O(10K) vSwitches over weeks — far beyond packet-level
simulation. This module models the fleet at control-plane granularity:

* per-vSwitch CPU/memory utilization drawn from
  :class:`QuantileDistribution` objects anchored directly on the
  percentile points the paper publishes (Fig 4) — the reproduction is
  exact at the anchors by construction, interpolated in between;
* per-VM service usage (CPS, #concurrent flows, #vNICs) anchored on
  Table 1's normalized distribution;
* hotspot classification reproducing Fig 3's 61 % / 30 % / 9 % split;
* a daily-overload process for Fig 13: an overload is *mitigated* by
  Nezha unless offload activation (sampled from the Table 4 completion
  model) exceeds the survivable window;
* the VM live-migration downtime model of Fig A1.
"""

from __future__ import annotations

import enum
import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.rng import SeededRng


class QuantileDistribution:
    """A distribution defined by (cumulative fraction, value) anchors.

    Sampling inverts the CDF with log-linear interpolation between
    anchors, so heavy tails behave sensibly. Anchors must start at q=0
    and end at q=1 with non-decreasing values.
    """

    def __init__(self, anchors: Sequence[Tuple[float, float]]) -> None:
        anchors = sorted(anchors)
        if not anchors or anchors[0][0] != 0.0 or anchors[-1][0] != 1.0:
            raise ConfigError("anchors must span q=0..1")
        values = [v for _q, v in anchors]
        if any(b < a for a, b in zip(values, values[1:])):
            raise ConfigError("anchor values must be non-decreasing")
        if values[0] <= 0:
            raise ConfigError("values must be positive (log interpolation)")
        self.anchors = list(anchors)
        # Hot-path precomputation: anchor quantiles for bisection plus
        # their value logs, so inversion is one bisect + one exp instead
        # of a pair-by-pair scan with two log() calls.
        self._qs = [q for q, _v in self.anchors]
        self._logs = [math.log(v) for _q, v in self.anchors]
        self._mean_cache: Dict[int, float] = {}

    def _invert(self, q: float) -> float:
        """Inverse CDF for an in-range ``q`` — exactly the expression the
        pair-scan used, so results are bit-identical."""
        j = bisect_left(self._qs, q, 1)
        if j >= len(self._qs):
            return self.anchors[-1][1]
        q0, q1 = self._qs[j - 1], self._qs[j]
        if q1 == q0:
            return self.anchors[j][1]
        frac = (q - q0) / (q1 - q0)
        return math.exp(self._logs[j - 1] * (1 - frac)
                        + self._logs[j] * frac)

    def invert_n(self, qs: Sequence[float]) -> List[float]:
        """:meth:`_invert` applied bisect-per-element over a column of
        in-range quantiles.

        Bit-identical to ``[dist._invert(q) for q in qs]`` — same bisect,
        same log-linear expression — but with the anchor lookups hoisted
        out of the loop, for callers that invert whole per-vSwitch
        columns at once (the fleet's vectorized cold-tail step)."""
        anchor_qs = self._qs
        logs = self._logs
        anchors = self.anchors
        n_anchors = len(anchor_qs)
        top = anchors[-1][1]
        bl = bisect_left
        exp = math.exp
        out: List[float] = []
        append = out.append
        for q in qs:
            j = bl(anchor_qs, q, 1)
            if j >= n_anchors:
                append(top)
                continue
            q0, q1 = anchor_qs[j - 1], anchor_qs[j]
            if q1 == q0:
                append(anchors[j][1])
                continue
            frac = (q - q0) / (q1 - q0)
            append(exp(logs[j - 1] * (1 - frac) + logs[j] * frac))
        return out

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"q out of range: {q}")
        return self._invert(q)

    def sample(self, rng: SeededRng) -> float:
        return self._invert(rng.random())

    def sample_n(self, rng: SeededRng, n: int) -> List[float]:
        """``n`` draws in one call: identical stream consumption (one
        uniform per draw, in order) and identical values to ``n``
        repeated :meth:`sample` calls, but without per-draw method
        dispatch — the fleet runner samples 10K+ vSwitches per epoch."""
        rnd = rng.random
        invert = self._invert
        return [invert(rnd()) for _ in range(n)]

    def mean_estimate(self, n: int = 20000) -> float:
        """Numerical mean via uniform quantile sweep (cached per ``n``:
        the sweep re-drew 20K quantiles on every call)."""
        cached = self._mean_cache.get(n)
        if cached is None:
            invert = self._invert
            cached = sum(invert((i + 0.5) / n) for i in range(n)) / n
            self._mean_cache[n] = cached
        return cached


# -- paper-anchored distributions -----------------------------------------------

def cpu_utilization_dist() -> QuantileDistribution:
    """Fig 4a: avg≈5 %, P90 15 %, P99 41 %, P999 68 %, P9999 90 %, max 98 %."""
    return QuantileDistribution([
        (0.0, 0.002), (0.5, 0.022), (0.9, 0.15), (0.99, 0.41),
        (0.999, 0.68), (0.9999, 0.90), (1.0, 0.98),
    ])


def memory_utilization_dist() -> QuantileDistribution:
    """Fig 4b: avg≈1.5 %, P90 15 %, P99 34 %, P999 93 %, P9999 96 %."""
    return QuantileDistribution([
        (0.0, 0.001), (0.5, 0.006), (0.9, 0.15), (0.99, 0.34),
        (0.999, 0.93), (0.9999, 0.96), (1.0, 0.97),
    ])


#: Table 1 anchor points, normalized to the P9999 user (=1.0).
_USAGE_ANCHORS = {
    "cps": [(0.0, 0.0005), (0.5, 0.0053), (0.9, 0.0141),
            (0.99, 0.0641), (0.999, 0.1838), (0.9999, 1.0), (1.0, 1.0)],
    "flows": [(0.0, 0.0005), (0.5, 0.0078), (0.9, 0.0236),
              (0.99, 0.0639), (0.999, 0.2917), (0.9999, 1.0), (1.0, 1.0)],
    "vnics": [(0.0, 0.0005), (0.5, 0.0065), (0.9, 0.01),
              (0.99, 0.06), (0.999, 0.55), (0.9999, 1.0), (1.0, 1.0)],
}
_USAGE_DISTS: Dict[str, QuantileDistribution] = {}


def usage_dist(metric: str) -> QuantileDistribution:
    """Table 1: per-VM service usage normalized to the P9999 user (=1.0).

    Memoized per metric: the fleet's shard workers call this on every
    epoch step, and re-parsing the anchors (plus the log precomputation)
    per call was measurable at 10K vSwitches. A distribution is
    anchor-immutable after construction, so sharing one instance — and
    its ``mean_estimate`` cache — is output-invisible; the regression
    tests in ``tests/test_fleet_model.py`` pin the sampled streams.
    """
    dist = _USAGE_DISTS.get(metric)
    if dist is None:
        if metric not in _USAGE_ANCHORS:
            raise ConfigError(f"unknown usage metric {metric!r}")
        dist = _USAGE_DISTS[metric] = QuantileDistribution(
            _USAGE_ANCHORS[metric])
    return dist


class HotspotKind(enum.Enum):
    CPS = "cps"
    FLOWS = "flows"
    VNICS = "vnics"


@dataclass
class VSwitchDemand:
    """One vSwitch's peak demand, normalized to the fleet's P9999 user."""

    cps: float
    flows: float
    vnics: float

    def hotspots(self, capacity: "FleetCapacity") -> List[HotspotKind]:
        kinds = []
        if self.cps > capacity.cps:
            kinds.append(HotspotKind.CPS)
        if self.flows > capacity.flows:
            kinds.append(HotspotKind.FLOWS)
        if self.vnics > capacity.vnics:
            kinds.append(HotspotKind.VNICS)
        return kinds


@dataclass
class FleetCapacity:
    """vSwitch capacity in the same normalized units as demand.

    Calibrated so hotspot shares match Fig 3 (≈61 % CPS, 30 % flows,
    9 % #vNICs): CPS is the scarcest capability relative to its demand
    tail, #vNICs the least scarce.
    """

    cps: float = 0.101
    flows: float = 0.208
    vnics: float = 0.588


@dataclass
class OverloadEvent:
    day: int
    vswitch: int
    kind: HotspotKind
    mitigated: bool


class FleetModel:
    """The O(10K)-vSwitch Monte Carlo substrate."""

    def __init__(self, n_vswitches: int = 10000,
                 rng: Optional[SeededRng] = None,
                 capacity: Optional[FleetCapacity] = None) -> None:
        self.n = n_vswitches
        self.rng = rng or SeededRng(0, "fleet")
        self.capacity = capacity or FleetCapacity()
        self.cpu_dist = cpu_utilization_dist()
        self.mem_dist = memory_utilization_dist()
        self.usage = {kind: usage_dist(kind.value) for kind in HotspotKind}

    # -- Fig 4 / Table 1 -------------------------------------------------------

    def sample_utilizations(self) -> Tuple[List[float], List[float]]:
        """Per-vSwitch (cpu, memory) utilization samples."""
        rng = self.rng.child("util")
        cpus = [self.cpu_dist.sample(rng) for _ in range(self.n)]
        mems = [self.mem_dist.sample(rng) for _ in range(self.n)]
        return cpus, mems

    def sample_usage(self, metric: HotspotKind,
                     n: Optional[int] = None) -> List[float]:
        rng = self.rng.child(f"usage-{metric.value}")
        return self.usage[metric].sample_n(rng, n or self.n)

    # -- Fig 3 -----------------------------------------------------------------------

    def sample_demands(self, n: Optional[int] = None) -> List[VSwitchDemand]:
        # One uniform per (vSwitch, metric), interleaved cps/flows/vnics —
        # the historical per-sample draw order, so the stream (and every
        # downstream experiment) is unchanged by the vectorization.
        rng = self.rng.child("demand")
        rnd = rng.random
        cps = self.usage[HotspotKind.CPS]._invert
        flows = self.usage[HotspotKind.FLOWS]._invert
        vnics = self.usage[HotspotKind.VNICS]._invert
        return [VSwitchDemand(cps=cps(rnd()), flows=flows(rnd()),
                              vnics=vnics(rnd()))
                for _ in range(n or self.n)]

    def hotspot_distribution(self,
                             n: Optional[int] = None) -> Dict[HotspotKind, float]:
        """Fraction of hotspot observations attributable to each cause."""
        counts = {kind: 0 for kind in HotspotKind}
        for demand in self.sample_demands(n):
            for kind in demand.hotspots(self.capacity):
                counts[kind] += 1
        total = sum(counts.values()) or 1
        return {kind: count / total for kind, count in counts.items()}

    # -- Fig 13: daily overloads before/after Nezha --------------------------------------

    def simulate_daily_overloads(
            self, days: int,
            activation_sampler: Callable[[SeededRng], float],
            survivable_window: float = 2.8,
            placement_failure_prob: float = 0.0,
    ) -> List[OverloadEvent]:
        """Each day, each vSwitch redraws its peak demand; demand above
        capacity is an overload occurrence. With Nezha the occurrence is
        mitigated unless offload activation exceeds the survivable window
        (or no FEs could be placed). #vNIC overloads are always mitigated:
        rule tables are created directly on FEs (§6.3.3)."""
        rng = self.rng.child("daily")
        events: List[OverloadEvent] = []
        for day in range(days):
            demands = self.sample_demands()
            for index, demand in enumerate(demands):
                for kind in demand.hotspots(self.capacity):
                    if kind is HotspotKind.VNICS:
                        mitigated = rng.random() >= placement_failure_prob
                    else:
                        activation = activation_sampler(rng)
                        mitigated = (activation <= survivable_window
                                     and rng.random()
                                     >= placement_failure_prob)
                    events.append(OverloadEvent(day, index, kind, mitigated))
        return events

    @staticmethod
    def overload_summary(events: List[OverloadEvent]
                         ) -> Dict[HotspotKind, Tuple[int, int]]:
        """kind -> (occurrences before Nezha, residual after Nezha)."""
        summary: Dict[HotspotKind, Tuple[int, int]] = {}
        for kind in HotspotKind:
            of_kind = [e for e in events if e.kind is kind]
            residual = sum(1 for e in of_kind if not e.mitigated)
            summary[kind] = (len(of_kind), residual)
        return summary

    # -- Fig A1: VM live-migration downtime ------------------------------------------------

    @staticmethod
    def migration_downtime(vcpus: int, memory_gb: float,
                           rng: Optional[SeededRng] = None) -> float:
        """Downtime (seconds) of a VM live migration.

        Grows with purchased resources (Fig A1): dirty-page copy rounds
        scale with memory, device/vCPU quiesce with vCPU count. A 1024 GB
        VM lands in the tens-of-minutes completion regime the paper cites.
        """
        base = 0.15
        vcpu_term = 0.15 * vcpus
        mem_term = 0.55 * (memory_gb ** 0.75)
        noise = rng.lognormal(0.0, 0.25) if rng is not None else 1.0
        return (base + vcpu_term + mem_term) * noise

    @staticmethod
    def migration_completion_time(memory_gb: float,
                                  rng: Optional[SeededRng] = None) -> float:
        """Total migration time: dominated by copying memory."""
        copy_rate_gb_s = 1.2
        rounds = 2.5
        noise = rng.lognormal(0.0, 0.2) if rng is not None else 1.0
        return (5.0 + rounds * memory_gb / copy_rate_gb_s) * noise
