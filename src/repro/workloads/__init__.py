"""Workload generators.

Packet-level (drive the DES testbed):

* :class:`CrrLoadGenerator` — netperf TCP_CRR-style short connections at a
  target open rate (the paper's CPS workload, §6.2.1);
* :class:`ConcurrentFlowHolder` — long-lived sessions that bloat the
  session table (§2.2.2);
* :class:`SynFlood` — half-open session pressure (§7.3);
* :class:`ElephantFlow` — one high-rate flow (§7.5).

Fleet-level (control-plane Monte Carlo, no packets):

* :class:`FleetModel` — O(10K)-vSwitch demand model calibrated to the
  paper's published percentiles (Fig 4, Table 1), with hotspot
  classification (Fig 3), daily-overload simulation (Fig 13), and the VM
  migration-downtime model (Fig A1).
"""

from repro.workloads.tcp_crr import (ClosedLoopCrr, CrrLoadGenerator,
                                     CrrResult, measure_cps)
from repro.workloads.flows import ConcurrentFlowHolder
from repro.workloads.syn_flood import SynFlood
from repro.workloads.elephant import ElephantFlow
from repro.workloads.fleet import (FleetModel, QuantileDistribution,
                                   HotspotKind)

__all__ = [
    "CrrLoadGenerator", "CrrResult", "ClosedLoopCrr", "measure_cps",
    "ConcurrentFlowHolder",
    "SynFlood",
    "ElephantFlow",
    "FleetModel", "QuantileDistribution", "HotspotKind",
]
