"""VXLAN header codec (RFC 7348).

The overlay encapsulation used between vSwitches: the 24-bit VNI carries the
tenant's VPC ID, which is how cached flows distinguish tenants that reuse
the same 5-tuples.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError

HEADER_LEN = 8
VXLAN_PORT = 4789

_FLAG_VNI_VALID = 0x08


class VxlanHeader:
    """An 8-byte VXLAN header carrying a 24-bit VNI."""

    __slots__ = ("vni",)

    wire_length = HEADER_LEN

    def __init__(self, vni: int) -> None:
        if not 0 <= vni < (1 << 24):
            raise DecodeError(f"VNI out of range: {vni}")
        self.vni = vni

    def encode(self) -> bytes:
        return struct.pack("!BBHI", _FLAG_VNI_VALID, 0, 0, self.vni << 8)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["VxlanHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise DecodeError(f"vxlan header needs {HEADER_LEN}B, got {len(data)}")
        flags, _r1, _r2, vni_res = struct.unpack("!BBHI", data[:HEADER_LEN])
        if not flags & _FLAG_VNI_VALID:
            raise DecodeError("VXLAN I flag not set")
        return cls(vni_res >> 8), data[HEADER_LEN:]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VxlanHeader) and self.vni == other.vni

    def __repr__(self) -> str:
        return f"VXLAN(vni={self.vni})"
