"""TCP header codec (RFC 793, no options)."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError

HEADER_LEN = 20


class TcpFlags:
    """TCP flag bits as a tiny value object with the usual predicates."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0) -> None:
        self.bits = bits & 0x3F

    @classmethod
    def of(cls, *names: str) -> "TcpFlags":
        """``TcpFlags.of("syn", "ack")``."""
        bits = 0
        for name in names:
            bits |= getattr(cls, name.upper())
        return cls(bits)

    @property
    def syn(self) -> bool:
        return bool(self.bits & self.SYN)

    @property
    def ack(self) -> bool:
        return bool(self.bits & self.ACK)

    @property
    def fin(self) -> bool:
        return bool(self.bits & self.FIN)

    @property
    def rst(self) -> bool:
        return bool(self.bits & self.RST)

    @property
    def psh(self) -> bool:
        return bool(self.bits & self.PSH)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TcpFlags) and self.bits == other.bits

    def __hash__(self) -> int:
        return hash(("tcpflags", self.bits))

    def __repr__(self) -> str:
        names = [n for n in ("SYN", "ACK", "FIN", "RST", "PSH", "URG")
                 if self.bits & getattr(self, n)]
        return f"TcpFlags({'|'.join(names) or '0'})"


class TcpHeader:
    """A 20-byte TCP header (data offset fixed at 5 words)."""

    __slots__ = ("src_port", "dst_port", "seq", "ack_num", "flags", "window")

    wire_length = HEADER_LEN

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack_num: int = 0,
        flags: TcpFlags = None,
        window: int = 65535,
    ) -> None:
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise DecodeError(f"bad port: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack_num = ack_num & 0xFFFFFFFF
        self.flags = flags if flags is not None else TcpFlags()
        self.window = window & 0xFFFF

    def encode(self) -> bytes:
        offset_flags = (5 << 12) | self.flags.bits
        return struct.pack(
            "!HHIIHHHH",
            self.src_port, self.dst_port, self.seq, self.ack_num,
            offset_flags, self.window, 0, 0,
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["TcpHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise DecodeError(f"tcp header needs {HEADER_LEN}B, got {len(data)}")
        src, dst, seq, ack, offset_flags, window, _cksum, _urg = struct.unpack(
            "!HHIIHHHH", data[:HEADER_LEN])
        offset = offset_flags >> 12
        if offset != 5:
            raise DecodeError(f"tcp options unsupported: offset={offset}")
        header = cls(src, dst, seq, ack, TcpFlags(offset_flags & 0x3F), window)
        return header, data[HEADER_LEN:]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TcpHeader)
                and self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.seq == other.seq
                and self.ack_num == other.ack_num
                and self.flags == other.flags
                and self.window == other.window)

    def __repr__(self) -> str:
        return (f"TCP({self.src_port} -> {self.dst_port}, {self.flags!r}, "
                f"seq={self.seq})")
