"""IPv4 header codec (RFC 791, no options)."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError
from repro.net.addr import IPv4Address
from repro.net.checksum import internet_checksum

HEADER_LEN = 20


class IPv4Header:
    """A 20-byte IPv4 header. ``total_length`` covers header + payload."""

    __slots__ = ("src", "dst", "proto", "ttl", "total_length",
                 "identification", "dscp", "flags", "frag_offset")

    wire_length = HEADER_LEN

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        proto: int,
        total_length: int = HEADER_LEN,
        ttl: int = 64,
        identification: int = 0,
        dscp: int = 0,
        flags: int = 0,
        frag_offset: int = 0,
    ) -> None:
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        if not 0 <= proto <= 255:
            raise DecodeError(f"bad protocol: {proto}")
        if not HEADER_LEN <= total_length <= 0xFFFF:
            raise DecodeError(f"bad total_length: {total_length}")
        if not 0 <= ttl <= 255:
            raise DecodeError(f"bad ttl: {ttl}")
        self.proto = proto
        self.total_length = total_length
        self.ttl = ttl
        self.identification = identification & 0xFFFF
        self.dscp = dscp & 0x3F
        self.flags = flags & 0x7
        self.frag_offset = frag_offset & 0x1FFF

    @property
    def payload_length(self) -> int:
        return self.total_length - HEADER_LEN

    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        tos = self.dscp << 2
        flags_frag = (self.flags << 13) | self.frag_offset
        head = struct.pack(
            "!BBHHHBBH",
            version_ihl, tos, self.total_length,
            self.identification, flags_frag,
            self.ttl, self.proto, 0,
        ) + self.src.to_bytes() + self.dst.to_bytes()
        checksum = internet_checksum(head)
        return head[:10] + struct.pack("!H", checksum) + head[12:]

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IPv4Header", bytes]:
        if len(data) < HEADER_LEN:
            raise DecodeError(f"ipv4 header needs {HEADER_LEN}B, got {len(data)}")
        version_ihl, tos, total_length, ident, flags_frag, ttl, proto, _cksum = (
            struct.unpack("!BBHHHBBH", data[:12]))
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise DecodeError(f"not IPv4: version={version}")
        if ihl != 5:
            raise DecodeError(f"IPv4 options unsupported: ihl={ihl}")
        src = IPv4Address.from_bytes(data[12:16])
        dst = IPv4Address.from_bytes(data[16:20])
        header = cls(
            src, dst, proto,
            total_length=total_length,
            ttl=ttl,
            identification=ident,
            dscp=tos >> 2,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
        )
        return header, data[HEADER_LEN:]

    def decrement_ttl(self) -> bool:
        """Decrement TTL; returns False when the packet must be dropped."""
        if self.ttl <= 1:
            return False
        self.ttl -= 1
        return True

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, IPv4Header)
                and self.src == other.src and self.dst == other.dst
                and self.proto == other.proto and self.ttl == other.ttl
                and self.total_length == other.total_length
                and self.identification == other.identification
                and self.dscp == other.dscp)

    def __repr__(self) -> str:
        return (f"IPv4({self.src} -> {self.dst}, proto={self.proto}, "
                f"len={self.total_length}, ttl={self.ttl})")
