"""ICMP echo header codec — used by the health monitor's ping probes."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError

HEADER_LEN = 8

ECHO_REQUEST = 8
ECHO_REPLY = 0


class IcmpHeader:
    """An 8-byte ICMP echo request/reply header."""

    __slots__ = ("icmp_type", "code", "identifier", "sequence")

    wire_length = HEADER_LEN

    def __init__(self, icmp_type: int, code: int = 0,
                 identifier: int = 0, sequence: int = 0) -> None:
        if not 0 <= icmp_type <= 255 or not 0 <= code <= 255:
            raise DecodeError(f"bad icmp type/code: {icmp_type}/{code}")
        self.icmp_type = icmp_type
        self.code = code
        self.identifier = identifier & 0xFFFF
        self.sequence = sequence & 0xFFFF

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == ECHO_REPLY

    def reply(self) -> "IcmpHeader":
        """Build the echo reply matching this request."""
        if not self.is_echo_request:
            raise DecodeError("reply() requires an echo request")
        return IcmpHeader(ECHO_REPLY, 0, self.identifier, self.sequence)

    def encode(self) -> bytes:
        return struct.pack("!BBHHH", self.icmp_type, self.code, 0,
                           self.identifier, self.sequence)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IcmpHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise DecodeError(f"icmp header needs {HEADER_LEN}B, got {len(data)}")
        icmp_type, code, _cksum, ident, seq = struct.unpack("!BBHHH", data[:HEADER_LEN])
        return cls(icmp_type, code, ident, seq), data[HEADER_LEN:]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, IcmpHeader)
                and self.icmp_type == other.icmp_type
                and self.code == other.code
                and self.identifier == other.identifier
                and self.sequence == other.sequence)

    def __repr__(self) -> str:
        return (f"ICMP(type={self.icmp_type}, id={self.identifier}, "
                f"seq={self.sequence})")
