"""Ethernet II header codec."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError
from repro.net.addr import MacAddress

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_NSH = 0x894F

HEADER_LEN = 14


class EthernetHeader:
    """Destination MAC, source MAC, EtherType — 14 bytes on the wire."""

    __slots__ = ("dst", "src", "ethertype")

    wire_length = HEADER_LEN

    def __init__(self, dst: MacAddress, src: MacAddress,
                 ethertype: int = ETHERTYPE_IPV4) -> None:
        self.dst = MacAddress(dst)
        self.src = MacAddress(src)
        if not 0 <= ethertype <= 0xFFFF:
            raise DecodeError(f"ethertype out of range: {ethertype:#x}")
        self.ethertype = ethertype

    def encode(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["EthernetHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise DecodeError(f"ethernet header needs {HEADER_LEN}B, got {len(data)}")
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst, src, ethertype), data[HEADER_LEN:]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, EthernetHeader)
                and self.dst == other.dst
                and self.src == other.src
                and self.ethertype == other.ethertype)

    def __repr__(self) -> str:
        return f"Eth({self.src} -> {self.dst}, type={self.ethertype:#06x})"
