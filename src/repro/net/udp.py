"""UDP header codec (RFC 768)."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import DecodeError

HEADER_LEN = 8


class UdpHeader:
    """An 8-byte UDP header; ``length`` covers header + payload."""

    __slots__ = ("src_port", "dst_port", "length")

    wire_length = HEADER_LEN

    def __init__(self, src_port: int, dst_port: int, length: int = HEADER_LEN) -> None:
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise DecodeError(f"bad port: {port}")
        if not HEADER_LEN <= length <= 0xFFFF:
            raise DecodeError(f"bad udp length: {length}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length

    @property
    def payload_length(self) -> int:
        return self.length - HEADER_LEN

    def encode(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["UdpHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise DecodeError(f"udp header needs {HEADER_LEN}B, got {len(data)}")
        src, dst, length, _cksum = struct.unpack("!HHHH", data[:HEADER_LEN])
        return cls(src, dst, length), data[HEADER_LEN:]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, UdpHeader)
                and self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.length == other.length)

    def __repr__(self) -> str:
        return f"UDP({self.src_port} -> {self.dst_port}, len={self.length})"
