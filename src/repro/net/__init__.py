"""Wire formats and packet model.

Byte-accurate codecs for the headers the simulated data plane uses:
Ethernet, IPv4, TCP, UDP, ICMP, VXLAN, and NSH (RFC 8300) with Nezha
metadata TLVs. A :class:`~repro.net.packet.Packet` is a stack of decoded
headers plus an opaque payload length; it can be serialized to bytes and
parsed back, which the property tests exercise heavily.
"""

from repro.net.addr import IPv4Address, MacAddress
from repro.net.checksum import internet_checksum
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.net.five_tuple import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPv4Header
from repro.net.nsh import NshContext, NshHeader
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.net.vxlan import VXLAN_PORT, VxlanHeader

__all__ = [
    "IPv4Address",
    "MacAddress",
    "internet_checksum",
    "EthernetHeader",
    "ETHERTYPE_IPV4",
    "FiveTuple",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "IcmpHeader",
    "IPv4Header",
    "NshHeader",
    "NshContext",
    "Packet",
    "TcpHeader",
    "TcpFlags",
    "UdpHeader",
    "VxlanHeader",
    "VXLAN_PORT",
]
