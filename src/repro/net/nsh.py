"""NSH — Network Service Header (RFC 8300), MD Type 2.

Nezha uses data packets to carry the missing processing input across the
BE↔FE hop (paper §3.2.1): egress packets carry the BE's *state* to the FE,
ingress packets carry the FE's *pre-actions* to the BE, and RX packets may
additionally carry state-initialization info (e.g. the overlay source IP
for stateful decap, §5.2). All of it rides in NSH context TLVs.

Wire format implemented here:

* 4-byte base header (version, O bit, length in 4-byte words, MD type,
  next protocol),
* 4-byte service path header (SPI + SI),
* variable-length context TLVs: 2-byte class, 1-byte type, 1-byte length,
  then ``length`` bytes of value, padded to a 4-byte boundary.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.errors import DecodeError

BASE_LEN = 8
MD_TYPE_2 = 0x02
TLV_CLASS_NEZHA = 0x0103  # experimental class for Nezha metadata

NEXT_PROTO_IPV4 = 0x01
NEXT_PROTO_ETHERNET = 0x03


class NshContext:
    """The Nezha metadata carried in NSH context TLVs.

    A mapping from small integer TLV types to byte strings. Symbolic names
    for the types Nezha uses are provided as class attributes; the codec
    itself is type-agnostic.
    """

    # TLV types used by Nezha (see repro.core.header for the payloads).
    STATE = 0x01        # BE session state carried TX-ward to the FE
    PRE_ACTIONS = 0x02  # FE rule-lookup result carried RX-ward to the BE
    STATE_INIT = 0x03   # info the BE needs to initialize state (RX, §5.2)
    NOTIFY = 0x04       # designated notify payload (§3.2.2)
    VNIC = 0x05         # vNIC id the metadata belongs to
    DIRECTION = 0x06    # TX/RX marker

    __slots__ = ("entries",)

    def __init__(self, entries: Dict[int, bytes] = None) -> None:
        self.entries = dict(entries or {})
        for tlv_type, value in self.entries.items():
            self._validate(tlv_type, value)

    @staticmethod
    def _validate(tlv_type: int, value: bytes) -> None:
        if not 0 <= tlv_type <= 0xFF:
            raise DecodeError(f"TLV type out of range: {tlv_type}")
        if len(value) > 0xFF:
            raise DecodeError(f"TLV value too long: {len(value)}B")

    def put(self, tlv_type: int, value: bytes) -> "NshContext":
        self._validate(tlv_type, value)
        self.entries[tlv_type] = value
        return self

    def get(self, tlv_type: int) -> bytes:
        try:
            return self.entries[tlv_type]
        except KeyError:
            raise DecodeError(f"TLV {tlv_type:#x} absent") from None

    def get_or(self, tlv_type: int, default: bytes = b"") -> bytes:
        return self.entries.get(tlv_type, default)

    def __contains__(self, tlv_type: int) -> bool:
        return tlv_type in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def encode(self) -> bytes:
        out = bytearray()
        for tlv_type in sorted(self.entries):
            value = self.entries[tlv_type]
            out += struct.pack("!HBB", TLV_CLASS_NEZHA, tlv_type, len(value))
            out += value
            pad = (-len(value)) % 4
            out += b"\x00" * pad
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "NshContext":
        entries: Dict[int, bytes] = {}
        offset = 0
        while offset < len(data):
            if offset + 4 > len(data):
                raise DecodeError("truncated TLV header")
            tlv_class, tlv_type, length = struct.unpack(
                "!HBB", data[offset:offset + 4])
            if tlv_class != TLV_CLASS_NEZHA:
                raise DecodeError(f"unknown TLV class {tlv_class:#x}")
            offset += 4
            if offset + length > len(data):
                raise DecodeError("truncated TLV value")
            entries[tlv_type] = data[offset:offset + length]
            offset += length + ((-length) % 4)
        return cls(entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NshContext) and self.entries == other.entries

    def __repr__(self) -> str:
        kinds = ", ".join(f"{t:#x}[{len(v)}B]" for t, v in sorted(self.entries.items()))
        return f"NshContext({kinds})"


class NshHeader:
    """NSH base + service-path headers with an MD-type-2 context."""

    __slots__ = ("spi", "si", "next_proto", "context")

    def __init__(self, spi: int = 0, si: int = 255,
                 next_proto: int = NEXT_PROTO_IPV4,
                 context: NshContext = None) -> None:
        if not 0 <= spi < (1 << 24):
            raise DecodeError(f"SPI out of range: {spi}")
        if not 0 <= si <= 255:
            raise DecodeError(f"SI out of range: {si}")
        self.spi = spi
        self.si = si
        self.next_proto = next_proto
        self.context = context if context is not None else NshContext()

    @property
    def wire_length(self) -> int:
        return BASE_LEN + len(self.context.encode())

    def encode(self) -> bytes:
        ctx = self.context.encode()
        total_words = (BASE_LEN + len(ctx)) // 4
        if total_words > 0x3F:
            raise DecodeError(f"NSH too long: {total_words} words")
        # 16 bits: version(2)=0 | O(1)=0 | U(1)=0 | TTL(6)=63 | length(6),
        # then MD-type byte and next-protocol byte.
        hword = (63 << 6) | total_words
        base = struct.pack("!HBB", hword, MD_TYPE_2, self.next_proto)
        sp = struct.pack("!I", (self.spi << 8) | self.si)
        return base + sp + ctx

    @classmethod
    def decode(cls, data: bytes) -> Tuple["NshHeader", bytes]:
        if len(data) < BASE_LEN:
            raise DecodeError(f"nsh header needs {BASE_LEN}B, got {len(data)}")
        hword, md_type, next_proto = struct.unpack("!HBB", data[:4])
        total_words = hword & 0x3F
        total_len = total_words * 4
        if md_type != MD_TYPE_2:
            raise DecodeError(f"unsupported NSH MD type {md_type}")
        if total_len < BASE_LEN or total_len > len(data):
            raise DecodeError(f"bad NSH length {total_len}")
        (sp,) = struct.unpack("!I", data[4:8])
        context = NshContext.decode(data[BASE_LEN:total_len])
        header = cls(spi=sp >> 8, si=sp & 0xFF,
                     next_proto=next_proto, context=context)
        return header, data[total_len:]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, NshHeader)
                and self.spi == other.spi and self.si == other.si
                and self.next_proto == other.next_proto
                and self.context == other.context)

    def __repr__(self) -> str:
        return f"NSH(spi={self.spi}, si={self.si}, ctx={self.context!r})"
