"""The packet: a stack of decoded headers plus a payload.

Packets traverse the simulation as structured objects (no per-hop
serialization cost), but :meth:`Packet.encode` / :meth:`Packet.decode`
produce and parse real bytes, so the wire formats stay honest — the
property tests round-trip random packets through both.

Header stacking conventions (outer → inner):

* plain overlay transport: ``Eth / IPv4 / UDP(4789) / VXLAN / Eth / IPv4 / L4``
* Nezha BE↔FE hop:        ``Eth / IPv4 / UDP(4790) / NSH(ctx) / IPv4 / L4``

``meta`` is a free-form dict for simulation bookkeeping (timestamps, ids);
it never hits the wire.
"""

from __future__ import annotations

from copy import copy as _shallow_copy
from typing import Any, Dict, List, Optional, Tuple, Type, TypeVar, Union

from repro.errors import DecodeError, PacketError
from repro.net.addr import IPv4Address, MacAddress
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.net.five_tuple import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FiveTuple
from repro.net.icmp import IcmpHeader
from repro.net.ipv4 import IPv4Header
from repro.net.nsh import NEXT_PROTO_ETHERNET, NEXT_PROTO_IPV4, NshHeader
from repro.net.tcp import TcpFlags, TcpHeader
from repro.net.udp import UdpHeader
from repro.net.vxlan import VXLAN_PORT, VxlanHeader

NSH_PORT = 4790  # VXLAN-GPE port, next-protocol NSH

Header = Union[EthernetHeader, IPv4Header, TcpHeader, UdpHeader,
               IcmpHeader, VxlanHeader, NshHeader]
H = TypeVar("H")


class Packet:
    """An ordered header stack (outer first) and a payload.

    ``five_tuple()``, ``wire_length``, and :meth:`encode` are memoized:
    all three walk the layer stack, and the data path consults the first
    two several times per hop while the codec path re-serializes
    identical headers otherwise. The memos are invalidated by
    :meth:`encap`/:meth:`decap`/:meth:`decap_until`; code that mutates
    header fields in place (the NAT rewrites) must call
    :meth:`invalidate_flow_cache` afterwards (see DESIGN.md §3).
    """

    __slots__ = ("layers", "payload", "meta", "_ft", "_wire", "_enc")

    #: Class-level switch for the five_tuple/wire_length memo. Tests flip
    #: it to prove memoization changes no simulation outputs.
    memoize: bool = True

    def __init__(self, layers: List[Header], payload: bytes = b"",
                 meta: Optional[Dict[str, Any]] = None) -> None:
        if not layers:
            raise PacketError("a packet needs at least one header")
        self.layers: List[Header] = list(layers)
        self.payload = payload
        self.meta: Dict[str, Any] = meta if meta is not None else {}
        self._ft: Optional[FiveTuple] = None
        self._wire: Optional[int] = None
        self._enc: Optional[bytes] = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def tcp(cls, src_ip: IPv4Address, dst_ip: IPv4Address,
            src_port: int, dst_port: int, flags: TcpFlags = None,
            payload: bytes = b"", seq: int = 0, ack_num: int = 0) -> "Packet":
        """A bare IPv4/TCP packet (no Ethernet), as a VM's vNIC emits it."""
        total = IPv4Header.wire_length + TcpHeader.wire_length + len(payload)
        ip = IPv4Header(src_ip, dst_ip, PROTO_TCP, total_length=total)
        tcp = TcpHeader(src_port, dst_port, seq=seq, ack_num=ack_num, flags=flags)
        return cls([ip, tcp], payload)

    @classmethod
    def udp(cls, src_ip: IPv4Address, dst_ip: IPv4Address,
            src_port: int, dst_port: int, payload: bytes = b"") -> "Packet":
        total = IPv4Header.wire_length + UdpHeader.wire_length + len(payload)
        ip = IPv4Header(src_ip, dst_ip, PROTO_UDP, total_length=total)
        udp = UdpHeader(src_port, dst_port, UdpHeader.wire_length + len(payload))
        return cls([ip, udp], payload)

    @classmethod
    def icmp_echo(cls, src_ip: IPv4Address, dst_ip: IPv4Address,
                  identifier: int = 0, sequence: int = 0,
                  reply: bool = False) -> "Packet":
        from repro.net.icmp import ECHO_REPLY, ECHO_REQUEST
        total = IPv4Header.wire_length + IcmpHeader.wire_length
        ip = IPv4Header(src_ip, dst_ip, PROTO_ICMP, total_length=total)
        icmp = IcmpHeader(ECHO_REPLY if reply else ECHO_REQUEST, 0,
                          identifier, sequence)
        return cls([ip, icmp], b"")

    # -- header access --------------------------------------------------------

    def find(self, header_type: Type[H], nth: int = 0) -> Optional[H]:
        """The ``nth`` header of the given type, outermost first."""
        seen = 0
        for layer in self.layers:
            if isinstance(layer, header_type):
                if seen == nth:
                    return layer
                seen += 1
        return None

    def expect(self, header_type: Type[H], nth: int = 0) -> H:
        header = self.find(header_type, nth)
        if header is None:
            raise PacketError(f"packet lacks {header_type.__name__}[{nth}]")
        return header

    @property
    def outer(self) -> Header:
        return self.layers[0]

    def inner_ipv4(self) -> IPv4Header:
        """The innermost IPv4 header (the tenant packet's)."""
        for layer in reversed(self.layers):
            if isinstance(layer, IPv4Header):
                return layer
        raise PacketError("packet has no IPv4 header")

    def inner_l4(self) -> Union[TcpHeader, UdpHeader, IcmpHeader]:
        for layer in reversed(self.layers):
            if isinstance(layer, (TcpHeader, UdpHeader, IcmpHeader)):
                return layer
        raise PacketError("packet has no L4 header")

    def five_tuple(self) -> FiveTuple:
        """The innermost flow key (the tenant's 5-tuple); memoized."""
        ft = self._ft
        if ft is not None and self.memoize:
            return ft
        ip = self.inner_ipv4()
        l4 = self.inner_l4()
        if isinstance(l4, (TcpHeader, UdpHeader)):
            ft = FiveTuple(ip.src, ip.dst, ip.proto,
                           l4.src_port, l4.dst_port)
        else:
            ft = FiveTuple(ip.src, ip.dst, ip.proto,
                           l4.identifier, l4.identifier)
        self._ft = ft
        return ft

    def invalidate_flow_cache(self) -> None:
        """Drop the memoized flow key / wire length / encoded bytes after
        an in-place header mutation (NAT rewrites, layer surgery)."""
        self._ft = None
        self._wire = None
        self._enc = None

    def vni(self) -> Optional[int]:
        vxlan = self.find(VxlanHeader)
        return vxlan.vni if vxlan else None

    def nsh(self) -> Optional[NshHeader]:
        return self.find(NshHeader)

    # -- encap / decap ---------------------------------------------------------

    def encap(self, *outer_layers: Header) -> "Packet":
        """Push extra outer headers (given outer-first); returns self."""
        self.layers[:0] = list(outer_layers)
        self._ft = None
        self._wire = None
        self._enc = None
        return self

    def decap(self, count: int = 1) -> List[Header]:
        """Pop ``count`` outermost headers; returns them."""
        if count >= len(self.layers):
            raise PacketError("decap would remove every header")
        removed, self.layers = self.layers[:count], self.layers[count:]
        self._ft = None
        self._wire = None
        self._enc = None
        return removed

    def decap_until(self, header_type: Type[Header]) -> List[Header]:
        """Pop outer headers until the outermost is ``header_type``."""
        removed: List[Header] = []
        while self.layers and not isinstance(self.layers[0], header_type):
            if len(self.layers) == 1:
                raise PacketError(f"no {header_type.__name__} layer to decap to")
            removed.append(self.layers.pop(0))
        if removed:
            self._ft = None
            self._wire = None
            self._enc = None
        return removed

    def copy(self) -> "Packet":
        """A shallow-header copy (headers re-decoded from bytes would be
        equal); meta is copied so per-hop annotations do not alias.

        The copy is built through ``__new__`` and inherits the memoized
        ``five_tuple``/``wire_length``/encoded bytes: a FiveTuple is
        immutable and the copy's field values are identical by
        construction, so there is nothing to re-validate. A caller that
        mutates the copy's headers owes the same
        :meth:`invalidate_flow_cache` the original would."""
        new = Packet.__new__(Packet)
        new.layers = [_shallow_copy(layer) for layer in self.layers]
        new.payload = self.payload
        new.meta = dict(self.meta)
        if Packet.memoize:
            new._ft = self._ft
            new._wire = self._wire
            new._enc = self._enc
        else:
            new._ft = None
            new._wire = None
            new._enc = None
        return new

    # -- wire form --------------------------------------------------------------

    @property
    def wire_length(self) -> int:
        wire = self._wire
        if wire is not None and self.memoize:
            return wire
        wire = sum(layer.wire_length
                   for layer in self.layers) + len(self.payload)
        self._wire = wire
        return wire

    def encode(self) -> bytes:
        enc = self._enc
        if enc is not None and self.memoize:
            return enc
        enc = b"".join(layer.encode() for layer in self.layers) + self.payload
        self._enc = enc
        return enc

    @classmethod
    def decode(cls, data: bytes, first_layer: str = "ipv4") -> "Packet":
        """Parse bytes using the stacking conventions above.

        ``first_layer`` is ``"ethernet"`` or ``"ipv4"`` depending on where
        the bytes were captured.
        """
        layers: List[Header] = []
        rest = data
        expected: Optional[str] = first_layer
        while expected is not None:
            if expected == "ethernet":
                eth, rest = EthernetHeader.decode(rest)
                layers.append(eth)
                if eth.ethertype == ETHERTYPE_IPV4:
                    expected = "ipv4"
                else:
                    raise DecodeError(f"unhandled ethertype {eth.ethertype:#06x}")
            elif expected == "ipv4":
                ip, rest = IPv4Header.decode(rest)
                layers.append(ip)
                if ip.proto == PROTO_TCP:
                    expected = "tcp"
                elif ip.proto == PROTO_UDP:
                    expected = "udp"
                elif ip.proto == PROTO_ICMP:
                    expected = "icmp"
                else:
                    raise DecodeError(f"unhandled IP proto {ip.proto}")
            elif expected == "tcp":
                tcp, rest = TcpHeader.decode(rest)
                layers.append(tcp)
                expected = None
            elif expected == "icmp":
                icmp, rest = IcmpHeader.decode(rest)
                layers.append(icmp)
                expected = None
            elif expected == "udp":
                udp, rest = UdpHeader.decode(rest)
                layers.append(udp)
                if udp.dst_port == VXLAN_PORT:
                    expected = "vxlan"
                elif udp.dst_port == NSH_PORT:
                    expected = "nsh"
                else:
                    expected = None
            elif expected == "vxlan":
                vxlan, rest = VxlanHeader.decode(rest)
                layers.append(vxlan)
                expected = "ethernet"
            elif expected == "nsh":
                nsh, rest = NshHeader.decode(rest)
                layers.append(nsh)
                if nsh.next_proto == NEXT_PROTO_IPV4:
                    expected = "ipv4"
                elif nsh.next_proto == NEXT_PROTO_ETHERNET:
                    expected = "ethernet"
                else:
                    raise DecodeError(f"unhandled NSH next proto {nsh.next_proto}")
            else:  # pragma: no cover - defensive
                raise DecodeError(f"unknown layer kind {expected!r}")
        pkt = cls(layers, rest)
        # The parse consumed every byte of ``data``, and header encodings
        # are canonical, so the input *is* the packet's wire form: a
        # decode→encode round trip returns it without re-serializing.
        pkt._enc = data
        return pkt

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Packet)
                and self.layers == other.layers
                and self.payload == other.payload)

    def __repr__(self) -> str:
        names = "/".join(type(layer).__name__.replace("Header", "")
                         for layer in self.layers)
        return f"Packet({names}, {self.wire_length}B)"


def make_underlay_transport(
    src_mac: MacAddress, dst_mac: MacAddress,
    src_ip: IPv4Address, dst_ip: IPv4Address,
    inner: Packet, vni: int, src_port: int = 49152,
) -> Packet:
    """Wrap a tenant packet in the standard VXLAN overlay transport."""
    inner_bytes_len = inner.wire_length
    inner_eth = EthernetHeader(MacAddress(0x02_00_00_00_00_02),
                               MacAddress(0x02_00_00_00_00_01))
    udp_len = (UdpHeader.wire_length + VxlanHeader.wire_length
               + EthernetHeader.wire_length + inner_bytes_len)
    total = IPv4Header.wire_length + udp_len
    outer = [
        EthernetHeader(dst_mac, src_mac),
        IPv4Header(src_ip, dst_ip, PROTO_UDP, total_length=total),
        UdpHeader(src_port, VXLAN_PORT, udp_len),
        VxlanHeader(vni),
        inner_eth,
    ]
    wrapped = Packet(outer + inner.layers, inner.payload, dict(inner.meta))
    return wrapped


class EncapTemplate:
    """Per-(flow, overlay) cache of the constant VXLAN transport headers.

    :func:`make_underlay_transport` builds five header objects per
    forwarded packet, but for a given session-and-route three of them —
    the outer Ethernet, the VXLAN header, and the synthetic inner
    Ethernet — are identical across every packet, and nothing downstream
    mutates them in place (the underlay only decrements the outer IPv4
    TTL, and :meth:`Packet.copy` shallow-copies layers before any NAT
    surgery). Those three are built once here and shared across wraps.
    The outer IPv4 and UDP headers carry per-packet lengths and the TTL
    is mutated in flight, so they stay per-wrap.

    The template is cached on the :class:`SessionEntry` (``entry.encap``)
    and dropped whenever the route can change — demotion, promotion,
    peer invalidation — or when the wrap-time key (next hop, VNI, source
    port entropy) stops matching.
    """

    __slots__ = ("src_mac", "dst_mac", "src_ip", "dst_ip", "vni",
                 "src_port", "eth", "vxlan", "inner_eth")

    #: UDP-length overhead above the inner packet: UDP + VXLAN + inner Eth.
    OVERHEAD = (UdpHeader.wire_length + VxlanHeader.wire_length
                + EthernetHeader.wire_length)

    def __init__(self, src_mac: MacAddress, dst_mac: MacAddress,
                 src_ip: IPv4Address, dst_ip: IPv4Address,
                 vni: int, src_port: int) -> None:
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.vni = vni
        self.src_port = src_port
        self.eth = EthernetHeader(dst_mac, src_mac)
        self.vxlan = VxlanHeader(vni)
        self.inner_eth = EthernetHeader(MacAddress(0x02_00_00_00_00_02),
                                        MacAddress(0x02_00_00_00_00_01))

    def matches(self, src_mac: MacAddress, dst_mac: MacAddress,
                src_ip: IPv4Address, dst_ip: IPv4Address,
                vni: int, src_port: int) -> bool:
        return (self.src_port == src_port
                and self.vni == vni
                and self.dst_ip == dst_ip
                and self.dst_mac == dst_mac
                and self.src_ip == src_ip
                and self.src_mac == src_mac)

    def wrap(self, inner: Packet) -> Packet:
        """Encapsulate ``inner``; value-identical to
        :func:`make_underlay_transport` with the same parameters."""
        udp_len = self.OVERHEAD + inner.wire_length
        total = IPv4Header.wire_length + udp_len
        outer = [
            self.eth,
            IPv4Header(self.src_ip, self.dst_ip, PROTO_UDP,
                       total_length=total),
            UdpHeader(self.src_port, VXLAN_PORT, udp_len),
            self.vxlan,
            self.inner_eth,
        ]
        return Packet(outer + inner.layers, inner.payload, dict(inner.meta))
