"""MAC and IPv4 address value types.

Small immutable wrappers around integers: hashable, comparable, cheap to
create in bulk (a simulation mints millions), with the usual text forms.
"""

from __future__ import annotations

import re
from typing import Union

from repro.errors import PacketError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")


class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("value",)

    BROADCAST_VALUE = (1 << 48) - 1

    def __init__(self, value: Union[int, str, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            value = value.value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise PacketError(f"bad MAC address: {value!r}")
            value = int(value.replace(":", ""), 16)
        if not 0 <= value < (1 << 48):
            raise PacketError(f"MAC address out of range: {value}")
        self.value = value

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls(cls.BROADCAST_VALUE)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        if len(data) != 6:
            raise PacketError(f"MAC needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))


class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            value = value.value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise PacketError(f"bad IPv4 address: {value!r}")
            acc = 0
            for part in parts:
                if not part.isdigit() or not 0 <= int(part) <= 255:
                    raise PacketError(f"bad IPv4 address: {value!r}")
                acc = (acc << 8) | int(part)
            value = acc
        if not 0 <= value < (1 << 32):
            raise PacketError(f"IPv4 address out of range: {value}")
        self.value = value

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise PacketError(f"IPv4 needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def in_prefix(self, prefix: "IPv4Address", length: int) -> bool:
        """True if this address falls inside ``prefix/length``."""
        if not 0 <= length <= 32:
            raise PacketError(f"bad prefix length: {length}")
        if length == 0:
            return True
        shift = 32 - length
        return (self.value >> shift) == (prefix.value >> shift)

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self.value == other.value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ip4", self.value))
