"""The 5-tuple flow key and its hashing.

Nezha's load balancing across FEs is "only 5-tuple hashing" (paper §3.2.3);
the per-session state lives on the BE, which bidirectional flows of the
same session always traverse, so the hash does **not** need to be symmetric.
We still provide :meth:`FiveTuple.reversed` and a canonical session key
because the session table stores bidirectional flows in a single entry.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.net.addr import IPv4Address

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}


class FiveTuple:
    """(src ip, dst ip, protocol, src port, dst port) — the flow key."""

    #: Class-level switch for the cached session key. ``False`` rebuilds
    #: the tuple on every call (the pre-burst behavior); the burst
    #: determinism suite runs both and requires identical outputs.
    memoize_key: bool = True

    __slots__ = ("src_ip", "dst_ip", "proto", "src_port", "dst_port",
                 "_hash", "_session_key", "_hash64")

    def __init__(
        self,
        src_ip: IPv4Address,
        dst_ip: IPv4Address,
        proto: int,
        src_port: int,
        dst_port: int,
    ) -> None:
        self.src_ip = IPv4Address(src_ip)
        self.dst_ip = IPv4Address(dst_ip)
        self.proto = int(proto)
        self.src_port = int(src_port)
        self.dst_port = int(dst_port)
        # Tuples are immutable, so the dict hash — recomputed on every
        # session-table probe otherwise — is precomputed once.
        self._hash = hash((self.src_ip, self.dst_ip, self.proto,
                           self.src_port, self.dst_port))
        self._session_key: Tuple = None
        self._hash64 = None

    def reversed(self) -> "FiveTuple":
        """The same session seen from the other direction."""
        return FiveTuple(self.dst_ip, self.src_ip, self.proto,
                         self.dst_port, self.src_port)

    def session_key(self) -> Tuple:
        """Direction-independent key: both directions map to one session.

        Fields are immutable after construction, so the key is computed
        once — the session table probes with it on every lookup, insert,
        and remove, which the burst datapath turns into the per-burst
        hot call.
        """
        key = self._session_key
        if key is not None and FiveTuple.memoize_key:
            return key
        a = (self.src_ip.value, self.src_port)
        b = (self.dst_ip.value, self.dst_port)
        lo, hi = (a, b) if a <= b else (b, a)
        key = (self.proto, lo, hi)
        self._session_key = key
        return key

    def hash(self, seed: int = 0) -> int:
        """Stable 64-bit flow hash used to pick an FE.

        Deterministic across processes (unlike built-in ``hash``), and
        reseedable: §7.5 reconfigures the hash function at the source side
        to fix skew, which we model by changing ``seed``.

        The default-seed digest is memoized (fields are immutable): the
        forwarding path derives VXLAN source-port entropy from it for
        every encapsulated packet, which made one sha256 per forward the
        hot-loop cost.
        """
        if seed == 0:
            cached = self._hash64
            if cached is not None and FiveTuple.memoize_key:
                return cached
        blob = (
            seed.to_bytes(8, "big", signed=False)
            + self.src_ip.to_bytes()
            + self.dst_ip.to_bytes()
            + bytes([self.proto])
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
        )
        value = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
        if seed == 0:
            self._hash64 = value
        return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, FiveTuple)
            and self.proto == other.proto
            and self.src_port == other.src_port
            and self.dst_port == other.dst_port
            and self.src_ip.value == other.src_ip.value
            and self.dst_ip.value == other.dst_ip.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        proto = _PROTO_NAMES.get(self.proto, str(self.proto))
        return (f"FiveTuple({self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port} {proto})")
