"""The fleet's shared-FE-pool coordinator.

The only cross-shard coupling in the fleet simulation: shards report
per-epoch FE demand (the hot lists), the coordinator allocates pool
capacity and the resulting grants feed back into the *next* epoch's
shard calls — a granted hotspot retains only its capacity's worth of
traffic, so its micro-sim measurably de-saturates (§6 feedback loop).

Determinism contract: :meth:`FleetCoordinator.settle` consumes reports
in shard-submission order (= ascending global index, since shard ranges
are contiguous) and settles renewals before new requests, each in
ascending vSwitch index. Nothing depends on shard count. Activation
draws use ``derive_seed(seed, f"fleet/act/e{epoch}/vs{index}")`` — keyed
on the global index, drawn only for *newly granted* vSwitches, whose set
is itself shard-invariant.

Allocation policy (mirrors the controller's all-or-nothing placement,
§6.3.2): a hotspot gets its full requested unit count or nothing;
renewals are served first so an active offload is never evicted by a
newcomer mid-overload; grants are released the first epoch the holder
stops requesting.

The allocation step is pluggable (``policy=``), mirroring the
controller-level :mod:`repro.controller.policy` arena at fleet
granularity:

* ``"nezha"`` — the default above, byte-identical to the pre-arena
  coordinator;
* ``"pam"`` — push-neighbor-aside: each hotspot gets at most one unit
  (a single neighbor's spare capacity), so partially-served hotspots
  stay residual for their capacity kinds;
* ``"supernic"`` — per-tenant fair shares of the pool
  (tenant = index mod ``n_tenants``) with preemption: an under-quota
  tenant's request evicts over-quota tenants' newest grants;
* ``"sirius"`` — no shared pool: every request is denied (the
  before-Nezha baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import telemetry as _telemetry
from repro.controller.latency import ControlLatencyModel
from repro.experiments.fig13 import activation_sampler
from repro.sim.rng import SeededRng, derive_seed
from repro.telemetry.fleet import DecisionJournal
from repro.workloads.fleet import HotspotKind


class FleetCoordinator:
    """Allocates the shared FE pool and scores mitigation per epoch."""

    POLICIES = ("nezha", "pam", "supernic", "sirius")

    def __init__(self, seed: int, pool_units: int,
                 survivable_window: float = 3.6,
                 latency: ControlLatencyModel = None,
                 policy: str = "nezha", n_tenants: int = 8,
                 journal: Optional[DecisionJournal] = None) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown fleet policy {policy!r}; "
                             f"choose from {', '.join(self.POLICIES)}")
        self.seed = seed
        self.pool_units = pool_units
        self.survivable_window = survivable_window
        self.policy = policy
        self.n_tenants = n_tenants
        self._sample_activation = activation_sampler(
            latency or ControlLatencyModel())
        #: global vSwitch index -> granted FE units (active offloads)
        self.grants: Dict[int, int] = {}
        #: per-kind (occurrences, residual) accumulated across epochs
        self.overloads: Dict[HotspotKind, List[int]] = {
            kind: [0, 0] for kind in HotspotKind}
        #: per-epoch pool utilization after settling, in [0, 1]
        self.utilization: List[float] = []
        self.denied_requests = 0
        self.preemptions = 0
        # Decision journal: explicit, or the installed telemetry's, or
        # None — in which case every producer site below is one check.
        if journal is None:
            tel = _telemetry.current()
            journal = tel.decisions if tel is not None else None
        self.journal = journal
        self._epoch: Optional[int] = None

    def units_in_use(self) -> int:
        return sum(self.grants.values())

    def _journal(self, action: str, index: Optional[int],
                 **fields) -> None:
        """Record one settle decision; pure observation — no RNG, no
        accounting — so journaling on/off cannot perturb the run."""
        journal = self.journal
        if journal is None:
            return
        tenant = index % self.n_tenants if index is not None else None
        journal.coordinator_event(self._epoch, self.policy, action,
                                  index=index, tenant=tenant, **fields)

    def settle(self, epoch: int, reports: List[Dict[str, object]]
               ) -> Dict[int, int]:
        """Fold one epoch's shard reports into grants and accounting.

        ``reports`` must be in shard-submission order (ascending ranges);
        returns the grants map to feed into the next epoch's shard calls.
        """
        requests: List[Tuple[int, int, List[str]]] = []
        for report in reports:
            for entry in report["hot"]:
                requests.append((entry["index"], entry["units"],
                                 entry["kinds"]))
        requesting = {index for index, _u, _k in requests}
        self._epoch = epoch

        # Release grants whose holder went quiet (ascending index for a
        # deterministic free-pool trajectory, though release commutes).
        for index in sorted(self.grants):
            if index not in requesting:
                self._journal("release", index, units=self.grants[index])
                del self.grants[index]

        allocate = getattr(self, f"_allocate_{self.policy}")
        newly_granted, under_granted = allocate(requests)

        # Mitigation accounting (fig13 semantics, one decision per kind):
        # denied -> residual; #vNIC overloads and renewals are mitigated
        # outright (rule tables live on the FEs already / offload is
        # active); a partial grant (PAM/SuperNIC) leaves capacity kinds
        # residual; a fresh full grant mitigates only if activation lands
        # inside the survivable window.
        for index, _units, kinds in requests:
            if index in newly_granted:
                rng = SeededRng(
                    derive_seed(self.seed, f"fleet/act/e{epoch}/vs{index}"),
                    "act")
                activation = self._sample_activation(rng)
                activated = activation <= self.survivable_window
                self._journal("mitigation", index, activated=activated,
                              activation_s=activation,
                              window=self.survivable_window)
            for kind_value in kinds:
                kind = HotspotKind(kind_value)
                counters = self.overloads[kind]
                counters[0] += 1
                if index not in self.grants:
                    counters[1] += 1          # denied: overload stands
                elif kind is HotspotKind.VNICS:
                    pass                      # §6.3.3: always mitigated
                elif index in under_granted:
                    counters[1] += 1          # partial grant: still over
                elif index in newly_granted and not activated:
                    counters[1] += 1          # activated too late
        self.utilization.append(self.units_in_use() / self.pool_units
                                if self.pool_units else 0.0)
        self._journal("settle", None, requests=len(requests),
                      granted_new=len(newly_granted),
                      under_granted=len(under_granted),
                      in_use=self.units_in_use(), pool=self.pool_units,
                      utilization=self.utilization[-1])
        return dict(self.grants)

    # -- allocation policies -------------------------------------------------

    def _allocate_nezha(self, requests: List[Tuple[int, int, List[str]]]
                        ) -> Tuple[Set[int], Set[int]]:
        """All-or-nothing, renewals first — an active offload keeps its
        capacity — then new requests, both in ascending global index."""
        free = self.pool_units - self.units_in_use()
        newly_granted: Set[int] = set()
        for renewal_pass in (True, False):
            for index, units, _kinds in requests:
                held = index in self.grants
                if held is not renewal_pass:
                    continue
                if held:
                    # renewal: capacity already reserved
                    self._journal("renewal", index, requested=units,
                                  granted=self.grants[index])
                    continue
                if units <= free:
                    self.grants[index] = units
                    newly_granted.add(index)
                    free -= units
                    self._journal("grant", index, requested=units,
                                  granted=units)
                else:
                    self.denied_requests += 1
                    self._journal("denial", index, requested=units,
                                  granted=0, reason="pool_exhausted")
        return newly_granted, set()

    def _allocate_pam(self, requests: List[Tuple[int, int, List[str]]]
                      ) -> Tuple[Set[int], Set[int]]:
        """Push-neighbor-aside: each hotspot is served with at most one
        unit (a single neighbor's spare capacity), so a multi-unit
        demand is under-granted and stays residual."""
        free = self.pool_units - self.units_in_use()
        newly_granted: Set[int] = set()
        under_granted: Set[int] = set()
        for renewal_pass in (True, False):
            for index, units, _kinds in requests:
                held = index in self.grants
                if held is not renewal_pass:
                    continue
                if held:
                    if units > self.grants[index]:
                        under_granted.add(index)
                    self._journal("renewal", index, requested=units,
                                  granted=self.grants[index])
                    continue
                grant = min(units, 1)
                if grant <= free:
                    self.grants[index] = grant
                    newly_granted.add(index)
                    free -= grant
                    if grant < units:
                        under_granted.add(index)
                    self._journal("grant", index, requested=units,
                                  granted=grant,
                                  reason="single_unit_cap"
                                  if grant < units else None)
                else:
                    self.denied_requests += 1
                    self._journal("denial", index, requested=units,
                                  granted=0, reason="pool_exhausted")
        return newly_granted, under_granted

    def _allocate_supernic(self, requests: List[Tuple[int, int, List[str]]]
                           ) -> Tuple[Set[int], Set[int]]:
        """Per-tenant fair shares (tenant = index mod ``n_tenants``) with
        preemption: a capped request from an under-quota tenant evicts
        over-quota tenants' newest grants to make room."""
        quota = max(1, self.pool_units // max(1, self.n_tenants))
        usage: Dict[int, int] = {}
        for index, units in self.grants.items():
            tenant = index % self.n_tenants
            usage[tenant] = usage.get(tenant, 0) + units
        free = self.pool_units - self.units_in_use()
        newly_granted: Set[int] = set()
        under_granted: Set[int] = set()
        for renewal_pass in (True, False):
            for index, units, _kinds in requests:
                held = index in self.grants
                if held is not renewal_pass:
                    continue
                if held:
                    # renewal: capacity already reserved
                    self._journal("renewal", index, requested=units,
                                  granted=self.grants[index])
                    continue
                tenant = index % self.n_tenants
                grant = min(units, max(0, quota - usage.get(tenant, 0)))
                if grant == 0:
                    self.denied_requests += 1  # tenant is at its quota
                    self._journal("denial", index, requested=units,
                                  granted=0, reason="tenant_quota",
                                  quota=quota)
                    continue
                if grant > free:
                    free += self._preempt_over_quota(quota, usage,
                                                     grant - free)
                if grant <= free:
                    self.grants[index] = grant
                    newly_granted.add(index)
                    usage[tenant] = usage.get(tenant, 0) + grant
                    free -= grant
                    if grant < units:
                        under_granted.add(index)
                    self._journal("grant", index, requested=units,
                                  granted=grant, quota=quota,
                                  reason="tenant_quota_cap"
                                  if grant < units else None)
                else:
                    self.denied_requests += 1
                    self._journal("denial", index, requested=units,
                                  granted=0, reason="pool_exhausted")
        return newly_granted, under_granted

    def _preempt_over_quota(self, quota: int, usage: Dict[int, int],
                            needed: int) -> int:
        """Evict over-quota tenants' grants, highest index (newest
        hotspot) first, until ``needed`` units are free; returns the
        number of units actually freed."""
        freed = 0
        for index in sorted(self.grants, reverse=True):
            if freed >= needed:
                break
            tenant = index % self.n_tenants
            if usage.get(tenant, 0) <= quota:
                continue
            units = self.grants.pop(index)
            usage[tenant] -= units
            freed += units
            self.preemptions += 1
            self._journal("preemption", index, units=units,
                          reason="over_quota", quota=quota)
        return freed

    def _allocate_sirius(self, requests: List[Tuple[int, int, List[str]]]
                         ) -> Tuple[Set[int], Set[int]]:
        """No shared FE pool: every request is denied and every overload
        stands — the before-Nezha baseline."""
        for index, units, _kinds in requests:
            self.denied_requests += 1
            self._journal("denial", index, requested=units, granted=0,
                          reason="no_pool")
        return set(), set()
