"""One shard of the fleet: a contiguous vSwitch range and its epoch step.

The fleet runner partitions the global vSwitch index space ``0..n-1``
into contiguous per-shard ranges. Each epoch, every shard advances its
range independently — cold vSwitches fluidly against flyweight records,
hot ones through a per-packet micro-sim — and returns a plain-data
*report* the coordinator folds into pool decisions.

Everything a vSwitch does is keyed on its **global index**, never on its
shard-local position:

* its demand stream is ``SeededRng(vswitch_seed(seed, g), f"e{epoch}")``
  — three uniforms per epoch (cps, flows, vnics), the
  ``FleetModel.sample_demands`` draw order;
* its hot micro-sim seed is ``derive_seed(seed, f"fleet/hot/e{e}/vs{g}")``.

So the numbers a vSwitch produces cannot depend on how many shards the
fleet was split into, and because shard ranges are contiguous and
ascending — and ``sweep()`` merges in submission order — concatenating
per-shard hot lists yields a globally index-ascending list for every
shard count. Cold-side aggregates are integers, which commute. That is
the whole shard-count-invariance argument (DESIGN §5.6).

:func:`run_shard_epoch` is a top-level function over one picklable
tuple, the :func:`repro.experiments.parallel.sweep` point contract; the
:class:`ShardState` it threads through is arrays all the way down, so
the round-trip through a pool worker is cheap — and under the resident
pool (:class:`repro.experiments.parallel.ResidentPool`) the state never
crosses the process boundary at all between epochs.

The epoch step itself is **vectorized over the cold tail**: per-vSwitch
epoch streams are drawn into plain columns first (one reused
``random.Random`` reseeded per vSwitch with the exact
``SeededRng(vswitch_seed(seed, g), f"e{epoch}")`` mix, so every draw
value is bit-identical to the scalar path — :func:`_epoch_demand` stays
as the reference implementation the regression tests compare against),
the Table 1 inversions run bisect-per-element over those columns, and
one tight pass does churn, pending-aggregate, and hot/cold
classification with zero per-vSwitch object construction. Only the ~1%
hot vSwitches drop into the per-index Python path.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from hashlib import sha256
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.rng import SeededRng, derive_seed
from repro.telemetry.fleet import snapshot_shard
from repro.workloads.fleet import (FleetCapacity, HotspotKind, VSwitchDemand,
                                   usage_dist)

from .flyweight import FleetFlowStore
from .hotsim import simulate_hot_epoch


@dataclass(frozen=True)
class FleetParams:
    """Immutable fleet-run configuration, shipped to every worker."""

    seed: int = 0
    n_vswitches: int = 10_000
    #: Concurrent flows held by a vSwitch at normalized demand 1.0 (the
    #: P9999 user of Table 1). The fleet median lands near 160 flows per
    #: vSwitch, ~2.6M live flows at 10K vSwitches.
    flows_per_unit: int = 20_000
    #: Per-epoch bound on flow births/deaths per vSwitch (epoch 0 seeds
    #: the full target population). Keeps churn work O(1) per epoch.
    churn_cap: int = 32
    #: New connections per epoch at normalized CPS demand 1.0, and the
    #: fluid per-connection traffic shape.
    conns_per_unit: int = 50_000
    pkts_per_conn: int = 6
    avg_pkt_bytes: int = 800
    #: Simulated seconds of per-packet traffic for each hot vSwitch.
    hot_sim_duration: float = 0.2
    capacity: FleetCapacity = field(default_factory=FleetCapacity)
    #: Attach a :func:`repro.telemetry.fleet.snapshot_shard` metric
    #: snapshot to each epoch report (``report["metrics"]``). Off by
    #: default; the epoch step pays one attribute check when disabled,
    #: and the snapshot derives from the finished report, so no report
    #: value changes either way.
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.n_vswitches < 1:
            raise ConfigError("n_vswitches must be >= 1")
        if self.churn_cap < 1:
            raise ConfigError("churn_cap must be >= 1")


def vswitch_seed(seed: int, index: int) -> int:
    """The global-index-keyed seed every vSwitch stream derives from."""
    return derive_seed(seed, f"fleet/vs{index}")


def partition(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``0..n-1`` in order.

    The first ``n % shards`` ranges hold one extra vSwitch, so sizes
    differ by at most one and concatenating ranges in shard order walks
    the global index space ascending.
    """
    if shards < 1:
        raise ConfigError("shards must be >= 1")
    shards = min(shards, n) or 1
    base, extra = divmod(n, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class ShardState:
    """Per-shard persistent state threaded through the epochs.

    Pickle-friendly by construction: the flyweight store and the
    per-vSwitch slot blocks are stdlib arrays, the pending accumulators
    plain int lists. One instance round-trips coordinator → worker →
    coordinator every epoch when the fleet runs sharded; with
    ``shards=1``/``jobs=1`` it is mutated in place (the legacy path).
    """

    __slots__ = ("lo", "hi", "store", "slots", "pending_pkts",
                 "pending_bytes", "_seed_prefixes")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.store = FleetFlowStore()
        n = hi - lo
        self.slots: List["array[int]"] = [array("l") for _ in range(n)]
        self.pending_pkts = array("q", bytes(8 * n))
        self.pending_bytes = array("q", bytes(8 * n))
        #: (root seed, per-vSwitch ``b"{vswitch_seed}:"`` encodings) —
        #: the SHA-256 input prefixes every epoch stream hashes with its
        #: ``e{epoch}`` suffix. Derived once per shard lifetime instead
        #: of once per epoch; deliberately NOT pickled (a resident
        #: worker rebuilds it on first step and then keeps it).
        self._seed_prefixes: Optional[Tuple[int, List[bytes]]] = None

    def __getstate__(self):
        return (self.lo, self.hi, self.store, self.slots,
                self.pending_pkts, self.pending_bytes)

    def __setstate__(self, state) -> None:
        (self.lo, self.hi, self.store, self.slots,
         self.pending_pkts, self.pending_bytes) = state
        self._seed_prefixes = None

    def seed_prefixes(self, seed: int) -> List[bytes]:
        """Per-vSwitch hash prefixes for the epoch-stream derivation.

        ``SeededRng(vswitch_seed(seed, g), f"e{epoch}")`` seeds from
        ``sha256(b"{vswitch_seed}:" + b"e{epoch}")`` — the prefix is
        epoch-free, so it is computed once and reused every epoch."""
        cached = self._seed_prefixes
        if cached is None or cached[0] != seed:
            prefixes = [b"%d:" % vswitch_seed(seed, g)
                        for g in range(self.lo, self.hi)]
            self._seed_prefixes = (seed, prefixes)
            return prefixes
        return cached[1]

    def __len__(self) -> int:
        return self.hi - self.lo

    def live_flows(self) -> int:
        return len(self.store)

    def nbytes(self) -> int:
        """Flyweight payload bytes: store columns + per-vSwitch slot refs."""
        refs = sum(block.itemsize * len(block) for block in self.slots)
        return self.store.nbytes() + refs

    def materialize(self) -> Tuple[int, int]:
        """Fold every vSwitch's pending aggregate into its flow slots —
        the end-of-run materialization boundary. Returns the shard's
        total (packets, bytes) including any unfoldable remainder from
        vSwitches that ended with zero live flows.

        Pending accumulators are cleared unconditionally — including
        when :meth:`FleetFlowStore.fold` returns ``(0, 0)`` because a
        vSwitch has no live slots to fold into (its remainder is
        accounted in the returned totals and nowhere else). That makes
        the boundary idempotent: a second call finds every accumulator
        zero and is a no-op returning ``(0, 0)``."""
        store = self.store
        pending_pkts = self.pending_pkts
        pending_bytes = self.pending_bytes
        total_pkts = sum(pending_pkts)
        total_bytes = sum(pending_bytes)
        for i, block in enumerate(self.slots):
            store.fold(block, pending_pkts[i], pending_bytes[i])
            pending_pkts[i] = 0
            pending_bytes[i] = 0
        return total_pkts, total_bytes


def make_shards(params: FleetParams, shards: int) -> List[ShardState]:
    return [ShardState(lo, hi)
            for lo, hi in partition(params.n_vswitches, shards)]


def _epoch_demand(seed: int, index: int, epoch: int,
                  dists) -> VSwitchDemand:
    """One vSwitch's demand redraw for one epoch: three uniforms in the
    cps/flows/vnics order ``FleetModel.sample_demands`` established.

    This is the scalar *reference implementation* of the stream the
    vectorized :func:`_epoch_uniform_columns` path must reproduce
    bit-for-bit; the RNG-identity tests compare the two directly."""
    rng = SeededRng(vswitch_seed(seed, index), f"e{epoch}")
    cps_dist, flows_dist, vnics_dist = dists
    return VSwitchDemand(cps=cps_dist._invert(rng.random()),
                         flows=flows_dist._invert(rng.random()),
                         vnics=vnics_dist._invert(rng.random()))


def _epoch_uniform_columns(state: ShardState, seed: int, epoch: int
                           ) -> Tuple[List[float], List[float], List[float]]:
    """The shard's raw demand uniforms for one epoch, as three columns.

    One ``random.Random`` instance is reseeded per vSwitch with the
    exact ``SeededRng`` mix (``sha256(b"{vswitch_seed}:e{epoch}")``
    truncated to 64 bits) — ``Random(x)`` and ``Random().seed(x)``
    build the identical Mersenne Twister state, so the three draws per
    vSwitch match :func:`_epoch_demand` bit-for-bit without constructing
    10K ``SeededRng`` objects per epoch."""
    suffix = b"e%d" % epoch
    rnd = Random()
    reseed = rnd.seed
    draw = rnd.random
    from_bytes = int.from_bytes
    u_cps: List[float] = []
    u_flows: List[float] = []
    u_vnics: List[float] = []
    for prefix in state.seed_prefixes(seed):
        reseed(from_bytes(sha256(prefix + suffix).digest()[:8], "big"))
        u_cps.append(draw())
        u_flows.append(draw())
        u_vnics.append(draw())
    return u_cps, u_flows, u_vnics


def demand_units(demand: VSwitchDemand, capacity: FleetCapacity,
                 ratio: Optional[float] = None) -> int:
    """FE units a hot vSwitch requests: enough extra capacity to cover
    its worst kind's excess over the BE (one unit = one BE's worth).

    ``ratio`` is the worst demand/capacity ratio when the caller has
    already computed it (the epoch step needs the same number for the
    micro-sim); left ``None`` it is derived here."""
    if ratio is None:
        ratio = max(demand.cps / capacity.cps,
                    demand.flows / capacity.flows,
                    demand.vnics / capacity.vnics)
    return max(1, math.ceil(ratio) - 1)


def run_shard_epoch(point) -> Tuple[ShardState, Dict[str, object]]:
    """Advance one shard one epoch; the ``sweep()`` point function and
    the resident pool's per-epoch actor step.

    ``point`` is ``(state, epoch, grants, params)`` where ``grants`` maps
    the global indices holding an active FE grant (decided by the
    coordinator from the *previous* epoch's reports) to their unit
    counts. Returns the advanced state plus a plain-data report:
    integer-only cold aggregates and an index-ascending hot list.

    Structure: draw the epoch's uniforms into columns, invert the
    Table 1 distributions column-wise, then one pass over the range does
    churn + pending aggregates + hot/cold classification on the
    precomputed values. The pass mutates the store in ascending global
    index order — exactly the scalar path's order, so slot recycling and
    every report field are unchanged.
    """
    state, epoch, grants, params = point
    capacity = params.capacity
    store = state.store
    churn_cap = params.churn_cap
    seed_epoch = epoch == 0

    u_cps, u_flows, u_vnics = _epoch_uniform_columns(state, params.seed,
                                                     epoch)
    cps_col = usage_dist("cps").invert_n(u_cps)
    flows_col = usage_dist("flows").invert_n(u_flows)
    vnics_col = usage_dist("vnics").invert_n(u_vnics)

    cap_cps = capacity.cps
    cap_flows = capacity.flows
    cap_vnics = capacity.vnics
    flows_per_unit = params.flows_per_unit
    conns_per_unit = params.conns_per_unit
    pkts_per_conn = params.pkts_per_conn
    avg_pkt_bytes = params.avg_pkt_bytes
    slots = state.slots
    pending_pkts = state.pending_pkts
    pending_bytes = state.pending_bytes
    lo = state.lo

    cold_count = cold_flows = cold_pkts = cold_bytes = 0
    born_total = died_total = 0
    hot: List[Dict[str, object]] = []

    for i in range(state.hi - lo):
        cps = cps_col[i]
        flows = flows_col[i]

        # -- flow churn toward this epoch's target population ----------
        target = int(flows * flows_per_unit)
        block = slots[i]
        delta = target - len(block)
        if delta > 0:
            born = delta if seed_epoch or delta < churn_cap else churn_cap
            block.extend(store.alloc_block(born))
            born_total += born
        elif delta < 0:
            died = -delta if -delta < churn_cap else churn_cap
            # Fold what the dying flows have pending before they leave:
            # their history is part of the fleet totals either way, but
            # folding first keeps the per-slot shares exact.
            doomed = block[len(block) - died:]
            del block[len(block) - died:]
            store.free_block(doomed)
            died_total += died

        # -- fluid traffic: two pending ints, O(1) per epoch -----------
        pkts = int(cps * conns_per_unit) * pkts_per_conn
        nbytes = pkts * avg_pkt_bytes
        pending_pkts[i] += pkts
        pending_bytes[i] += nbytes

        if cps > cap_cps or flows > cap_flows or vnics_col[i] > cap_vnics:
            g = lo + i
            demand = VSwitchDemand(cps=cps, flows=flows, vnics=vnics_col[i])
            kinds = demand.hotspots(capacity)
            ratio = max(cps / cap_cps, flows / cap_flows,
                        vnics_col[i] / cap_vnics)
            sim = simulate_hot_epoch(
                seed=derive_seed(params.seed, f"fleet/hot/e{epoch}/vs{g}"),
                demand_ratio=ratio, granted=g in grants,
                duration=params.hot_sim_duration)
            entry: Dict[str, object] = {
                "index": g,
                "kinds": [kind.value for kind in kinds],
                "units": demand_units(demand, capacity, ratio),
                "ratio": ratio,
                "flows": len(block),
                "pkts": pkts,
                "bytes": nbytes,
            }
            entry.update(sim)
            hot.append(entry)
        else:
            cold_count += 1
            cold_flows += len(block)
            cold_pkts += pkts
            cold_bytes += nbytes

    cold = {"count": cold_count, "flows": cold_flows, "pkts": cold_pkts,
            "bytes": cold_bytes, "born": born_total, "died": died_total}
    report: Dict[str, object] = {"epoch": epoch, "lo": lo,
                                 "hi": state.hi, "cold": cold, "hot": hot}
    if params.collect_metrics:
        # End-of-epoch slot lengths equal the classification-time flow
        # populations, so the snapshot is derivable entirely from the
        # finished report + final slots — see snapshot_shard.
        report["metrics"] = snapshot_shard(report, slots)
    return state, report
