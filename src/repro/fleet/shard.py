"""One shard of the fleet: a contiguous vSwitch range and its epoch step.

The fleet runner partitions the global vSwitch index space ``0..n-1``
into contiguous per-shard ranges. Each epoch, every shard advances its
range independently — cold vSwitches fluidly against flyweight records,
hot ones through a per-packet micro-sim — and returns a plain-data
*report* the coordinator folds into pool decisions.

Everything a vSwitch does is keyed on its **global index**, never on its
shard-local position:

* its demand stream is ``SeededRng(vswitch_seed(seed, g), f"e{epoch}")``
  — three uniforms per epoch (cps, flows, vnics), the
  ``FleetModel.sample_demands`` draw order;
* its hot micro-sim seed is ``derive_seed(seed, f"fleet/hot/e{e}/vs{g}")``.

So the numbers a vSwitch produces cannot depend on how many shards the
fleet was split into, and because shard ranges are contiguous and
ascending — and ``sweep()`` merges in submission order — concatenating
per-shard hot lists yields a globally index-ascending list for every
shard count. Cold-side aggregates are integers, which commute. That is
the whole shard-count-invariance argument (DESIGN §5.6).

:func:`run_shard_epoch` is a top-level function over one picklable
tuple, the :func:`repro.experiments.parallel.sweep` point contract; the
:class:`ShardState` it threads through is arrays all the way down, so
the round-trip through a pool worker is cheap.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.sim.rng import SeededRng, derive_seed
from repro.workloads.fleet import (FleetCapacity, HotspotKind, VSwitchDemand,
                                   usage_dist)

from .flyweight import FleetFlowStore
from .hotsim import simulate_hot_epoch


@dataclass(frozen=True)
class FleetParams:
    """Immutable fleet-run configuration, shipped to every worker."""

    seed: int = 0
    n_vswitches: int = 10_000
    #: Concurrent flows held by a vSwitch at normalized demand 1.0 (the
    #: P9999 user of Table 1). The fleet median lands near 160 flows per
    #: vSwitch, ~2.6M live flows at 10K vSwitches.
    flows_per_unit: int = 20_000
    #: Per-epoch bound on flow births/deaths per vSwitch (epoch 0 seeds
    #: the full target population). Keeps churn work O(1) per epoch.
    churn_cap: int = 32
    #: New connections per epoch at normalized CPS demand 1.0, and the
    #: fluid per-connection traffic shape.
    conns_per_unit: int = 50_000
    pkts_per_conn: int = 6
    avg_pkt_bytes: int = 800
    #: Simulated seconds of per-packet traffic for each hot vSwitch.
    hot_sim_duration: float = 0.2
    capacity: FleetCapacity = field(default_factory=FleetCapacity)

    def __post_init__(self) -> None:
        if self.n_vswitches < 1:
            raise ConfigError("n_vswitches must be >= 1")
        if self.churn_cap < 1:
            raise ConfigError("churn_cap must be >= 1")


def vswitch_seed(seed: int, index: int) -> int:
    """The global-index-keyed seed every vSwitch stream derives from."""
    return derive_seed(seed, f"fleet/vs{index}")


def partition(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``0..n-1`` in order.

    The first ``n % shards`` ranges hold one extra vSwitch, so sizes
    differ by at most one and concatenating ranges in shard order walks
    the global index space ascending.
    """
    if shards < 1:
        raise ConfigError("shards must be >= 1")
    shards = min(shards, n) or 1
    base, extra = divmod(n, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class ShardState:
    """Per-shard persistent state threaded through the epochs.

    Pickle-friendly by construction: the flyweight store and the
    per-vSwitch slot blocks are stdlib arrays, the pending accumulators
    plain int lists. One instance round-trips coordinator → worker →
    coordinator every epoch when the fleet runs sharded; with
    ``shards=1``/``jobs=1`` it is mutated in place (the legacy path).
    """

    __slots__ = ("lo", "hi", "store", "slots", "pending_pkts",
                 "pending_bytes")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.store = FleetFlowStore()
        n = hi - lo
        self.slots: List["array[int]"] = [array("l") for _ in range(n)]
        self.pending_pkts: List[int] = [0] * n
        self.pending_bytes: List[int] = [0] * n

    def __getstate__(self):
        return (self.lo, self.hi, self.store, self.slots,
                self.pending_pkts, self.pending_bytes)

    def __setstate__(self, state) -> None:
        (self.lo, self.hi, self.store, self.slots,
         self.pending_pkts, self.pending_bytes) = state

    def __len__(self) -> int:
        return self.hi - self.lo

    def live_flows(self) -> int:
        return len(self.store)

    def nbytes(self) -> int:
        """Flyweight payload bytes: store columns + per-vSwitch slot refs."""
        refs = sum(block.itemsize * len(block) for block in self.slots)
        return self.store.nbytes() + refs

    def materialize(self) -> Tuple[int, int]:
        """Fold every vSwitch's pending aggregate into its flow slots —
        the end-of-run materialization boundary. Returns the shard's
        total (packets, bytes) including any unfoldable remainder from
        vSwitches that ended with zero live flows."""
        store = self.store
        total_pkts = sum(self.pending_pkts)
        total_bytes = sum(self.pending_bytes)
        for i, block in enumerate(self.slots):
            folded = store.fold(block, self.pending_pkts[i],
                                self.pending_bytes[i])
            if folded != (0, 0):
                self.pending_pkts[i] = 0
                self.pending_bytes[i] = 0
        return total_pkts, total_bytes


def make_shards(params: FleetParams, shards: int) -> List[ShardState]:
    return [ShardState(lo, hi)
            for lo, hi in partition(params.n_vswitches, shards)]


def _epoch_demand(seed: int, index: int, epoch: int,
                  dists) -> VSwitchDemand:
    """One vSwitch's demand redraw for one epoch: three uniforms in the
    cps/flows/vnics order ``FleetModel.sample_demands`` established."""
    rng = SeededRng(vswitch_seed(seed, index), f"e{epoch}")
    cps_dist, flows_dist, vnics_dist = dists
    return VSwitchDemand(cps=cps_dist._invert(rng.random()),
                         flows=flows_dist._invert(rng.random()),
                         vnics=vnics_dist._invert(rng.random()))


def demand_units(demand: VSwitchDemand, capacity: FleetCapacity) -> int:
    """FE units a hot vSwitch requests: enough extra capacity to cover
    its worst kind's excess over the BE (one unit = one BE's worth)."""
    ratio = max(demand.cps / capacity.cps,
                demand.flows / capacity.flows,
                demand.vnics / capacity.vnics)
    return max(1, math.ceil(ratio) - 1)


def run_shard_epoch(point) -> Tuple[ShardState, Dict[str, object]]:
    """Advance one shard one epoch; the ``sweep()`` point function.

    ``point`` is ``(state, epoch, grants, params)`` where ``grants`` maps
    the global indices holding an active FE grant (decided by the
    coordinator from the *previous* epoch's reports) to their unit
    counts. Returns the advanced state plus a plain-data report:
    integer-only cold aggregates and an index-ascending hot list.
    """
    state, epoch, grants, params = point
    dists = (usage_dist("cps"), usage_dist("flows"), usage_dist("vnics"))
    capacity = params.capacity
    store = state.store
    churn_cap = params.churn_cap
    cold = {"count": 0, "flows": 0, "pkts": 0, "bytes": 0,
            "born": 0, "died": 0}
    hot: List[Dict[str, object]] = []

    for i in range(state.hi - state.lo):
        g = state.lo + i
        demand = _epoch_demand(params.seed, g, epoch, dists)

        # -- flow churn toward this epoch's target population ----------
        target = int(demand.flows * params.flows_per_unit)
        block = state.slots[i]
        delta = target - len(block)
        if delta > 0:
            born = delta if epoch == 0 else min(delta, churn_cap)
            block.extend(store.alloc_block(born))
            cold["born"] += born
        elif delta < 0:
            died = min(-delta, churn_cap)
            # Fold what the dying flows have pending before they leave:
            # their history is part of the fleet totals either way, but
            # folding first keeps the per-slot shares exact.
            doomed = block[len(block) - died:]
            del block[len(block) - died:]
            store.free_block(doomed)
            cold["died"] += died

        # -- fluid traffic: two pending ints, O(1) per epoch -----------
        pkts = int(demand.cps * params.conns_per_unit) * params.pkts_per_conn
        nbytes = pkts * params.avg_pkt_bytes
        state.pending_pkts[i] += pkts
        state.pending_bytes[i] += nbytes

        kinds = demand.hotspots(capacity)
        if kinds:
            granted = g in grants
            ratio = max(demand.cps / capacity.cps,
                        demand.flows / capacity.flows,
                        demand.vnics / capacity.vnics)
            sim = simulate_hot_epoch(
                seed=derive_seed(params.seed, f"fleet/hot/e{epoch}/vs{g}"),
                demand_ratio=ratio, granted=granted,
                duration=params.hot_sim_duration)
            entry: Dict[str, object] = {
                "index": g,
                "kinds": [kind.value for kind in kinds],
                "units": demand_units(demand, capacity),
                "flows": len(block),
                "pkts": pkts,
                "bytes": nbytes,
            }
            entry.update(sim)
            hot.append(entry)
        else:
            cold["count"] += 1
            cold["flows"] += len(block)
            cold["pkts"] += pkts
            cold["bytes"] += nbytes

    report: Dict[str, object] = {"epoch": epoch, "lo": state.lo,
                                 "hi": state.hi, "cold": cold, "hot": hot}
    return state, report
