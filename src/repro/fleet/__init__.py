"""Sharded fleet-scale simulation: O(10K) vSwitches with hot/cold split.

Layer map (DESIGN §5.6):

* :mod:`~repro.fleet.flyweight` — struct-of-arrays cold-flow records
  (16 bytes/flow), pending-aggregate fold at materialization boundaries;
* :mod:`~repro.fleet.hotsim` — per-packet micro-sim of one hot vSwitch
  epoch on a private two-server overlay;
* :mod:`~repro.fleet.shard` — contiguous vSwitch ranges, global-index
  keyed demand streams, the ``sweep()``-compatible epoch step;
* :mod:`~repro.fleet.coordinator` — shared FE pool allocation and
  mitigation accounting, the only cross-shard coupling.

The driving experiment lives in :mod:`repro.experiments.fleet`.
"""

from .coordinator import FleetCoordinator
from .flyweight import BYTES_PER_FLOW, BYTES_PER_SLOT_REF, FleetFlowStore
from .hotsim import simulate_hot_epoch
from .shard import (FleetParams, ShardState, demand_units, make_shards,
                    partition, run_shard_epoch, vswitch_seed)

__all__ = [
    "BYTES_PER_FLOW",
    "BYTES_PER_SLOT_REF",
    "FleetCoordinator",
    "FleetFlowStore",
    "FleetParams",
    "ShardState",
    "demand_units",
    "make_shards",
    "partition",
    "run_shard_epoch",
    "simulate_hot_epoch",
    "vswitch_seed",
]
