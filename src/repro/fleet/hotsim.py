"""Per-packet micro-simulation of one hot vSwitch epoch.

A vSwitch whose sampled demand crosses a hotspot threshold leaves the
fluid path: its epoch is simulated packet-by-packet on a private
two-server overlay (the burst datapath with array-backed flow records —
the real machinery, not a model), driven by an elephant-flow packet
train whose rate scales with the demand-to-capacity ratio. The
simulation measures what the fluid path cannot: achieved throughput
under CPU contention, drop counts, and the trailing-window CPU
utilization the controller would see.

When the coordinator has granted the vSwitch FE capacity, the BE keeps
only its capacity's worth of the packet train — the offloaded excess is
advanced fluidly and charged to the shared pool — so a granted hotspot
measurably de-saturates the next epoch, closing the shard↔coordinator
feedback loop.

Each micro-sim is seeded from ``derive_seed`` on the global vSwitch
index and epoch, so results are reproducible and independent of shard
layout.
"""

from __future__ import annotations

from typing import Dict

from repro import telemetry
from repro.fabric import Topology
from repro.host.vm import Vm
from repro.net.addr import IPv4Address, MacAddress
from repro.sim.engine import Engine
from repro.vswitch import CostModel, Vnic, VSwitch
from repro.vswitch.flow_records import FluidMode
from repro.vswitch.rule_tables import MappingEntry
from repro.vswitch.vswitch import make_standard_chain
from repro.workloads.elephant import ElephantFlow

VNI = 400
BE_IP = IPv4Address("10.40.0.1")
PEER_IP = IPv4Address("10.40.0.2")

#: Packet rate that represents a vSwitch running exactly at capacity
#: (demand ratio 1.0). Calibrated against the single-core micro-sim
#: slice below so a ratio of ~1 runs warm and the heavy-tail ratios
#: (2-10x) saturate the CPU and drop packets.
BASE_PPS = 2000.0
#: Per-sim rate ceiling: demand ratios are unbounded (the P9999 user is
#: ~10x capacity) but the micro-sim slice stays affordable.
MAX_PPS = 8000.0
#: Cost-model scale for the micro-sim slice: one core at ~1/600 the
#: production frequency puts saturation near ``BASE_PPS * 2``, so a
#: per-packet run of a few hundred packets resolves overload behavior.
SLICE_SCALE = 600.0


def _slice_cost_model() -> CostModel:
    model = CostModel.testbed(SLICE_SCALE)
    model.cores = 1
    # At 1/600 frequency the one-off session setup (flow + state insert)
    # would busy the core for ~38ms — longer than the drop-tail backlog —
    # so a single opening SYN would shadow the steady-state measurement.
    # The micro-sim measures steady-state overload, not setup storms:
    # keep setup proportionally cheap.
    model.flow_insert_cycles /= 20.0
    model.state_insert_cycles /= 20.0
    return model


def _build_pair(engine: Engine):
    """A minimal two-server overlay: BE vSwitch + peer, mappings
    prewired both ways (the conftest ``build_cloud`` shape, rebuilt here
    because src cannot import test fixtures)."""
    cost_model = _slice_cost_model()
    topo = Topology.leaf_spine(engine, n_tors=1, servers_per_tor=2)
    server_a, server_b = topo.servers[0], topo.servers[1]
    vswitch_a = VSwitch(engine, server_a, cost_model)
    vswitch_b = VSwitch(engine, server_b, cost_model)
    chain_a = make_standard_chain(cost_model)
    chain_b = make_standard_chain(cost_model)
    for chain in (chain_a, chain_b):
        mapping = chain.table("vnic_server_mapping")
        mapping.set_entry(VNI, BE_IP, MappingEntry(
            underlay_ip=server_a.underlay_ip, underlay_mac=server_a.mac,
            vni=VNI))
        mapping.set_entry(VNI, PEER_IP, MappingEntry(
            underlay_ip=server_b.underlay_ip, underlay_mac=server_b.mac,
            vni=VNI))
    vnic_a = Vnic(1, VNI, BE_IP, MacAddress(0x41), chain_a)
    vnic_b = Vnic(2, VNI, PEER_IP, MacAddress(0x42), chain_b)
    vswitch_a.add_vnic(vnic_a)
    vswitch_b.add_vnic(vnic_b)
    return vswitch_a, vswitch_b, vnic_a, vnic_b


def simulate_hot_epoch(seed: int, demand_ratio: float, granted: bool,
                       duration: float = 0.2, burst: int = 16,
                       payload_bytes: int = 200,
                       fluid: bool = True) -> Dict[str, object]:
    """Run one hot vSwitch's epoch packet-by-packet; returns plain data.

    ``demand_ratio`` is peak demand over capacity (>= 1 for a hotspot).
    ``granted`` models an active FE grant: the BE retains a ratio of 1.0
    worth of traffic, the rest is offloaded (handled fluidly by the
    pool), so the measured utilization falls back under control.

    ``fluid`` (default on) runs the elephant train under the §5.5 fluid
    fast-forward — eligible packet runs advance analytically, anything
    ineligible re-materializes through the burst path — which is proven
    output-identical to the per-packet run (the PR 6 determinism suite,
    plus a hotsim-level regression pinning ``fluid=True`` ==
    ``fluid=False`` here). At 10K vSwitches the ~300 hot micro-sims are
    the fleet's dominant wall-clock cost, and the fast-forward cuts them
    ~3x without touching a single output value. The global
    :class:`FluidMode` switch is restored on exit, so the surrounding
    process (fig9 and friends default fluid-off) is unaffected.
    """
    retained = 1.0 if granted else demand_ratio
    rate_pps = min(BASE_PPS * retained, MAX_PPS)
    prior_fluid = FluidMode.enabled
    FluidMode.enabled = fluid
    try:
        engine = Engine()
        vswitch_a, _vswitch_b, vnic_a, vnic_b = _build_pair(engine)
        delivered = []
        vnic_b.attach_guest(delivered.append)
        vm = Vm(engine, f"hot-{seed & 0xffff}", vcpus=8)
        vm.attach_vnic(vnic_a)
        flow = ElephantFlow(engine, vm, vnic_a, PEER_IP, rate_pps=rate_pps,
                            payload_bytes=payload_bytes,
                            sport=5000 + (seed % 1000), burst=burst)
        flow.run(duration=duration)
        engine.run(until=duration + 0.05)  # drain the pipeline tail
    finally:
        FluidMode.enabled = prior_fluid
    stats = vswitch_a.stats
    tel = telemetry.current()
    if tel is not None:
        # Observation only (counts, no RNG/clock reads): how much
        # per-packet work the fleet's hot path did. Populated when the
        # micro-sims run in-process (jobs=1); worker processes carry no
        # installed telemetry, and the per-epoch hot *outcomes* travel
        # in the shard snapshot instead.
        tel.registry.counter("fleet.hotsim.runs").inc()
        tel.registry.counter("fleet.hotsim.granted").inc(int(granted))
        tel.registry.counter("fleet.hotsim.pkts").inc(flow.sent)
    return {
        "sim_sent": flow.sent,
        "sim_delivered": len(delivered),
        "sim_drops": stats.cpu_drops + vm.kernel_drops,
        "sim_cpu": vswitch_a.cpu_utilization(),
    }
