"""Flyweight records for the fleet's quiescent ("cold") flows.

At 10K vSwitches the fleet holds millions of concurrent connections,
nearly all of them on vSwitches far below their capacity. Boxing each as
a :class:`~repro.vswitch.state.SessionState` (plus a key object and a
table entry) costs hundreds of bytes per flow — gigabytes fleet-wide —
for state that is only ever *accumulated into*, never branched on.

:class:`FleetFlowStore` generalizes the
:class:`~repro.vswitch.flow_records.FlowRecordStore` idea one level up:
per-flow packet/byte counters live in parallel stdlib ``array`` columns
(16 bytes per flow), slots are claimed in bulk blocks, and — the fleet
twist — epoch traffic is *not* written per flow at all. Each vSwitch
carries two pending integers (packets, bytes) that the shard advances
per epoch in O(1); the per-flow columns are touched only at flow churn
(bounded per epoch) and at the final *materialization boundary*, where
:meth:`fold` distributes the pending aggregate uniformly across the
vSwitch's live slots with exact integer remainder bookkeeping — the same
flush-at-boundary discipline DESIGN.md §5.5 established for the hot
datapath.

Nothing output-visible may depend on slot numbering: freed slots are
recycled across vSwitches within a shard, so slot ids differ between
shard layouts while every folded total is identical.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Tuple

#: Bytes per flow held in the store's columns (two ``'q'`` counters).
BYTES_PER_FLOW = 16
#: Bytes per flow for the owner's slot index (one ``'l'`` entry).
BYTES_PER_SLOT_REF = 8


class FleetFlowStore:
    """Struct-of-arrays flow counters for one shard's vSwitch range."""

    __slots__ = ("packets", "bytes", "_free")

    def __init__(self) -> None:
        self.packets = array("q")
        self.bytes = array("q")
        self._free = array("l")

    def __len__(self) -> int:
        """Live slots (allocated minus freed)."""
        return len(self.packets) - len(self._free)

    @property
    def capacity(self) -> int:
        """Slots ever allocated (the memory high-water mark)."""
        return len(self.packets)

    def nbytes(self) -> int:
        """Payload bytes held by the columns and the free list."""
        return (self.packets.itemsize * len(self.packets)
                + self.bytes.itemsize * len(self.bytes)
                + self._free.itemsize * len(self._free))

    def stats(self) -> dict:
        """Occupancy snapshot for runtime instrumentation. Capacity and
        free-list depth depend on intra-shard slot recycling (i.e. on
        the shard layout), so these numbers belong in the run's ``stats``
        side channel, never in the deterministic metric snapshot."""
        return {"live": len(self), "capacity": self.capacity,
                "free": len(self._free), "nbytes": self.nbytes()}

    # -- slot lifecycle -----------------------------------------------------

    def _grow(self, n: int) -> int:
        """Append ``n`` zeroed slots in one C-level extension; returns the
        first new slot index. ``frombytes`` appends straight from one
        shared zero buffer — no intermediate array to build and discard
        (the seed epoch calls this once per vSwitch)."""
        start = len(self.packets)
        zeros = bytes(8 * n)
        self.packets.frombytes(zeros)
        self.bytes.frombytes(zeros)
        return start

    def alloc_block(self, n: int) -> "array[int]":
        """Claim ``n`` zeroed slots — recycled ones first, then one bulk
        extension for the rest."""
        slots = array("l")
        if n <= 0:
            return slots
        free = self._free
        take = min(n, len(free))
        if take:
            slots.extend(free[len(free) - take:])
            del free[len(free) - take:]
            packets, nbytes = self.packets, self.bytes
            for slot in slots:
                packets[slot] = 0
                nbytes[slot] = 0
        rest = n - take
        if rest:
            start = self._grow(rest)
            slots.extend(array("l", range(start, start + rest)))
        return slots

    def free_block(self, slots: Iterable[int]) -> None:
        """Return slots to the free list (counters left in place: a dead
        flow's folded history is part of the fleet totals)."""
        self._free.extend(slots)

    # -- materialization ----------------------------------------------------

    def fold(self, slots: "array[int]", pending_packets: int,
             pending_bytes: int) -> Tuple[int, int]:
        """Distribute one vSwitch's pending epoch aggregate over its live
        slots: every slot gets the integer share, the first
        ``remainder`` slots get one extra — exact by construction, and
        independent of which physical slot ids the vSwitch holds.
        Returns the (packets, bytes) actually folded; with no live slots
        the pending amounts stay with the caller."""
        n = len(slots)
        if n == 0 or (pending_packets == 0 and pending_bytes == 0):
            return (0, 0)
        per_pkts, rem_pkts = divmod(pending_packets, n)
        per_bytes, rem_bytes = divmod(pending_bytes, n)
        packets, nbytes = self.packets, self.bytes
        # Same shares as the single enumerate loop, but with the
        # remainder branch hoisted into slice bounds: the first ``rem``
        # slots take ``per + 1``, the rest take ``per`` — four tight
        # loops with no per-slot conditionals (this loop walks every
        # live flow in the fleet at the materialization boundary).
        bump = per_pkts + 1
        for slot in slots[:rem_pkts]:
            packets[slot] += bump
        if per_pkts:
            for slot in slots[rem_pkts:]:
                packets[slot] += per_pkts
        bump = per_bytes + 1
        for slot in slots[:rem_bytes]:
            nbytes[slot] += bump
        if per_bytes:
            for slot in slots[rem_bytes:]:
                nbytes[slot] += per_bytes
        return (pending_packets, pending_bytes)

    def totals(self) -> Tuple[int, int]:
        """Sum of every slot's counters (dead slots included: they hold
        their folded history until recycled)."""
        return (sum(self.packets), sum(self.bytes))
