"""Simple (time, value) series with windowed aggregation."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


class TimeSeries:
    """Append-only series of (time, value) points."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError("time went backwards")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def between(self, start: float, end: float) -> List[Tuple[float, float]]:
        return [(t, v) for t, v in self.points if start <= t <= end]

    def mean(self, start: Optional[float] = None,
             end: Optional[float] = None) -> float:
        pts = self.points
        if start is not None or end is not None:
            pts = self.between(start if start is not None else float("-inf"),
                               end if end is not None else float("inf"))
        if not pts:
            raise ValueError("no points in window")
        return sum(v for _t, v in pts) / len(pts)

    def max(self) -> float:
        if not self.points:
            raise ValueError("empty series")
        return max(v for _t, v in self.points)

    def resample(self, period: float,
                 agg: Callable[[List[float]], float] = None
                 ) -> List[Tuple[float, float]]:
        """Bucket points into ``period``-wide bins (mean by default)."""
        if not self.points:
            return []
        agg = agg or (lambda vals: sum(vals) / len(vals))
        start = self.points[0][0]
        buckets: List[List[float]] = []
        times: List[float] = []
        for t, v in self.points:
            index = int((t - start) / period)
            while len(buckets) <= index:
                buckets.append([])
                times.append(start + len(times) * period)
            buckets[index].append(v)
        return [(times[i], agg(vals)) for i, vals in enumerate(buckets)
                if vals]


def sample_periodically(engine, series: TimeSeries,
                        fn: Callable[[], float], period: float) -> None:
    """Spawn a process that records ``fn()`` into ``series`` every period."""

    def loop():
        while True:
            series.record(engine.now, fn())
            yield engine.timeout(period)

    engine.process(loop(), name=f"sampler-{series.name}")
