"""Measurement utilities: percentiles/CDFs, time series, rate meters."""

from repro.metrics.percentiles import (Cdf, percentile, percentile_summary)
from repro.metrics.timeseries import TimeSeries
from repro.metrics.counters import RateMeter

__all__ = ["percentile", "percentile_summary", "Cdf", "TimeSeries",
           "RateMeter"]
