"""Percentile and CDF estimation (linear interpolation, numpy-free)."""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

# The percentile labels the paper reports throughout (Fig 4, Tables 1/4).
STANDARD_LABELS: Tuple[Tuple[str, float], ...] = (
    ("avg", -1.0),  # sentinel: arithmetic mean
    ("P50", 50.0),
    ("P90", 90.0),
    ("P99", 99.0),
    ("P999", 99.9),
    ("P9999", 99.99),
)


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    """The q-th percentile of already-sorted data (the core interpolation)."""
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    value = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    # Clamp: float interpolation of near-equal neighbours can land a hair
    # outside [lo, hi].
    return min(max(value, ordered[lo]), ordered[hi])


def percentile(data: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100), linear interpolation between ranks."""
    if not data:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q out of range: {q}")
    return _percentile_of_sorted(sorted(data), q)


def percentile_summary(data: Sequence[float]) -> Dict[str, float]:
    """avg/P50/P90/P99/P999/P9999 — the paper's standard row.

    Sorts once and serves every percentile label from the same ordered
    copy (the mean still sums the data in its original order, so results
    are bit-identical to per-label ``percentile`` calls).
    """
    summary: Dict[str, float] = {}
    ordered: List[float] = sorted(data) if data else []
    for label, q in STANDARD_LABELS:
        if q < 0:
            summary[label] = sum(data) / len(data) if data else 0.0
        else:
            summary[label] = _percentile_of_sorted(ordered, q) if data else 0.0
    return summary


class Cdf:
    """An empirical CDF over accumulated samples.

    Sorting is deferred and cached: every quantile/summary/points call
    after a mutation pays one sort, subsequent calls reuse it.
    """

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: List[float] = list(samples)
        self._sorted = False

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold)."""
        if not self._samples:
            raise ValueError("empty CDF")
        self._ensure_sorted()
        return bisect_right(self._samples, threshold) / len(self._samples)

    def quantile(self, q: float) -> float:
        if not self._samples:
            raise ValueError("percentile of empty data")
        if not 0.0 <= q * 100.0 <= 100.0:
            raise ValueError(f"q out of range: {q * 100.0}")
        self._ensure_sorted()
        return _percentile_of_sorted(self._samples, q * 100.0)

    def points(self, n: int = 100) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        self._ensure_sorted()
        if not self._samples:
            return []
        step = max(1, len(self._samples) // n)
        out = []
        for index in range(0, len(self._samples), step):
            out.append((self._samples[index],
                        (index + 1) / len(self._samples)))
        out.append((self._samples[-1], 1.0))
        return out

    def summary(self) -> Dict[str, float]:
        self._ensure_sorted()
        return percentile_summary(self._samples)
