"""Rate measurement over sliding windows."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple


class RateMeter:
    """Events-per-second over a trailing window of event timestamps."""

    def __init__(self, clock: Callable[[], float], window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._clock = clock
        self.window = window
        self._events: Deque[Tuple[float, float]] = deque()
        self.total = 0.0

    def mark(self, count: float = 1.0) -> None:
        now = self._clock()
        self._events.append((now, count))
        self.total += count
        self._prune(now)

    def _prune(self, now: float) -> None:
        lo = now - self.window
        while self._events and self._events[0][0] < lo:
            self._events.popleft()

    def rate(self) -> float:
        """Current events/second."""
        now = self._clock()
        self._prune(now)
        return sum(count for _t, count in self._events) / self.window
