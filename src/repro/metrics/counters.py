"""Rate measurement over sliding windows."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple


class RateMeter:
    """Events-per-second over a trailing window of event timestamps."""

    def __init__(self, clock: Callable[[], float], window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._clock = clock
        self.window = window
        self._events: Deque[Tuple[float, float]] = deque()
        self.total = 0.0
        self._first_mark: Optional[float] = None

    def mark(self, count: float = 1.0) -> None:
        now = self._clock()
        if self._first_mark is None:
            self._first_mark = now
        self._events.append((now, count))
        self.total += count
        self._prune(now)

    def _prune(self, now: float) -> None:
        lo = now - self.window
        while self._events and self._events[0][0] < lo:
            self._events.popleft()

    def rate(self) -> float:
        """Current events/second.

        Before a full window has elapsed since the first mark, dividing by
        the whole window under-reports — one event 0.1 s into a 1 s window
        is 10/s, not 1/s — so the divisor is the elapsed time, capped at
        the window.
        """
        now = self._clock()
        self._prune(now)
        if self._first_mark is None:
            return 0.0
        elapsed = now - self._first_mark
        divisor = min(self.window, elapsed) if elapsed > 0 else self.window
        return sum(count for _t, count in self._events) / divisor
