"""The fault injector: binds fault events to a running environment.

One :class:`FaultInjector` per simulation. It knows the breakable pieces —
vSwitches, the fabric topology, the orchestrator's RPC hook, mapping
learners, the health monitor, the controller — and translates
:class:`~repro.faults.events.FaultEvent`\\ s into concrete sabotage,
scheduling the matching heal ``duration`` later.

Two kinds of counting happen here:

* ``events_applied`` — every scheduled :class:`FaultEvent` executed;
* ``injected`` — every individual fault *action*, including each RPC
  verdict delivered during a storm window and each learner pull dropped.
  This is the number the chaos soak's ">= N injected faults" acceptance
  gate reads, because one storm window can sabotage dozens of RPCs.

All randomness flows through a :class:`SeededRng` child, so a given
(plan, seed) pair replays the exact same carnage.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.engine import Engine
from repro.sim.rng import SeededRng
from repro.sim.trace import Trace
from repro import telemetry as _telemetry
from repro.faults.events import FaultEvent, FaultKind


class FaultInjector:
    """Applies fault events to the bound environment and heals them."""

    def __init__(self, engine: Engine, *,
                 vswitches: Sequence = (),
                 topo=None,
                 orchestrator=None,
                 learners: Sequence = (),
                 monitor=None,
                 controller=None,
                 rng: Optional[SeededRng] = None,
                 trace: Optional[Trace] = None,
                 rpc_drop_prob: float = 0.7,
                 learner_drop_prob: float = 0.8) -> None:
        self.engine = engine
        self.topo = topo
        self.orchestrator = orchestrator
        self.monitor = monitor
        self.controller = controller
        self.learners = list(learners)
        self.rng = rng or SeededRng(0, "fault-injector")
        self.trace = trace or _telemetry.active_trace(engine) \
            or Trace(lambda: engine.now)
        self.rpc_drop_prob = rpc_drop_prob
        self.learner_drop_prob = learner_drop_prob
        self._vswitch_by_name = {vs.name: vs for vs in vswitches}
        self._server_by_name = ({s.name: s for s in topo.servers}
                                if topo is not None else {})
        # Active sabotage windows (end time in virtual seconds).
        self._rpc_mode: Optional[str] = None
        self._rpc_until = 0.0
        self._learner_until = 0.0
        self._crashed: Dict[str, float] = {}    # name -> recovery time
        self._links_down: Dict[str, float] = {}  # server name -> heal time
        # Bookkeeping.
        self.events_applied: List[FaultEvent] = []
        self.injected: Dict[str, int] = {}
        # Called after each applied event (the soak checks invariants here).
        self.on_event: Optional[Callable[[FaultEvent], None]] = None
        if orchestrator is not None:
            orchestrator.rpc_fault_hook = self._rpc_hook
        for learner in self.learners:
            learner.fault_hook = self._learner_hook

    # -- counting ------------------------------------------------------------

    def _count(self, key: str, n: int = 1) -> None:
        self.injected[key] = self.injected.get(key, 0) + n

    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- event dispatch ------------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        handler = {
            FaultKind.CRASH_VSWITCH: self._apply_crash,
            FaultKind.LINK_FLAP: self._apply_link_flap,
            FaultKind.PARTITION_MONITOR: self._apply_partition,
            FaultKind.RPC_STORM: self._apply_rpc_storm,
            FaultKind.LEARNER_DROP: self._apply_learner_drop,
            FaultKind.KILL_CONTROLLER: self._apply_kill_controller,
        }[event.kind]
        handler(event)
        self.events_applied.append(event)
        self._count(event.kind.value)
        self.trace.emit("fault.injected", fault=event.kind.value,
                        target=event.target, duration=event.duration)
        if self.on_event is not None:
            self.on_event(event)

    # -- vSwitch crash/recover -----------------------------------------------

    def _apply_crash(self, event: FaultEvent) -> None:
        vswitch = self._vswitch_by_name[event.target]
        heal_at = self.engine.now + event.duration
        vswitch.crash()
        # Overlapping crashes extend the outage; stale heals no-op in
        # ``_heal_crash`` because they fire before the recorded end time.
        self._crashed[vswitch.name] = max(
            self._crashed.get(vswitch.name, 0.0), heal_at)
        self.engine.call_at(heal_at, self._heal_crash, vswitch.name)

    def _heal_crash(self, name: str) -> None:
        if self.engine.now + 1e-12 < self._crashed.get(name, 0.0):
            return  # a later crash extended the outage
        vswitch = self._vswitch_by_name[name]
        vswitch.recover()
        self._crashed.pop(name, None)
        self.trace.emit("fault.healed", fault="crash_vswitch", target=name)

    # -- link flaps ----------------------------------------------------------

    def _apply_link_flap(self, event: FaultEvent) -> None:
        server = self._server_by_name[event.target]
        heal_at = self.engine.now + event.duration
        self.topo.fail_server_links(server, up=False)
        self._links_down[server.name] = max(
            self._links_down.get(server.name, 0.0), heal_at)
        self.engine.call_at(heal_at, self._heal_links, server.name)

    def _heal_links(self, name: str) -> None:
        if self.engine.now + 1e-12 < self._links_down.get(name, 0.0):
            return
        self.topo.fail_server_links(self._server_by_name[name], up=True)
        self._links_down.pop(name, None)
        self.trace.emit("fault.healed", fault="link_flap", target=name)

    # -- monitor partition ---------------------------------------------------

    def _apply_partition(self, event: FaultEvent) -> None:
        """Cut the monitor host off the fabric. Every target then misses
        probes at once — exercising the Appendix C.2 mass-failure
        suspension; after the heal an operator ``reset_suspension`` is
        simulated two sweep intervals later."""
        server = self.monitor.server
        heal_at = self.engine.now + event.duration
        self.topo.fail_server_links(server, up=False)
        self._links_down[server.name] = max(
            self._links_down.get(server.name, 0.0), heal_at)
        self.engine.call_at(heal_at, self._heal_links, server.name)
        reset_at = heal_at + 2.0 * self.monitor.interval + 1e-6
        self.engine.call_at(reset_at, self._operator_reset)

    def _operator_reset(self) -> None:
        if self.monitor.suspended and \
                self.monitor.server.name not in self._links_down:
            self.monitor.reset_suspension()
            self.trace.emit("fault.operator_reset")

    # -- RPC storms ----------------------------------------------------------

    def _apply_rpc_storm(self, event: FaultEvent) -> None:
        self._rpc_mode = event.mode
        self._rpc_until = max(self._rpc_until,
                              self.engine.now + event.duration)

    def _rpc_hook(self, stage: str, attempt: int):
        if self._rpc_mode is None or self.engine.now >= self._rpc_until:
            return None
        mode = self._rpc_mode
        roll = self.rng.random()
        if mode == "drop":
            if roll < self.rpc_drop_prob:
                self._count("rpc_drop")
                return "drop"
            return None
        if mode == "delay":
            self._count("rpc_delay")
            return ("delay", self.rng.uniform(0.02, 0.2))
        if mode == "dup":
            self._count("rpc_dup")
            return "dup"
        return None

    # -- learner pull loss ---------------------------------------------------

    def _apply_learner_drop(self, event: FaultEvent) -> None:
        self._learner_until = max(self._learner_until,
                                  self.engine.now + event.duration)

    def _learner_hook(self, learner) -> bool:
        if self.engine.now >= self._learner_until:
            return False
        if self.rng.random() < self.learner_drop_prob:
            self._count("learner_pull_drop")
            return True
        return False

    # -- controller kill/restart ---------------------------------------------

    def _apply_kill_controller(self, event: FaultEvent) -> None:
        self.controller.stop()
        self.engine.call_at(self.engine.now + event.duration,
                            self._restart_controller)

    def _restart_controller(self) -> None:
        self.controller.start()
        self.trace.emit("fault.healed", fault="kill_controller")

    # -- quiesce -------------------------------------------------------------

    def heal_all(self) -> None:
        """Force-close every open fault so the system can converge: recover
        crashes, restore links, end storm windows, restart the controller,
        and lift a monitor suspension."""
        for name in list(self._crashed):
            self._vswitch_by_name[name].recover()
            self._crashed.pop(name, None)
        for name in list(self._links_down):
            server = (self._server_by_name.get(name)
                      or (self.monitor.server if self.monitor is not None
                          and self.monitor.server.name == name else None))
            if server is not None:
                self.topo.fail_server_links(server, up=True)
            self._links_down.pop(name, None)
        self._rpc_mode = None
        self._rpc_until = 0.0
        self._learner_until = 0.0
        if self.controller is not None and not self.controller._started:
            self.controller.start()
        if self.monitor is not None and self.monitor.suspended:
            self.monitor.reset_suspension()
        self.trace.emit("fault.heal_all")
