"""Deterministic fault injection for the Nezha control plane.

``repro.faults`` breaks the system on purpose: scripted
(:class:`FaultPlan`) or seeded-random (:class:`FaultFuzzer`) schedules of
vSwitch crashes, link flaps, monitor partitions, control-RPC sabotage,
learner pull loss, and controller kills, applied by a
:class:`FaultInjector` and judged by the invariant checkers in
:mod:`repro.faults.invariants`.
"""

from repro.faults.events import RPC_MODES, FaultEvent, FaultKind
from repro.faults.plan import FaultPlan
from repro.faults.fuzzer import FaultFuzzer, FuzzDurations, FuzzRates
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    check_gateway_convergence,
    check_handles,
    check_learner_convergence,
    check_no_stranded_sessions,
    check_packet_conservation,
    check_quiesced,
    check_runtime,
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "RPC_MODES",
    "FaultPlan",
    "FaultFuzzer",
    "FuzzRates",
    "FuzzDurations",
    "FaultInjector",
    "check_handles",
    "check_no_stranded_sessions",
    "check_packet_conservation",
    "check_gateway_convergence",
    "check_learner_convergence",
    "check_quiesced",
    "check_runtime",
]
