"""System invariants checked during and after chaos.

Two strictness levels:

* **runtime** checks hold at *every* event boundary, however much carnage
  is in flight: no orphaned FE instances, handle/selector consistency, no
  session entries stranded on dead FEs past failover, and packet counts
  that never exceed what was sent.
* **quiesced** checks hold only once faults are healed and the system has
  settled: gateway entries converge to the serving locations, learner
  tables match the gateway (including deletions), no handle references a
  crashed vSwitch, and packet conservation is *exact* —
  ``delivered + dropped + in-flight == sent`` with in-flight drained to 0.

Checkers return human-readable violation strings (empty list = healthy)
so the chaos soak can both assert emptiness and print what broke.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.offload import NezhaOrchestrator, OffloadState
from repro.vswitch.rule_tables import Location
from repro.vswitch.session_table import EntryMode


def check_handles(orchestrator: NezhaOrchestrator) -> List[str]:
    """Orphan-FE and handle-consistency invariants (runtime-safe)."""
    out: List[str] = []
    handles = orchestrator.handles
    for agent in orchestrator.agents.values():
        for vnic_id, frontend in agent.frontends.items():
            if getattr(frontend, "retiring", False):
                continue  # graceful retirement grace period
            handle = handles.get(vnic_id)
            if handle is None:
                out.append(f"orphan FE: vNIC {vnic_id} on "
                           f"{agent.vswitch.name} has no live handle")
            elif frontend not in handle.frontends.values():
                out.append(f"orphan FE: vNIC {vnic_id} instance on "
                           f"{agent.vswitch.name} not in its handle's FE set")
    for vnic_id, handle in handles.items():
        if handle.state is OffloadState.INACTIVE:
            out.append(f"handle {vnic_id} is INACTIVE but still registered")
        for location, frontend in handle.frontends.items():
            agent = orchestrator.agents.get(frontend.vswitch.name)
            if agent is None or agent.frontends.get(vnic_id) is not frontend:
                out.append(f"handle {vnic_id}: FE at {location} not "
                           f"registered on {frontend.vswitch.name}")
        if set(handle.selector.locations) != set(handle.frontends):
            out.append(f"handle {vnic_id}: selector/FE-set mismatch "
                       f"({len(handle.selector.locations)} vs "
                       f"{len(handle.frontends)})")
    return out


def check_no_stranded_sessions(orchestrator: NezhaOrchestrator,
                               vswitches: Sequence) -> List[str]:
    """A dead FE whose failover already ran must hold no cached flows for
    the vNICs it fronted (runtime-safe: a crash *pending* detection still
    has its FE registered, so it is exempt until ``fail_fe`` fires)."""
    out: List[str] = []
    for vswitch in vswitches:
        if not vswitch.crashed:
            continue
        agent = orchestrator.agents.get(vswitch.name)
        live_vnis = ({fe.vnic.vni for fe in agent.frontends.values()}
                     if agent is not None else set())
        for entry in vswitch.session_table:
            if (entry.mode is EntryMode.FLOWS_ONLY
                    and entry.vni not in live_vnis):
                out.append(f"stranded FLOWS_ONLY entry for vni {entry.vni} "
                           f"on dead {vswitch.name}")
                break
    return out


def check_packet_conservation(topo, quiesced: bool = False) -> List[str]:
    """Fabric-level conservation: every packet a server sent was received
    by a server, dropped at a down link, or dropped in a switch — or is
    still in flight. Quiesced (traffic stopped, queues drained) the
    in-flight term is zero and the equality is exact."""
    sent = sum(server.tx_packets for server in topo.servers)
    received = sum(server.rx_packets for server in topo.servers)
    link_drops = sum(link.drops_down for link in topo.links)
    switch_drops = sum(switch.no_route_drops + switch.ttl_drops
                       for switch in topo.tors + topo.spines)
    accounted = received + link_drops + switch_drops
    if quiesced and accounted != sent:
        return [f"packet conservation: sent={sent} != received={received} "
                f"+ link_drops={link_drops} + switch_drops={switch_drops} "
                f"(in-flight must be 0 after drain)"]
    if not quiesced and accounted > sent:
        return [f"packet conservation: accounted={accounted} exceeds "
                f"sent={sent}"]
    return []


def check_gateway_convergence(orchestrator: NezhaOrchestrator, gateway,
                              vnics: Sequence) -> List[str]:
    """Quiesced: every vNIC's gateway entry points at its real serving
    locations — the FE set when offloaded, the hosting BE otherwise — and
    none of those locations sits on a crashed vSwitch."""
    out: List[str] = []
    for handle in orchestrator.handles.values():
        vnic = handle.vnic
        if handle.state not in (OffloadState.ACTIVE,
                                OffloadState.DUAL_RUNNING):
            continue
        entry = gateway.lookup(vnic.vni, vnic.tenant_ip)
        if entry is None:
            out.append(f"gateway: no entry for offloaded vNIC {vnic.vnic_id}")
            continue
        if set(entry.locations) != set(handle.fe_locations):
            out.append(f"gateway: vNIC {vnic.vnic_id} entry has "
                       f"{len(entry.locations)} locations, handle has "
                       f"{len(handle.fe_locations)} FEs")
        for fe_vswitch in handle.fe_vswitches:
            if fe_vswitch.crashed:
                out.append(f"handle {vnic.vnic_id}: FE on crashed "
                           f"{fe_vswitch.name} survived failover")
    for vnic in vnics:
        if vnic.vnic_id in orchestrator.handles or vnic.host is None:
            continue
        entry = gateway.lookup(vnic.vni, vnic.tenant_ip)
        if entry is None:
            continue
        home = Location(vnic.host.server.underlay_ip, vnic.host.server.mac)
        if entry.locations != [home]:
            out.append(f"gateway: local vNIC {vnic.vnic_id} entry does not "
                       f"point at its host {vnic.host.name}")
    return out


def check_learner_convergence(gateway) -> List[str]:
    """Quiesced: every learner's mapping tables mirror the gateway for the
    VNIs it serves — same keys (deletions included), same versions."""
    from repro.vswitch.rule_tables import MappingTable

    out: List[str] = []
    for learner in gateway.learners:
        if learner.vswitch.crashed:
            out.append(f"learner {learner.vswitch.name}: vSwitch still "
                       f"crashed at quiesce")
            continue
        for vnic in learner.vswitch.vnics.values():
            table = vnic.slow_path.table("vnic_server_mapping")
            if not isinstance(table, MappingTable):
                continue
            expected = gateway.snapshot(vnic.vni)
            held = {key: entry for key, entry in table.entries().items()
                    if key[0] == vnic.vni}
            missing = set(expected) - set(held)
            stale = set(held) - set(expected)
            if missing:
                out.append(f"learner {learner.vswitch.name}: "
                           f"{len(missing)} gateway entries never learned")
            if stale:
                out.append(f"learner {learner.vswitch.name}: "
                           f"{len(stale)} removed entries still present")
            for key in set(expected) & set(held):
                if held[key].version != expected[key].version:
                    out.append(f"learner {learner.vswitch.name}: stale "
                               f"version for {key}")
                    break
    return out


def check_runtime(orchestrator: NezhaOrchestrator, vswitches: Sequence,
                  topo) -> List[str]:
    """Everything that must hold at every fault-event boundary."""
    return (check_handles(orchestrator)
            + check_no_stranded_sessions(orchestrator, vswitches)
            + check_packet_conservation(topo, quiesced=False))


def check_quiesced(orchestrator: NezhaOrchestrator, gateway,
                   vswitches: Sequence, vnics: Sequence, topo) -> List[str]:
    """Everything that must hold once faults healed and traffic drained."""
    return (check_handles(orchestrator)
            + check_no_stranded_sessions(orchestrator, vswitches)
            + check_gateway_convergence(orchestrator, gateway, vnics)
            + check_learner_convergence(gateway)
            + check_packet_conservation(topo, quiesced=True))
