"""Seeded-random fault generation.

:class:`FaultFuzzer` draws Poisson arrivals per fault kind from disjoint
:class:`SeededRng` children, so the generated :class:`FaultPlan` is a pure
function of ``(seed, rates, horizon, targets)`` — rerunning a failed soak
with the same seed replays the identical schedule.

Every kind with a positive rate is guaranteed at least one event inside
the horizon (``min_per_kind``): "200 faults across all fault kinds" must
not silently degenerate to 200 link flaps because the controller-kill
stream drew a long first gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.rng import SeededRng
from repro.faults.events import RPC_MODES, FaultEvent, FaultKind
from repro.faults.plan import FaultPlan


@dataclass
class FuzzRates:
    """Mean events per virtual second, per fault kind (0 disables)."""

    crash: float = 1.0
    link_flap: float = 1.2
    partition: float = 0.25
    rpc_storm: float = 1.5
    learner_drop: float = 1.0
    kill_controller: float = 0.3


@dataclass
class FuzzDurations:
    """Uniform ``(lo, hi)`` outage lengths per fault kind, seconds."""

    crash: Tuple[float, float] = (0.3, 1.0)
    link_flap: Tuple[float, float] = (0.1, 0.5)
    partition: Tuple[float, float] = (0.3, 0.8)
    rpc_storm: Tuple[float, float] = (0.2, 0.5)
    learner_drop: Tuple[float, float] = (0.2, 0.6)
    kill_controller: Tuple[float, float] = (0.2, 0.6)


class FaultFuzzer:
    """Generates deterministic random fault plans for one environment."""

    def __init__(self, rng: SeededRng,
                 vswitch_names: Sequence[str],
                 server_names: Sequence[str],
                 rates: Optional[FuzzRates] = None,
                 durations: Optional[FuzzDurations] = None,
                 monitor_partitions: bool = True) -> None:
        if not vswitch_names:
            raise ConfigError("fuzzer needs at least one vSwitch target")
        self.rng = rng
        self.vswitch_names = list(vswitch_names)
        self.server_names = list(server_names) or list(vswitch_names)
        self.rates = rates or FuzzRates()
        self.durations = durations or FuzzDurations()
        self.monitor_partitions = monitor_partitions

    # Each stream gets its own child RNG: adding/removing one kind never
    # perturbs the arrival times of the others.
    def _stream(self, label: str) -> SeededRng:
        return self.rng.child(f"fuzz-{label}")

    def _arrivals(self, rng: SeededRng, rate: float, start: float,
                  end: float, min_events: int) -> List[float]:
        times: List[float] = []
        if rate > 0:
            t = start + rng.expovariate(rate)
            while t < end:
                times.append(t)
                t += rng.expovariate(rate)
            while len(times) < min_events:
                times.append(rng.uniform(start, end))
        return sorted(times)

    def generate(self, horizon: float, start: float = 0.0,
                 min_per_kind: int = 1) -> FaultPlan:
        """A fault plan covering ``[start, start + horizon)``."""
        if horizon <= 0:
            raise ConfigError("fuzz horizon must be positive")
        end = start + horizon
        plan = FaultPlan()
        dur = self.durations

        rng = self._stream("crash")
        for at in self._arrivals(rng, self.rates.crash, start, end,
                                 min_per_kind):
            plan.add(FaultEvent(at, FaultKind.CRASH_VSWITCH,
                                target=rng.choice(self.vswitch_names),
                                duration=rng.uniform(*dur.crash)))

        rng = self._stream("flap")
        for at in self._arrivals(rng, self.rates.link_flap, start, end,
                                 min_per_kind):
            plan.add(FaultEvent(at, FaultKind.LINK_FLAP,
                                target=rng.choice(self.server_names),
                                duration=rng.uniform(*dur.link_flap)))

        if self.monitor_partitions:
            rng = self._stream("partition")
            for at in self._arrivals(rng, self.rates.partition, start, end,
                                     min_per_kind):
                plan.add(FaultEvent(at, FaultKind.PARTITION_MONITOR,
                                    duration=rng.uniform(*dur.partition)))

        rng = self._stream("rpc")
        for at in self._arrivals(rng, self.rates.rpc_storm, start, end,
                                 min_per_kind):
            plan.add(FaultEvent(at, FaultKind.RPC_STORM,
                                mode=rng.choice(RPC_MODES),
                                duration=rng.uniform(*dur.rpc_storm)))

        rng = self._stream("learner")
        for at in self._arrivals(rng, self.rates.learner_drop, start, end,
                                 min_per_kind):
            plan.add(FaultEvent(at, FaultKind.LEARNER_DROP,
                                duration=rng.uniform(*dur.learner_drop)))

        rng = self._stream("kill")
        for at in self._arrivals(rng, self.rates.kill_controller, start, end,
                                 min_per_kind):
            plan.add(FaultEvent(at, FaultKind.KILL_CONTROLLER,
                                duration=rng.uniform(*dur.kill_controller)))

        return plan
