"""Fault vocabulary: what the injection layer knows how to break.

Every fault is a :class:`FaultEvent` — a point in virtual time, a kind, an
optional named target, and a duration after which the injector heals the
fault again (crashes recover, links come back up, storm windows close).
Events are plain frozen data so plans are trivially serializable,
comparable, and — given the same seed — reproducible run over run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class FaultKind(enum.Enum):
    """The failure modes the injector can drive."""

    CRASH_VSWITCH = "crash_vswitch"          # FE or BE vSwitch dies + recovers
    LINK_FLAP = "link_flap"                  # a server's fabric links bounce
    PARTITION_MONITOR = "partition_monitor"  # monitor cut off from targets
    RPC_STORM = "rpc_storm"                  # control RPCs drop/delay/duplicate
    LEARNER_DROP = "learner_drop"            # gateway learner pulls lost
    KILL_CONTROLLER = "kill_controller"      # reconcile loop killed mid-flight


#: RPC storm sub-modes carried in ``FaultEvent.mode``.
RPC_MODES = ("drop", "delay", "dup")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: when, what, against whom, for how long."""

    at: float
    kind: FaultKind
    target: Optional[str] = None   # vSwitch/server name where applicable
    duration: float = 0.0          # heal after this long (0 = instantaneous)
    mode: Optional[str] = None     # RPC_STORM: drop | delay | dup

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault at negative time {self.at}")
        if self.duration < 0:
            raise ValueError(f"negative fault duration {self.duration}")
        if self.kind is FaultKind.RPC_STORM and self.mode not in RPC_MODES:
            raise ValueError(f"RPC storm needs a mode in {RPC_MODES}")

    def describe(self) -> str:
        parts = [f"t={self.at:.3f}", self.kind.value]
        if self.mode:
            parts.append(self.mode)
        if self.target:
            parts.append(self.target)
        if self.duration:
            parts.append(f"for {self.duration:.3f}s")
        return " ".join(parts)
