"""Scripted fault plans: an ordered event list bound to an injector.

A :class:`FaultPlan` is just data until :meth:`schedule` hands every event
to a :class:`~repro.faults.injector.FaultInjector` via ``engine.call_at``
— the same plan replays identically against any compatible environment,
which is what makes chaos findings reproducible from a single seed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.errors import ConfigError
from repro.faults.events import FaultEvent, FaultKind


class FaultPlan:
    """An ordered, replayable schedule of fault events."""

    def __init__(self, events: Optional[Iterable[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = sorted(events or [],
                                               key=lambda e: e.at)
        self._scheduled = False

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: e.at)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """When the last fault (including its heal) is over."""
        return max((e.at + e.duration for e in self.events), default=0.0)

    def count(self, kind: FaultKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def kinds(self) -> List[FaultKind]:
        return sorted({e.kind for e in self.events}, key=lambda k: k.value)

    def schedule(self, injector) -> None:
        """Queue every event on the injector's engine. One-shot: plans are
        immutable once armed so replays stay byte-for-byte identical."""
        if self._scheduled:
            raise ConfigError("fault plan already scheduled")
        self._scheduled = True
        for event in self.events:
            injector.engine.call_at(event.at, injector.apply, event)

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self.events)
