"""The Nezha controller: the reconciliation loop of Fig 8.

Every poll interval the controller examines each registered vSwitch:

* **offload** — utilization above the offload threshold (70 %): offload
  its hottest not-yet-offloaded vNICs (descending consumption of the
  triggering resource) until the projection falls below the safe level;
* **scale** — utilization above the scale threshold (40 %): if the load
  is mostly *remote* (hosted FEs), scale those vNICs out to more FEs;
  if mostly *local*, scale this vSwitch in (remove every FE it hosts and
  exclude it from placement) — which may itself trigger scale-outs;
* **fallback** — an offloaded vNIC whose FE-side usage is low returns to
  local processing, but only when the BE's projected utilization stays
  below the safe level;
* **failover** — the health monitor reports a crashed FE host: its FEs
  are removed at once and replacements added to keep at least 4 FEs.

Nezha never scales in merely because FE utilization is low (App B.2):
idle FEs cost nothing, and removing them would cause cache-miss lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.fabric.device import ServerNode
from repro.sim.engine import Engine, Interrupt
from repro.sim.rng import SeededRng
from repro.sim.trace import Trace
from repro import telemetry as _telemetry
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import VSwitch
from repro.controller.gateway import Gateway, MappingLearner
from repro.controller.monitor import HealthMonitor, MutualPing
from repro.controller.placement import FePlacement
from repro.controller.policy import LoadSharingPolicy, NezhaPolicy
from repro.core.offload import (NezhaOrchestrator, OffloadHandle,
                                OffloadState)


@dataclass
class ControllerConfig:
    poll_interval: float = 0.1
    offload_threshold: float = 0.7      # trigger remote offloading
    scale_threshold: float = 0.4        # trigger scale-out/-in (Fig 8)
    safe_level: float = 0.5             # offload until projected below this
    fallback_threshold: float = 0.1     # FE-side usage considered "idle"
    fallback_polls: int = 20            # consecutive idle polls before fallback
    initial_fes: int = 4                # App B.2: power of two, minimum viable
    min_fes: int = 4
    remote_dominant_fraction: float = 0.5
    memory_offload_threshold: float = 0.7
    enable_fallback: bool = True


@dataclass
class _NodeBook:
    """Controller-side bookkeeping for one vSwitch."""

    vswitch: VSwitch
    last_pkt_counts: Dict[int, int] = field(default_factory=dict)
    vnic_rates: Dict[int, float] = field(default_factory=dict)


class NezhaController:
    """Periodic reconciliation across a fleet of vSwitches."""

    def __init__(self, engine: Engine, gateway: Gateway,
                 orchestrator: NezhaOrchestrator, placement: FePlacement,
                 config: Optional[ControllerConfig] = None,
                 monitor: Optional[HealthMonitor] = None,
                 trace: Optional[Trace] = None,
                 rng: Optional[SeededRng] = None,
                 policy: Optional[LoadSharingPolicy] = None) -> None:
        self.engine = engine
        self.gateway = gateway
        self.orchestrator = orchestrator
        self.placement = placement
        self.config = config or ControllerConfig()
        self.monitor = monitor
        self.trace = trace or _telemetry.active_trace(engine) \
            or Trace(lambda: engine.now)
        self.rng = rng or SeededRng(0, "controller")
        # The decision seam: what to offload, where, when to scale or
        # fall back. Default is the paper's strategy, unchanged.
        self.policy = policy or NezhaPolicy()
        self.policy.bind(self)
        self.nodes: Dict[str, _NodeBook] = {}
        self._fallback_idle_polls: Dict[int, int] = {}
        # BE↔FE pingers by vNIC id (see watch_links): tracked so they can
        # be stopped when the handle or the watched FE goes away.
        self._link_pingers: Dict[int, List[MutualPing]] = {}
        self._started = False
        self._proc = None
        # vNICs with an offload or scale-out flow still in flight: the
        # reconcile loop must not re-pick them on the next tick (the flow's
        # effects are not visible yet), or one hot vNIC gets double-offloaded
        # / serially over-scaled.
        self._inflight_vnics: Set[int] = set()
        self.offloads_triggered = 0
        self.scale_outs = 0
        self.scale_ins = 0
        self.fallbacks = 0
        self.failovers = 0
        self.reconcile_errors = 0
        orchestrator.need_fe_callback = self._on_need_fes
        if monitor is not None:
            monitor.on_down = self._on_target_down
            monitor.on_up = self._on_target_up
        tel = _telemetry.current()
        if tel is not None:
            tel.register_controller(self)

    def _decide(self, action: str, **fields) -> None:
        """One controller decision: traced, and — when telemetry is
        installed — appended to the ``controller.decisions`` event log
        and the decision journal (tagged with the active policy's name,
        so cross-policy captures diff cleanly) with the *why* (the
        fields) attached."""
        self.trace.emit(f"controller.{action}", **fields)
        tel = _telemetry.current()
        if tel is not None:
            tel.decision(self.engine.now, action, **fields)
            tel.decisions.controller_event(self.engine.now,
                                           self.policy.name, action, fields)

    # -- registration ------------------------------------------------------------

    def register(self, vswitch: VSwitch) -> None:
        self.nodes[vswitch.name] = _NodeBook(vswitch)
        self.placement.register(vswitch)

    # -- main loop ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True

        def loop():
            try:
                while True:
                    self.reconcile()
                    yield self.engine.timeout(self.config.poll_interval)
            except Interrupt:
                return  # stop() — exit cleanly, restartable via start()

        self._proc = self.engine.process(loop(), name="controller")

    def stop(self) -> None:
        """Kill the reconcile loop (fault injection / maintenance); a later
        :meth:`start` resumes from current cluster state."""
        if not self._started:
            return
        self._started = False
        proc = self._proc
        self._proc = None
        if proc is not None and not proc.done:
            proc.interrupt("controller stopped")

    def reconcile(self) -> None:
        """One reconciliation pass (callable directly from tests).

        Each sub-step is isolated: an unreachable gateway/monitor or a
        half-crashed vSwitch makes that step fail, not the whole loop —
        the controller degrades to whatever it can still reconcile and
        retries the rest next tick.
        """
        self._update_rates()
        for book in list(self.nodes.values()):
            vswitch = book.vswitch
            if vswitch.crashed:
                continue
            try:
                cpu = vswitch.cpu_utilization()
                mem = vswitch.memory_utilization()
                if (cpu > self.config.offload_threshold
                        or mem > self.config.memory_offload_threshold):
                    self._offload_hottest(book, by_memory=(
                        mem > self.config.memory_offload_threshold
                        and cpu <= self.config.offload_threshold))
                elif cpu > self.config.scale_threshold:
                    self.policy.scale(book, cpu)
            except ReproError as err:
                self._degraded("reconcile", vswitch.name, err)
        try:
            self._ensure_min_fes()
        except ReproError as err:
            self._degraded("min_fes", "-", err)
        if self.config.enable_fallback:
            try:
                self._consider_fallbacks()
            except ReproError as err:
                self._degraded("fallback", "-", err)
        try:
            self.policy.reconcile_tail()
        except ReproError as err:
            self._degraded("policy_tail", "-", err)
        self._prune_link_pingers()

    def _degraded(self, step: str, target: str, err: Exception) -> None:
        self.reconcile_errors += 1
        self._decide("reconcile_error", step=step,
                     target=target, error=str(err))

    def _track_flow(self, vnic_id: int, done) -> None:
        """Mark ``vnic_id`` in-flight until ``done`` fires (however the
        flow ends — aborted flows release their waiters too)."""
        self._inflight_vnics.add(vnic_id)

        def watch():
            try:
                yield done
            except ReproError:
                pass  # a failed flow still clears the in-flight mark
            self._inflight_vnics.discard(vnic_id)

        self.engine.process(watch(), name=f"flow-watch-{vnic_id}")

    def _ensure_min_fes(self) -> None:
        """Top ACTIVE handles back up to ``min_fes`` — the convergence
        backstop when a replacement scale-out was lost to RPC failures."""
        for handle in list(self.orchestrator.handles.values()):
            if handle.state is not OffloadState.ACTIVE:
                continue
            vnic_id = handle.vnic.vnic_id
            if vnic_id in self._inflight_vnics:
                continue
            shortfall = self.config.min_fes - len(handle.frontends)
            if shortfall > 0:
                self._on_need_fes(handle, shortfall)
            elif self.gateway.lookup(handle.vnic.vni,
                                     handle.vnic.tenant_ip) is not None:
                # Self-heal a gateway entry that drifted from the FE set
                # (e.g. a scale-out whose gateway update was lost).
                entry = self.gateway.lookup(handle.vnic.vni,
                                            handle.vnic.tenant_ip)
                if set(entry.locations) != set(handle.fe_locations):
                    self.gateway.set_locations(handle.vnic.vni,
                                               handle.vnic.tenant_ip,
                                               handle.fe_locations)
                    self._decide("gateway_resync", vnic=vnic_id)

    # -- per-vNIC telemetry -------------------------------------------------------------

    def _update_rates(self) -> None:
        for book in self.nodes.values():
            for vnic in book.vswitch.vnics.values():
                total = vnic.tx_sent + vnic.rx_delivered
                last = book.last_pkt_counts.get(vnic.vnic_id, 0)
                book.vnic_rates[vnic.vnic_id] = (
                    (total - last) / self.config.poll_interval)
                book.last_pkt_counts[vnic.vnic_id] = total

    # -- offload ---------------------------------------------------------------------------

    def _offload_hottest(self, book: _NodeBook, by_memory: bool) -> None:
        vswitch = book.vswitch
        candidates = [v for v in vswitch.vnics.values()
                      if not v.offloaded
                      and v.vnic_id not in self.orchestrator.handles
                      and v.vnic_id not in self._inflight_vnics]
        if not candidates:
            return
        candidates = self.policy.offload_order(book, candidates, by_memory)
        # Offload in policy order until projected below the safe level.
        utilization = (vswitch.memory_utilization() if by_memory
                       else vswitch.cpu_utilization())
        for vnic in candidates:
            if utilization <= self.config.safe_level:
                break
            fes = self.policy.select_fes(vswitch, self.config.initial_fes,
                                         vnic=vnic)
            if not fes:
                self._decide("no_fes", vnic=vnic.vnic_id)
                return
            handle = self.orchestrator.offload(vnic, fes)
            self._track_flow(vnic.vnic_id, handle.completion)
            self.offloads_triggered += 1
            self._decide("offload", vnic=vnic.vnic_id,
                         vswitch=vswitch.name, by_memory=by_memory,
                         fes=len(fes),
                         utilization=round(utilization, 4))
            if self.monitor is not None:
                for fe in fes:
                    self.monitor.add_target(fe.server)
            utilization = self.policy.project(utilization, vnic, book,
                                              by_memory)

    # -- fallback --------------------------------------------------------------------------------

    def _consider_fallbacks(self) -> None:
        handles = self.orchestrator.handles
        # Prune idle-poll streaks whose handle left ACTIVE (fallback,
        # abort, failover teardown, scale-in): the dict would otherwise
        # grow without bound, and a re-offloaded vNIC (same id, fresh
        # handle — still DUAL_RUNNING at this point) would inherit the
        # stale streak and fall back the moment it activates.
        for vnic_id in list(self._fallback_idle_polls):
            handle = handles.get(vnic_id)
            if handle is None or handle.state is not OffloadState.ACTIVE:
                del self._fallback_idle_polls[vnic_id]
        for handle in list(handles.values()):
            if handle.state is not OffloadState.ACTIVE:
                continue
            vnic_id = handle.vnic.vnic_id
            if vnic_id in self._inflight_vnics:
                # A scale-out for this vNIC is still in flight; falling
                # back now would tear the handle down under the flow and
                # orphan the FE it is about to add.
                continue
            fe_usage = max((fe.vswitch.cpu_utilization()
                            for fe in handle.frontends.values()),
                           default=0.0)
            if fe_usage < self.config.fallback_threshold:
                self._fallback_idle_polls[vnic_id] = (
                    self._fallback_idle_polls.get(vnic_id, 0) + 1)
            else:
                self._fallback_idle_polls[vnic_id] = 0
            if self._fallback_idle_polls.get(vnic_id, 0) \
                    < self.config.fallback_polls:
                continue
            allowed, projected = self.policy.fallback_decision(handle,
                                                               fe_usage)
            if allowed:
                self._stop_link_pingers(vnic_id)
                self.orchestrator.fallback(handle)
                self.fallbacks += 1
                self._fallback_idle_polls.pop(vnic_id, None)
                self._decide("fallback", vnic=vnic_id,
                             fe_usage=round(fe_usage, 4),
                             projected=round(projected, 4))

    # -- BE↔FE link watching (Appendix C.1) ---------------------------------------------------------

    def watch_links(self, handle: OffloadHandle,
                    interval: float = 2.0) -> List["object"]:
        """Start BE↔FE mutual pinging for every FE of an offloaded vNIC.

        The centralized monitor sees vSwitch health but not BE↔FE link
        connectivity; mutual pings (at a much lower frequency) remove FEs
        the BE cannot reach. Pingers are tracked per vNIC and stopped
        when the handle falls back or the watched FE is removed
        (failover, scale-in, preemption) — a leaked pinger keeps firing
        and can ``exclude``/``fail_fe`` a vSwitch that no longer hosts
        this FE. Returns the started pingers.
        """
        pingers = []
        for fe_vswitch in handle.fe_vswitches:
            ping = MutualPing(self.engine, handle.be_vswitch, fe_vswitch,
                              interval=interval)

            def on_unreachable(fe=fe_vswitch, p=ping):
                p.stop()
                self._decide("link_failover",
                             fe=fe.name, be=handle.be_vswitch.name)
                self.placement.exclude(fe)
                self.orchestrator.fail_fe(fe)

            ping.on_unreachable = on_unreachable
            ping.start()
            pingers.append(ping)
        self._link_pingers.setdefault(handle.vnic.vnic_id,
                                      []).extend(pingers)
        return pingers

    def _stop_link_pingers(self, vnic_id: int) -> None:
        """Stop every pinger watching this vNIC's FEs (fallback path)."""
        for ping in self._link_pingers.pop(vnic_id, []):
            ping.stop()

    def _prune_link_pingers(self) -> None:
        """Stop pingers whose handle went away or whose watched FE was
        removed underneath them (failover, scale-in, preemption)."""
        for vnic_id in list(self._link_pingers):
            handle = self.orchestrator.handles.get(vnic_id)
            live_fes = [] if handle is None else handle.fe_vswitches
            kept = []
            for ping in self._link_pingers[vnic_id]:
                if any(fe is ping.fe_vswitch for fe in live_fes):
                    kept.append(ping)
                else:
                    ping.stop()
            if kept:
                self._link_pingers[vnic_id] = kept
            else:
                del self._link_pingers[vnic_id]

    # -- failover ----------------------------------------------------------------------------------

    def _vswitch_for(self, server: ServerNode) -> Optional[VSwitch]:
        book = self.nodes.get(f"vs-{server.name}")
        if book is not None:
            return book.vswitch
        for candidate in self.nodes.values():
            if candidate.vswitch.server is server:
                return candidate.vswitch
        return None

    def _on_target_down(self, server: ServerNode) -> None:
        vswitch = self._vswitch_for(server)
        if vswitch is None:
            return
        self.failovers += 1
        self._decide("failover", vswitch=vswitch.name)
        self.placement.exclude(vswitch)
        try:
            self.orchestrator.fail_fe(vswitch)
        except ReproError as err:
            # This callback runs inside the monitor's sweep; an exception
            # here would kill the monitor process, blinding failover for
            # every other target.
            self._degraded("failover", vswitch.name, err)
        self._prune_link_pingers()

    def _on_target_up(self, server: ServerNode) -> None:
        """A previously-down target answers probes again: let placement
        use it once more (it stayed excluded forever otherwise)."""
        vswitch = self._vswitch_for(server)
        if vswitch is None or vswitch.crashed:
            return
        self.placement.readmit(vswitch)
        self._decide("readmit", vswitch=vswitch.name)

    def _on_need_fes(self, handle: OffloadHandle, shortfall: int) -> None:
        if handle.vnic.vnic_id in self._inflight_vnics:
            return  # a replacement flow is already running
        new_fes = self.policy.select_fes(
            handle.be_vswitch, shortfall,
            avoid={vs.server.name for vs in handle.fe_vswitches},
            vnic=handle.vnic)
        if new_fes:
            done = self.orchestrator.scale_out(handle, new_fes)
            self._track_flow(handle.vnic.vnic_id, done)
            if self.monitor is not None:
                for fe in new_fes:
                    self.monitor.add_target(fe.server)


def bootstrap_learners(engine: Engine, gateway: Gateway,
                       vswitches: List[VSwitch], interval: float = 0.2,
                       rng: Optional[SeededRng] = None,
                       start: bool = True) -> List[MappingLearner]:
    """Create (and optionally start) a mapping learner per vSwitch."""
    learners = []
    for index, vswitch in enumerate(vswitches):
        child = rng.child(f"learner{index}") if rng is not None else None
        learner = MappingLearner(engine, vswitch, gateway,
                                 interval=interval, rng=child)
        if start:
            learner.start()
        learners.append(learner)
    return learners
