"""The Nezha controller: the reconciliation loop of Fig 8.

Every poll interval the controller examines each registered vSwitch:

* **offload** — utilization above the offload threshold (70 %): offload
  its hottest not-yet-offloaded vNICs (descending consumption of the
  triggering resource) until the projection falls below the safe level;
* **scale** — utilization above the scale threshold (40 %): if the load
  is mostly *remote* (hosted FEs), scale those vNICs out to more FEs;
  if mostly *local*, scale this vSwitch in (remove every FE it hosts and
  exclude it from placement) — which may itself trigger scale-outs;
* **fallback** — an offloaded vNIC whose FE-side usage is low returns to
  local processing, but only when the BE's projected utilization stays
  below the safe level;
* **failover** — the health monitor reports a crashed FE host: its FEs
  are removed at once and replacements added to keep at least 4 FEs.

Nezha never scales in merely because FE utilization is low (App B.2):
idle FEs cost nothing, and removing them would cause cache-miss lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.fabric.device import ServerNode
from repro.sim.engine import Engine, Interrupt
from repro.sim.rng import SeededRng
from repro.sim.trace import Trace
from repro import telemetry as _telemetry
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import VSwitch
from repro.controller.gateway import Gateway, MappingLearner
from repro.controller.monitor import HealthMonitor
from repro.controller.placement import FePlacement
from repro.core.offload import (NezhaOrchestrator, OffloadHandle,
                                OffloadState)


@dataclass
class ControllerConfig:
    poll_interval: float = 0.1
    offload_threshold: float = 0.7      # trigger remote offloading
    scale_threshold: float = 0.4        # trigger scale-out/-in (Fig 8)
    safe_level: float = 0.5             # offload until projected below this
    fallback_threshold: float = 0.1     # FE-side usage considered "idle"
    fallback_polls: int = 20            # consecutive idle polls before fallback
    initial_fes: int = 4                # App B.2: power of two, minimum viable
    min_fes: int = 4
    remote_dominant_fraction: float = 0.5
    memory_offload_threshold: float = 0.7
    enable_fallback: bool = True


@dataclass
class _NodeBook:
    """Controller-side bookkeeping for one vSwitch."""

    vswitch: VSwitch
    last_pkt_counts: Dict[int, int] = field(default_factory=dict)
    vnic_rates: Dict[int, float] = field(default_factory=dict)


class NezhaController:
    """Periodic reconciliation across a fleet of vSwitches."""

    def __init__(self, engine: Engine, gateway: Gateway,
                 orchestrator: NezhaOrchestrator, placement: FePlacement,
                 config: Optional[ControllerConfig] = None,
                 monitor: Optional[HealthMonitor] = None,
                 trace: Optional[Trace] = None,
                 rng: Optional[SeededRng] = None) -> None:
        self.engine = engine
        self.gateway = gateway
        self.orchestrator = orchestrator
        self.placement = placement
        self.config = config or ControllerConfig()
        self.monitor = monitor
        self.trace = trace or _telemetry.active_trace(engine) \
            or Trace(lambda: engine.now)
        self.rng = rng or SeededRng(0, "controller")
        self.nodes: Dict[str, _NodeBook] = {}
        self._fallback_idle_polls: Dict[int, int] = {}
        self._started = False
        self._proc = None
        # vNICs with an offload or scale-out flow still in flight: the
        # reconcile loop must not re-pick them on the next tick (the flow's
        # effects are not visible yet), or one hot vNIC gets double-offloaded
        # / serially over-scaled.
        self._inflight_vnics: Set[int] = set()
        self.offloads_triggered = 0
        self.scale_outs = 0
        self.scale_ins = 0
        self.fallbacks = 0
        self.failovers = 0
        self.reconcile_errors = 0
        orchestrator.need_fe_callback = self._on_need_fes
        if monitor is not None:
            monitor.on_down = self._on_target_down
            monitor.on_up = self._on_target_up
        tel = _telemetry.current()
        if tel is not None:
            tel.register_controller(self)

    def _decide(self, action: str, **fields) -> None:
        """One controller decision: traced, and — when telemetry is
        installed — appended to the ``controller.decisions`` event log
        with the *why* (the fields) attached."""
        self.trace.emit(f"controller.{action}", **fields)
        tel = _telemetry.current()
        if tel is not None:
            tel.decision(self.engine.now, action, **fields)

    # -- registration ------------------------------------------------------------

    def register(self, vswitch: VSwitch) -> None:
        self.nodes[vswitch.name] = _NodeBook(vswitch)
        self.placement.register(vswitch)

    # -- main loop ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True

        def loop():
            try:
                while True:
                    self.reconcile()
                    yield self.engine.timeout(self.config.poll_interval)
            except Interrupt:
                return  # stop() — exit cleanly, restartable via start()

        self._proc = self.engine.process(loop(), name="controller")

    def stop(self) -> None:
        """Kill the reconcile loop (fault injection / maintenance); a later
        :meth:`start` resumes from current cluster state."""
        if not self._started:
            return
        self._started = False
        proc = self._proc
        self._proc = None
        if proc is not None and not proc.done:
            proc.interrupt("controller stopped")

    def reconcile(self) -> None:
        """One reconciliation pass (callable directly from tests).

        Each sub-step is isolated: an unreachable gateway/monitor or a
        half-crashed vSwitch makes that step fail, not the whole loop —
        the controller degrades to whatever it can still reconcile and
        retries the rest next tick.
        """
        self._update_rates()
        for book in list(self.nodes.values()):
            vswitch = book.vswitch
            if vswitch.crashed:
                continue
            try:
                cpu = vswitch.cpu_utilization()
                mem = vswitch.memory_utilization()
                if (cpu > self.config.offload_threshold
                        or mem > self.config.memory_offload_threshold):
                    self._offload_hottest(book, by_memory=(
                        mem > self.config.memory_offload_threshold
                        and cpu <= self.config.offload_threshold))
                elif cpu > self.config.scale_threshold:
                    self._scale(book, cpu)
            except ReproError as err:
                self._degraded("reconcile", vswitch.name, err)
        try:
            self._ensure_min_fes()
        except ReproError as err:
            self._degraded("min_fes", "-", err)
        if self.config.enable_fallback:
            try:
                self._consider_fallbacks()
            except ReproError as err:
                self._degraded("fallback", "-", err)

    def _degraded(self, step: str, target: str, err: Exception) -> None:
        self.reconcile_errors += 1
        self._decide("reconcile_error", step=step,
                     target=target, error=str(err))

    def _track_flow(self, vnic_id: int, done) -> None:
        """Mark ``vnic_id`` in-flight until ``done`` fires (however the
        flow ends — aborted flows release their waiters too)."""
        self._inflight_vnics.add(vnic_id)

        def watch():
            try:
                yield done
            except ReproError:
                pass  # a failed flow still clears the in-flight mark
            self._inflight_vnics.discard(vnic_id)

        self.engine.process(watch(), name=f"flow-watch-{vnic_id}")

    def _ensure_min_fes(self) -> None:
        """Top ACTIVE handles back up to ``min_fes`` — the convergence
        backstop when a replacement scale-out was lost to RPC failures."""
        for handle in list(self.orchestrator.handles.values()):
            if handle.state is not OffloadState.ACTIVE:
                continue
            vnic_id = handle.vnic.vnic_id
            if vnic_id in self._inflight_vnics:
                continue
            shortfall = self.config.min_fes - len(handle.frontends)
            if shortfall > 0:
                self._on_need_fes(handle, shortfall)
            elif self.gateway.lookup(handle.vnic.vni,
                                     handle.vnic.tenant_ip) is not None:
                # Self-heal a gateway entry that drifted from the FE set
                # (e.g. a scale-out whose gateway update was lost).
                entry = self.gateway.lookup(handle.vnic.vni,
                                            handle.vnic.tenant_ip)
                if set(entry.locations) != set(handle.fe_locations):
                    self.gateway.set_locations(handle.vnic.vni,
                                               handle.vnic.tenant_ip,
                                               handle.fe_locations)
                    self._decide("gateway_resync", vnic=vnic_id)

    # -- per-vNIC telemetry -------------------------------------------------------------

    def _update_rates(self) -> None:
        for book in self.nodes.values():
            for vnic in book.vswitch.vnics.values():
                total = vnic.tx_sent + vnic.rx_delivered
                last = book.last_pkt_counts.get(vnic.vnic_id, 0)
                book.vnic_rates[vnic.vnic_id] = (
                    (total - last) / self.config.poll_interval)
                book.last_pkt_counts[vnic.vnic_id] = total

    # -- offload ---------------------------------------------------------------------------

    def _offload_hottest(self, book: _NodeBook, by_memory: bool) -> None:
        vswitch = book.vswitch
        candidates = [v for v in vswitch.vnics.values()
                      if not v.offloaded
                      and v.vnic_id not in self.orchestrator.handles
                      and v.vnic_id not in self._inflight_vnics]
        if not candidates:
            return
        if by_memory:
            candidates.sort(key=lambda v: -v.table_memory_bytes())
        else:
            candidates.sort(
                key=lambda v: -book.vnic_rates.get(v.vnic_id, 0.0))
        # Offload in descending consumption until projected below safe.
        utilization = (vswitch.memory_utilization() if by_memory
                       else vswitch.cpu_utilization())
        for vnic in candidates:
            if utilization <= self.config.safe_level:
                break
            fes = self.placement.select(vswitch, self.config.initial_fes)
            if not fes:
                self._decide("no_fes", vnic=vnic.vnic_id)
                return
            handle = self.orchestrator.offload(vnic, fes)
            self._track_flow(vnic.vnic_id, handle.completion)
            self.offloads_triggered += 1
            self._decide("offload", vnic=vnic.vnic_id,
                         vswitch=vswitch.name, by_memory=by_memory,
                         fes=len(fes),
                         utilization=round(utilization, 4))
            if self.monitor is not None:
                for fe in fes:
                    self.monitor.add_target(fe.server)
            share = book.vnic_rates.get(vnic.vnic_id, 0.0)
            total_rate = sum(book.vnic_rates.values()) or 1.0
            utilization *= max(0.0, 1.0 - share / total_rate)

    # -- scaling (Fig 8) ------------------------------------------------------------------------

    def _scale(self, book: _NodeBook, cpu: float) -> None:
        vswitch = book.vswitch
        agent = self.orchestrator.agents.get(vswitch.name)
        if agent is None or not agent.frontends:
            return  # nothing Nezha-related to scale here
        remote_share = agent.fe_load()
        if remote_share >= self.config.remote_dominant_fraction:
            # Remote offloading overloads this host: scale those vNICs out.
            for vnic_id in list(agent.frontends):
                handle = self.orchestrator.handles.get(vnic_id)
                if handle is None or vnic_id in self._inflight_vnics:
                    # An earlier scale-out for this vNIC is still in
                    # flight; its FE is not visible in the handle yet, so
                    # acting again would serially over-scale the vNIC.
                    continue
                new_fes = self.placement.select(
                    handle.be_vswitch, 1,
                    avoid={vs.server.name for vs in handle.fe_vswitches})
                if new_fes:
                    done = self.orchestrator.scale_out(handle, new_fes)
                    self._track_flow(vnic_id, done)
                    self.scale_outs += 1
                    self._decide("scale_out", vnic=vnic_id,
                                 fe=new_fes[0].name, cpu=round(cpu, 4),
                                 remote_share=round(remote_share, 4))
        else:
            # Local traffic needs the resources: evict every hosted FE.
            self.placement.exclude(vswitch)
            removed = self.orchestrator.scale_in_vswitch(vswitch)
            if removed:
                self.scale_ins += 1
                self._decide("scale_in", vswitch=vswitch.name,
                             removed=removed, cpu=round(cpu, 4),
                             remote_share=round(remote_share, 4))

    # -- fallback --------------------------------------------------------------------------------

    def _consider_fallbacks(self) -> None:
        for handle in list(self.orchestrator.handles.values()):
            if handle.state is not OffloadState.ACTIVE:
                continue
            vnic_id = handle.vnic.vnic_id
            fe_usage = max((fe.vswitch.cpu_utilization()
                            for fe in handle.frontends.values()),
                           default=0.0)
            if fe_usage < self.config.fallback_threshold:
                self._fallback_idle_polls[vnic_id] = (
                    self._fallback_idle_polls.get(vnic_id, 0) + 1)
            else:
                self._fallback_idle_polls[vnic_id] = 0
            if self._fallback_idle_polls.get(vnic_id, 0) \
                    < self.config.fallback_polls:
                continue
            be = handle.be_vswitch
            # Only fall back when the BE can absorb the load afterwards.
            projected = be.cpu_utilization() + fe_usage * len(handle.frontends)
            if (projected < self.config.safe_level
                    and be.mem.available() >= handle.vnic.table_memory_bytes()):
                self.orchestrator.fallback(handle)
                self.fallbacks += 1
                self._fallback_idle_polls.pop(vnic_id, None)
                self._decide("fallback", vnic=vnic_id,
                             fe_usage=round(fe_usage, 4),
                             projected=round(projected, 4))

    # -- BE↔FE link watching (Appendix C.1) ---------------------------------------------------------

    def watch_links(self, handle: OffloadHandle,
                    interval: float = 2.0) -> List["object"]:
        """Start BE↔FE mutual pinging for every FE of an offloaded vNIC.

        The centralized monitor sees vSwitch health but not BE↔FE link
        connectivity; mutual pings (at a much lower frequency) remove FEs
        the BE cannot reach. Returns the started pingers.
        """
        from repro.controller.monitor import MutualPing
        pingers = []
        for fe_vswitch in handle.fe_vswitches:
            ping = MutualPing(self.engine, handle.be_vswitch, fe_vswitch,
                              interval=interval)

            def on_unreachable(fe=fe_vswitch, p=None):
                self._decide("link_failover",
                             fe=fe.name, be=handle.be_vswitch.name)
                self.placement.exclude(fe)
                self.orchestrator.fail_fe(fe)

            ping.on_unreachable = on_unreachable
            ping.start()
            pingers.append(ping)
        return pingers

    # -- failover ----------------------------------------------------------------------------------

    def _vswitch_for(self, server: ServerNode) -> Optional[VSwitch]:
        book = self.nodes.get(f"vs-{server.name}")
        if book is not None:
            return book.vswitch
        for candidate in self.nodes.values():
            if candidate.vswitch.server is server:
                return candidate.vswitch
        return None

    def _on_target_down(self, server: ServerNode) -> None:
        vswitch = self._vswitch_for(server)
        if vswitch is None:
            return
        self.failovers += 1
        self._decide("failover", vswitch=vswitch.name)
        self.placement.exclude(vswitch)
        try:
            self.orchestrator.fail_fe(vswitch)
        except ReproError as err:
            # This callback runs inside the monitor's sweep; an exception
            # here would kill the monitor process, blinding failover for
            # every other target.
            self._degraded("failover", vswitch.name, err)

    def _on_target_up(self, server: ServerNode) -> None:
        """A previously-down target answers probes again: let placement
        use it once more (it stayed excluded forever otherwise)."""
        vswitch = self._vswitch_for(server)
        if vswitch is None or vswitch.crashed:
            return
        self.placement.readmit(vswitch)
        self._decide("readmit", vswitch=vswitch.name)

    def _on_need_fes(self, handle: OffloadHandle, shortfall: int) -> None:
        if handle.vnic.vnic_id in self._inflight_vnics:
            return  # a replacement flow is already running
        new_fes = self.placement.select(
            handle.be_vswitch, shortfall,
            avoid={vs.server.name for vs in handle.fe_vswitches})
        if new_fes:
            done = self.orchestrator.scale_out(handle, new_fes)
            self._track_flow(handle.vnic.vnic_id, done)
            if self.monitor is not None:
                for fe in new_fes:
                    self.monitor.add_target(fe.server)


def bootstrap_learners(engine: Engine, gateway: Gateway,
                       vswitches: List[VSwitch], interval: float = 0.2,
                       rng: Optional[SeededRng] = None,
                       start: bool = True) -> List[MappingLearner]:
    """Create (and optionally start) a mapping learner per vSwitch."""
    learners = []
    for index, vswitch in enumerate(vswitches):
        child = rng.child(f"learner{index}") if rng is not None else None
        learner = MappingLearner(engine, vswitch, gateway,
                                 interval=interval, rng=child)
        if start:
            learner.start()
        learners.append(learner)
    return learners
