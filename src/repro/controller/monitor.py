"""Centralized FE crash detection (§4.4, Appendix C).

A dedicated monitor host ping-polls every vSwitch hosting FEs. Probes are
UDP datagrams to the flow-direct probe port, which the vSwitch answers
from its own datapath — so the probe reflects *vSwitch* health, not the
health of the other hypervisors sharing the SmartNIC. ``miss_threshold``
consecutive unanswered probes mark a target down ("unreachable via
multiple pings").

Appendix C.2: when most targets appear down at once, that is almost
always a monitoring bug, not mass hardware failure — automatic removal is
suspended and a manual-intervention flag raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.fabric.device import ServerNode
from repro.net.addr import MacAddress
from repro.net.ethernet import EthernetHeader
from repro.net.ipv4 import IPv4Header
from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro import telemetry as _telemetry
from repro.vswitch.vswitch import PROBE_PORT


@dataclass
class TargetState:
    server: ServerNode
    consecutive_misses: int = 0
    outstanding_seq: Optional[int] = None
    down_reported: bool = False
    probes_sent: int = 0
    replies_seen: int = 0


class HealthMonitor:
    """Ping-polling monitor running from a dedicated fabric host."""

    def __init__(self, engine: Engine, monitor_server: ServerNode,
                 interval: float = 0.5, miss_threshold: int = 3,
                 suspend_fraction: float = 0.5,
                 trace: Optional[Trace] = None) -> None:
        if miss_threshold < 1:
            raise ConfigError("miss_threshold must be >= 1")
        self.engine = engine
        self.server = monitor_server
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.suspend_fraction = suspend_fraction
        self.trace = trace or _telemetry.active_trace(engine) \
            or Trace(lambda: engine.now)
        self.targets: Dict[str, TargetState] = {}
        self._seq = 0
        self._seq_to_target: Dict[int, str] = {}
        self.on_down: Optional[Callable[[ServerNode], None]] = None
        self.on_up: Optional[Callable[[ServerNode], None]] = None
        self.suspended = False          # Appendix C.2 manual-intervention flag
        self._started = False
        monitor_server.attach_sink(self._on_packet)
        tel = _telemetry.current()
        if tel is not None:
            tel.register_monitor(self)

    # -- target management ---------------------------------------------------

    def add_target(self, server: ServerNode) -> None:
        if server.name not in self.targets:
            self.targets[server.name] = TargetState(server)

    def remove_target(self, server: ServerNode) -> None:
        state = self.targets.pop(server.name, None)
        if state is not None and state.outstanding_seq is not None:
            # A probe to the removed target may still be in flight; without
            # this purge a late echo reply would resolve the stale seq and
            # the mapping entry would leak forever if no reply ever came.
            self._seq_to_target.pop(state.outstanding_seq, None)
            state.outstanding_seq = None

    def reset_suspension(self) -> None:
        """Manual operator action re-enabling automatic removal.

        Targets that genuinely died while removal was suspended have
        ``consecutive_misses`` over the threshold but were never reported
        (``_evaluate_down`` returns early when suspended) — report them
        now, otherwise they would only surface after a fresh miss streak,
        or never, because every subsequent sweep re-enters the mass-failure
        branch and re-suspends.
        """
        self.suspended = False
        pending = [state for state in self.targets.values()
                   if state.consecutive_misses >= self.miss_threshold
                   and not state.down_reported]
        for state in pending:
            state.down_reported = True
            self.trace.emit("monitor.target_down", target=state.server.name)
            if self.on_down is not None:
                self.on_down(state.server)

    # -- probing loop ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True

        def loop():
            while self._started:
                self._sweep()
                yield self.engine.timeout(self.interval)

        self.engine.process(loop(), name="health-monitor")

    def stop(self) -> None:
        """Stop probing (the loop exits at its next tick). A later
        :meth:`start` resumes with the same target set."""
        self._started = False

    def _sweep(self) -> None:
        # First account for last round's unanswered probes.
        newly_down: List[TargetState] = []
        for state in self.targets.values():
            if state.outstanding_seq is not None:
                state.consecutive_misses += 1
                self._seq_to_target.pop(state.outstanding_seq, None)
                state.outstanding_seq = None
                if (state.consecutive_misses >= self.miss_threshold
                        and not state.down_reported):
                    newly_down.append(state)
        self._evaluate_down(newly_down)
        # Then send this round's probes.
        for state in self.targets.values():
            self._send_probe(state)

    def _evaluate_down(self, newly_down: List[TargetState]) -> None:
        if not newly_down:
            return
        down_total = sum(
            1 for s in self.targets.values()
            if s.consecutive_misses >= self.miss_threshold)
        if (len(self.targets) >= 4
                and down_total / len(self.targets) >= self.suspend_fraction):
            # Widespread "failure" — almost certainly a false positive.
            if not self.suspended:
                self.suspended = True
                self.trace.emit("monitor.suspended", down=down_total,
                                targets=len(self.targets))
            return
        if self.suspended:
            return
        for state in newly_down:
            state.down_reported = True
            self.trace.emit("monitor.target_down", target=state.server.name)
            if self.on_down is not None:
                self.on_down(state.server)

    def _send_probe(self, state: TargetState) -> None:
        self._seq += 1
        seq = self._seq
        state.outstanding_seq = seq
        state.probes_sent += 1
        self._seq_to_target[seq] = state.server.name
        probe = Packet.udp(self.server.underlay_ip,
                           state.server.underlay_ip,
                           40000, PROBE_PORT, payload=seq.to_bytes(4, "big"))
        wrapped = Packet([EthernetHeader(MacAddress.broadcast(),
                                         self.server.mac)] + probe.layers,
                         probe.payload)
        self.server.send_to_fabric(wrapped)

    # -- replies -----------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if len(packet.payload) < 4:
            return
        seq = int.from_bytes(packet.payload[:4], "big")
        target_name = self._seq_to_target.pop(seq, None)
        if target_name is None:
            return
        state = self.targets.get(target_name)
        if state is None:
            return
        state.replies_seen += 1
        state.outstanding_seq = None
        state.consecutive_misses = 0
        if state.down_reported:
            state.down_reported = False
            self.trace.emit("monitor.target_up", target=target_name)
            if self.on_up is not None:
                self.on_up(state.server)


class MutualPing:
    """Periodic BE↔FE mutual pinging (Appendix C.1).

    The centralized monitor sees vSwitch health but not BE↔FE link
    connectivity; each BE therefore pings its FEs directly at a lower
    frequency and reports FEs it cannot reach.
    """

    _instances = 0

    def __init__(self, engine: Engine, be_vswitch, fe_vswitch,
                 interval: float = 2.0, miss_threshold: int = 2) -> None:
        self.engine = engine
        self.be_vswitch = be_vswitch
        self.fe_vswitch = fe_vswitch
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.misses = 0
        self.on_unreachable: Optional[Callable[[], None]] = None
        self._reported = False
        self._outstanding: Optional[int] = None
        # Several pingers can share one BE vSwitch: disjoint seq spaces.
        MutualPing._instances += 1
        self._seq = MutualPing._instances * 1_000_000
        self._stopped = False
        be_vswitch.on_probe_reply(self._on_reply)

    def start(self) -> None:
        def loop():
            while not self._stopped:
                self._tick()
                yield self.engine.timeout(self.interval)

        self.engine.process(loop(), name="mutual-ping")

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._outstanding is not None:
            self.misses += 1
            if (self.misses >= self.miss_threshold
                    and not self._reported
                    and self.on_unreachable is not None):
                self._reported = True
                self.on_unreachable()
        self._seq += 1
        self._outstanding = self._seq
        be_server = self.be_vswitch.server
        fe_server = self.fe_vswitch.server
        probe = Packet.udp(be_server.underlay_ip, fe_server.underlay_ip,
                           40001, PROBE_PORT,
                           payload=self._seq.to_bytes(4, "big"))
        wrapped = Packet([EthernetHeader(MacAddress.broadcast(),
                                         be_server.mac)] + probe.layers,
                         probe.payload)
        be_server.send_to_fabric(wrapped)

    def _on_reply(self, packet: Packet) -> None:
        if len(packet.payload) < 4:
            return
        seq = int.from_bytes(packet.payload[:4], "big")
        if seq == self._outstanding:
            self._outstanding = None
            self.misses = 0
            self._reported = False
