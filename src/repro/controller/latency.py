"""Control-plane RPC latency model.

Offload activation involves several controller→node configuration pushes
(rule tables into FEs, location configs, the gateway update). Production
completion times (Table 4: avg ≈ 1.1 s, P99 ≈ 2.1 s, P999 ≈ 2.9 s) are
dominated by these pushes plus the 0–200 ms learning window; we model each
push as a log-normal draw, the classic shape of RPC latching through a
config-distribution pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.rng import SeededRng


@dataclass
class ControlLatencyModel:
    """Log-normal per-push latency: ``exp(N(mu, sigma))`` seconds."""

    median: float = 0.22      # seconds; one config push
    sigma: float = 0.75       # log-space spread (tail heaviness)
    floor: float = 0.02       # network + processing minimum

    def sample(self, rng: SeededRng) -> float:
        return self.floor + rng.lognormal(math.log(self.median), self.sigma)

    @classmethod
    def fast(cls) -> "ControlLatencyModel":
        """For unit tests: near-instant control plane."""
        return cls(median=0.001, sigma=0.1, floor=0.0)
