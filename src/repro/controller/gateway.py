"""The gateway: global vNIC-server mapping with on-demand learning.

The global routing table is too large to push everywhere, so it lives at
the gateway and vSwitches learn relevant entries periodically (200 ms
interval in the paper). During a Nezha offload the controller rewrites a
vNIC's entry to its FE locations; until each sender's next refresh, its
packets still go directly to the BE — the dual-running stage exists
precisely to absorb this window (§4.2.1, Fig 7).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addr import IPv4Address
from repro.sim.engine import Engine
from repro.sim.rng import SeededRng
from repro import telemetry as _telemetry
from repro.vswitch.rule_tables import Location, MappingEntry, MappingTable
from repro.vswitch.vswitch import VSwitch


class Gateway:
    """Authoritative vNIC-server mapping, versioned per entry."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._entries: Dict[Tuple[int, int], MappingEntry] = {}
        # Removal tombstones: key -> version at which the entry was deleted.
        # Learners pull these alongside the snapshot so their tables drop
        # removed entries instead of forwarding to stale locations forever.
        self._removed: Dict[Tuple[int, int], int] = {}
        self._version = 0
        self.learners: List["MappingLearner"] = []
        tel = _telemetry.current()
        if tel is not None:
            tel.register_gateway(self)

    # -- mutation ------------------------------------------------------------

    def set_locations(self, vni: int, tenant_ip: IPv4Address,
                      locations: List[Location]) -> int:
        """Point a vNIC's entry at new serving locations; returns the new
        entry version."""
        self._version += 1
        key = (vni, IPv4Address(tenant_ip).value)
        entry = MappingEntry(vni=vni, locations=locations,
                             version=self._version)
        self._entries[key] = entry
        self._removed.pop(key, None)
        return self._version

    def remove(self, vni: int, tenant_ip: IPv4Address) -> None:
        self._version += 1
        key = (vni, IPv4Address(tenant_ip).value)
        if self._entries.pop(key, None) is not None:
            self._removed[key] = self._version

    # -- queries ----------------------------------------------------------------

    def lookup(self, vni: int, tenant_ip: IPv4Address) -> Optional[MappingEntry]:
        return self._entries.get((vni, IPv4Address(tenant_ip).value))

    def snapshot(self, vni: int) -> Dict[Tuple[int, int], MappingEntry]:
        """All current entries for one VPC (what a learner pulls)."""
        return {key: entry for key, entry in self._entries.items()
                if key[0] == vni}

    def removals(self, vni: int) -> Dict[Tuple[int, int], int]:
        """Deletion tombstones for one VPC, pulled with the snapshot."""
        return {key: version for key, version in self._removed.items()
                if key[0] == vni}

    @property
    def version(self) -> int:
        return self._version

    # -- learner registry ------------------------------------------------------------

    def register_learner(self, learner: "MappingLearner") -> None:
        self.learners.append(learner)

    def all_learners_synced(self, vni: int, version: int) -> bool:
        """True once every learner that cares about ``vni`` has pulled a
        snapshot at least as fresh as ``version``."""
        return all(learner.synced_version(vni) >= version
                   for learner in self.learners
                   if learner.cares_about(vni))


class MappingLearner:
    """Periodic mapping-table learning for one vSwitch.

    Each refresh copies the gateway's entries for every VNI the vSwitch's
    vNICs belong to into those vNICs' mapping tables. Refreshes are
    phase-offset per vSwitch (uniformly within the interval) — the source
    of the 0–200 ms component of offload completion time.
    """

    def __init__(self, engine: Engine, vswitch: VSwitch, gateway: Gateway,
                 interval: float = 0.2,
                 rng: Optional[SeededRng] = None) -> None:
        self.engine = engine
        self.vswitch = vswitch
        self.gateway = gateway
        self.interval = interval
        self._synced: Dict[int, int] = {}     # vni -> gateway version pulled
        self._phase = (rng.uniform(0.0, interval) if rng is not None else 0.0)
        self._started = False
        # Fault-injection hook: return True to drop this pull on the floor
        # (the gateway was unreachable); the next periodic refresh retries.
        self.fault_hook: Optional[Callable[["MappingLearner"], bool]] = None
        self.pulls_dropped = 0
        gateway.register_learner(self)

    def cares_about(self, vni: int) -> bool:
        return any(vnic.vni == vni for vnic in self.vswitch.vnics.values())

    def synced_version(self, vni: int) -> int:
        return self._synced.get(vni, -1)

    def start(self) -> None:
        if self._started:
            return
        self._started = True

        def loop():
            yield self.engine.timeout(self._phase)
            while True:
                self.refresh()
                yield self.engine.timeout(self.interval)

        self.engine.process(loop(), name=f"learner-{self.vswitch.name}")

    def refresh(self) -> None:
        """Pull fresh entries for every VNI this vSwitch serves.

        Entries whose version changed invalidate this vSwitch's cached
        flows toward the moved address (Fig 1: rule-table changes delete
        the associated cached flows, which regenerate via the slow path).
        """
        if self.vswitch.crashed:
            return
        if self.fault_hook is not None and self.fault_hook(self):
            self.pulls_dropped += 1
            return
        current = self.gateway.version
        for vnic in self.vswitch.vnics.values():
            table = vnic.slow_path.table("vnic_server_mapping")
            if not isinstance(table, MappingTable):
                continue
            for (vni, ip_value), entry in self.gateway.snapshot(vnic.vni).items():
                old = table.lookup(vni, IPv4Address(ip_value))
                table.set_entry(vni, IPv4Address(ip_value), entry)
                if old is not None and old.version != entry.version:
                    self.vswitch.session_table.invalidate_peer_flows(
                        vni, ip_value)
            # Reconcile deletions: a removed gateway entry must also leave
            # this vSwitch's table, or packets keep forwarding to the stale
            # location indefinitely.
            for (vni, ip_value) in self.gateway.removals(vnic.vni):
                if table.lookup(vni, IPv4Address(ip_value)) is not None:
                    table.remove_entry(vni, IPv4Address(ip_value))
                    self.vswitch.session_table.invalidate_peer_flows(
                        vni, ip_value)
            self._synced[vnic.vni] = current
            if not vnic.offloaded and vnic.host is not None:
                vnic.host.recharge_vnic(vnic.vnic_id)
