"""The virtual-network control plane.

* :class:`Gateway` — owns the global vNIC-server mapping table; vSwitches
  learn the subsets they need on a fixed interval (200 ms in production,
  §4.2.1), which bounds Nezha's offload-activation completion time.
* :class:`HealthMonitor` — centralized ping-polling of FE-hosting
  vSwitches with flow-direct probes, plus the false-positive suppression
  the paper added after production incidents (Appendix C).
* :class:`FePlacement` — idle-vSwitch selection: same ToR first, similar
  attributes (Appendix B.1).
* :class:`NezhaController` — the reconciliation loop tying it together:
  offload at 70 % utilization, scale at 40 %, fallback when safe,
  failover on crash (Fig 8, §4.2–4.4).
* :class:`LoadSharingPolicy` — the controller's decision seam (what to
  offload, where, when to scale/fall back) with four competing
  strategies: :class:`NezhaPolicy` (the paper, default),
  :class:`PamPolicy` (push-neighbor-aside FE migration),
  :class:`SuperNicPolicy` (per-tenant fair shares + preemption), and
  :class:`SiriusPolicy` (no load sharing at all).

Attributes are resolved lazily (PEP 562) because the Nezha core and the
controller reference each other: the orchestrator updates the gateway,
the controller drives the orchestrator.
"""

_EXPORTS = {
    "Gateway": ("repro.controller.gateway", "Gateway"),
    "MappingLearner": ("repro.controller.gateway", "MappingLearner"),
    "HealthMonitor": ("repro.controller.monitor", "HealthMonitor"),
    "MutualPing": ("repro.controller.monitor", "MutualPing"),
    "FePlacement": ("repro.controller.placement", "FePlacement"),
    "LoadSharingPolicy": ("repro.controller.policy", "LoadSharingPolicy"),
    "NezhaPolicy": ("repro.controller.policy", "NezhaPolicy"),
    "PamPolicy": ("repro.controller.policy", "PamPolicy"),
    "SuperNicPolicy": ("repro.controller.policy", "SuperNicPolicy"),
    "SiriusPolicy": ("repro.controller.policy", "SiriusPolicy"),
    "POLICIES": ("repro.controller.policy", "POLICIES"),
    "POLICY_NAMES": ("repro.controller.policy", "POLICY_NAMES"),
    "make_policy": ("repro.controller.policy", "make_policy"),
    "NezhaController": ("repro.controller.controller", "NezhaController"),
    "ControllerConfig": ("repro.controller.controller", "ControllerConfig"),
    "bootstrap_learners": ("repro.controller.controller",
                           "bootstrap_learners"),
    "ControlLatencyModel": ("repro.controller.latency",
                            "ControlLatencyModel"),
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
