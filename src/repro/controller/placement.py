"""Idle-vSwitch selection for FEs (§4.2.1, Appendix B.1).

Selection goals: minimize latency (same ToR as the BE first, then widen),
ensure headroom (utilization below a threshold), and keep the chosen set
*similar* so flows of one vNIC see consistent service — we pick the
lowest-utilization candidates within the closest distance tier that can
satisfy the request.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.fabric.topology import Topology
from repro.vswitch.vswitch import VSwitch


class FePlacement:
    """Chooses FE-hosting vSwitches for a BE."""

    def __init__(self, topo: Topology, vswitches: Dict[str, VSwitch],
                 idle_threshold: float = 0.4) -> None:
        self.topo = topo
        self.vswitches = dict(vswitches)
        self.idle_threshold = idle_threshold
        # vSwitches that scaled in to protect local traffic: not eligible
        # until the controller clears them.
        self.excluded: Set[str] = set()

    def register(self, vswitch: VSwitch) -> None:
        self.vswitches[vswitch.server.name] = vswitch

    def exclude(self, vswitch: VSwitch) -> None:
        self.excluded.add(vswitch.server.name)

    def readmit(self, vswitch: VSwitch) -> None:
        self.excluded.discard(vswitch.server.name)

    def _eligible(self, vswitch: VSwitch, be: VSwitch,
                  avoid: Set[str]) -> bool:
        name = vswitch.server.name
        if vswitch is be or name in avoid or name in self.excluded:
            return False
        if vswitch.crashed:
            return False
        return vswitch.cpu_utilization() < self.idle_threshold

    def select(self, be: VSwitch, count: int,
               avoid: Optional[Set[str]] = None) -> List[VSwitch]:
        """Pick up to ``count`` FEs: same-ToR tier first, then the rest,
        lowest-utilization first within each tier."""
        avoid = avoid or set()
        be_server = be.server
        tiers: Dict[int, List[VSwitch]] = {}
        for vswitch in self.vswitches.values():
            if not self._eligible(vswitch, be, avoid):
                continue
            distance = self.topo.hop_distance(be_server, vswitch.server)
            tiers.setdefault(distance, []).append(vswitch)
        chosen: List[VSwitch] = []
        for distance in sorted(tiers):
            # Stable tie-break by server name: equal-utilization picks
            # must not depend on registration (dict insertion) order, or
            # policy comparisons diverge across otherwise-identical runs.
            candidates = sorted(tiers[distance],
                                key=lambda vs: (vs.cpu_utilization(),
                                                vs.server.name))
            for vswitch in candidates:
                if len(chosen) >= count:
                    return chosen
                chosen.append(vswitch)
        return chosen
